package repro

// One benchmark per table and figure of the DAC 2002 paper, plus the
// ablations DESIGN.md calls out. Each benchmark regenerates its artifact
// end-to-end (wrapper design, Pareto sets, scheduling, sweeps), so
// `go test -bench=. -benchmem` both measures the framework's runtime —
// the paper's "<5 s on a 333 MHz Ultra 10" claim class — and re-derives
// the numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/datavol"
	"repro/internal/experiments"
	"repro/internal/lb"
	"repro/internal/pareto"
	"repro/internal/sched"
	"repro/internal/tamsim"
	"repro/internal/wrapper"
)

// table1Percents is a mid-size grid: large enough to land near the
// recorded results, small enough for iterating benchmarks.
var table1Percents = []int{1, 5, 10, 20, 40}
var table1Deltas = []int{0, 1, 2}

// BenchmarkTable1 regenerates one Table 1 block (all four regimes at the
// paper's widths) per benchmark SOC.
func BenchmarkTable1D695(b *testing.B)   { benchTable1(b, "d695") }
func BenchmarkTable1P22810(b *testing.B) { benchTable1(b, "p22810like") }
func BenchmarkTable1P34392(b *testing.B) { benchTable1(b, "p34392like") }
func BenchmarkTable1P93791(b *testing.B) { benchTable1(b, "p93791like") }

func benchTable1(b *testing.B, name string) {
	s, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(s, table1Percents, table1Deltas, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFig1ParetoStaircase regenerates Fig. 1: the testing-time
// staircase and Pareto points of p93791like's engineered Core 6.
func BenchmarkFig1ParetoStaircase(b *testing.B) {
	s := bench.P93791Like()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig1(s, 6, 64)
		if err != nil {
			b.Fatal(err)
		}
		if pts[46].Time != 114317 {
			b.Fatalf("plateau = %d", pts[46].Time)
		}
	}
}

// BenchmarkFig9SweepP22810 regenerates the Fig. 9(a)-(d) sweep for the
// p22810 stand-in (T, D and cost curves share one sweep). A reduced width
// range and grid keep one iteration around a second; socbench runs the
// full-resolution version.
func BenchmarkFig9SweepP22810(b *testing.B) {
	s := bench.P22810Like()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f9, err := experiments.Fig9Sweep(s, 12, 72, []int{1, 10, 30}, []int{0, 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if f9.Sweep.MinVolume <= 0 {
			b.Fatal("no volume minimum")
		}
	}
}

// BenchmarkTable2 regenerates a Table 2 block (minima plus γ rows) per
// SOC, from a reduced-resolution sweep.
func BenchmarkTable2D695(b *testing.B)   { benchTable2(b, "d695") }
func BenchmarkTable2P34392(b *testing.B) { benchTable2(b, "p34392like") }

func benchTable2(b *testing.B, name string) {
	s, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f9, err := experiments.Fig9Sweep(s, 12, 64, []int{1, 10, 30}, []int{0, 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.Table2(f9)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblationDelta regenerates the §6 p34392 bottleneck narrative.
func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationDelta(10, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkAblationBaselines compares flexible packing against the
// fixed-width and shelf architectures on d695.
func BenchmarkAblationBaselines(b *testing.B) {
	s := bench.D695()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Baselines(s, []int{16, 32, 64}, 3, table1Percents, table1Deltas, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkAblationHeuristics measures the idle-insertion / widening
// on-off matrix on d695.
func BenchmarkAblationHeuristics(b *testing.B) {
	s := bench.D695()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHeuristics(s, []int{32}, table1Percents, table1Deltas, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component micro-benchmarks: the pieces the paper times implicitly ---

// BenchmarkSingleSchedule measures one scheduler run (the unit the paper's
// "<5 s total CPU time" claim is built from) on the largest SOC.
func BenchmarkSingleScheduleP93791(b *testing.B) {
	s := bench.P93791Like()
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Run(sched.Params{TAMWidth: 48, Percent: 10, Delta: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignWrapper measures the BFD wrapper design of the biggest
// d695 core across its useful width range (the uncached path).
func BenchmarkDesignWrapper(b *testing.B) {
	c := bench.D695().Core(5) // s38584
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 1; w <= 64; w++ {
			if _, err := wrapper.DesignWrapper(c, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDesignWrapperCached measures the same width range served from
// an Optimizer's (core, width) design cache — the scheduler's inner-loop
// path since PR 2. Compare against BenchmarkDesignWrapper for the
// cached-vs-uncached win.
func BenchmarkDesignWrapperCached(b *testing.B) {
	s := bench.D695()
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 1; w <= 64; w++ {
			if opt.Design(5, w) == nil {
				b.Fatal("missing cached design")
			}
		}
	}
}

// BenchmarkSweepBestD695 measures one full (α, δ, slack) parameter-grid
// sweep at a fixed TAM width — the unit datavol.Run repeats per width.
// Grid dedup collapses the default 225-point grid to the unique
// preferred-width fingerprints before anything runs.
func BenchmarkSweepBestD695(b *testing.B) {
	s := bench.D695()
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.SweepBest(sched.Params{TAMWidth: 32, Workers: 1}, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScheduleBackend measures one full d695 W=32 run of a named backend
// through the registry dispatch path — the same call ScheduleNamed and the
// service layer make. A non-zero preemptions budget (via
// LargerCorePreemptions) keeps the preemptive backends from declining.
func benchScheduleBackend(b *testing.B, backend string, preemptions int) {
	s := bench.D695()
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	params := sched.Params{TAMWidth: 32, Workers: 1, Backend: backend}
	if preemptions > 0 {
		mp, err := opt.LargerCorePreemptions(preemptions)
		if err != nil {
			b.Fatal(err)
		}
		params.MaxPreemptions = mp
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.ScheduleBackend(ctx, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleD695Rectpack tracks the rectangle bin-packing backend.
func BenchmarkScheduleD695Rectpack(b *testing.B) { benchScheduleBackend(b, "rectpack", 0) }

// BenchmarkScheduleD695PreemptRectpack tracks the splitting packer under a
// two-segment budget on the larger cores (without one it declines).
func BenchmarkScheduleD695PreemptRectpack(b *testing.B) {
	benchScheduleBackend(b, "preempt-rectpack", 2)
}

// BenchmarkScheduleD695Anneal tracks the seeded annealing local search.
func BenchmarkScheduleD695Anneal(b *testing.B) { benchScheduleBackend(b, "anneal", 0) }

// BenchmarkScheduleD695Portfolio tracks the racing meta-backend (which
// runs every other backend, so it bounds the whole registry's cost).
func BenchmarkScheduleD695Portfolio(b *testing.B) { benchScheduleBackend(b, "portfolio", 0) }

// BenchmarkParetoSets measures Pareto staircase construction for a full SOC.
func BenchmarkParetoSets(b *testing.B) {
	s := bench.P93791Like()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pareto.ComputeAll(s, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowerBound measures the Table 1 LB column computation.
func BenchmarkLowerBound(b *testing.B) {
	s := bench.P93791Like()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lb.Compute(s, 48, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateD695 measures the full ATE/TAM replay with bit-level
// wrapper shifting.
func BenchmarkSimulateD695(b *testing.B) {
	s := bench.D695()
	sch, err := sched.SweepBest(s, sched.Params{TAMWidth: 32}, []int{10}, []int{1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tamsim.Simulate(s, sch, tamsim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataVolRunD695WorkersN measures the Problem-3 width sweep on
// d695 at fixed worker counts: the Workers1 variant is the sequential
// baseline, Workers4 the parallel engine. On a multi-core host the
// Workers4 run is expected to be >= 2x faster wall-clock; on a single
// hardware thread both degenerate to the same work. The two variants
// return identical sweeps (asserted by TestSweepWidthsDeterministic).
func BenchmarkDataVolRunD695Workers1(b *testing.B) { benchDataVolRunD695(b, 1) }
func BenchmarkDataVolRunD695Workers4(b *testing.B) { benchDataVolRunD695(b, 4) }

func benchDataVolRunD695(b *testing.B, workers int) {
	s := bench.D695()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := datavol.Run(s, datavol.Config{
			WidthLo: 8, WidthHi: 56,
			Percents: table1Percents, Deltas: table1Deltas,
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if sw.MinVolume <= 0 {
			b.Fatal("no volume minimum")
		}
	}
}

// BenchmarkWidthSweepDemo measures a Problem-3 width sweep on the demo SOC.
func BenchmarkWidthSweepDemo(b *testing.B) {
	s := bench.Demo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datavol.Run(s, datavol.Config{
			WidthLo: 8, WidthHi: 32,
			Percents: []int{5, 15}, Deltas: []int{0, 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
