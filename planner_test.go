package repro

import (
	"reflect"
	"testing"
)

// TestPlannerMatchesPackageHelpers asserts the cached Planner session
// returns exactly what the cache-rebuilding package helpers return.
func TestPlannerMatchesPackageHelpers(t *testing.T) {
	s := BenchmarkSOC("d695")
	p, err := NewPlanner(s)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{TAMWidth: 32, Percent: 10, Delta: 1, Workers: 1}

	got, err := p.Schedule(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Schedule(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Planner.Schedule differs from package Schedule")
	}
	if err := p.Verify(got); err != nil {
		t.Fatalf("Planner.Verify: %v", err)
	}

	gotBest, err := p.ScheduleBest(Options{TAMWidth: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantBest, err := ScheduleBest(s, Options{TAMWidth: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBest, wantBest) {
		t.Fatal("Planner.ScheduleBest differs from package ScheduleBest")
	}

	gotSweep, err := p.SweepWidths(24, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantSweep, err := SweepWidthsWorkers(s, 24, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSweep, wantSweep) {
		t.Fatal("Planner.SweepWidths differs from package SweepWidths")
	}

	d := p.WrapperDesign(1, 8)
	wd, err := DesignWrapper(s.Core(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, wd) {
		t.Fatal("Planner.WrapperDesign differs from DesignWrapper")
	}
	if p.WrapperDesign(1, 0) != nil || p.WrapperDesign(1, DefaultMaxWidth+1) != nil {
		t.Fatal("out-of-range WrapperDesign must return nil")
	}
	if ps := p.Pareto(1); ps == nil || ps.Time(8) != wd.TestTime() {
		t.Fatal("Planner.Pareto inconsistent with wrapper design")
	}
}
