// Package repro is an open-source reproduction of "Wrapper/TAM
// Co-Optimization, Constraint-Driven Test Scheduling, and Tester Data
// Volume Reduction for SOCs" (Iyengar, Chakrabarty, Marinissen — DAC 2002):
// an integrated framework for modular system-on-chip test automation.
//
// The framework solves three coupled problems:
//
//   - Problem 1 — wrapper/TAM co-optimization: design a test wrapper for
//     every embedded core, choose a Pareto-optimal TAM width per core, and
//     schedule all core tests on the SOC's W TAM wires by generalized
//     rectangle packing (rectangles may occupy non-contiguous wires:
//     TAM fork-and-merge).
//   - Problem 2 — constraint-driven preemptive scheduling: the same, under
//     precedence constraints, concurrency constraints (including implicit
//     parent/child Intest-vs-Extest exclusion), a power budget, BIST-engine
//     conflicts, and selective test preemption with per-core limits.
//   - Problem 3 — tester data volume: sweep W, observe testing time T(W)
//     and tester data volume D(W) = W·T(W), and pick the "effective" TAM
//     width minimizing C(γ,W) = γ·T/T_min + (1−γ)·D/D_min.
//
// Quick start:
//
//	s := repro.BenchmarkSOC("d695")
//	sch, err := repro.Schedule(s, repro.Options{TAMWidth: 32})
//	if err != nil { ... }
//	fmt.Println(sch.Makespan) // SOC testing time in cycles
//
// Callers issuing repeated runs or sweeps against one SOC should hold a
// Planner: it precomputes the Pareto staircases and every (core, width)
// wrapper design once and serves all subsequent scheduling from those
// caches, where the package-level helpers rebuild them per call.
//
// The heavy lifting lives in the internal packages (soc, wrapper, pareto,
// rect, constraint, sched, lb, datavol, bist, pattern, tamsim, baseline,
// bench, report, experiments); this package re-exports the surface a
// downstream user needs. The cmd/ tools regenerate every table and figure
// of the paper; see DESIGN.md and EXPERIMENTS.md.
//
// # Service
//
// cmd/socserved (package internal/service) serves this API over HTTP:
// SOCs are deduplicated by Fingerprint, Planners are built once per
// fingerprint behind singleflight dedup and held in a size-bounded LRU,
// and long sweeps run as cancellable async jobs. The context-aware
// variants (Planner.ScheduleBestContext, Planner.SweepWidthsContext)
// carry that cancellation down into the sweep worker pools; with a nil or
// never-cancelled context they return exactly what their context-free
// counterparts return.
//
// # Batching
//
// Planner.ScheduleBatch runs many (params, mode) items through one
// bounded worker pool and returns one result per item, in item order.
// Items whose parameters canonicalize to the same key (Options.Workers
// excluded, defaults folded) are computed once and share the resulting
// schedule. The HTTP surface mirrors this as POST /v1/batch, backed by a
// content-addressed result cache keyed by (fingerprint, canonical params,
// mode): repeat schedule requests — batched or not — are served the exact
// bytes of the first answer, with hit/miss/eviction counters on /metrics.
//
// # Concurrency
//
// A sched.Optimizer (and therefore a Planner) is safe for concurrent use:
// once constructed it holds only the SOC, immutable per-core Pareto sets,
// and immutable cached wrapper designs, and every scheduling run allocates
// its own mutable state. The parameter sweeps exploit this —
// ScheduleBest fans the (α, δ, slack) grid and SweepWidths fans the TAM
// width range out over a worker pool. The fan-out is bounded by the
// Workers knob (Options.Workers, or the workers argument of
// SweepWidthsWorkers): 0 uses GOMAXPROCS, 1 forces the sequential path.
// Parallel sweeps are deterministic: results are collected per grid point
// and compared in grid order, so the returned schedule or sweep is
// identical to the sequential one for any worker count.
package repro
