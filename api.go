package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/datavol"
	"repro/internal/lb"
	"repro/internal/pareto"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/schedio"
	"repro/internal/soc"
	"repro/internal/socfile"
	"repro/internal/tamsim"
	"repro/internal/wrapper"
	"repro/internal/wrapperrtl"

	// Register the search backends: every consumer of this package (the
	// CLIs, the service, the examples) schedules with the full backend
	// registry — classic, rectpack, preempt-rectpack, anneal, and
	// portfolio.
	_ "repro/internal/anneal"
	_ "repro/internal/rectpack"
)

// Re-exported core types: the data model, the scheduler's inputs/outputs,
// and the Problem-3 sweep results.
type (
	// SOC is a system-on-chip test description.
	SOC = soc.SOC
	// Core is one embedded core.
	Core = soc.Core
	// Test is a core's test description.
	Test = soc.Test
	// Precedence expresses "Before completes before After begins".
	Precedence = soc.Precedence
	// Concurrency expresses "A and B never run together".
	Concurrency = soc.Concurrency
	// Options tunes one scheduling run (TAM width, α/δ, preemption,
	// power budget, heuristic toggles).
	Options = sched.Params
	// TestSchedule is a completed schedule with per-core assignments and
	// the wire-level packed bin.
	TestSchedule = sched.Schedule
	// CoreAssignment is one core's disposition in a schedule.
	CoreAssignment = sched.Assignment
	// WrapperDesign is a core's wrapper configuration at one TAM width.
	WrapperDesign = wrapper.Design
	// ParetoSet is a core's Pareto-optimal (width, time) set.
	ParetoSet = pareto.Set
	// WidthSweep holds T(W) and D(W) over a range of TAM widths.
	WidthSweep = datavol.Sweep
	// EffectiveWidth is a Problem-3 outcome: the width minimizing C(γ,·).
	EffectiveWidth = datavol.Effective
	// SimulationResult is the outcome of replaying a schedule on the
	// simulated ATE + TAM + wrappers.
	SimulationResult = tamsim.Result
)

// Test kinds.
const (
	ScanTest = soc.ScanTest
	BISTTest = soc.BISTTest
)

// DefaultBackend is the scheduling backend used when Options.Backend is
// empty: the paper's grid-swept preferred-width heuristic ("classic").
const DefaultBackend = sched.DefaultBackend

// ErrUnknownBackend is wrapped by every error caused by an Options.Backend
// value naming no registered backend; test with errors.Is.
var ErrUnknownBackend = sched.ErrUnknownBackend

// UnknownCoreError reports a schedule whose assignments reference a core ID
// its SOC does not define (a stale, tampered, or mismatched schedule).
// Verify, Planner.Verify, CheckInvariants, and LoadSchedule return it;
// extract with errors.As.
type UnknownCoreError = sched.UnknownCoreError

// SchedulerBackends returns the names of the registered scheduling
// backends, sorted: "classic" (the paper's heuristic), "portfolio" (race
// everything, keep the shortest verified schedule), "rectpack" (best-fit
// decreasing rectangle bin packing), plus anything else registered through
// sched.RegisterBackend.
func SchedulerBackends() []string { return sched.Backends() }

// DefaultMaxWidth is the per-core TAM width cap (the paper's 64).
const DefaultMaxWidth = sched.DefaultMaxWidth

// Schedule computes a test schedule for the SOC with the given options.
// Zero-valued option fields take the paper's defaults. With the default
// classic backend this is a single scheduler run at the given (α, δ);
// a non-classic Options.Backend dispatches to that backend's best-schedule
// mode (rectpack and portfolio have no per-run (α, δ) grid to pin).
func Schedule(s *SOC, opts Options) (*TestSchedule, error) {
	if sched.IsDefaultBackend(opts.Backend) {
		return sched.Run(s, opts)
	}
	o, err := sched.New(s, opts.Defaults().MaxWidth)
	if err != nil {
		return nil, err
	}
	return o.ScheduleBackend(context.Background(), opts)
}

// Planner is a reusable scheduling session for one SOC. It precomputes the
// per-core Pareto staircases and every (core, width) wrapper design once;
// all subsequent scheduling runs, parameter sweeps, and width sweeps fetch
// from those caches instead of redesigning wrappers. A service answering
// repeated sweeps should hold one Planner per SOC — the package-level
// Schedule/ScheduleBest/SweepWidths helpers rebuild the caches per call.
//
// A Planner is safe for concurrent use by multiple goroutines.
type Planner struct {
	opt *sched.Optimizer
}

// NewPlanner validates the SOC and builds the caches (width cap: the
// paper's 64 per core). The SOC must not be mutated while the Planner is
// in use.
func NewPlanner(s *SOC) (*Planner, error) {
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		return nil, err
	}
	return &Planner{opt: opt}, nil
}

// Schedule computes one test schedule from the cached designs: a single
// classic run at the given (α, δ), or — when Options.Backend names a
// non-classic backend — that backend's best schedule.
func (p *Planner) Schedule(opts Options) (*TestSchedule, error) {
	if sched.IsDefaultBackend(opts.Backend) {
		return p.opt.Run(opts)
	}
	return p.opt.ScheduleBackend(context.Background(), opts)
}

// ScheduleBest returns the best schedule of the backend named by
// Options.Backend: the classic default sweeps the (α, δ) parameter grid
// (deduplicating grid points that resolve to the same per-core preferred
// widths) and returns the schedule with the smallest SOC testing time;
// "rectpack" packs its strategy portfolio; "portfolio" races every
// registered backend and returns the shortest verified schedule. Unknown
// names fail with an error wrapping ErrUnknownBackend.
func (p *Planner) ScheduleBest(opts Options) (*TestSchedule, error) {
	return p.ScheduleBestContext(context.Background(), opts)
}

// ScheduleBestContext is ScheduleBest with cancellation: once ctx is done
// the backend stops launching scheduler runs and returns ctx's error.
// A nil or never-cancelled ctx returns exactly what ScheduleBest returns.
func (p *Planner) ScheduleBestContext(ctx context.Context, opts Options) (*TestSchedule, error) {
	return p.opt.ScheduleBackend(ctx, opts)
}

// BatchItem is one scheduling request in a Planner.ScheduleBatch call:
// the run's Options plus the mode bit (Best selects the backend's
// best-schedule mode, exactly the Schedule vs ScheduleBest split).
type BatchItem = sched.BatchItem

// BatchResult is one batch item's outcome: the schedule or the item's own
// error. Items deduplicated inside a batch share one *TestSchedule —
// treat it as read-only.
type BatchResult = sched.BatchResult

// ScheduleBatch runs many scheduling requests against the Planner's
// cached designs with a bounded worker pool and returns one result per
// item, in item order. Identical items (same canonical parameters; the
// Workers knob is not semantic) are computed once and share the result,
// giving library callers the same batching and deduplication semantics as
// the service's POST /v1/batch endpoint and its content-addressed result
// cache. One failing item never fails the batch — its error lands in its
// own result slot. workers bounds the fan-out (0 = GOMAXPROCS, 1 =
// sequential); results are identical for any worker count. Once ctx is
// done, unstarted items fail with ctx's error.
func (p *Planner) ScheduleBatch(ctx context.Context, items []BatchItem, workers int) []BatchResult {
	return p.opt.ScheduleBatch(ctx, items, workers)
}

// SOC returns the Planner's SOC (read-only; mutating it invalidates the
// Planner's caches).
func (p *Planner) SOC() *SOC { return p.opt.SOC() }

// SweepWidths schedules the SOC at every TAM width in [lo, hi] (workers
// as in SweepWidthsWorkers), reusing the Planner's caches across widths.
func (p *Planner) SweepWidths(lo, hi, workers int) (*WidthSweep, error) {
	return datavol.RunWith(p.opt, datavol.Config{WidthLo: lo, WidthHi: hi, Workers: workers})
}

// SweepWidthsContext is SweepWidths with cancellation: once ctx is done
// the width fan-out and the per-width grid sweeps stop promptly and ctx's
// error is returned. A nil or never-cancelled ctx returns exactly what
// SweepWidths returns.
func (p *Planner) SweepWidthsContext(ctx context.Context, lo, hi, workers int) (*WidthSweep, error) {
	return datavol.RunWithContext(ctx, p.opt, datavol.Config{WidthLo: lo, WidthHi: hi, Workers: workers})
}

// Verify re-derives every schedule invariant, with wrapper designs served
// from the cache.
func (p *Planner) Verify(sch *TestSchedule) error {
	return p.opt.Verify(sch)
}

// WrapperDesign returns the cached wrapper design of a core at a width in
// 1..DefaultMaxWidth (nil when out of range). The design is shared and
// must be treated as read-only.
func (p *Planner) WrapperDesign(coreID, width int) *WrapperDesign {
	return p.opt.Design(coreID, width)
}

// Pareto returns the cached Pareto set of a core.
func (p *Planner) Pareto(coreID int) *ParetoSet {
	return p.opt.ParetoSet(coreID)
}

// ScheduleBest returns the best schedule of the backend named by
// Options.Backend (empty = classic: sweep the (α, δ) parameter grid and
// keep the smallest SOC testing time). Grid points and portfolio racers
// are independent scheduler runs fanned out over opts.Workers goroutines
// (0 = all CPUs, 1 = sequential); the result is identical either way.
func ScheduleBest(s *SOC, opts Options) (*TestSchedule, error) {
	if sched.IsDefaultBackend(opts.Backend) {
		return sched.SweepBest(s, opts, nil, nil)
	}
	o, err := sched.New(s, opts.Defaults().MaxWidth)
	if err != nil {
		return nil, err
	}
	return o.ScheduleBackend(context.Background(), opts)
}

// VerifySchedule re-derives every schedule invariant (packing, timing
// model, constraints) from first principles.
func VerifySchedule(s *SOC, sch *TestSchedule) error {
	return sched.Verify(s, sch)
}

// CheckInvariants is the backend-independent property checker: straight
// from the raw assignments it re-derives that every core is tested exactly
// once, no TAM wire carries two tests at once, the power budget is never
// exceeded, and every precedence and mutual-exclusion edge is honored.
// Unlike VerifySchedule it never consults the timing model or wrapper
// designs, so it accepts any correct schedule regardless of which backend
// (or external tool) produced it.
func CheckInvariants(s *SOC, sch *TestSchedule) error {
	return sched.CheckInvariants(s, sch)
}

// Simulate replays a schedule on the simulated tester: wire-level TAM
// occupancy, ATE vector memory, and bit-accurate wrapper shifting for
// affordably-sized cores.
func Simulate(s *SOC, sch *TestSchedule) (*SimulationResult, error) {
	return tamsim.Simulate(s, sch, tamsim.Options{})
}

// DesignWrapper designs a core's test wrapper for the given TAM width
// (the paper's Design_wrapper, Best-Fit-Decreasing).
func DesignWrapper(c *Core, width int) (*WrapperDesign, error) {
	return wrapper.DesignWrapper(c, width)
}

// ComputePareto returns the core's Pareto-optimal (width, time) set for
// widths 1..maxWidth.
func ComputePareto(c *Core, maxWidth int) (*ParetoSet, error) {
	return pareto.Compute(c, maxWidth)
}

// LowerBound returns the scheduling lower bound LB(W) = max(⌈A/W⌉,
// bottleneck) for the SOC at TAM width w.
func LowerBound(s *SOC, w int) (int64, error) {
	b, err := lb.Compute(s, w, DefaultMaxWidth)
	if err != nil {
		return 0, err
	}
	return b.Value(), nil
}

// SweepWidths schedules the SOC at every TAM width in [lo, hi] and returns
// the T(W)/D(W) sweep behind the paper's Fig. 9 and Table 2. Widths are
// scheduled concurrently across all CPUs; the sweep is deterministic
// regardless of parallelism. Use SweepWidthsWorkers to bound the fan-out.
func SweepWidths(s *SOC, lo, hi int) (*WidthSweep, error) {
	return SweepWidthsWorkers(s, lo, hi, 0)
}

// SweepWidthsWorkers is SweepWidths with an explicit concurrency bound:
// workers = 0 uses all CPUs, 1 forces the sequential path.
func SweepWidthsWorkers(s *SOC, lo, hi, workers int) (*WidthSweep, error) {
	return datavol.Run(s, datavol.Config{WidthLo: lo, WidthHi: hi, Workers: workers})
}

// PickEffectiveWidth minimizes the normalized cost C(γ,W) over a sweep.
func PickEffectiveWidth(sw *WidthSweep, gamma float64) (EffectiveWidth, error) {
	return sw.EffectiveWidth(gamma)
}

// PreemptionPolicy builds the paper's preemption setting: a budget of n
// preemptions for the larger cores (minimum testing time at or above the
// median), none for the rest.
func PreemptionPolicy(s *SOC, n int) (map[int]int, error) {
	return sched.LargerCorePreemptions(s, DefaultMaxWidth, n)
}

// PowerBudget returns a power budget scaled from the largest single-test
// power (factorPct percent of it; 110 reproduces the paper-style Table 1
// power column).
func PowerBudget(s *SOC, factorPct int) int {
	return sched.DefaultPowerBudget(s, factorPct)
}

// BenchmarkSOC returns one of the built-in benchmark SOCs: "d695",
// "p22810like", "p34392like", "p93791like", or "demo8". It panics on an
// unknown name (programmer error); use bench.ByName for error handling.
func BenchmarkSOC(name string) *SOC {
	s, err := bench.ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Fingerprint returns the canonical content fingerprint of an SOC: the hex
// SHA-256 of its normalized serialized description. Semantically identical
// SOCs (same cores, tests, and constraint sets, regardless of constraint
// listing order) fingerprint identically, so the fingerprint is a stable
// cache key for Planners and schedules — a service holds one Planner per
// fingerprint, not one per upload.
func Fingerprint(s *SOC) string {
	return socfile.Fingerprint(s)
}

// LoadSOC parses an SOC description file (.soc grammar; see package
// socfile).
func LoadSOC(path string) (*SOC, error) {
	return socfile.ParseFile(path)
}

// ReadSOC parses an SOC description from a reader.
func ReadSOC(r io.Reader) (*SOC, error) {
	return socfile.Parse(r)
}

// WriteSOC serializes an SOC description to a writer.
func WriteSOC(w io.Writer, s *SOC) error {
	return socfile.Write(w, s)
}

// Gantt renders an ASCII Gantt chart of the schedule (the paper's Fig. 2
// bin view) with the given character width (0 = default).
func Gantt(w io.Writer, sch *TestSchedule, cols int) error {
	return report.Gantt(w, sch, cols)
}

// GanttSVG renders the packed bin as an SVG document.
func GanttSVG(w io.Writer, sch *TestSchedule) error {
	return report.SVG(w, sch)
}

// FormatAssignment summarizes one core's assignment for logs.
func FormatAssignment(a *CoreAssignment) string {
	return fmt.Sprintf("core %d: width %d, [%d,%d), %d piece(s), %d preemption(s)",
		a.CoreID, a.Width, a.Start(), a.End(), len(a.Pieces), a.Preemptions)
}

// WrapperRTL is the elaborated IEEE 1500-style structural wrapper for one
// core at one TAM width.
type WrapperRTL = wrapperrtl.Module

// ElaborateWrapper turns a wrapper design into structural hardware: WIR,
// bypass, and per-wire wrapper chains. Use its WriteVerilog method to emit
// a structural Verilog module.
func ElaborateWrapper(c *Core, d *WrapperDesign) (*WrapperRTL, error) {
	return wrapperrtl.Elaborate(c, d)
}

// SaveSchedule serializes a schedule as versioned JSON for downstream
// tools (ATE program generators, dashboards).
func SaveSchedule(w io.Writer, sch *TestSchedule) error {
	return schedio.Save(w, sch)
}

// LoadSchedule reads a serialized schedule and re-verifies it against the
// SOC it was produced for; tampered or mismatched files are rejected.
func LoadSchedule(r io.Reader, s *SOC) (*TestSchedule, error) {
	return schedio.Load(r, s)
}
