package repro_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro"
)

func TestSchedulerBackendsRegistered(t *testing.T) {
	names := repro.SchedulerBackends()
	want := map[string]bool{"classic": false, "portfolio": false, "rectpack": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("SchedulerBackends() = %v, missing %q", names, n)
		}
	}
}

func TestPlannerBackendDispatch(t *testing.T) {
	s := repro.BenchmarkSOC("d695")
	p, err := repro.NewPlanner(s)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := p.ScheduleBest(repro.Options{TAMWidth: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rect, err := p.ScheduleBest(repro.Options{TAMWidth: 32, Workers: 1, Backend: "rectpack"})
	if err != nil {
		t.Fatal(err)
	}
	if rect.Params.Backend != "rectpack" {
		t.Errorf("rectpack result echoes backend %q", rect.Params.Backend)
	}
	port, err := p.ScheduleBest(repro.Options{TAMWidth: 32, Workers: 1, Backend: "portfolio"})
	if err != nil {
		t.Fatal(err)
	}
	best := classic.Makespan
	if rect.Makespan < best {
		best = rect.Makespan
	}
	if port.Makespan > best {
		t.Errorf("portfolio makespan %d worse than best single backend %d", port.Makespan, best)
	}
	for name, sch := range map[string]*repro.TestSchedule{"classic": classic, "rectpack": rect, "portfolio": port} {
		if err := p.Verify(sch); err != nil {
			t.Errorf("%s: verify: %v", name, err)
		}
		if err := repro.CheckInvariants(s, sch); err != nil {
			t.Errorf("%s: invariants: %v", name, err)
		}
	}

	// Schedule (single-run mode) dispatches non-classic backends too.
	single, err := p.Schedule(repro.Options{TAMWidth: 32, Backend: "rectpack"})
	if err != nil {
		t.Fatal(err)
	}
	if single.Makespan != rect.Makespan {
		t.Errorf("Planner.Schedule backend=rectpack makespan %d, ScheduleBest %d", single.Makespan, rect.Makespan)
	}

	if _, err := p.ScheduleBest(repro.Options{TAMWidth: 32, Backend: "bogus"}); !errors.Is(err, repro.ErrUnknownBackend) {
		t.Errorf("unknown backend error = %v, want ErrUnknownBackend", err)
	}
	if _, err := p.Schedule(repro.Options{TAMWidth: 32, Backend: "bogus"}); !errors.Is(err, repro.ErrUnknownBackend) {
		t.Errorf("Schedule unknown backend error = %v, want ErrUnknownBackend", err)
	}
}

// TestLoadScheduleUnknownCoreTyped pins the typed rejection of serialized
// schedules that reference cores their SOC does not define.
func TestLoadScheduleUnknownCoreTyped(t *testing.T) {
	s := repro.BenchmarkSOC("demo8")
	sch, err := repro.Schedule(s, repro.Options{TAMWidth: 16, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.SaveSchedule(&buf, sch); err != nil {
		t.Fatal(err)
	}
	// Splice an assignment for a core the SOC does not define into the
	// serialized document, on a free wire region past the makespan.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	cores := doc["cores"].([]any)
	doc["cores"] = append(cores, map[string]any{
		"coreId": 4242, "width": 1, "baseTime": 10, "preemptions": 0,
		"scanIn": 1, "scanOut": 1,
		"pieces": []any{map[string]any{"start": float64(sch.Makespan + 1), "end": float64(sch.Makespan + 11), "wires": []any{0}}},
	})
	tampered, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = repro.LoadSchedule(bytes.NewReader(tampered), s)
	var uce *repro.UnknownCoreError
	if !errors.As(err, &uce) {
		t.Fatalf("LoadSchedule error = %v, want *UnknownCoreError", err)
	}
	if uce.CoreID != 4242 {
		t.Fatalf("UnknownCoreError.CoreID = %d, want 4242", uce.CoreID)
	}
}
