package repro_test

// Determinism pinning for the seeded annealing backend: the same seed
// must reproduce byte-identical schedio output run after run (the detseed
// lint's contract, checked end-to-end here), a different seed must still
// produce a valid schedule, and the zero seed must behave exactly like
// sched.DefaultSeed.

import (
	"bytes"
	"context"
	"regexp"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sched"
	"repro/internal/schedio"
)

// annealBytes schedules one scenario with the anneal backend at the given
// seed and returns the canonical schedio bytes.
func annealBytes(t *testing.T, sc corpus.Scenario, seed int64) []byte {
	t.Helper()
	s := sc.Build()
	params, err := sc.ResolveParams(s)
	if err != nil {
		t.Fatal(err)
	}
	params.Backend = "anneal"
	params.Seed = seed
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := opt.ScheduleBackend(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.CheckInvariants(s, sch); err != nil {
		t.Fatalf("seed %d: invariants: %v", seed, err)
	}
	var buf bytes.Buffer
	if err := schedio.Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnnealSeedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal determinism replay skipped in -short mode")
	}
	// One plain, one power-constrained, one budget-bearing scenario: the
	// splitting code paths must be as deterministic as the plain ones.
	for _, name := range []string{"d695-w32", "demo8-w8-power105", "demo8-w12-preempt1"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := corpus.ByName(name)
			if !ok {
				t.Fatalf("no corpus scenario %q", name)
			}
			first := annealBytes(t, sc, 0)
			if again := annealBytes(t, sc, 0); !bytes.Equal(first, again) {
				t.Errorf("same (zero) seed, different bytes:\n%s", corpus.Diff(first, again))
			}
			// The zero seed is DefaultSeed, not a distinct stream — modulo
			// the seed the file records.
			asDefault := annealBytes(t, sc, sched.DefaultSeed)
			if !bytes.Equal(normalizeSeed(t, first), normalizeSeed(t, asDefault)) {
				t.Errorf("seed 0 and DefaultSeed diverged:\n%s", corpus.Diff(first, asDefault))
			}
			// A different seed is its own deterministic stream; its result
			// may differ but must be equally reproducible (validity is
			// checked inside annealBytes).
			other := annealBytes(t, sc, 42)
			if again := annealBytes(t, sc, 42); !bytes.Equal(other, again) {
				t.Errorf("seed 42 not reproducible:\n%s", corpus.Diff(other, again))
			}
		})
	}
}

// normalizeSeed strips the recorded seed field (and its leading comma)
// from schedio bytes, so schedules that differ only in the seed
// annotation compare equal.
var seedField = regexp.MustCompile(`,\n\s*"seed": \d+`)

func normalizeSeed(t *testing.T, b []byte) []byte {
	t.Helper()
	return seedField.ReplaceAll(b, nil)
}
