package repro_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro"
)

// TestPlannerScheduleBatch asserts library/wire parity of the batch
// entrypoint: every item's schedule equals the one-at-a-time API's answer
// for the same params and mode, one failing item fails alone, and results
// come back in item order for any worker count.
func TestPlannerScheduleBatch(t *testing.T) {
	s := repro.BenchmarkSOC("demo8")
	p, err := repro.NewPlanner(s)
	if err != nil {
		t.Fatal(err)
	}

	items := []repro.BatchItem{
		{Params: repro.Options{TAMWidth: 16}},
		{Params: repro.Options{TAMWidth: 16}, Best: true},
		{Params: repro.Options{}}, // invalid: TAMWidth required
		{Params: repro.Options{TAMWidth: 24, Backend: "rectpack"}},
	}
	wantSingle, err := p.Schedule(repro.Options{TAMWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	wantBest, err := p.ScheduleBest(repro.Options{TAMWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	wantRect, err := p.Schedule(repro.Options{TAMWidth: 24, Backend: "rectpack"})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		results := p.ScheduleBatch(context.Background(), items, workers)
		if len(results) != len(items) {
			t.Fatalf("workers=%d: %d results for %d items", workers, len(results), len(items))
		}
		for i, want := range []*repro.TestSchedule{wantSingle, wantBest, nil, wantRect} {
			res := results[i]
			if want == nil {
				if res.Err == nil {
					t.Fatalf("workers=%d item %d: invalid item did not fail", workers, i)
				}
				continue
			}
			if res.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, res.Err)
			}
			if !reflect.DeepEqual(res.Schedule, want) {
				t.Fatalf("workers=%d item %d: batch schedule differs from the one-at-a-time API", workers, i)
			}
		}
	}
}

// TestPlannerScheduleBatchDedup asserts intra-batch deduplication:
// items whose params canonicalize to the same key (defaults folded,
// Workers excluded) share one *Schedule, computed once.
func TestPlannerScheduleBatchDedup(t *testing.T) {
	s := repro.BenchmarkSOC("demo8")
	p, err := repro.NewPlanner(s)
	if err != nil {
		t.Fatal(err)
	}
	items := []repro.BatchItem{
		{Params: repro.Options{TAMWidth: 16}},
		{Params: repro.Options{TAMWidth: 16, Workers: 3}},            // Workers is non-semantic
		{Params: repro.Options{TAMWidth: 16, MaxWidth: 64}},          // explicit default
		{Params: repro.Options{TAMWidth: 16, Backend: "classic"}},    // explicit default backend
		{Params: repro.Options{TAMWidth: 16, DisableWidening: true}}, // genuinely different
	}
	results := p.ScheduleBatch(context.Background(), items, 2)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
	}
	first := results[0].Schedule
	for i := 1; i <= 3; i++ {
		if results[i].Schedule != first {
			t.Fatalf("item %d did not share the deduplicated schedule pointer", i)
		}
	}
	if results[4].Schedule == first {
		t.Fatal("a semantically different item was wrongly deduplicated")
	}
}

// TestPlannerScheduleBatchCancel asserts a cancelled context fails the
// remaining items with the context error instead of wedging or crashing.
func TestPlannerScheduleBatchCancel(t *testing.T) {
	s := repro.BenchmarkSOC("demo8")
	p, err := repro.NewPlanner(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := make([]repro.BatchItem, 8)
	for i := range items {
		// Distinct widths defeat dedup so every item runs its own check.
		items[i] = repro.BatchItem{Params: repro.Options{TAMWidth: 8 + i}}
	}
	results := p.ScheduleBatch(ctx, items, 2)
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, res.Err)
		}
	}
}
