package repro_test

// The chaos suite: corpus scenarios replayed under seeded fault plans.
// Every plan kills, slows, or hangs a strict subset of the scheduling
// backends and asserts the portfolio still returns a valid schedule
// (sched.CheckInvariants) with deterministic bytes — byte-identical to
// the frozen golden whenever classic survives, byte-identical to the
// surviving backend's chaos-free replay otherwise. A final test arms
// every registered failpoint and proves each one fires. CI runs this
// file (and every other *Chaos* test) under -race in a dedicated step:
//
//	go test -race -run Chaos ./...

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/corpus"
	"repro/internal/rectpack"
	"repro/internal/sched"
	"repro/internal/schedio"
	"repro/internal/service"
)

// Failpoint sites armed by this suite; they must match the constants
// compiled into the instrumented packages (chaos.Enable panics on a name
// no package registered, so a drifted string cannot silently no-op).
const (
	chaosSiteClassic  = "sched/classic/schedule"
	chaosSiteRacer    = "sched/portfolio/racer"
	chaosSiteRectpack = "rectpack/schedule"
	chaosSitePreempt  = "rectpack/preempt/schedule"
	chaosSiteAnneal   = "anneal/schedule"
	chaosSiteService  = "service/schedule"
	chaosSiteJobsRun  = "service/jobs/run"
	chaosSiteRegistry = "service/registry/build"
)

// killSearchBackends are the chaos rules that fail every search backend
// (rectpack, preempt-rectpack, anneal), leaving classic the only live
// racer. Equal-makespan ties break alphabetically — "anneal" sorts before
// "classic" — so any test expecting classic's golden bytes must kill all
// three, not just rectpack.
func killSearchBackends(mode chaos.Mode) []chaos.Rule {
	return []chaos.Rule{
		{Site: chaosSiteRectpack, Mode: mode},
		{Site: chaosSitePreempt, Mode: mode},
		{Site: chaosSiteAnneal, Mode: mode},
	}
}

// goldenSchedule reads the scenario's frozen schedule-layer bytes.
func goldenSchedule(t *testing.T, sc corpus.Scenario) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden", sc.Name, corpus.LayerSchedule))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	return b
}

// classicReference computes what the portfolio's classic racer produces
// for a scenario — the grid-swept best with the backend annotation the
// racer stamps. It bypasses the classic backend's failpoint, so it is
// stable even while a plan is killing classic.
func classicReference(t *testing.T, sc corpus.Scenario) []byte {
	t.Helper()
	s := sc.Build()
	params, err := sc.ResolveParams(s)
	if err != nil {
		t.Fatal(err)
	}
	params.Backend = sched.DefaultBackend
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := opt.SweepBestContext(context.Background(), params, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := schedio.Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertValid checks the portfolio's survivor schedule against the full
// invariant suite.
func assertValid(t *testing.T, sc corpus.Scenario, sch *sched.Schedule) {
	t.Helper()
	if err := sched.CheckInvariants(sc.Build(), sch); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestChaosKillSearchBackendsMatchesGolden kills every search backend
// outright and replays the whole corpus through the portfolio: classic
// survives, so every scenario's schedule must be byte-identical to its
// frozen golden (modulo the winner annotation the portfolio always
// stamps).
func TestChaosKillSearchBackendsMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus chaos replay skipped in -short mode")
	}
	sched.ResetPortfolioHealth()
	t.Cleanup(sched.ResetPortfolioHealth)
	plan := chaos.Enable(chaos.Plan{Rules: killSearchBackends(chaos.ModeError)})
	t.Cleanup(plan.Disable)

	t.Run("scenarios", func(t *testing.T) {
		for _, sc := range corpus.All() {
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				sch, got, err := corpus.ReplaySchedule(sc, "portfolio")
				if err != nil {
					t.Fatalf("portfolio with the search backends dead: %v", err)
				}
				assertValid(t, sc, sch)
				if sch.Params.Backend != sched.DefaultBackend {
					t.Fatalf("winner %q, want %q (the search backends are dead)", sch.Params.Backend, sched.DefaultBackend)
				}
				if sc.SingleRun {
					// The portfolio races grid-swept racers only, so SingleRun
					// goldens (one pinned run) are compared against the classic
					// racer's deterministic sweep instead.
					if want := classicReference(t, sc); !bytes.Equal(got, want) {
						t.Errorf("schedule drifted from classic racer reference:\n%s", corpus.Diff(want, got))
					}
					return
				}
				// Strip the winner annotation: the golden was frozen via the
				// default dispatch path, which leaves Backend empty.
				sch.Params.Backend = ""
				var buf bytes.Buffer
				if err := schedio.Save(&buf, sch); err != nil {
					t.Fatal(err)
				}
				if want := goldenSchedule(t, sc); !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("schedule drifted from golden:\n%s", corpus.Diff(want, buf.Bytes()))
				}
			})
		}
	})
	for _, site := range []string{chaosSiteRectpack, chaosSitePreempt, chaosSiteAnneal} {
		if plan.Hits(site) == 0 {
			t.Errorf("failpoint %s never fired", site)
		}
	}
}

// TestChaosKillClassicDegradesToRectpack kills the classic baseline and
// the annealing search and replays the whole corpus: the portfolio must
// degrade to the packing backend serving the scenario's regime — rectpack
// without preemption budgets, preempt-rectpack with them — with bytes
// identical to that backend's own chaos-free replay, and classic —
// breaker-exempt by design — must never be quarantined.
func TestChaosKillClassicDegradesToRectpack(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus chaos replay skipped in -short mode")
	}
	sched.ResetPortfolioHealth()
	t.Cleanup(sched.ResetPortfolioHealth)
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: chaosSiteClassic, Mode: chaos.ModeError},
		{Site: chaosSiteAnneal, Mode: chaos.ModeError},
	}})
	t.Cleanup(plan.Disable)

	t.Run("scenarios", func(t *testing.T) {
		for _, sc := range corpus.All() {
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				s := sc.Build()
				params, err := sc.ResolveParams(s)
				if err != nil {
					t.Fatal(err)
				}
				survivor := rectpack.Name
				if _, declined := sched.BackendDeclines(rectpack.New(), params); declined {
					survivor = rectpack.PreemptName
				}
				sch, got, err := corpus.ReplaySchedule(sc, "portfolio")
				if err != nil {
					t.Fatalf("portfolio with classic and anneal dead: %v", err)
				}
				assertValid(t, sc, sch)
				if sch.Params.Backend != survivor {
					t.Fatalf("winner %q, want %s (classic and anneal are dead)", sch.Params.Backend, survivor)
				}
				// The survivor's failpoint is not armed, so its direct replay
				// is the chaos-free reference the portfolio must reproduce.
				_, want, err := corpus.ReplaySchedule(sc, survivor)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("schedule drifted from %s reference:\n%s", survivor, corpus.Diff(want, got))
				}
			})
		}
	})
	stats := sched.PortfolioStats()
	if got := stats[sched.DefaultBackend]; got.State != "exempt" || got.Quarantined != 0 {
		t.Errorf("classic must never be quarantined: %+v", got)
	}
	if got := stats[rectpack.Name]; got.Won == 0 || got.State != "closed" {
		t.Errorf("rectpack should be winning with a closed breaker: %+v", got)
	}
	if got := stats[rectpack.PreemptName]; got.Won == 0 {
		t.Errorf("preempt-rectpack should win the budget-bearing scenarios: %+v", got)
	}
	if plan.Hits(chaosSiteClassic) == 0 {
		t.Error("classic failpoint never fired")
	}
}

// TestChaosKillAnnealDegradesCleanly kills only the annealing search and
// replays the whole corpus through the portfolio: some other backend must
// win every scenario with a schedule that is valid, byte-identical to the
// winner's own chaos-free replay, and never worse than the classic
// baseline — losing the strongest racer degrades quality, never safety.
func TestChaosKillAnnealDegradesCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus chaos replay skipped in -short mode")
	}
	sched.ResetPortfolioHealth()
	t.Cleanup(sched.ResetPortfolioHealth)
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: chaosSiteAnneal, Mode: chaos.ModeError},
	}})
	t.Cleanup(plan.Disable)

	t.Run("scenarios", func(t *testing.T) {
		for _, sc := range corpus.All() {
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				sch, got, err := corpus.ReplaySchedule(sc, "portfolio")
				if err != nil {
					t.Fatalf("portfolio with anneal dead: %v", err)
				}
				assertValid(t, sc, sch)
				winner := sch.Params.Backend
				if winner == "anneal" {
					t.Fatalf("dead anneal won the race")
				}
				classic, _, err := corpus.ReplaySchedule(sc, "")
				if err != nil {
					t.Fatal(err)
				}
				if sch.Makespan > classic.Makespan {
					t.Errorf("portfolio makespan %d worse than classic %d with anneal dead", sch.Makespan, classic.Makespan)
				}
				if winner != sched.DefaultBackend {
					_, want, err := corpus.ReplaySchedule(sc, winner)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("schedule drifted from %s reference:\n%s", winner, corpus.Diff(want, got))
					}
				}
			})
		}
	})
	if got := sched.PortfolioStats()["anneal"]; got.Failed == 0 {
		t.Errorf("anneal's chaos kills should count as failures: %+v", got)
	}
	if plan.Hits(chaosSiteAnneal) == 0 {
		t.Error("anneal failpoint never fired")
	}
}

// replayPortfolioTimeout replays one scenario through the portfolio with
// a per-racer deadline, returning the winner and its bytes.
func replayPortfolioTimeout(t *testing.T, name string, timeout time.Duration) (*sched.Schedule, []byte) {
	t.Helper()
	sc, ok := corpus.ByName(name)
	if !ok {
		t.Fatalf("no corpus scenario %q", name)
	}
	s := sc.Build()
	params, err := sc.ResolveParams(s)
	if err != nil {
		t.Fatal(err)
	}
	params.Backend = "portfolio"
	params.BackendTimeout = timeout
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := opt.ScheduleBackend(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := schedio.Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	return sch, buf.Bytes()
}

// TestChaosSlowAndHungRectpackTimesOut slows one replay's rectpack racer
// far past the per-racer deadline and hangs another's outright: both
// must be abandoned at BackendTimeout, with classic's schedule winning,
// byte-identical to its deterministic reference.
func TestChaosSlowAndHungRectpackTimesOut(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus chaos replay skipped in -short mode")
	}
	for _, tc := range []struct {
		name     string
		scenario string
		mode     chaos.Mode
	}{
		// Both cases use a scenario where classic does not hit the LB(W)
		// optimality floor: a floor hit cancels the race before the stalled
		// racer's deadline, so its timeout would (correctly) go unobserved.
		{"delay", "demo8-w16", chaos.ModeDelay},
		{"hang", "demo8-w16", chaos.ModeHang},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sched.ResetPortfolioHealth()
			t.Cleanup(sched.ResetPortfolioHealth)
			// Anneal is killed outright: it ties classic on this scenario and
			// would win the alphabetical tie-break, hiding the timeout path
			// under test.
			plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
				{Site: chaosSiteRectpack, Mode: tc.mode, Delay: time.Hour},
				{Site: chaosSiteAnneal, Mode: chaos.ModeError},
			}})
			t.Cleanup(plan.Disable)

			start := time.Now()
			sch, got := replayPortfolioTimeout(t, tc.scenario, 150*time.Millisecond)
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Fatalf("race took %v; a %s rectpack delayed the winner far past BackendTimeout", elapsed, tc.name)
			}
			sc, _ := corpus.ByName(tc.scenario)
			assertValid(t, sc, sch)
			if sch.Params.Backend != sched.DefaultBackend {
				t.Fatalf("winner %q, want %q", sch.Params.Backend, sched.DefaultBackend)
			}
			if want := classicReference(t, sc); !bytes.Equal(got, want) {
				t.Errorf("schedule drifted from classic reference:\n%s", corpus.Diff(want, got))
			}
			if stats := sched.PortfolioStats()["rectpack"]; stats.TimedOut == 0 {
				t.Errorf("rectpack should have timed out: %+v", stats)
			}
		})
	}
}

// TestChaosPanickingRectpackContained turns the rectpack racer into a
// panicking one; the panic must be contained to its goroutine and the
// portfolio must still return classic's golden-equivalent schedule.
func TestChaosPanickingRectpackContained(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus chaos replay skipped in -short mode")
	}
	sched.ResetPortfolioHealth()
	t.Cleanup(sched.ResetPortfolioHealth)
	// Anneal dies plainly alongside: it ties classic here and would win
	// the alphabetical tie-break otherwise.
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: chaosSiteRectpack, Mode: chaos.ModePanic},
		{Site: chaosSiteAnneal, Mode: chaos.ModeError},
	}})
	t.Cleanup(plan.Disable)

	sc, ok := corpus.ByName("toy6-bist1-w8")
	if !ok {
		t.Fatal("no corpus scenario toy6-bist1-w8")
	}
	sch, got, err := corpus.ReplaySchedule(sc, "portfolio")
	if err != nil {
		t.Fatalf("portfolio with panicking rectpack: %v", err)
	}
	assertValid(t, sc, sch)
	if want := classicReference(t, sc); !bytes.Equal(got, want) {
		t.Errorf("schedule drifted from classic reference:\n%s", corpus.Diff(want, got))
	}
	if stats := sched.PortfolioStats()["rectpack"]; stats.Failed == 0 {
		t.Errorf("rectpack's panic should count as a failure: %+v", stats)
	}
}

// TestChaosEveryFailpointFires arms every registered failpoint with a
// one-shot error and drives each subsystem until the whole registry has
// fired — proof that no chaos.Inject site is dead code the suite never
// reaches.
func TestChaosEveryFailpointFires(t *testing.T) {
	sched.ResetPortfolioHealth()
	t.Cleanup(sched.ResetPortfolioHealth)
	rules := make([]chaos.Rule, 0, len(chaos.Sites()))
	for _, site := range chaos.Sites() {
		rules = append(rules, chaos.Rule{Site: site, Mode: chaos.ModeError, Count: 1})
	}
	plan := chaos.Enable(chaos.Plan{Rules: rules})
	t.Cleanup(plan.Disable)

	sc, ok := corpus.ByName("toy4-w8")
	if !ok {
		t.Fatal("no corpus scenario toy4-w8")
	}
	// Each replay spends one-shot rules racer by racer until every
	// scheduling failpoint has fired; a replay where every racer eats a
	// fault simply errors and the next one proceeds with the spent rules
	// gone. The preempt-rectpack site needs a budget-bearing scenario —
	// it declines everything else and a declined racer never runs.
	for i := 0; i < 5 && (plan.FireCount(chaosSiteClassic) == 0 ||
		plan.FireCount(chaosSiteRacer) == 0 || plan.FireCount(chaosSiteRectpack) == 0 ||
		plan.FireCount(chaosSiteAnneal) == 0); i++ {
		if _, _, err := corpus.ReplaySchedule(sc, "portfolio"); err != nil {
			t.Logf("replay %d under full fault plan: %v", i, err)
		}
	}
	scp, ok := corpus.ByName("demo8-w12-preempt1")
	if !ok {
		t.Fatal("no corpus scenario demo8-w12-preempt1")
	}
	for i := 0; i < 3 && plan.FireCount(chaosSitePreempt) == 0; i++ {
		if _, _, err := corpus.ReplaySchedule(scp, "portfolio"); err != nil {
			t.Logf("preempt replay %d under full fault plan: %v", i, err)
		}
	}

	// The service sites: the first schedule request eats the registry
	// build fault, the next one the schedule fault.
	svc, err := service.New(service.Config{Preload: []string{"demo8"}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	for i := 0; i < 3 && (plan.FireCount(chaosSiteRegistry) == 0 ||
		plan.FireCount(chaosSiteService) == 0); i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json",
			bytes.NewReader([]byte(`{"soc":"demo8","params":{"tamWidth":16}}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// The job pool site: one submitted job eats the run fault.
	jb, err := svc.Jobs().Submit("chaos", func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	<-jb.Done()

	fired := make(map[string]bool)
	for _, site := range plan.Fired() {
		fired[site] = true
	}
	for _, site := range chaos.Sites() {
		if !fired[site] {
			t.Errorf("failpoint %s never fired", site)
		}
	}
}
