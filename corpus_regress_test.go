package repro_test

// The corpus golden-regression gate, as a plain `go test` so drift is
// caught locally before CI runs cmd/socregress: every scenario in
// internal/corpus is replayed across every output layer (schedule bytes,
// width sweeps, data-volume curves, effective widths, lower bounds, and
// socserved HTTP responses) and compared byte-for-byte against the golden
// files committed under testdata/golden/.
//
// When a change legitimately moves an output — a new heuristic, a format
// extension — re-bless with `go run ./cmd/socregress -update` and commit
// the golden diff alongside the code so the review sees exactly what moved.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

func TestCorpusGoldenRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay skipped in -short mode")
	}
	for _, sc := range corpus.All() {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			got, err := corpus.Replay(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, layer := range corpus.Layers() {
				path := filepath.Join("testdata", "golden", sc.Name, layer)
				want, err := os.ReadFile(path)
				if err != nil {
					t.Errorf("missing golden %s (bless with `go run ./cmd/socregress -update`): %v", path, err)
					continue
				}
				if d := corpus.Diff(want, got[layer]); d != "" {
					t.Errorf("%s drifted from %s:\n%s\n(if intentional, re-bless with `go run ./cmd/socregress -update`)",
						layer, path, d)
				}
			}
		})
	}
}

// TestCorpusGoldenComplete fails when a golden directory exists for a
// scenario that is no longer in the corpus — stale bytes nobody checks.
func TestCorpusGoldenComplete(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("no golden directory (bless with `go run ./cmd/socregress -update`): %v", err)
	}
	for _, name := range corpus.StaleDirs(dir) {
		t.Errorf("stale golden directory %q names no corpus scenario (remove with `go run ./cmd/socregress -update`)", name)
	}
}
