package repro_test

// The corpus-wide backend invariant suite: every scenario in
// internal/corpus is scheduled by every registered backend that accepts
// its parameters, and every resulting schedule must pass
// sched.CheckInvariants (no TAM-wire overlap, power budget never
// exceeded, precedence and mutual-exclusion edges honored, every core
// tested exactly once, split tests whole) and the full timing-model
// Verify. A backend that declines a scenario's parameters (rectpack under
// preemption budgets, preempt-rectpack without them) is skipped — but the
// suite checks the declared regimes really partition the corpus. The
// suite also pins the competitive acceptance bars: rectpack ties or beats
// the classic grid-swept makespan on at least 5 scenarios, the search
// backends (preempt-rectpack or anneal) on strictly more than 14, anneal
// is never worse than rectpack head-to-head, and the portfolio is never
// worse than the best single backend.

import (
	"sync"
	"testing"

	"repro/internal/anneal"
	"repro/internal/corpus"
	"repro/internal/rectpack"
	"repro/internal/sched"
)

func TestCorpusBackendInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus backend replay skipped in -short mode")
	}
	backends := sched.Backends()
	if len(backends) < 5 {
		t.Fatalf("expected classic, portfolio, rectpack, preempt-rectpack and anneal registered, have %v", backends)
	}

	type outcome struct {
		makespans map[string]int64
	}
	var mu sync.Mutex
	results := make(map[string]*outcome)

	scenarios := corpus.All()
	// The per-scenario subtests run in parallel inside one group, so the
	// aggregate bars below only run once every outcome is in.
	t.Run("scenarios", func(t *testing.T) {
		for _, sc := range scenarios {
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				out := &outcome{makespans: make(map[string]int64, len(backends))}
				s := sc.Build()
				params, err := sc.ResolveParams(s)
				if err != nil {
					t.Fatal(err)
				}
				for _, backend := range backends {
					b, err := sched.BackendByName(backend)
					if err != nil {
						t.Fatal(err)
					}
					if reason, declined := sched.BackendDeclines(b, params); declined {
						t.Logf("backend %s declined: %s", backend, reason)
						continue
					}
					sch, _, err := corpus.ReplaySchedule(sc, backend)
					if err != nil {
						t.Fatalf("backend %s: %v", backend, err)
					}
					if err := sched.CheckInvariants(s, sch); err != nil {
						t.Errorf("backend %s: invariants: %v", backend, err)
					}
					if err := sched.Verify(s, sch); err != nil {
						t.Errorf("backend %s: verify: %v", backend, err)
					}
					out.makespans[backend] = sch.Makespan
				}
				// The declared regimes partition the corpus: exactly one of
				// rectpack / preempt-rectpack accepts any scenario, and
				// classic, anneal and the portfolio accept everything.
				for _, name := range []string{"classic", "anneal", "portfolio"} {
					if _, ok := out.makespans[name]; !ok {
						t.Errorf("backend %s declined scenario %s; it must accept everything", name, sc.Name)
					}
				}
				_, rp := out.makespans[rectpack.Name]
				_, pp := out.makespans[rectpack.PreemptName]
				if rp == pp {
					t.Errorf("scenario %s: rectpack accepted=%t preempt-rectpack accepted=%t; exactly one must serve it", sc.Name, rp, pp)
				}
				best := int64(-1)
				for _, m := range out.makespans {
					if best == -1 || m < best {
						best = m
					}
				}
				if p := out.makespans["portfolio"]; p > best {
					t.Errorf("portfolio makespan %d worse than best single backend %d (%v)", p, best, out.makespans)
				}
				if a, ok := out.makespans[anneal.Name]; ok {
					if r, ok := out.makespans[rectpack.Name]; ok && a > r {
						t.Errorf("anneal makespan %d worse than rectpack %d: the seeds cover rectpack's portfolio", a, r)
					}
				}
				mu.Lock()
				results[sc.Name] = out
				mu.Unlock()
			})
		}
	})

	t.Run("rectpack-competitive", func(t *testing.T) {
		if len(results) != len(scenarios) {
			t.Fatalf("only %d of %d scenarios produced outcomes", len(results), len(scenarios))
		}
		ties, wins := 0, 0
		for _, sc := range scenarios {
			out := results[sc.Name]
			r, ok := out.makespans[rectpack.Name]
			if !ok {
				continue // declined (preemption budgets)
			}
			c := out.makespans["classic"]
			switch {
			case r < c:
				wins++
			case r == c:
				ties++
			}
		}
		t.Logf("rectpack vs classic: %d wins, %d ties", wins, ties)
		if wins+ties < 5 {
			t.Errorf("rectpack ties or beats classic on only %d scenarios, want >= 5", wins+ties)
		}
	})

	// The search backends must beat the plain packer's historical record:
	// preempt-rectpack or anneal ties or beats classic on strictly more
	// scenarios than rectpack's 14-of-35 standing when they landed.
	t.Run("search-competitive", func(t *testing.T) {
		if len(results) != len(scenarios) {
			t.Fatalf("only %d of %d scenarios produced outcomes", len(results), len(scenarios))
		}
		tiesOrBeats := func(name string) int {
			n := 0
			for _, sc := range scenarios {
				out := results[sc.Name]
				if m, ok := out.makespans[name]; ok && m <= out.makespans["classic"] {
					n++
				}
			}
			return n
		}
		pr, an := tiesOrBeats(rectpack.PreemptName), tiesOrBeats(anneal.Name)
		for _, sc := range scenarios {
			out := results[sc.Name]
			t.Logf("%-28s classic=%-9d anneal=%-9d portfolio=%d", sc.Name,
				out.makespans["classic"], out.makespans[anneal.Name], out.makespans["portfolio"])
		}
		t.Logf("ties-or-beats classic: preempt-rectpack %d, anneal %d (of %d)", pr, an, len(scenarios))
		if pr <= 14 && an <= 14 {
			t.Errorf("neither search backend clears the bar: preempt-rectpack %d, anneal %d ties-or-beats, want > 14", pr, an)
		}
	})
}
