package repro_test

// The corpus-wide backend invariant suite: every scenario in
// internal/corpus is scheduled by every registered backend, and every
// resulting schedule must pass sched.CheckInvariants (no TAM-wire overlap,
// power budget never exceeded, precedence and mutual-exclusion edges
// honored, every core tested exactly once) and the full timing-model
// Verify. The suite also pins the competitive acceptance bars: rectpack
// ties or beats the classic grid-swept makespan on at least 5 scenarios,
// and the portfolio is never worse than the best single backend.

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sched"
)

func TestCorpusBackendInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus backend replay skipped in -short mode")
	}
	backends := sched.Backends()
	if len(backends) < 3 {
		t.Fatalf("expected classic, portfolio and rectpack registered, have %v", backends)
	}

	type outcome struct {
		makespans map[string]int64
	}
	var mu sync.Mutex
	results := make(map[string]*outcome)

	scenarios := corpus.All()
	// The per-scenario subtests run in parallel inside one group, so the
	// aggregate bar below only runs once every outcome is in.
	t.Run("scenarios", func(t *testing.T) {
		for _, sc := range scenarios {
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				out := &outcome{makespans: make(map[string]int64, len(backends))}
				s := sc.Build()
				for _, backend := range backends {
					sch, _, err := corpus.ReplaySchedule(sc, backend)
					if err != nil {
						t.Fatalf("backend %s: %v", backend, err)
					}
					if err := sched.CheckInvariants(s, sch); err != nil {
						t.Errorf("backend %s: invariants: %v", backend, err)
					}
					if err := sched.Verify(s, sch); err != nil {
						t.Errorf("backend %s: verify: %v", backend, err)
					}
					out.makespans[backend] = sch.Makespan
				}
				best := out.makespans[backends[0]]
				for _, m := range out.makespans {
					if m < best {
						best = m
					}
				}
				if p := out.makespans["portfolio"]; p > best {
					t.Errorf("portfolio makespan %d worse than best single backend %d (%v)", p, best, out.makespans)
				}
				mu.Lock()
				results[sc.Name] = out
				mu.Unlock()
			})
		}
	})

	t.Run("rectpack-competitive", func(t *testing.T) {
		if len(results) != len(scenarios) {
			t.Fatalf("only %d of %d scenarios produced outcomes", len(results), len(scenarios))
		}
		ties, wins := 0, 0
		for _, sc := range scenarios {
			out := results[sc.Name]
			r, c := out.makespans["rectpack"], out.makespans["classic"]
			switch {
			case r < c:
				wins++
			case r == c:
				ties++
			}
			t.Logf("%-28s classic=%-9d rectpack=%-9d portfolio=%d", sc.Name,
				out.makespans["classic"], out.makespans["rectpack"], out.makespans["portfolio"])
		}
		t.Logf("rectpack vs classic: %d wins, %d ties, %d losses", wins, ties, len(scenarios)-wins-ties)
		if wins+ties < 5 {
			t.Errorf("rectpack ties or beats classic on only %d scenarios, want >= 5", wins+ties)
		}
	})
}
