package repro

// End-to-end integration tests across module boundaries: every benchmark
// SOC survives a full pipeline pass — serialize to .soc text, re-parse,
// schedule, verify, replay on the simulated ATE, serialize the schedule to
// JSON, reload, and re-verify. This is the path a downstream user's CI
// would exercise.

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/tamsim"
	"repro/internal/wrapperrtl"
)

func TestFullPipelineEveryBenchmark(t *testing.T) {
	for _, name := range []string{"d695", "p22810like", "p34392like", "p93791like", "demo8"} {
		name := name
		t.Run(name, func(t *testing.T) {
			orig, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}

			// SOC text round trip.
			var socText bytes.Buffer
			if err := WriteSOC(&socText, orig); err != nil {
				t.Fatal(err)
			}
			s, err := ReadSOC(&socText)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Cores) != len(orig.Cores) {
				t.Fatalf("round trip lost cores: %d vs %d", len(s.Cores), len(orig.Cores))
			}

			// Schedule on the re-parsed SOC (small grid keeps CI fast).
			sch, err := Schedule(s, Options{TAMWidth: 24, Percent: 10, Delta: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifySchedule(s, sch); err != nil {
				t.Fatal(err)
			}

			// ATE replay (cycle-level everywhere; bit-level where small).
			if _, err := tamsim.Simulate(s, sch, tamsim.Options{BitLevelMaxBits: 300000}); err != nil {
				t.Fatal(err)
			}

			// Schedule JSON round trip re-verifies on load.
			var schJSON bytes.Buffer
			if err := SaveSchedule(&schJSON, sch); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadSchedule(&schJSON, s)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Makespan != sch.Makespan {
				t.Fatalf("schedule round trip changed makespan: %d vs %d", loaded.Makespan, sch.Makespan)
			}

			// Every core's wrapper elaborates to consistent hardware.
			for _, c := range s.Cores {
				a := sch.Assignments[c.ID]
				d, err := DesignWrapper(c, a.Width)
				if err != nil {
					t.Fatal(err)
				}
				m, err := wrapperrtl.Elaborate(c, d)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Validate(c, d); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
