// Example server demonstrates driving a running socserved instance as a
// client: upload a SOC, request the grid-swept best schedule, submit an
// async width-sweep job, poll it, and pick the effective TAM width.
//
// Start the service first:
//
//	go run ./cmd/socserved -addr :8080
//
// then:
//
//	go run ./examples/server -addr http://127.0.0.1:8080
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro"
	"repro/internal/resil"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "socserved base URL")
	flag.Parse()

	// Upload the demo SOC in .soc text form. BenchmarkSOC + WriteSOC stand
	// in for reading a .soc file off disk.
	var socText bytes.Buffer
	if err := repro.WriteSOC(&socText, repro.BenchmarkSOC("demo8")); err != nil {
		log.Fatal(err)
	}
	var up struct {
		Fingerprint string `json:"fingerprint"`
		Name        string `json:"name"`
	}
	post(*addr+"/v1/socs", "text/plain", socText.Bytes(), &up)
	fmt.Printf("uploaded %s → fingerprint %s\n", up.Name, up.Fingerprint[:12])

	// Grid-swept best schedule at W=24, addressed by fingerprint.
	var sch struct {
		Makespan   int64 `json:"makespan"`
		DataVolume int64 `json:"dataVolume"`
	}
	post(*addr+"/v1/schedule/best", "application/json",
		jsonBody(map[string]any{"soc": up.Fingerprint, "params": map[string]any{"tamWidth": 24}}), &sch)
	fmt.Printf("best schedule at W=24: makespan %d cycles, data volume %d bits\n", sch.Makespan, sch.DataVolume)

	// Async width sweep: submit, poll, fetch the result.
	var job struct {
		Job       struct{ ID, State string }
		StatusURL string `json:"statusUrl"`
		ResultURL string `json:"resultUrl"`
	}
	post(*addr+"/v1/sweep", "application/json",
		jsonBody(map[string]any{"soc": up.Name, "params": map[string]any{"widthLo": 8, "widthHi": 32}}), &job)
	fmt.Printf("sweep job %s submitted\n", job.Job.ID)
	for {
		var st struct{ State string }
		get(*addr+job.StatusURL, &st)
		if st.State != "queued" && st.State != "running" {
			fmt.Printf("sweep job %s: %s\n", job.Job.ID, st.State)
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	var sweep struct {
		MinTime        int64
		MinTimeWidth   int
		MinVolume      int64
		MinVolumeWidth int
	}
	get(*addr+job.ResultURL, &sweep)
	fmt.Printf("sweep: T_min %d @ W=%d, D_min %d @ W=%d\n",
		sweep.MinTime, sweep.MinTimeWidth, sweep.MinVolume, sweep.MinVolumeWidth)

	// Effective width with equal time/volume weight.
	var eff struct {
		TAMWidth int
		Time     int64
		Volume   int64
	}
	post(*addr+"/v1/effective", "application/json",
		jsonBody(map[string]any{"soc": up.Name, "params": map[string]any{"widthLo": 8, "widthHi": 32, "gamma": 0.5}}), &eff)
	fmt.Printf("effective width (γ=0.5): W=%d (T=%d, D=%d)\n", eff.TAMWidth, eff.Time, eff.Volume)

	// Batch: schedule several widths in one request. Run it twice — the
	// repeat is served from the content-addressed result cache.
	batch := jsonBody(map[string]any{
		"items": []map[string]any{
			{"soc": up.Fingerprint, "params": map[string]any{"tamWidth": 16}},
			{"soc": up.Fingerprint, "params": map[string]any{"tamWidth": 24}},
			{"soc": up.Fingerprint, "params": map[string]any{"tamWidth": 24}, "best": true},
			{"soc": "no-such-soc", "params": map[string]any{"tamWidth": 16}},
		},
	})
	var batchResp struct {
		Items []struct {
			Index  int             `json:"index"`
			Status int             `json:"status"`
			Cached bool            `json:"cached"`
			Result json.RawMessage `json:"result,omitempty"`
			Error  *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error,omitempty"`
		} `json:"items"`
		Stats struct {
			OK, Failed, CacheHits int
		} `json:"stats"`
	}
	for _, pass := range []string{"cold", "warm"} {
		post(*addr+"/v1/batch", "application/json", batch, &batchResp)
		fmt.Printf("batch (%s): %d ok, %d failed, %d cache hits\n",
			pass, batchResp.Stats.OK, batchResp.Stats.Failed, batchResp.Stats.CacheHits)
	}
	for _, it := range batchResp.Items {
		if it.Error != nil {
			fmt.Printf("  item %d failed alone: HTTP %d code=%s\n", it.Index, it.Status, it.Error.Code)
			continue
		}
		var doc struct {
			Makespan int64 `json:"makespan"`
		}
		if err := json.Unmarshal(it.Result, &doc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  item %d: makespan %d cycles (cached=%v)\n", it.Index, doc.Makespan, it.Cached)
	}

	// Race the backend portfolio once so the per-backend observability has
	// a win to report, then print the discovery endpoint's race table.
	post(*addr+"/v1/schedule/best", "application/json",
		jsonBody(map[string]any{"soc": up.Fingerprint,
			"params": map[string]any{"tamWidth": 24, "backend": "portfolio"}}), &sch)
	fmt.Printf("portfolio best at W=24: makespan %d cycles\n\n", sch.Makespan)
	var disc struct {
		Backends []struct {
			Name string `json:"name"`
			Race struct {
				Won     int64   `json:"won"`
				Lost    int64   `json:"lost"`
				State   string  `json:"state"`
				WinRate float64 `json:"winRate"`
			} `json:"race"`
			Latency struct {
				Count int64 `json:"count"`
				P50Ns int64 `json:"p50Ns"`
				P99Ns int64 `json:"p99Ns"`
			} `json:"latency"`
		} `json:"backends"`
	}
	get(*addr+"/v1/backends", &disc)
	fmt.Printf("%-10s %5s %5s %8s %10s %10s %10s\n",
		"backend", "won", "lost", "winrate", "state", "p50", "p99")
	for _, b := range disc.Backends {
		fmt.Printf("%-10s %5d %5d %7.0f%% %10s %10s %10s\n",
			b.Name, b.Race.Won, b.Race.Lost, 100*b.Race.WinRate, b.Race.State,
			time.Duration(b.Latency.P50Ns).Round(time.Microsecond),
			time.Duration(b.Latency.P99Ns).Round(time.Microsecond))
	}
}

func jsonBody(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

// do issues one request and decodes the response, retrying dial failures,
// 429 sheds (socserved's admission control answers those with Retry-After),
// and 5xx responses with jittered backoff before giving up.
func do(url string, req func() (*http.Response, error), out any) {
	_, err := resil.Retry(context.Background(), resil.RetryConfig{
		Attempts: 5,
		Base:     100 * time.Millisecond,
	}, func(context.Context) (struct{}, error) {
		resp, err := req()
		if err != nil {
			return struct{}{}, resil.Transient(fmt.Errorf("%s: %v (is socserved running?)", url, err))
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			msg, _ := io.ReadAll(resp.Body)
			err := fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, msg)
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
				return struct{}{}, resil.Transient(err)
			}
			return struct{}{}, err
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return struct{}{}, fmt.Errorf("%s: decode: %v", url, err)
		}
		return struct{}{}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func post(url, contentType string, body []byte, out any) {
	do(url, func() (*http.Response, error) {
		return http.Post(url, contentType, bytes.NewReader(body))
	}, out)
}

func get(url string, out any) {
	do(url, func() (*http.Response, error) { return http.Get(url) }, out)
}
