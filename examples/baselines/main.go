// Baselines: quantify what the paper's flexible-width rectangle packing
// buys over the two architectures it improves on — statically partitioned
// fixed-width TAMs and classical level-oriented (shelf) packing — across
// the Table-1 widths of the d695 benchmark.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/baseline"
	"repro/internal/sched"
)

func main() {
	s := repro.BenchmarkSOC("d695")

	fmt.Println("d695: SOC testing time in cycles, lower is better")
	fmt.Println("  W    lower-bound  flexible  fixed-width(buses)  NFDH      FFDH")
	for _, w := range []int{16, 32, 48, 64} {
		lbv, err := repro.LowerBound(s, w)
		if err != nil {
			log.Fatal(err)
		}
		flex, err := repro.ScheduleBest(s, repro.Options{TAMWidth: w})
		if err != nil {
			log.Fatal(err)
		}
		fixed, err := baseline.FixedWidth(s, w, sched.DefaultMaxWidth, 3)
		if err != nil {
			log.Fatal(err)
		}
		nfdh, err := baseline.BestShelves(s, w, sched.DefaultMaxWidth, nil, nil, baseline.NFDH)
		if err != nil {
			log.Fatal(err)
		}
		ffdh, err := baseline.BestShelves(s, w, sched.DefaultMaxWidth, nil, nil, baseline.FFDH)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4d %-12d %-9d %-8d%-12s %-9d %d\n",
			w, lbv, flex.Makespan, fixed.Makespan, fmt.Sprint(fixed.BusWidths), nfdh.Makespan, ffdh.Makespan)
	}

	fmt.Println()
	fmt.Println("flexible-width packing wins because TAM wires fork and merge between")
	fmt.Println("cores over time, instead of being welded into fixed buses or shelves;")
	fmt.Println("the gap is the idle area those rigid architectures cannot reclaim.")
}
