// Constraints: schedule a hierarchical SOC under the full Problem-2
// machinery — precedence ("test the memories first"), implicit
// parent/child concurrency exclusion, a shared BIST engine, a power
// budget, and selective preemption — and show how each constraint shapes
// the schedule.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	s := repro.BenchmarkSOC("demo8")

	fmt.Println("demo8 constraints:")
	for _, p := range s.Precedences {
		fmt.Printf("  precedence: core %d before core %d\n", p.Before, p.After)
	}
	for _, c := range s.Concurrencies {
		fmt.Printf("  concurrency: cores %d and %d never overlap\n", c.A, c.B)
	}
	for _, c := range s.Cores {
		if c.Parent != 0 {
			fmt.Printf("  hierarchy: core %d is embedded in core %d (Intest/Extest exclusion)\n", c.ID, c.Parent)
		}
		if c.Test.BISTEngine >= 0 {
			fmt.Printf("  BIST: core %d uses on-chip engine %d\n", c.ID, c.Test.BISTEngine)
		}
	}

	const w = 24

	// Regime 1: unconstrained-by-power, non-preemptive.
	base, err := repro.ScheduleBest(s, repro.Options{TAMWidth: w})
	if err != nil {
		log.Fatal(err)
	}

	// Regime 2: allow the larger cores to be preempted twice.
	policy, err := repro.PreemptionPolicy(s, 2)
	if err != nil {
		log.Fatal(err)
	}
	pre, err := repro.ScheduleBest(s, repro.Options{TAMWidth: w, MaxPreemptions: policy})
	if err != nil {
		log.Fatal(err)
	}

	// Regime 3: add a binding power budget (110% of the hungriest test).
	budget := repro.PowerBudget(s, 110)
	pw, err := repro.ScheduleBest(s, repro.Options{
		TAMWidth:       w,
		MaxPreemptions: policy,
		PowerMax:       budget,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nW=%d  non-preemptive: %d cycles\n", w, base.Makespan)
	fmt.Printf("W=%d  preemptive:     %d cycles\n", w, pre.Makespan)
	fmt.Printf("W=%d  + power<=%d:  %d cycles\n\n", w, budget, pw.Makespan)

	preempted := 0
	for _, a := range pw.Assignments {
		if a.Preemptions > 0 {
			fmt.Printf("  core %d was preempted %d time(s), costing %d extra cycles\n",
				a.CoreID, a.Preemptions, a.PenaltyCycles)
			preempted++
		}
	}
	if preempted == 0 {
		fmt.Println("  (no test needed preemption under this budget)")
	}

	fmt.Println("\npower-constrained schedule:")
	if err := repro.Gantt(os.Stdout, pw, 96); err != nil {
		log.Fatal(err)
	}

	// Every constraint is re-checked from the raw schedule.
	if err := repro.VerifySchedule(s, pw); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall constraints verified on the final schedule")
}
