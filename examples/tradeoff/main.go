// Tradeoff: the paper's Problem 3 — sweep the SOC TAM width, watch testing
// time T(W) fall and tester data volume D(W) = W·T(W) wander, and pick the
// "effective" TAM width that minimizes the normalized cost
// C(γ,W) = γ·T/T_min + (1−γ)·D/D_min for several γ settings. This is the
// analysis behind the paper's Fig. 9 and Table 2, motivated by multisite
// testing: narrower TAMs with bounded per-pin memory let one tester test
// more chips in parallel.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	s := repro.BenchmarkSOC("d695")

	sweep, err := repro.SweepWidths(s, 8, 64)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SOC %s width sweep (W = 8..64):\n", s.Name)
	fmt.Printf("  minimum testing time  T_min = %d cycles at W = %d\n", sweep.MinTime, sweep.MinTimeWidth)
	fmt.Printf("  minimum data volume   D_min = %d bits   at W = %d\n\n", sweep.MinVolume, sweep.MinVolumeWidth)

	fmt.Println("  W    T(W) cycles   D(W) bits")
	for _, p := range sweep.Samples {
		if p.TAMWidth%8 != 0 {
			continue // print every 8th point; the full series feeds Fig. 9
		}
		fmt.Printf("  %-4d %-13d %d\n", p.TAMWidth, p.Time, p.Volume)
	}

	fmt.Println("\neffective TAM widths (Table 2 analysis):")
	fmt.Println("  gamma  C_min   W_eff  T(W_eff)  D(W_eff)")
	for _, gamma := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		eff, err := repro.PickEffectiveWidth(sweep, gamma)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6.2f %-7.3f %-6d %-9d %d\n", gamma, eff.CostMin, eff.TAMWidth, eff.Time, eff.Volume)
	}

	// Multisite reading: with a 512-pin tester and a 16 Mbit per-pin
	// buffer, how many d695 dies can one tester run in parallel at the
	// γ=0.5 effective width?
	eff, err := repro.PickEffectiveWidth(sweep, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sites := 512 / eff.TAMWidth
	fmt.Printf("\nmultisite: at W_eff=%d, a 512-pin tester tests %d dies in parallel\n", eff.TAMWidth, sites)
	fmt.Printf("(per-pin vector depth %d bits fits a 16 Mbit buffer %.1fx over)\n",
		eff.Time, 16.0*1024*1024/float64(eff.Time))
}
