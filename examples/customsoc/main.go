// Customsoc: build an SOC programmatically, round-trip it through the
// .soc file format, inspect a core's wrapper design and Pareto staircase,
// schedule it, and replay the schedule bit-by-bit on the simulated tester.
// This is the end-to-end path a downstream integrator follows for their
// own chip.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	// An SOC under integration: a controller with an embedded accelerator,
	// two memories behind one BIST engine, and combinational glue.
	s := &repro.SOC{
		Name: "mychip",
		Cores: []*repro.Core{
			{
				ID: 1, Name: "ctrl", Inputs: 40, Outputs: 36, Bidirs: 4,
				ScanChains: []int{120, 120, 110, 110},
				Test:       repro.Test{Patterns: 180, BISTEngine: -1},
			},
			{
				ID: 2, Name: "accel", Parent: 1, Inputs: 28, Outputs: 24,
				ScanChains: []int{90, 90, 88, 88, 86, 86},
				Test:       repro.Test{Patterns: 150, BISTEngine: -1},
			},
			{
				ID: 3, Name: "mem0", Inputs: 12, Outputs: 8,
				ScanChains: []int{200},
				Test:       repro.Test{Patterns: 220, Kind: repro.BISTTest, BISTEngine: 0},
			},
			{
				ID: 4, Name: "mem1", Inputs: 12, Outputs: 8,
				ScanChains: []int{200},
				Test:       repro.Test{Patterns: 220, Kind: repro.BISTTest, BISTEngine: 0},
			},
			{
				ID: 5, Name: "glue", Inputs: 64, Outputs: 48,
				Test: repro.Test{Patterns: 90, BISTEngine: -1},
			},
		},
		// Memories first, so later system tests can use them.
		Precedences: []repro.Precedence{{Before: 3, After: 1}, {Before: 4, After: 1}},
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}

	// Round-trip through the .soc text format.
	var buf bytes.Buffer
	if err := repro.WriteSOC(&buf, s); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "mychip.soc")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	loaded, err := repro.LoadSOC(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote and re-read %s (%d cores)\n\n", path, len(loaded.Cores))

	// Wrapper design detail for the controller at 8 TAM wires.
	d, err := repro.DesignWrapper(loaded.Core(1), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ctrl wrapper at width 8: si=%d so=%d, T=%d cycles\n", d.ScanInMax, d.ScanOutMax, d.TestTime())
	for j, ch := range d.Chains {
		fmt.Printf("  wrapper chain %d: %d scan chain(s), %d scan bits, %d/%d/%d in/out/bidir cells\n",
			j, len(ch.ScanChains), ch.ScanBits, ch.InputCells, ch.OutputCells, ch.BidirCells)
	}

	// The Pareto staircase: only these widths are worth assigning.
	ps, err := repro.ComputePareto(loaded.Core(1), 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nctrl Pareto-optimal (width, time) points:")
	for _, p := range ps.Points {
		fmt.Printf("  w=%-3d T=%d\n", p.Width, p.Time)
	}

	// Schedule and simulate.
	sch, err := repro.ScheduleBest(loaded, repro.Options{TAMWidth: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule at W=16: %d cycles, %.1f%% TAM utilization\n", sch.Makespan, 100*sch.Utilization())
	res, err := repro.Simulate(loaded, sch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d/%d cores bit-verified, %d payload bits, per-pin depth %d\n",
		res.BitLevelCores, len(res.Cores), res.PayloadBits, res.PerPinDepth)
}
