// Quickstart: load the d695 benchmark SOC, co-optimize wrappers and TAM,
// schedule all core tests on a 32-wire TAM, and print the resulting packed
// bin (the paper's Fig. 2 view) plus the headline numbers a test engineer
// cares about.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	s := repro.BenchmarkSOC("d695")

	// ScheduleBest sweeps the paper's (α, δ) parameter grid and keeps the
	// shortest schedule.
	sch, err := repro.ScheduleBest(s, repro.Options{TAMWidth: 32})
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifySchedule(s, sch); err != nil {
		log.Fatal(err)
	}

	lbound, err := repro.LowerBound(s, 32)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SOC %s on a %d-wire TAM\n", s.Name, sch.TAMWidth)
	fmt.Printf("  testing time: %d cycles (lower bound %d)\n", sch.Makespan, lbound)
	fmt.Printf("  TAM utilization: %.1f%%\n", 100*sch.Utilization())
	fmt.Printf("  tester data volume: %d bits\n\n", sch.DataVolume())

	for _, c := range s.Cores {
		a := sch.Assignments[c.ID]
		fmt.Printf("  %-8s %s\n", c.Name, repro.FormatAssignment(a))
	}
	fmt.Println()

	// The packed rectangles, one row per TAM wire.
	if err := repro.Gantt(os.Stdout, sch, 96); err != nil {
		log.Fatal(err)
	}

	// Replay the schedule on the simulated tester: every response bit the
	// ATE receives is checked against the golden core model.
	res, err := repro.Simulate(s, sch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated on ATE: %d/%d cores verified bit-by-bit, %d payload bits moved\n",
		res.BitLevelCores, len(res.Cores), res.PayloadBits)
}
