// Multisite: the economics behind the paper's Problem 3. A production
// tester has a fixed number of digital channels and a fixed per-pin vector
// buffer. A narrower TAM per die means (a) more dies tested in parallel on
// one tester and (b) deeper per-pin memory per die. This example sweeps
// the TAM width of the p22810 stand-in, checks each width against the
// tester's buffer, and reports batch throughput — showing why the width
// that minimizes one die's testing time is usually not the width that
// maximizes tested dies per hour.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/datavol"
)

const (
	testerPins = 256     // digital channels on the ATE
	bufferBits = 1 << 19 // 512 Kbit vector memory per pin
	testerHz   = 50e6    // vector rate
)

func main() {
	s := repro.BenchmarkSOC("p22810like")

	sweep, err := repro.SweepWidths(s, 8, 64)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tester: %d pins, %d bits per-pin buffer, %.0f MHz\n\n", testerPins, bufferBits, testerHz/1e6)
	fmt.Println("  W    T(W) cycles  sites  dies/hour     note")

	bestW, bestThr := 0, 0.0
	for _, smp := range sweep.Samples {
		if smp.TAMWidth%4 != 0 {
			continue
		}
		thr, err := datavol.MultisiteThroughput(smp, testerPins, bufferBits, testerHz)
		note := ""
		if err != nil {
			note = "per-pin depth exceeds buffer: mid-test reload required"
			fmt.Printf("  %-4d %-12d —      —             %s\n", smp.TAMWidth, smp.Time, note)
			continue
		}
		perHour := thr * 3600
		if perHour > bestThr {
			bestW, bestThr = smp.TAMWidth, perHour
		}
		fmt.Printf("  %-4d %-12d %-6d %-13.0f\n", smp.TAMWidth, smp.Time, testerPins/smp.TAMWidth, perHour)
	}

	eff, err := repro.PickEffectiveWidth(sweep, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest throughput:   W=%d (%.0f dies/hour)\n", bestW, bestThr)
	fmt.Printf("min testing time:  W=%d (%d cycles)\n", sweep.MinTimeWidth, sweep.MinTime)
	fmt.Printf("cost-effective γ=0.5: W=%d (C=%.3f)\n", eff.TAMWidth, eff.CostMin)
	fmt.Println("\nthe throughput-optimal width sits well below the time-optimal one:")
	fmt.Println("halving W doubles the sites but costs less than 2x in testing time,")
	fmt.Println("until the per-pin buffer or the T(W) staircase flattens out.")
}
