// Command socserved serves the repro framework over HTTP: upload SOC test
// descriptions (.soc text or JSON), schedule them (single runs, grid-swept
// best, or many at once via /v1/batch), run TAM width sweeps as
// cancellable async jobs, pick effective widths, and render Gantt SVGs.
// Responses are byte-identical to the library's direct Planner answers,
// and repeat schedule requests are served from a content-addressed result
// cache (hit/miss/eviction counters on /metrics).
//
// Usage:
//
//	socserved [-addr :8080] [-planners 32] [-job-workers N]
//	          [-job-queue 64] [-jobs-retained 256] [-queue-wait 30s]
//	          [-max-concurrent 64] [-max-timeout 60s] [-cache-bytes 67108864]
//	          [-preload all] [-quiet] [-pprof]
//
// See the README's "Running as a service" section for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	// Registers the profiling handlers on http.DefaultServeMux; they are
	// only reachable when -pprof mounts that mux under /debug/pprof/.
	_ "net/http/pprof"

	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		planners  = flag.Int("planners", service.DefaultPlannerCapacity, "max Planners held in the LRU (one per SOC fingerprint)")
		workers   = flag.Int("job-workers", runtime.GOMAXPROCS(0), "async job worker pool size")
		queue     = flag.Int("job-queue", service.DefaultJobQueue, "max queued async jobs before 429")
		retained  = flag.Int("jobs-retained", service.DefaultJobRetained, "max finished jobs retained for polling")
		queueWait = flag.Duration("queue-wait", service.DefaultJobQueueWait, "fail async jobs still queued after this long (negative: no deadline)")
		maxConc   = flag.Int("max-concurrent", service.DefaultMaxConcurrent, "max scheduling requests in flight before shedding with 429")
		maxTO     = flag.Duration("max-timeout", service.DefaultMaxTimeout, "cap on per-request deadlines (params.timeoutMs may shorten, never extend)")
		cacheB    = flag.Int64("cache-bytes", service.DefaultCacheBytes, "result cache capacity in stored document bytes")
		preload   = flag.String("preload", "all", "comma-separated built-in SOCs to register at startup (\"all\", \"\" for none)")
		quiet     = flag.Bool("quiet", false, "suppress request logging")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "socserved: ", log.LstdFlags)
	var reqLog *log.Logger
	if !*quiet {
		reqLog = logger
	}
	var names []string
	if *preload != "" {
		names = strings.Split(*preload, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}
	svc, err := service.New(service.Config{
		PlannerCapacity: *planners,
		JobWorkers:      *workers,
		JobQueue:        *queue,
		JobRetained:     *retained,
		JobQueueWait:    *queueWait,
		MaxConcurrent:   *maxConc,
		MaxTimeout:      *maxTO,
		CacheBytes:      *cacheB,
		Preload:         names,
		Logger:          reqLog,
	})
	if err != nil {
		logger.Fatal(err)
	}

	handler := svc.Handler()
	if *pprofOn {
		root := http.NewServeMux()
		root.Handle("/debug/pprof/", http.DefaultServeMux)
		root.Handle("/", handler)
		handler = root
		logger.Print("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		logger.Printf("listening on %s (job workers: %d, planner LRU: %d)", *addr, *workers, *planners)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Print("shutting down")
	svc.BeginDrain() // flip /readyz to 503 so the load balancer stops routing here
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	svc.Close() // cancels running sweep jobs and drains the pool
}
