// Command socregress replays the frozen scenario corpus (package corpus)
// and diffs every output layer — schedule bytes, width sweeps, data-volume
// curves, effective widths, lower bounds, and socserved HTTP responses —
// against the golden files committed under testdata/golden/. It is the
// repository's byte-stability gate: optimization PRs must leave every
// golden byte unchanged, or consciously re-bless with -update.
//
// Usage:
//
//	socregress                      # replay everything, fail on any drift
//	socregress -run 'd695|monster'  # only scenarios matching the regex
//	socregress -layer sweep         # only layers whose name contains "sweep"
//	socregress -update              # re-bless: rewrite the golden files
//	socregress -list                # print the corpus and exit
//
// Exit status: 0 when every replayed layer matches its golden file,
// 1 on drift, missing goldens, or stale golden directories, 2 on usage or
// replay errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/corpus"
)

func main() {
	var (
		goldenDir = flag.String("golden", "testdata/golden", "golden directory (run from the repository root)")
		update    = flag.Bool("update", false, "rewrite the golden files from this replay (re-bless)")
		runExpr   = flag.String("run", "", "only replay scenarios whose name matches this regex")
		layerSub  = flag.String("layer", "", "only check layers whose file name contains this substring (diff filter only: every layer is still replayed)")
		verbose   = flag.Bool("v", false, "print every layer, not just drifting ones")
		list      = flag.Bool("list", false, "list the corpus scenarios and exit")
	)
	flag.Parse()

	scenarios := corpus.All()
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-28s %s\n", sc.Name, sc.Notes)
		}
		fmt.Printf("%d scenarios × %d layers\n", len(scenarios), len(corpus.Layers()))
		return
	}

	var filter *regexp.Regexp
	if *runExpr != "" {
		var err error
		if filter, err = regexp.Compile(*runExpr); err != nil {
			fatalf(2, "socregress: bad -run regex: %v", err)
		}
	}

	selected := scenarios[:0:0]
	for _, sc := range scenarios {
		if filter == nil || filter.MatchString(sc.Name) {
			selected = append(selected, sc)
		}
	}
	if len(selected) == 0 {
		fatalf(2, "socregress: -run %q matches no scenario", *runExpr)
	}

	var layers []string
	for _, l := range corpus.Layers() {
		if *layerSub == "" || strings.Contains(l, *layerSub) {
			layers = append(layers, l)
		}
	}
	if len(layers) == 0 {
		fatalf(2, "socregress: -layer %q matches no layer", *layerSub)
	}

	drift, checked := 0, 0
	for _, sc := range selected {
		got, err := corpus.Replay(sc)
		if err != nil {
			fatalf(2, "socregress: %v", err)
		}
		dir := filepath.Join(*goldenDir, sc.Name)
		if *update {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatalf(2, "socregress: %v", err)
			}
		}
		for _, layer := range layers {
			checked++
			path := filepath.Join(dir, layer)
			if *update {
				if err := os.WriteFile(path, got[layer], 0o644); err != nil {
					fatalf(2, "socregress: %v", err)
				}
				if *verbose {
					fmt.Printf("BLESS %s\n", path)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				drift++
				fmt.Printf("MISSING %-28s %-24s (run `go run ./cmd/socregress -update` to bless)\n", sc.Name, layer)
				continue
			}
			if d := corpus.Diff(want, got[layer]); d != "" {
				drift++
				fmt.Printf("DRIFT   %-28s %-24s\n%s\n", sc.Name, layer, indent(d))
			} else if *verbose {
				fmt.Printf("OK      %-28s %s\n", sc.Name, layer)
			}
		}
	}

	// Whole-corpus runs also police stale golden directories, so a renamed
	// or deleted scenario cannot leave unchecked bytes behind.
	if filter == nil && *layerSub == "" {
		for _, name := range corpus.StaleDirs(*goldenDir) {
			if *update {
				if err := os.RemoveAll(filepath.Join(*goldenDir, name)); err != nil {
					fatalf(2, "socregress: %v", err)
				}
				fmt.Printf("REMOVED stale golden dir %s\n", name)
			} else {
				drift++
				fmt.Printf("STALE   %-28s (no such scenario; -update removes it)\n", name)
			}
		}
	}

	if *update {
		fmt.Printf("socregress: blessed %d scenario(s) × %d layer(s) under %s\n", len(selected), len(layers), *goldenDir)
		return
	}
	if drift > 0 {
		fatalf(1, "socregress: %d of %d golden checks drifted", drift, checked)
	}
	fmt.Printf("socregress: %d scenario(s) × %d layer(s): all %d golden checks match\n", len(selected), len(layers), checked)
}

func indent(s string) string {
	return "        " + strings.ReplaceAll(s, "\n", "\n        ")
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
