// Command soctest schedules one SOC test description and reports the
// result: SOC testing time, per-core TAM assignments, constraint outcomes,
// and optionally an ASCII Gantt chart, an SVG plot, or CSV rows.
//
// Usage:
//
//	soctest -soc d695 -w 32                          # built-in benchmark
//	soctest -file mychip.soc -w 48 -gantt            # .soc file + Gantt
//	soctest -soc d695 -w 64 -preempt 2 -powerfactor 110
//	soctest -soc p93791like -w 48 -svg out.svg -csv out.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/lb"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/schedio"
	"repro/internal/soc"
	"repro/internal/socfile"
	"repro/internal/tamsim"
	"repro/internal/wrapper"
	"repro/internal/wrapperrtl"

	// Register the search backends for -backend rectpack /
	// preempt-rectpack / anneal (and as portfolio racers).
	_ "repro/internal/anneal"
	_ "repro/internal/rectpack"
)

func main() {
	var (
		socName     = flag.String("soc", "", "built-in benchmark SOC (d695, p22810like, p34392like, p93791like, demo8)")
		file        = flag.String("file", "", "path to a .soc description (alternative to -soc)")
		w           = flag.Int("w", 32, "total SOC TAM width W")
		percent     = flag.Int("alpha", 0, "preferred-width percent α (0 = sweep the grid; classic backend only)")
		delta       = flag.Int("delta", -1, "Pareto promotion δ (-1 = sweep the grid; classic backend only)")
		backend     = flag.String("backend", "", "scheduling backend: "+strings.Join(sched.Backends(), ", ")+" (default classic)")
		preempt     = flag.Int("preempt", 0, "preemption budget for larger cores (0 = non-preemptive)")
		powerFactor = flag.Int("powerfactor", 0, "power budget as % of the largest test power (0 = unconstrained)")
		gantt       = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		ganttCols   = flag.Int("ganttcols", 100, "Gantt chart width in characters")
		svgPath     = flag.String("svg", "", "write an SVG plot of the packed bin")
		csvPath     = flag.String("csv", "", "write per-core assignments as CSV")
		jsonPath    = flag.String("json", "", "write the schedule as versioned JSON (schedio format)")
		verilogDir  = flag.String("verilog", "", "write one structural wrapper Verilog module per core into this directory")
		simulate    = flag.Bool("sim", false, "replay the schedule on the simulated ATE/TAM")
		verbose     = flag.Bool("v", false, "print per-core assignments")
	)
	flag.Parse()

	s, err := loadSOC(*socName, *file)
	if err != nil {
		fatal(err)
	}

	params := sched.Params{TAMWidth: *w}
	if *preempt > 0 {
		mp, err := sched.LargerCorePreemptions(s, sched.DefaultMaxWidth, *preempt)
		if err != nil {
			fatal(err)
		}
		params.MaxPreemptions = mp
	}
	if *powerFactor > 0 {
		params.PowerMax = sched.DefaultPowerBudget(s, *powerFactor)
	}

	var schedule *sched.Schedule
	switch {
	case *backend != "" && *backend != sched.DefaultBackend:
		params.Backend = *backend
		var opt *sched.Optimizer
		if opt, err = sched.New(s, sched.DefaultMaxWidth); err == nil {
			schedule, err = opt.ScheduleBackend(context.Background(), params)
		}
	case *percent > 0 && *delta >= 0:
		params.Percent, params.Delta = *percent, *delta
		schedule, err = sched.Run(s, params)
	default:
		var percents, deltas []int
		if *percent > 0 {
			percents = []int{*percent}
		}
		if *delta >= 0 {
			deltas = []int{*delta}
		}
		schedule, err = sched.SweepBest(s, params, percents, deltas)
	}
	if err != nil {
		fatal(err)
	}
	if err := sched.Verify(s, schedule); err != nil {
		fatal(fmt.Errorf("schedule failed verification: %v", err))
	}

	bound, err := lb.Compute(s, *w, sched.DefaultMaxWidth)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("SOC %s  W=%d\n", s.Name, *w)
	fmt.Printf("testing time  %d cycles (lower bound %d, +%.2f%%)\n",
		schedule.Makespan, bound.Value(),
		100*float64(schedule.Makespan-bound.Value())/float64(bound.Value()))
	fmt.Printf("TAM idle area %d wire-cycles (utilization %.1f%%)\n",
		schedule.IdleArea(), 100*schedule.Utilization())
	fmt.Printf("data volume   %d bits (per-pin depth %d)\n", schedule.DataVolume(), schedule.Makespan)
	shownBackend := schedule.Params.Backend
	if shownBackend == "" {
		shownBackend = sched.DefaultBackend
	}
	fmt.Printf("params        backend=%s alpha=%d delta=%d powermax=%d\n",
		shownBackend, schedule.Params.Percent, schedule.Params.Delta, schedule.Params.PowerMax)

	if *verbose {
		t := &report.Table{
			Headers: []string{"core", "name", "width", "start", "end", "T(w)", "pieces", "preempts"},
		}
		for _, c := range s.Cores {
			a := schedule.Assignments[c.ID]
			t.AddRow(c.ID, c.Name, a.Width, a.Start(), a.End(), a.BaseTime, len(a.Pieces), a.Preemptions)
		}
		fmt.Println()
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *gantt {
		fmt.Println()
		if err := report.Gantt(os.Stdout, schedule, *ganttCols); err != nil {
			fatal(err)
		}
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		if err := report.SVG(f, schedule); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		var rows [][]string
		for _, c := range s.Cores {
			a := schedule.Assignments[c.ID]
			for _, p := range a.Pieces {
				rows = append(rows, []string{
					fmt.Sprint(c.ID), c.Name, fmt.Sprint(a.Width),
					fmt.Sprint(p.Start), fmt.Sprint(p.End), fmt.Sprint(p.Wires),
				})
			}
		}
		if err := report.WriteCSV(f, []string{"core", "name", "width", "start", "end", "wires"}, rows); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		if err := schedio.SaveFile(*jsonPath, schedule); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *verilogDir != "" {
		if err := os.MkdirAll(*verilogDir, 0o755); err != nil {
			fatal(err)
		}
		for _, c := range s.Cores {
			a := schedule.Assignments[c.ID]
			d, err := wrapper.DesignWrapper(c, a.Width)
			if err != nil {
				fatal(err)
			}
			m, err := wrapperrtl.Elaborate(c, d)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*verilogDir, fmt.Sprintf("wrapper_%s.v", c.Name))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := m.WriteVerilog(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d wrapper modules to %s\n", len(s.Cores), *verilogDir)
	}
	if *simulate {
		res, err := tamsim.Simulate(s, schedule, tamsim.Options{})
		if err != nil {
			fatal(fmt.Errorf("simulation: %v", err))
		}
		fmt.Printf("simulation    makespan=%d, %d/%d cores bit-verified, payload %d bits (%.2fx of tester memory)\n",
			res.MeasuredMakespan, res.BitLevelCores, len(res.Cores), res.PayloadBits, res.PayloadEfficiency())
	}
}

func loadSOC(name, file string) (*soc.SOC, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("give either -soc or -file, not both")
	case file != "":
		return socfile.ParseFile(file)
	case name != "":
		return bench.ByName(name)
	default:
		return nil, fmt.Errorf("give -soc <benchmark> or -file <path.soc>")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soctest:", err)
	os.Exit(1)
}
