// Command socgen writes benchmark or synthetic SOC test descriptions as
// .soc files (the grammar of package socfile), so they can be inspected,
// edited, and fed back to soctest.
//
// Usage:
//
//	socgen -soc d695 -o d695.soc          # dump a built-in benchmark
//	socgen -all -dir ./socs               # dump all benchmarks
//	socgen -random -cores 24 -seed 7      # generate a random SOC
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/soc"
	"repro/internal/socfile"
)

func main() {
	var (
		socName = flag.String("soc", "", "built-in SOC to dump (d695, p22810like, p34392like, p93791like, demo8)")
		out     = flag.String("o", "", "output file (default: <name>.soc)")
		all     = flag.Bool("all", false, "dump every built-in benchmark")
		dir     = flag.String("dir", ".", "output directory for -all")
		random  = flag.Bool("random", false, "generate a random synthetic SOC instead")
		cores   = flag.Int("cores", 16, "core count for -random")
		seed    = flag.Int64("seed", 1, "random seed for -random")
	)
	flag.Parse()

	switch {
	case *all:
		for _, s := range bench.All() {
			path := filepath.Join(*dir, s.Name+".soc")
			if err := socfile.WriteFile(path, s); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	case *random:
		s := randomSOC(*cores, *seed)
		path := *out
		if path == "" {
			path = s.Name + ".soc"
		}
		if err := socfile.WriteFile(path, s); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	case *socName != "":
		s, err := bench.ByName(*socName)
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" {
			path = s.Name + ".soc"
		}
		if err := socfile.WriteFile(path, s); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// randomSOC generates a plausible synthetic SOC: a mix of combinational
// glue, small and large scan cores, and a couple of BIST memories.
func randomSOC(n int, seed int64) *soc.SOC {
	rng := rand.New(rand.NewSource(seed))
	s := &soc.SOC{Name: fmt.Sprintf("rand%d", n)}
	for id := 1; id <= n; id++ {
		c := &soc.Core{
			ID:   id,
			Name: fmt.Sprintf("core%d", id),
			Test: soc.Test{BISTEngine: -1},
		}
		switch k := rng.Intn(10); {
		case k < 2: // combinational glue
			c.Inputs = 20 + rng.Intn(120)
			c.Outputs = 10 + rng.Intn(80)
			c.Test.Patterns = 30 + rng.Intn(300)
		case k < 4: // BIST memory
			c.Inputs = 8 + rng.Intn(20)
			c.Outputs = 4 + rng.Intn(16)
			nc := 1 + rng.Intn(4)
			for j := 0; j < nc; j++ {
				c.ScanChains = append(c.ScanChains, 80+rng.Intn(200))
			}
			c.Test.Patterns = 100 + rng.Intn(300)
			c.Test.Kind = soc.BISTTest
			c.Test.BISTEngine = rng.Intn(2)
		case k < 8: // small-to-medium scan core
			c.Inputs = 15 + rng.Intn(60)
			c.Outputs = 10 + rng.Intn(50)
			nc := 2 + rng.Intn(10)
			for j := 0; j < nc; j++ {
				c.ScanChains = append(c.ScanChains, 30+rng.Intn(150))
			}
			c.Test.Patterns = 50 + rng.Intn(250)
		default: // large scan core
			c.Inputs = 30 + rng.Intn(80)
			c.Outputs = 25 + rng.Intn(70)
			nc := 12 + rng.Intn(28)
			l := 90 + rng.Intn(140)
			for j := 0; j < nc; j++ {
				c.ScanChains = append(c.ScanChains, l+rng.Intn(8))
			}
			c.Test.Patterns = 120 + rng.Intn(320)
		}
		s.Cores = append(s.Cores, c)
	}
	// A couple of precedence edges: memories (BIST) before the last core.
	for _, c := range s.Cores {
		if c.Test.Kind == soc.BISTTest && c.ID != n {
			s.Precedences = append(s.Precedences, soc.Precedence{Before: c.ID, After: n})
		}
	}
	if err := s.Validate(); err != nil {
		panic(err) // generator invariant
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socgen:", err)
	os.Exit(1)
}
