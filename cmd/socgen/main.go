// Command socgen writes benchmark or synthetic SOC test descriptions as
// .soc files (the grammar of package socfile), so they can be inspected,
// edited, and fed back to soctest.
//
// Usage:
//
//	socgen -soc d695 -o d695.soc          # dump a built-in benchmark
//	socgen -all -dir ./socs               # dump all benchmarks
//	socgen -random -cores 24 -seed 7      # generate a random SOC
//	socgen -random -cores 40 -profile longchain -hier 30 -power 120
//
// Random generation is deterministic: the same flags always produce the
// same bytes (the generator is bench.Synth, shared with the regression
// corpus in internal/corpus).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/socfile"
)

func main() {
	var (
		socName = flag.String("soc", "", "built-in SOC to dump (d695, p22810like, p34392like, p93791like, demo8)")
		out     = flag.String("o", "", "output file (default: <name>.soc)")
		all     = flag.Bool("all", false, "dump every built-in benchmark")
		dir     = flag.String("dir", ".", "output directory for -all")
		random  = flag.Bool("random", false, "generate a random synthetic SOC instead")
		cores   = flag.Int("cores", 16, "core count for -random")
		seed    = flag.Int64("seed", 1, "random seed for -random")
		name    = flag.String("name", "", "SOC name for -random (default rand<cores>)")
		profile = flag.String("profile", "mixed", "core mix for -random: mixed, combo, longchain")
		engines = flag.Int("bistengines", 2, "distinct BIST engines for -random (1 = maximum conflict, -1 = no BIST)")
		hier    = flag.Int("hier", 0, "percent chance each core is nested under a lower-ID parent")
		power   = flag.Int("power", 0, "SOC power budget as percent of the largest single-test power (0 = unconstrained)")
		prec    = flag.Int("prec", 0, "extra random precedence edges")
		conc    = flag.Int("conc", 0, "extra random concurrency (mutual-exclusion) pairs")
	)
	flag.Parse()

	switch {
	case *all:
		for _, s := range bench.All() {
			path := filepath.Join(*dir, s.Name+".soc")
			if err := socfile.WriteFile(path, s); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	case *random:
		s := bench.Synth(bench.SynthConfig{
			Name:               *name,
			Cores:              *cores,
			Seed:               *seed,
			Profile:            *profile,
			BISTEngines:        *engines,
			HierarchyPct:       *hier,
			PowerBudgetPct:     *power,
			ExtraPrecedences:   *prec,
			ExtraConcurrencies: *conc,
		})
		path := *out
		if path == "" {
			path = s.Name + ".soc"
		}
		if err := socfile.WriteFile(path, s); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	case *socName != "":
		s, err := bench.ByName(*socName)
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" {
			path = s.Name + ".soc"
		}
		if err := socfile.WriteFile(path, s); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socgen:", err)
	os.Exit(1)
}
