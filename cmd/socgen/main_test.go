package main

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/socfile"
)

// socBytes serializes a generated SOC the way socgen writes it to disk.
func socBytes(t *testing.T, cfg bench.SynthConfig) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := socfile.Write(&buf, bench.Synth(cfg)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRandomDeterministic pins the -random contract: the same seed and
// knobs always produce byte-identical .soc output, and different seeds
// diverge.
func TestRandomDeterministic(t *testing.T) {
	configs := []bench.SynthConfig{
		{Cores: 16, Seed: 7},
		{Cores: 4, Seed: 3},
		{Cores: 24, Seed: 11, Profile: "longchain", HierarchyPct: 40},
		{Cores: 20, Seed: 5, Profile: "combo", PowerBudgetPct: 120, ExtraPrecedences: 4, ExtraConcurrencies: 4},
		{Cores: 18, Seed: 9, BISTEngines: 1, PowerValues: true},
	}
	for _, cfg := range configs {
		a, b := socBytes(t, cfg), socBytes(t, cfg)
		if !bytes.Equal(a, b) {
			t.Errorf("config %+v: two generations differ", cfg)
		}
	}
	if bytes.Equal(socBytes(t, bench.SynthConfig{Cores: 16, Seed: 7}),
		socBytes(t, bench.SynthConfig{Cores: 16, Seed: 8})) {
		t.Error("seeds 7 and 8 generated identical SOCs")
	}
}

// TestRandomRoundTrips checks that generated output re-parses to the same
// bytes through the socfile grammar.
func TestRandomRoundTrips(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		raw := socBytes(t, bench.SynthConfig{Cores: 12, Seed: seed, HierarchyPct: 25, ExtraConcurrencies: 3})
		s, err := socfile.Parse(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("seed %d: generated SOC does not re-parse: %v", seed, err)
		}
		var again bytes.Buffer
		if err := socfile.Write(&again, s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again.Bytes()) {
			t.Errorf("seed %d: parse/write round trip changed the bytes", seed)
		}
	}
}

// TestRandomSchedules checks that generated SOCs, across every profile and
// constraint knob, schedule without error.
func TestRandomSchedules(t *testing.T) {
	configs := []bench.SynthConfig{
		{Cores: 4, Seed: 2},
		{Cores: 16, Seed: 7, Profile: "combo"},
		{Cores: 8, Seed: 4, Profile: "longchain"},
		{Cores: 12, Seed: 6, BISTEngines: 1, HierarchyPct: 30, ExtraPrecedences: 3, ExtraConcurrencies: 3},
		{Cores: 10, Seed: 8, PowerValues: true, PowerBudgetPct: 110},
	}
	for _, cfg := range configs {
		s := bench.Synth(cfg)
		sch, err := sched.Run(s, sched.Params{TAMWidth: 16})
		if err != nil {
			t.Errorf("config %+v: schedule failed: %v", cfg, err)
			continue
		}
		if err := sched.Verify(s, sch); err != nil {
			t.Errorf("config %+v: schedule fails verification: %v", cfg, err)
		}
	}
}
