package main

import (
	"strings"
	"testing"
)

func mkReport(pairs ...any) benchJSONReport {
	rep := benchJSONReport{Schema: "socbench-benchjson/v1"}
	for i := 0; i < len(pairs); i += 2 {
		rep.Benchmarks = append(rep.Benchmarks, benchJSONResult{
			Name:    pairs[i].(string),
			NsPerOp: int64(pairs[i+1].(int)),
		})
	}
	return rep
}

func TestCompareBenchReports(t *testing.T) {
	base := mkReport("A", 1000, "B", 2000, "C", 500)

	t.Run("within-threshold", func(t *testing.T) {
		table, failures := compareBenchReports(base, mkReport("A", 1200, "B", 1500, "C", 500), 25)
		if len(failures) != 0 {
			t.Fatalf("unexpected failures: %v", failures)
		}
		for _, name := range []string{"A", "B", "C"} {
			if !strings.Contains(table, name) {
				t.Errorf("delta table missing %s:\n%s", name, table)
			}
		}
	})

	t.Run("regression-fails", func(t *testing.T) {
		_, failures := compareBenchReports(base, mkReport("A", 1300, "B", 2000, "C", 500), 25)
		if len(failures) != 1 || !strings.Contains(failures[0], "A") {
			t.Fatalf("want exactly one failure for A (+30%%), got %v", failures)
		}
	})

	t.Run("boundary-is-allowed", func(t *testing.T) {
		// Exactly +25% is within the gate; it must not fail.
		_, failures := compareBenchReports(base, mkReport("A", 1250, "B", 2000, "C", 500), 25)
		if len(failures) != 0 {
			t.Fatalf("+25.0%% should pass a 25%% gate, got %v", failures)
		}
	})

	t.Run("missing-tracked-benchmark-fails", func(t *testing.T) {
		_, failures := compareBenchReports(base, mkReport("A", 1000, "C", 500), 25)
		if len(failures) != 1 || !strings.Contains(failures[0], "B") {
			t.Fatalf("want a failure for the vanished B, got %v", failures)
		}
	})

	t.Run("new-benchmark-is-informational", func(t *testing.T) {
		table, failures := compareBenchReports(base, mkReport("A", 1000, "B", 2000, "C", 500, "D", 42), 25)
		if len(failures) != 0 {
			t.Fatalf("a new benchmark must not fail the gate: %v", failures)
		}
		if !strings.Contains(table, "D") || !strings.Contains(table, "NEW") {
			t.Errorf("new benchmark D not surfaced in the table:\n%s", table)
		}
	})

	t.Run("improvements-pass", func(t *testing.T) {
		_, failures := compareBenchReports(base, mkReport("A", 100, "B", 200, "C", 50), 25)
		if len(failures) != 0 {
			t.Fatalf("improvements must pass: %v", failures)
		}
	})
}

func TestLoadBenchReportBaseline(t *testing.T) {
	// The committed baseline the CI gate compares against must stay
	// loadable and non-empty.
	rep, err := loadBenchReport("../../BENCH_3.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		t.Fatal("BENCH_3.json tracks no benchmarks")
	}
	for _, b := range rep.Benchmarks {
		if b.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op %d", b.Name, b.NsPerOp)
		}
	}
}
