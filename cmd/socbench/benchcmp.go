package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// loadBenchReport reads a -benchjson file (the socbench-benchjson/v1
// schema committed as BENCH_*.json baselines).
func loadBenchReport(path string) (benchJSONReport, error) {
	var rep benchJSONReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != "socbench-benchjson/v1" {
		return rep, fmt.Errorf("%s: unknown schema %q", path, rep.Schema)
	}
	return rep, nil
}

// compareBenchReports diffs current ns/op against a baseline. It returns a
// human-readable delta table and the list of gate failures: any benchmark
// tracked by the baseline that regressed more than maxPct percent, or that
// vanished from the current report. New benchmarks (in current only) are
// listed informationally and never fail the gate.
func compareBenchReports(base, cur benchJSONReport, maxPct float64) (table string, failures []string) {
	curByName := make(map[string]benchJSONResult, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for _, b := range base.Benchmarks {
		nb, ok := curByName[b.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-28s %14d %14s %9s\n", b.Name, b.NsPerOp, "-", "GONE")
			failures = append(failures, fmt.Sprintf("%s: tracked by the baseline but missing from the current report", b.Name))
			continue
		}
		delete(curByName, b.Name)
		if b.NsPerOp <= 0 {
			// A zero baseline would make every delta read +0.0% and
			// silently un-gate the benchmark; treat it as a broken file.
			fmt.Fprintf(&sb, "%-28s %14d %14d %9s\n", b.Name, b.NsPerOp, nb.NsPerOp, "BAD")
			failures = append(failures, fmt.Sprintf("%s: baseline ns/op %d is not positive (corrupt baseline file?)", b.Name, b.NsPerOp))
			continue
		}
		delta := 100 * (float64(nb.NsPerOp) - float64(b.NsPerOp)) / float64(b.NsPerOp)
		mark := ""
		if delta > maxPct {
			mark = "  << REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %d -> %d ns/op (%+.1f%%, limit +%.0f%%)", b.Name, b.NsPerOp, nb.NsPerOp, delta, maxPct))
		}
		fmt.Fprintf(&sb, "%-28s %14d %14d %+8.1f%%%s\n", b.Name, b.NsPerOp, nb.NsPerOp, delta, mark)
	}
	for _, b := range cur.Benchmarks {
		if _, ok := curByName[b.Name]; ok {
			fmt.Fprintf(&sb, "%-28s %14s %14d %9s\n", b.Name, "-", b.NsPerOp, "NEW")
		}
	}
	return sb.String(), failures
}

// runBenchCmp is the -benchcmp gate: compare newPath against basePath and
// exit non-zero when any tracked benchmark regressed past maxPct percent.
func runBenchCmp(basePath, newPath string, maxPct float64) {
	base, err := loadBenchReport(basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadBenchReport(newPath)
	if err != nil {
		fatal(err)
	}
	table, failures := compareBenchReports(base, cur, maxPct)
	fmt.Printf("socbench: %s vs baseline %s (gate: +%.0f%% ns/op)\n%s", newPath, basePath, maxPct, table)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "socbench: benchmark regression gate failed:\n")
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("socbench: benchmark gate passed")
}
