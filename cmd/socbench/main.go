// Command socbench regenerates the DAC 2002 paper's evaluation artifacts
// on the repository's benchmark SOCs: Table 1 (scheduling regimes), Table 2
// (effective TAM widths), Fig. 1 (testing-time staircase), Fig. 9 (T/D/cost
// versus W), and the ablations DESIGN.md calls out.
//
// Usage:
//
//	socbench -backends                # every registered backend head-to-head
//	socbench -table 1                 # Table 1 for all four SOCs
//	socbench -table 2 -soc d695       # Table 2 block for one SOC
//	socbench -fig 1                   # Fig. 1 staircase (CSV)
//	socbench -fig 9a -soc p22810like  # Fig. 9(a): T vs W (CSV)
//	socbench -ablation delta          # δ-heuristic ablation on p34392like
//	socbench -ablation baseline       # flexible vs fixed-width vs shelves
//	socbench -ablation heuristics     # idle-insertion / widening matrix
//	socbench -all                     # everything (the EXPERIMENTS.md data)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/corpus"
	"repro/internal/datavol"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/soc"

	// Register the search backends for the -backends comparison (and as
	// portfolio racers).
	_ "repro/internal/anneal"
	_ "repro/internal/rectpack"
)

func main() {
	var (
		table     = flag.String("table", "", "regenerate a table: 1 or 2")
		backends  = flag.Bool("backends", false, "compare every registered scheduler backend on the benchmark SOCs")
		fig       = flag.String("fig", "", "regenerate a figure: 1, 9a, 9b, 9c, 9d")
		ablation  = flag.String("ablation", "", "run an ablation: delta, baseline, heuristics")
		socName   = flag.String("soc", "", "restrict to one SOC (default: all four)")
		quick     = flag.Bool("quick", false, "smaller sweep ranges (coarser widths, reduced grid)")
		workers   = flag.Int("workers", 0, "concurrent scheduler runs per sweep (0 = all CPUs, 1 = sequential)")
		all       = flag.Bool("all", false, "regenerate everything")
		benchjson = flag.String("benchjson", "", "time the representative workloads and write JSON to this path (\"-\" = stdout); see BENCH_2.json")
		benchnote = flag.String("benchnote", "", "free-form note embedded in the -benchjson output (e.g. the baseline being compared against)")
		benchcmp  = flag.String("benchcmp", "", "baseline benchjson file to gate against; compares -benchnew (or the file just written by -benchjson) and exits 1 on regression")
		benchnew  = flag.String("benchnew", "", "current benchjson file for -benchcmp (default: the -benchjson path)")
		benchmax  = flag.Float64("benchmaxpct", 25, "max tolerated ns/op regression percent for the -benchcmp gate")
		obsTables = flag.Bool("obs", false, "schedule every corpus scenario with every backend and print the per-backend and per-stage latency tables")
	)
	flag.Parse()

	socs, err := pickSOCs(*socName)
	if err != nil {
		fatal(err)
	}

	ran := false
	if *benchjson != "" {
		ran = true
		runBenchJSON(*benchjson, *benchnote)
	}
	if *benchcmp != "" {
		ran = true
		cur := *benchnew
		if cur == "" {
			cur = *benchjson
		}
		if cur == "" || cur == "-" {
			fatal(fmt.Errorf("-benchcmp needs -benchnew (or a file-backed -benchjson) to compare against"))
		}
		runBenchCmp(*benchcmp, cur, *benchmax)
	}
	if *obsTables {
		ran = true
		runObs(*quick, *workers)
	}
	if *all || *backends {
		ran = true
		runBackends(socs, *quick, *workers)
	}
	if *all || *table == "1" {
		ran = true
		runTable1(socs, *workers)
	}
	if *all || *table == "2" {
		ran = true
		runTable2(socs, *quick, *workers)
	}
	if *all || *fig == "1" {
		ran = true
		runFig1()
	}
	if *all || *fig == "9a" || *fig == "9b" || *fig == "9c" || *fig == "9d" {
		ran = true
		which := *fig
		if *all {
			which = ""
		}
		runFig9(socs, which, *quick, *workers)
	}
	if *all || *ablation == "delta" {
		ran = true
		runAblationDelta(*workers)
	}
	if *all || *ablation == "baseline" {
		ran = true
		runAblationBaseline(socs, *workers)
	}
	if *all || *ablation == "heuristics" {
		ran = true
		runAblationHeuristics(socs, *workers)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// benchJSONReport is the schema of the -benchjson output (and of the
// committed BENCH_2.json perf-trajectory baselines).
type benchJSONReport struct {
	Schema     string            `json:"schema"`
	Go         string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Note       string            `json:"note,omitempty"`
	Benchmarks []benchJSONResult `json:"benchmarks"`
}

type benchJSONResult struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	NsPerOp    int64  `json:"ns_per_op"`
}

// runBenchJSON times the representative workloads (the same shapes as the
// repository's go-test benchmarks, sequential so the numbers measure the
// algorithms rather than the host's core count) and writes them as JSON.
func runBenchJSON(path, note string) {
	grid5 := []int{1, 5, 10, 20, 40}
	grid3 := []int{0, 1, 2}
	workloads := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"DataVolRunD695Workers1", func(b *testing.B) {
			s := bench.D695()
			for i := 0; i < b.N; i++ {
				sw, err := datavol.Run(s, datavol.Config{
					WidthLo: 8, WidthHi: 56,
					Percents: grid5, Deltas: grid3,
					Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if sw.MinVolume <= 0 {
					b.Fatal("no volume minimum")
				}
			}
		}},
		{"SweepBestD695W32", func(b *testing.B) {
			s := bench.D695()
			opt, err := sched.New(s, sched.DefaultMaxWidth)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.SweepBest(sched.Params{TAMWidth: 32, Workers: 1}, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ScheduleD695Rectpack", func(b *testing.B) {
			benchBackend(b, "rectpack", 0)
		}},
		{"ScheduleD695PreemptRectpack", func(b *testing.B) {
			benchBackend(b, "preempt-rectpack", 2)
		}},
		{"ScheduleD695Anneal", func(b *testing.B) {
			benchBackend(b, "anneal", 0)
		}},
		{"ScheduleD695Portfolio", func(b *testing.B) {
			benchBackend(b, "portfolio", 0)
		}},
		{"SingleScheduleP93791W48", func(b *testing.B) {
			s := bench.P93791Like()
			opt, err := sched.New(s, sched.DefaultMaxWidth)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Run(sched.Params{TAMWidth: 48, Percent: 10, Delta: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ParetoSetsP93791", func(b *testing.B) {
			s := bench.P93791Like()
			for i := 0; i < b.N; i++ {
				if _, err := sched.New(s, sched.DefaultMaxWidth); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ServiceScheduleD695", func(b *testing.B) {
			// One full socserved round-trip per op against a warm Planner
			// registry (the same shape as BenchmarkServiceScheduleD695).
			svc, err := service.New(service.Config{Preload: []string{"d695"}})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()
			body, err := json.Marshal(map[string]any{
				"soc":    "d695",
				"params": service.ParamsJSON{TAMWidth: 32, Percent: 10, Delta: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			do := func() {
				resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("HTTP %d", resp.StatusCode)
				}
			}
			do() // warm up outside the timed region
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				do()
			}
		}},
		{"ServiceBatchColdD695", func(b *testing.B) {
			// One 8-width /v1/batch round-trip per op against a fresh
			// service each time, so every item is a cache miss.
			body := batchBody(b)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				svc, err := service.New(service.Config{Preload: []string{"d695"}})
				if err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(svc.Handler())
				b.StartTimer()
				postBatch(b, ts, body)
				b.StopTimer()
				ts.Close()
				svc.Close()
				b.StartTimer()
			}
		}},
		{"ServiceBatchWarmD695", func(b *testing.B) {
			// The identical batch against one long-lived service: after the
			// untimed warm-up, every op is served from the result cache.
			svc, err := service.New(service.Config{Preload: []string{"d695"}})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()
			body := batchBody(b)
			postBatch(b, ts, body)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				postBatch(b, ts, body)
			}
		}},
	}
	rep := benchJSONReport{
		Schema: "socbench-benchjson/v1",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Note:   note,
	}
	for _, w := range workloads {
		r := testing.Benchmark(w.fn)
		rep.Benchmarks = append(rep.Benchmarks, benchJSONResult{
			Name:       w.name,
			Iterations: r.N,
			NsPerOp:    r.NsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "socbench: %-24s %10d ns/op (%d iterations)\n", w.name, r.NsPerOp(), r.N)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// batchBody builds the 8-width d695 /v1/batch payload the batch
// workloads send (Workers: 1 per item, like every workload here).
func batchBody(b *testing.B) []byte {
	var items []map[string]any
	for w := 12; w <= 40; w += 4 {
		items = append(items, map[string]any{
			"soc":    "d695",
			"params": service.ParamsJSON{TAMWidth: w, Workers: 1},
		})
	}
	body, err := json.Marshal(map[string]any{"items": items, "workers": 1})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// postBatch sends one /v1/batch request and requires every item to land.
func postBatch(b *testing.B, ts *httptest.Server, body []byte) {
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d", resp.StatusCode)
	}
}

// benchBackend times one d695 W=32 run of a named registered backend
// through the registry dispatch path (Workers: 1, like every workload
// here, so racing backends run their legs sequentially). A non-zero
// preemptions budget keeps the preemptive backends from declining.
func benchBackend(b *testing.B, backend string, preemptions int) {
	s := bench.D695()
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	params := sched.Params{TAMWidth: 32, Workers: 1, Backend: backend}
	if preemptions > 0 {
		mp, err := opt.LargerCorePreemptions(preemptions)
		if err != nil {
			b.Fatal(err)
		}
		params.MaxPreemptions = mp
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.ScheduleBackend(ctx, params); err != nil {
			b.Fatal(err)
		}
	}
}

func pickSOCs(name string) ([]*soc.SOC, error) {
	if name == "" {
		return bench.All(), nil
	}
	s, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return []*soc.SOC{s}, nil
}

// runBackends races every registered scheduling backend on the benchmark
// SOCs and reports makespans and wall-clock per backend, plus the winner.
func runBackends(socs []*soc.SOC, quick bool, workers int) {
	widths := []int{16, 32, 48, 64}
	if quick {
		widths = []int{32}
	}
	names := sched.Backends()
	headers := []string{"SOC", "W"}
	for _, n := range names {
		headers = append(headers, n+" cycles", n+" ms")
	}
	headers = append(headers, "winner")
	t := &report.Table{
		Title:   "Scheduler backends: best makespan per backend (cycles, wall-clock ms)",
		Headers: headers,
	}
	for _, s := range socs {
		opt, err := sched.New(s, sched.DefaultMaxWidth)
		if err != nil {
			fatal(err)
		}
		for _, w := range widths {
			row := []any{s.Name, w}
			winner := ""
			var best int64
			for _, n := range names {
				params := sched.Params{TAMWidth: w, Workers: workers, Backend: n}
				// A backend outside its regime (preempt-rectpack without
				// budgets here) declines rather than competing.
				if b, err := sched.BackendByName(n); err == nil {
					if _, declined := sched.BackendDeclines(b, params); declined {
						row = append(row, "declined", "-")
						continue
					}
				}
				start := time.Now()
				sch, err := opt.ScheduleBackend(context.Background(), params)
				if err != nil {
					fatal(err)
				}
				row = append(row, sch.Makespan, time.Since(start).Milliseconds())
				if winner == "" || sch.Makespan < best {
					winner, best = n, sch.Makespan
				}
			}
			t.AddRow(append(row, winner)...)
		}
	}
	mustRender(t)
}

// runObs schedules every corpus scenario with every registered backend
// (telemetry on, registries reset first) and prints the per-backend and
// per-stage latency tables — the offline counterpart of the service's
// /metrics latency block. -quick restricts the sweep to the first eight
// scenarios.
func runObs(quick bool, workers int) {
	obs.ResetLatency()
	scenarios := corpus.All()
	if quick && len(scenarios) > 8 {
		scenarios = scenarios[:8]
	}
	names := sched.Backends()
	for _, sc := range scenarios {
		s := sc.Build()
		params, err := sc.ResolveParams(s)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sc.Name, err))
		}
		opt, err := sched.New(s, sched.DefaultMaxWidth)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sc.Name, err))
		}
		params.Workers = workers
		for _, n := range names {
			p := params
			p.Backend = n
			if _, err := opt.ScheduleBackend(context.Background(), p); err != nil {
				fatal(fmt.Errorf("%s/%s: %w", sc.Name, n, err))
			}
		}
	}
	fmt.Printf("telemetry over %d corpus scenarios x %d backends\n\n", len(scenarios), len(names))
	lat := obs.LatencySnapshot()
	mustRender(latencyTable("Per-backend scheduling latency", lat.Backends))
	fmt.Println()
	mustRender(latencyTable("Per-stage latency", lat.Stages))
}

// latencyTable renders one histogram registry snapshot, sorted by name.
func latencyTable(title string, hists map[string]obs.HistSnapshot) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"name", "count", "mean", "p50", "p90", "p99", "max"},
	}
	names := make([]string, 0, len(hists))
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		t.AddRow(n, h.Count, fmtNs(h.MeanNs), fmtNs(h.P50Ns), fmtNs(h.P90Ns), fmtNs(h.P99Ns), fmtNs(h.MaxNs))
	}
	return t
}

// fmtNs renders a nanosecond quantile human-readably. The ASCII "us"
// spelling keeps report.Table's byte-counted columns aligned.
func fmtNs(ns int64) string {
	return strings.ReplaceAll(time.Duration(ns).Round(time.Microsecond).String(), "µ", "u")
}

func runTable1(socs []*soc.SOC, workers int) {
	t := &report.Table{
		Title:   "Table 1: wrapper/TAM co-optimization and test scheduling (cycles)",
		Headers: []string{"SOC", "W", "lower bound", "non-preemptive", "preemptive", "preempt+power", "power budget"},
	}
	for _, s := range socs {
		rows, err := experiments.Table1(s, nil, nil, workers)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			t.AddRow(r.SOC, r.TAMWidth, r.LowerBound, r.NonPreemptive, r.Preemptive, r.PowerConstrained, r.PowerMax)
		}
	}
	mustRender(t)
}

func runTable2(socs []*soc.SOC, quick bool, workers int) {
	lo, hi := 4, 80
	if quick {
		lo, hi = 8, 72
	}
	for _, s := range socs {
		f9, err := experiments.Fig9Sweep(s, lo, hi, grid(quick), nil, workers)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.Table2(f9)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nTable 2 [%s]: T_min=%d at W=%d; D_min=%d bits at W=%d\n",
			res.SOC, res.MinTime, res.MinTimeWidth, res.MinVolume, res.MinVolumeWidth)
		t := &report.Table{
			Headers: []string{"gamma", "C_min", "W_eff", "T at W_eff", "D at W_eff"},
		}
		for _, r := range res.Rows {
			t.AddRow(fmt.Sprintf("%.2f", r.Gamma), fmt.Sprintf("%.3f", r.CostMin), r.WEff, r.TimeAtW, r.VolAtW)
		}
		mustRender(t)
	}
}

func runFig1() {
	s := bench.P93791Like()
	pts, err := experiments.Fig1(s, 6, 64)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Fig 1: testing time vs TAM width, p93791like core 6 (CSV)")
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{fmt.Sprint(p.Width), fmt.Sprint(p.Time), fmt.Sprint(p.Pareto)})
	}
	if err := report.WriteCSV(os.Stdout, []string{"width", "cycles", "pareto"}, rows); err != nil {
		fatal(err)
	}
}

func runFig9(socs []*soc.SOC, which string, quick bool, workers int) {
	lo, hi := 4, 80
	if quick {
		lo, hi = 8, 72
	}
	for _, s := range socs {
		f9, err := experiments.Fig9Sweep(s, lo, hi, grid(quick), nil, workers)
		if err != nil {
			fatal(err)
		}
		sw := f9.Sweep
		if which == "" || which == "9a" {
			fmt.Printf("\nFig 9(a) [%s]: testing time vs W (CSV)\n", s.Name)
			var rows [][]string
			for _, p := range sw.Samples {
				rows = append(rows, []string{fmt.Sprint(p.TAMWidth), fmt.Sprint(p.Time)})
			}
			mustCSV([]string{"W", "T_cycles"}, rows)
		}
		if which == "" || which == "9b" {
			fmt.Printf("\nFig 9(b) [%s]: tester data volume vs W (CSV)\n", s.Name)
			var rows [][]string
			for _, p := range sw.Samples {
				rows = append(rows, []string{fmt.Sprint(p.TAMWidth), fmt.Sprint(p.Volume)})
			}
			mustCSV([]string{"W", "D_bits"}, rows)
		}
		for _, g := range []struct {
			key   string
			gamma float64
		}{{"9c", 0.5}, {"9d", 0.75}} {
			if which != "" && which != g.key {
				continue
			}
			fmt.Printf("\nFig 9(%s) [%s]: cost C(γ=%.2f) vs W (CSV)\n", g.key[1:], s.Name, g.gamma)
			var rows [][]string
			for _, p := range sw.CostCurve(g.gamma) {
				rows = append(rows, []string{fmt.Sprint(p.TAMWidth), fmt.Sprintf("%.4f", p.Cost)})
			}
			mustCSV([]string{"W", "C"}, rows)
		}
	}
}

func runAblationDelta(workers int) {
	rows, err := experiments.AblationDelta(10, workers)
	if err != nil {
		fatal(err)
	}
	t := &report.Table{
		Title:   "Ablation: δ bottleneck-rescue on p34392like (α=10)",
		Headers: []string{"W", "makespan δ=0", "makespan δ swept", "core18 pref δ=0", "core18 pref best δ"},
	}
	for _, r := range rows {
		t.AddRow(r.TAMWidth, r.MakespanDelta0, r.MakespanDeltaSwept, r.BottleneckPrefDelta0, r.BottleneckPrefDeltaBest)
	}
	mustRender(t)
}

func runAblationBaseline(socs []*soc.SOC, workers int) {
	t := &report.Table{
		Title:   "Ablation: flexible-width packing vs fixed-width TAMs vs shelf packing (cycles)",
		Headers: []string{"SOC", "W", "flexible", "fixed-width", "buses", "NFDH", "FFDH"},
	}
	for _, s := range socs {
		rows, err := experiments.Baselines(s, nil, 3, nil, nil, workers)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			t.AddRow(r.SOC, r.TAMWidth, r.Flexible, r.FixedWidth, fmt.Sprint(r.FixedBuses), r.NFDH, r.FFDH)
		}
	}
	mustRender(t)
}

func runAblationHeuristics(socs []*soc.SOC, workers int) {
	t := &report.Table{
		Title:   "Ablation: idle-time insertion and width-growing heuristics (cycles)",
		Headers: []string{"SOC", "W", "full", "no insertion", "no widening", "neither"},
	}
	for _, s := range socs {
		rows, err := experiments.AblationHeuristics(s, nil, nil, nil, workers)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			t.AddRow(r.SOC, r.TAMWidth, r.Full, r.NoInsert, r.NoWiden, r.Neither)
		}
	}
	mustRender(t)
}

func grid(quick bool) []int {
	if quick {
		return []int{1, 4, 10, 20, 40}
	}
	return nil
}

func mustRender(t *report.Table) {
	fmt.Println()
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func mustCSV(headers []string, rows [][]string) {
	if err := report.WriteCSV(os.Stdout, headers, rows); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socbench:", err)
	os.Exit(1)
}
