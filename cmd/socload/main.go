// Command socload is a seeded load generator for socserved: it drives a
// deterministic mix of single-request scheduling calls and /v1/batch
// requests over a hot/cold fingerprint-and-params mix, then reports
// client-side throughput and latency alongside the service's own
// /metrics counters (cache hits, misses, evictions, shed) and the
// /v1/backends race table.
//
// With no -addr it starts an in-process service, which is how CI uses it
// as a smoke gate: the run exits non-zero unless batch throughput is
// non-zero and the hot traffic produced cache hits.
//
// Usage:
//
//	socload -seed 1 -n 200 -c 4                 # in-process service
//	socload -addr http://127.0.0.1:8080 -n 500  # against a live server
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "", "socserved base URL (default: start an in-process service)")
		seed      = flag.Int64("seed", 1, "PRNG seed; the request mix is a pure function of it")
		n         = flag.Int("n", 200, "total requests to send")
		c         = flag.Int("c", 4, "concurrent client workers")
		batchFrac = flag.Float64("batch", 0.3, "fraction of requests that are /v1/batch")
		batchSize = flag.Int("batch-size", 8, "items per batch request")
		hotFrac   = flag.Float64("hot", 0.8, "fraction of traffic drawn from the small hot params set (cache-friendly)")
		socNames  = flag.String("socs", "demo8,d695", "comma-separated benchmark SOCs to load")
	)
	flag.Parse()

	base := *addr
	if base == "" {
		svc, err := service.New(service.Config{Preload: splitList(*socNames)})
		if err != nil {
			fatal(err)
		}
		defer svc.Close()
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("socload: in-process service at %s\n", base)
	}

	gen := newGenerator(*seed, splitList(*socNames), *batchFrac, *hotFrac, *batchSize)
	reqs := make([]request, *n)
	for i := range reqs {
		reqs[i] = gen.next()
	}

	var (
		mu        sync.Mutex
		durations []time.Duration
		singles   tally
		batches   tally
		itemsOK   int
		itemsFail int
		cacheHits int
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for i := range idx {
				req := reqs[i]
				t0 := time.Now()
				status, body, err := post(client, base+req.path, req.body)
				d := time.Since(t0)
				mu.Lock()
				durations = append(durations, d)
				t := &singles
				if req.batch {
					t = &batches
				}
				if err != nil || status != http.StatusOK {
					t.failed++
				} else {
					t.ok++
					if req.batch {
						var resp service.BatchResponse
						if json.Unmarshal(body, &resp) == nil {
							itemsOK += resp.Stats.OK
							itemsFail += resp.Stats.Failed
							cacheHits += resp.Stats.CacheHits
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("\nsocload: seed=%d n=%d c=%d batch=%.0f%% hot=%.0f%% in %v\n",
		*seed, *n, *c, 100**batchFrac, 100**hotFrac, elapsed.Round(time.Millisecond))
	fmt.Printf("  single requests: %d ok, %d failed\n", singles.ok, singles.failed)
	fmt.Printf("  batch requests:  %d ok, %d failed (%d items ok, %d items failed, %d item cache hits)\n",
		batches.ok, batches.failed, itemsOK, itemsFail, cacheHits)
	secs := elapsed.Seconds()
	fmt.Printf("  throughput: %.1f req/s overall, %.1f batch/s, %.1f scheduled items/s\n",
		float64(singles.ok+batches.ok)/secs, float64(batches.ok)/secs,
		float64(singles.ok+itemsOK)/secs)
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	fmt.Printf("  client latency: p50 %v  p90 %v  p99 %v  max %v\n",
		quantile(durations, 0.50), quantile(durations, 0.90),
		quantile(durations, 0.99), quantile(durations, 1.00))

	reportMetrics(base)
	reportBackends(base)

	// CI gate: the run must actually have exercised the batch path and the
	// hot mix must have hit the cache.
	if batches.ok == 0 || itemsOK == 0 {
		fatal(fmt.Errorf("gate: zero batch throughput (%d batches ok, %d items ok)", batches.ok, itemsOK))
	}
	if *hotFrac > 0 && cacheHits == 0 {
		fatal(fmt.Errorf("gate: hot traffic produced zero cache hits"))
	}
}

type tally struct{ ok, failed int }

type request struct {
	path  string
	body  []byte
	batch bool
}

// generator derives the whole request mix from one seed: hot traffic
// draws from a four-entry params set (cache-friendly), cold traffic from
// a wide width range, and batches mix the two.
type generator struct {
	rng       *rand.Rand
	socs      []string
	batchFrac float64
	hotFrac   float64
	batchSize int
	hot       []service.ParamsJSON
}

func newGenerator(seed int64, socs []string, batchFrac, hotFrac float64, batchSize int) *generator {
	return &generator{
		rng:       rand.New(rand.NewSource(seed)),
		socs:      socs,
		batchFrac: batchFrac,
		hotFrac:   hotFrac,
		batchSize: batchSize,
		hot: []service.ParamsJSON{
			{TAMWidth: 16},
			{TAMWidth: 24},
			{TAMWidth: 32, Percent: 10, Delta: 1},
			{TAMWidth: 48},
		},
	}
}

func (g *generator) params() service.ParamsJSON {
	if g.rng.Float64() < g.hotFrac {
		return g.hot[g.rng.Intn(len(g.hot))]
	}
	// Cold: a width drawn from a range wide enough that repeats are rare.
	return service.ParamsJSON{TAMWidth: 8 + g.rng.Intn(249)}
}

func (g *generator) soc() string { return g.socs[g.rng.Intn(len(g.socs))] }

func (g *generator) next() request {
	if g.rng.Float64() < g.batchFrac {
		items := make([]map[string]any, g.batchSize)
		for i := range items {
			items[i] = map[string]any{"soc": g.soc(), "params": g.params()}
		}
		return request{path: "/v1/batch", body: marshal(map[string]any{"items": items}), batch: true}
	}
	path := "/v1/schedule"
	if g.rng.Float64() < 0.25 {
		path = "/v1/schedule/best"
	}
	return request{path: path, body: marshal(map[string]any{"soc": g.soc(), "params": g.params()})}
}

func reportMetrics(base string) {
	var m service.MetricsSnapshot
	if err := getJSON(base+"/metrics", &m); err != nil {
		fatal(err)
	}
	fmt.Printf("  server: %d requests (%d shed, %d timeouts), %d schedules, %d batches\n",
		m.Requests, m.Shed, m.Timeouts, m.Schedules, m.Batches)
	fmt.Printf("  cache:  %d hits, %d misses, %d evictions, %d singleflight-shared, %d entries / %d bytes\n",
		m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions, m.Cache.SingleflightShared,
		m.Cache.Entries, m.Cache.Bytes)
}

func reportBackends(base string) {
	var disc struct {
		Backends []struct {
			Name string `json:"name"`
			Race struct {
				Won   int64  `json:"won"`
				Lost  int64  `json:"lost"`
				State string `json:"state"`
			} `json:"race"`
			Latency struct {
				Count int64 `json:"count"`
				P50Ns int64 `json:"p50Ns"`
				P99Ns int64 `json:"p99Ns"`
			} `json:"latency"`
		} `json:"backends"`
	}
	if err := getJSON(base+"/v1/backends", &disc); err != nil {
		fatal(err)
	}
	fmt.Printf("  %-10s %6s %6s %10s %10s %10s %10s\n", "backend", "won", "lost", "state", "count", "p50", "p99")
	for _, b := range disc.Backends {
		fmt.Printf("  %-10s %6d %6d %10s %10d %10v %10v\n",
			b.Name, b.Race.Won, b.Race.Lost, b.Race.State, b.Latency.Count,
			time.Duration(b.Latency.P50Ns).Round(time.Microsecond),
			time.Duration(b.Latency.P99Ns).Round(time.Microsecond))
	}
}

func post(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(time.Microsecond)
}

func marshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		fatal(err)
	}
	return b
}

func splitList(s string) []string {
	var out []string
	for _, f := range bytes.Split([]byte(s), []byte(",")) {
		if name := string(bytes.TrimSpace(f)); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socload:", err)
	os.Exit(1)
}
