package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSoclintRunsCleanOnRepo builds soclint and runs it, through go vet's
// vettool protocol, over the entire repository: the suite's conventions
// are enforced, so the repo itself must always lint clean. Skipped in
// -short mode (CI runs it as a dedicated required step).
func TestSoclintRunsCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("building and vetting the whole repo is not a -short test")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "soclint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/soclint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building soclint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool=soclint ./... failed: %v\n%s", err, out)
	}
}

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above the test directory")
		}
		dir = parent
	}
}
