// Command soclint runs the repo's custom static analyzers (package
// internal/lint) as a `go vet` tool:
//
//	go build -o soclint ./cmd/soclint
//	go vet -vettool=./soclint ./...
//
// Invoked with package patterns instead of a vet config file, soclint
// re-executes `go vet -vettool=<itself>` for convenience, so
// `go run ./cmd/soclint ./...` and `soclint ./...` both work.
//
// The command speaks cmd/go's vettool protocol directly (the -V=full
// handshake and the JSON vet.cfg unit files go vet hands to the tool) so
// the analyzers run from a clean offline checkout with no dependencies
// outside the standard library.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("soclint", flag.ContinueOnError)
	fs.Usage = usage
	versionFlag := fs.String("V", "", "print version and exit (go vet handshake: -V=full)")
	flagsFlag := fs.Bool("flags", false, "print a JSON description of supported flags and exit")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *versionFlag != "":
		printVersion()
		return 0
	case *flagsFlag:
		// No analyzer-specific flags beyond -json; go vet queries this
		// before forwarding user-provided vet flags.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], *jsonFlag)
	}
	// Convenience mode: treat the arguments as package patterns and
	// re-exec go vet with ourselves as the vettool.
	return runPatterns(rest)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: soclint [packages]\n\nAnalyzers:\n")
	for _, a := range lint.Analyzers() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, doc)
	}
}

// printVersion implements the `-V=full` handshake: cmd/go requires the
// line to read "<name> version devel ... buildID=<id>" and caches vet
// results keyed by the ID, so the ID must change whenever the binary does.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("soclint version devel buildID=%x\n", h.Sum(nil)[:16])
}

// runPatterns re-executes go vet with this binary as the vettool.
func runPatterns(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "soclint: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "soclint: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON unit file cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit described by a vet.cfg file.
func runUnit(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soclint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "soclint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go runs the tool over dependencies first so fact-based tools
	// can exchange "vetx" files; soclint keeps no facts, but the output
	// file must exist for the driver's caching to proceed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("soclint\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "soclint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "soclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer:  imp,
		GoVersion: strings.TrimPrefix(cfg.GoVersion, "go version "),
		Error:     func(error) {}, // collect everything; first error is returned by Check
	}
	info := analysis.NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "soclint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := analysis.Run(lint.Analyzers(), fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soclint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	report(fset, cfg.ImportPath, diags, asJSON)
	return 2
}

// report prints diagnostics the way go vet expects: human-readable lines
// on stderr, or the nested JSON object go vet -json consumes.
func report(fset *token.FileSet, importPath string, diags []analysis.Diagnostic, asJSON bool) {
	if !asJSON {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		return
	}
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out, _ := json.MarshalIndent(map[string]map[string][]jsonDiag{importPath: byAnalyzer}, "", "\t")
	os.Stdout.Write(out)
	fmt.Println()
}
