package soc

import (
	"strings"
	"testing"
)

func validSOC() *SOC {
	return &SOC{
		Name: "t",
		Cores: []*Core{
			{ID: 1, Name: "a", Inputs: 4, Outputs: 4, ScanChains: []int{10, 12}, Test: Test{Patterns: 5, BISTEngine: -1}},
			{ID: 2, Name: "b", Parent: 1, Inputs: 2, Outputs: 2, Test: Test{Patterns: 3, BISTEngine: -1}},
			{ID: 3, Name: "c", Inputs: 1, Outputs: 1, ScanChains: []int{8}, Test: Test{Patterns: 7, Kind: BISTTest, BISTEngine: 0}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validSOC().Validate(); err != nil {
		t.Fatalf("valid SOC rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SOC)
		want   string
	}{
		{"no name", func(s *SOC) { s.Name = "" }, "missing name"},
		{"no cores", func(s *SOC) { s.Cores = nil }, "no cores"},
		{"bad id", func(s *SOC) { s.Cores[1].ID = 7 }, "has ID"},
		{"unnamed core", func(s *SOC) { s.Cores[0].Name = "" }, "no name"},
		{"negative inputs", func(s *SOC) { s.Cores[0].Inputs = -1 }, "negative terminal"},
		{"empty core", func(s *SOC) { c := s.Cores[1]; c.Inputs, c.Outputs, c.Bidirs = 0, 0, 0 }, "no terminals"},
		{"zero-length chain", func(s *SOC) { s.Cores[0].ScanChains[0] = 0 }, "non-positive length"},
		{"zero patterns", func(s *SOC) { s.Cores[0].Test.Patterns = 0 }, "non-positive pattern"},
		{"bist without engine", func(s *SOC) { s.Cores[2].Test.BISTEngine = -1 }, "no engine"},
		{"invalid engine", func(s *SOC) { s.Cores[0].Test.BISTEngine = -2 }, "invalid BIST engine"},
		{"negative power", func(s *SOC) { s.Cores[0].Test.Power = -5 }, "negative power"},
		{"unknown parent", func(s *SOC) { s.Cores[1].Parent = 9 }, "unknown parent"},
		{"hierarchy cycle", func(s *SOC) { s.Cores[0].Parent = 2 }, "cycle"},
		{"precedence unknown", func(s *SOC) { s.Precedences = []Precedence{{Before: 1, After: 9}} }, "unknown core"},
		{"precedence self", func(s *SOC) { s.Precedences = []Precedence{{Before: 2, After: 2}} }, "self-referential"},
		{"concurrency unknown", func(s *SOC) { s.Concurrencies = []Concurrency{{A: 0, B: 1}} }, "unknown core"},
		{"concurrency self", func(s *SOC) { s.Concurrencies = []Concurrency{{A: 3, B: 3}} }, "self-referential"},
		{"negative powermax", func(s *SOC) { s.PowerMax = -1 }, "negative power limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSOC()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutation %q accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestScanBits(t *testing.T) {
	c := &Core{ScanChains: []int{10, 12, 3}}
	if got := c.ScanBits(); got != 25 {
		t.Fatalf("ScanBits = %d, want 25", got)
	}
	if got := (&Core{}).ScanBits(); got != 0 {
		t.Fatalf("empty ScanBits = %d, want 0", got)
	}
}

func TestDataBitsPerPattern(t *testing.T) {
	c := &Core{Inputs: 3, Outputs: 5, Bidirs: 2, ScanChains: []int{10}}
	// 2·10 scan + 3 in + 5 out + 2·2 bidir = 32
	if got := c.DataBitsPerPattern(); got != 32 {
		t.Fatalf("DataBitsPerPattern = %d, want 32", got)
	}
}

func TestTestPowerFallback(t *testing.T) {
	c := &Core{Inputs: 1, Outputs: 1, ScanChains: []int{4}, Test: Test{Patterns: 1}}
	if got := c.TestPower(); got != c.DataBitsPerPattern() {
		t.Fatalf("TestPower fallback = %d, want %d", got, c.DataBitsPerPattern())
	}
	c.Test.Power = 99
	if got := c.TestPower(); got != 99 {
		t.Fatalf("explicit TestPower = %d, want 99", got)
	}
}

func TestCoreLookup(t *testing.T) {
	s := validSOC()
	for id := 1; id <= 3; id++ {
		c := s.Core(id)
		if c == nil || c.ID != id {
			t.Fatalf("Core(%d) = %+v", id, c)
		}
	}
	for _, id := range []int{0, -1, 4, 100} {
		if c := s.Core(id); c != nil {
			t.Fatalf("Core(%d) = %+v, want nil", id, c)
		}
	}
}

func TestChildren(t *testing.T) {
	s := validSOC()
	kids := s.Children(1)
	if len(kids) != 1 || kids[0] != 2 {
		t.Fatalf("Children(1) = %v, want [2]", kids)
	}
	if kids := s.Children(3); len(kids) != 0 {
		t.Fatalf("Children(3) = %v, want empty", kids)
	}
}

func TestHierarchyConcurrencies(t *testing.T) {
	s := validSOC()
	// Add a grandchild: 4 inside 2 inside 1.
	s.Cores = append(s.Cores, &Core{
		ID: 4, Name: "d", Parent: 2, Inputs: 1, Outputs: 1,
		Test: Test{Patterns: 1, BISTEngine: -1},
	})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	got := s.HierarchyConcurrencies()
	want := map[[2]int]bool{
		{1, 2}: true, // parent 1 vs child 2
		{2, 4}: true, // parent 2 vs child 4
		{1, 4}: true, // transitive: 4 nested in 1
	}
	if len(got) != len(want) {
		t.Fatalf("got %d constraints %v, want %d", len(got), got, len(want))
	}
	for _, cc := range got {
		if !want[[2]int{cc.A, cc.B}] {
			t.Fatalf("unexpected constraint %+v", cc)
		}
	}
}

func TestTotalTestBits(t *testing.T) {
	s := &SOC{
		Name: "t",
		Cores: []*Core{
			{ID: 1, Name: "a", Inputs: 2, Outputs: 2, ScanChains: []int{5}, Test: Test{Patterns: 10, BISTEngine: -1}},
		},
	}
	// per pattern: 2·5 + 2 + 2 = 14; ×10 patterns = 140
	if got := s.TotalTestBits(); got != 140 {
		t.Fatalf("TotalTestBits = %d, want 140", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := validSOC()
	s.Precedences = []Precedence{{Before: 1, After: 2}}
	c := s.Clone()
	c.Cores[0].ScanChains[0] = 999
	c.Cores[0].Name = "mutated"
	c.Precedences[0].Before = 3
	if s.Cores[0].ScanChains[0] == 999 || s.Cores[0].Name == "mutated" {
		t.Fatal("Clone shares core state with original")
	}
	if s.Precedences[0].Before == 3 {
		t.Fatal("Clone shares precedence slice with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestTestKindString(t *testing.T) {
	if ScanTest.String() != "scan" || BISTTest.String() != "bist" {
		t.Fatalf("kind strings: %q %q", ScanTest, BISTTest)
	}
	if got := TestKind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind string %q", got)
	}
}
