// Package soc defines the data model for system-on-chip test descriptions:
// an SOC is a set of embedded cores, each with primary I/Os, internal scan
// chains, and one or more tests, plus SOC-level test constraints
// (precedence, concurrency, power) in the style of the ITC'02 SOC test
// benchmarks.
package soc

import (
	"fmt"
	"sort"
)

// TestKind distinguishes how a test's stimuli are delivered.
type TestKind int

const (
	// ScanTest is an external test: patterns are transported over the TAM
	// and shifted through the core's wrapper scan chains.
	ScanTest TestKind = iota
	// BISTTest is applied by an on-chip BIST engine; the TAM carries only
	// control/observation data, but the test still occupies its assigned
	// TAM wires for its duration.
	BISTTest
)

// String returns the kind's mnemonic.
func (k TestKind) String() string {
	switch k {
	case ScanTest:
		return "scan"
	case BISTTest:
		return "bist"
	default:
		return fmt.Sprintf("TestKind(%d)", int(k))
	}
}

// Test describes one test of a core. In this framework each core carries
// exactly one aggregate test (the ITC'02 files may list several; the parser
// merges pattern counts), but the model keeps Test separate from Core so
// multi-test extensions stay cheap.
type Test struct {
	// Patterns is the number of test patterns to apply.
	Patterns int
	// Kind says whether the test is externally applied scan or on-chip BIST.
	Kind TestKind
	// BISTEngine is the identifier of the on-chip BIST engine used by this
	// test, or -1 when no engine is used. Two tests that name the same
	// engine may never run concurrently (a BIST resource conflict).
	BISTEngine int
	// Power is the power dissipated while this test runs, in abstract
	// units. Zero means "assign a default from the core's data bits per
	// pattern" (see Core.DataBitsPerPattern).
	Power int
}

// Core is one embedded core of the SOC.
type Core struct {
	// ID is the core's 1-based index within the SOC. Core 0 is reserved
	// for the SOC-level (unwrapped) logic and never appears here.
	ID int
	// Name is a human-readable label (e.g. the ISCAS circuit name).
	Name string
	// Parent is the ID of the hierarchical parent core, or 0 when the core
	// hangs directly off the SOC. A parent core's Intest conflicts with its
	// children's tests (their wrappers must be in Extest mode).
	Parent int
	// Inputs, Outputs, Bidirs count the core's functional terminals; each
	// gets a wrapper cell.
	Inputs, Outputs, Bidirs int
	// ScanChains holds the fixed lengths of the core's internal scan
	// chains. Empty for purely combinational cores.
	ScanChains []int
	// Test is the core's test.
	Test Test
}

// ScanBits returns the total number of internal scan flip-flops.
func (c *Core) ScanBits() int {
	total := 0
	for _, l := range c.ScanChains {
		total += l
	}
	return total
}

// DataBitsPerPattern returns the number of test data bits moved per pattern:
// every scan bit is both loaded and unloaded, every input/output cell carries
// one bit, and bidirs carry one bit each way. It is the paper's basis for
// the "hypothetical power value" of a test.
func (c *Core) DataBitsPerPattern() int {
	return 2*c.ScanBits() + c.Inputs + c.Outputs + 2*c.Bidirs
}

// TestPower returns the test's power value, falling back to
// DataBitsPerPattern when the test does not carry an explicit value.
func (c *Core) TestPower() int {
	if c.Test.Power > 0 {
		return c.Test.Power
	}
	return c.DataBitsPerPattern()
}

// Precedence expresses "Before must complete prior to After beginning".
type Precedence struct {
	Before, After int // core IDs
}

// Concurrency expresses "A and B must never run at the same time".
type Concurrency struct {
	A, B int // core IDs
}

// SOC is a full system-on-chip test description.
type SOC struct {
	// Name labels the SOC (e.g. "d695").
	Name string
	// Cores holds the embedded cores, in ID order starting at ID 1.
	Cores []*Core
	// Precedences lists precedence constraints between core tests.
	Precedences []Precedence
	// Concurrencies lists pairs of core tests that must not overlap.
	Concurrencies []Concurrency
	// PowerMax is the SOC's maximum allowed test power dissipation;
	// 0 means unconstrained.
	PowerMax int
}

// Core returns the core with the given ID, or nil when absent.
func (s *SOC) Core(id int) *Core {
	if id < 1 || id > len(s.Cores) {
		return nil
	}
	c := s.Cores[id-1]
	if c.ID != id {
		for _, cc := range s.Cores {
			if cc.ID == id {
				return cc
			}
		}
		return nil
	}
	return c
}

// Children returns the IDs of cores whose Parent is id, sorted ascending.
func (s *SOC) Children(id int) []int {
	var kids []int
	for _, c := range s.Cores {
		if c.Parent == id {
			kids = append(kids, c.ID)
		}
	}
	sort.Ints(kids)
	return kids
}

// HierarchyConcurrencies derives the implicit concurrency constraints from
// the core hierarchy: a parent core cannot be tested at the same time as any
// core nested (transitively) inside it, because the child wrappers must be
// in Extest mode while the parent is in Intest mode.
func (s *SOC) HierarchyConcurrencies() []Concurrency {
	var out []Concurrency
	for _, c := range s.Cores {
		for p := c.Parent; p != 0; {
			out = append(out, Concurrency{A: p, B: c.ID})
			pc := s.Core(p)
			if pc == nil {
				break
			}
			p = pc.Parent
		}
	}
	return out
}

// TotalTestBits returns the total number of test data bits across all cores:
// Σ patterns · data-bits-per-pattern. It approximates the raw tester data
// the SOC's tests move, independent of TAM design.
func (s *SOC) TotalTestBits() int64 {
	var total int64
	for _, c := range s.Cores {
		total += int64(c.Test.Patterns) * int64(c.DataBitsPerPattern())
	}
	return total
}

// Clone returns a deep copy of the SOC.
func (s *SOC) Clone() *SOC {
	out := &SOC{
		Name:          s.Name,
		PowerMax:      s.PowerMax,
		Precedences:   append([]Precedence(nil), s.Precedences...),
		Concurrencies: append([]Concurrency(nil), s.Concurrencies...),
	}
	for _, c := range s.Cores {
		cc := *c
		cc.ScanChains = append([]int(nil), c.ScanChains...)
		out.Cores = append(out.Cores, &cc)
	}
	return out
}

// Validate checks structural consistency: contiguous 1-based core IDs,
// non-negative terminal counts, positive scan-chain lengths and pattern
// counts, resolvable parents with no hierarchy cycles, and constraint
// endpoints that name existing distinct cores.
func (s *SOC) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("soc: missing name")
	}
	if len(s.Cores) == 0 {
		return fmt.Errorf("soc %s: no cores", s.Name)
	}
	for i, c := range s.Cores {
		if c.ID != i+1 {
			return fmt.Errorf("soc %s: core at index %d has ID %d, want %d", s.Name, i, c.ID, i+1)
		}
		if err := s.validateCore(c); err != nil {
			return err
		}
	}
	if err := s.validateHierarchy(); err != nil {
		return err
	}
	for _, p := range s.Precedences {
		if s.Core(p.Before) == nil || s.Core(p.After) == nil {
			return fmt.Errorf("soc %s: precedence %d<%d names unknown core", s.Name, p.Before, p.After)
		}
		if p.Before == p.After {
			return fmt.Errorf("soc %s: precedence %d<%d is self-referential", s.Name, p.Before, p.After)
		}
	}
	for _, cc := range s.Concurrencies {
		if s.Core(cc.A) == nil || s.Core(cc.B) == nil {
			return fmt.Errorf("soc %s: concurrency %d~%d names unknown core", s.Name, cc.A, cc.B)
		}
		if cc.A == cc.B {
			return fmt.Errorf("soc %s: concurrency %d~%d is self-referential", s.Name, cc.A, cc.B)
		}
	}
	if s.PowerMax < 0 {
		return fmt.Errorf("soc %s: negative power limit %d", s.Name, s.PowerMax)
	}
	return nil
}

func (s *SOC) validateCore(c *Core) error {
	if c.Name == "" {
		return fmt.Errorf("soc %s: core %d has no name", s.Name, c.ID)
	}
	if c.Inputs < 0 || c.Outputs < 0 || c.Bidirs < 0 {
		return fmt.Errorf("soc %s: core %d (%s) has negative terminal counts", s.Name, c.ID, c.Name)
	}
	if c.Inputs+c.Outputs+c.Bidirs+len(c.ScanChains) == 0 {
		return fmt.Errorf("soc %s: core %d (%s) has no terminals and no scan", s.Name, c.ID, c.Name)
	}
	for j, l := range c.ScanChains {
		if l <= 0 {
			return fmt.Errorf("soc %s: core %d (%s) scan chain %d has non-positive length %d", s.Name, c.ID, c.Name, j, l)
		}
	}
	if c.Test.Patterns <= 0 {
		return fmt.Errorf("soc %s: core %d (%s) has non-positive pattern count %d", s.Name, c.ID, c.Name, c.Test.Patterns)
	}
	if c.Test.BISTEngine < -1 {
		return fmt.Errorf("soc %s: core %d (%s) has invalid BIST engine %d", s.Name, c.ID, c.Name, c.Test.BISTEngine)
	}
	if c.Test.Kind == BISTTest && c.Test.BISTEngine < 0 {
		return fmt.Errorf("soc %s: core %d (%s) is a BIST test with no engine", s.Name, c.ID, c.Name)
	}
	if c.Test.Power < 0 {
		return fmt.Errorf("soc %s: core %d (%s) has negative power %d", s.Name, c.ID, c.Name, c.Test.Power)
	}
	return nil
}

func (s *SOC) validateHierarchy() error {
	for _, c := range s.Cores {
		if c.Parent != 0 && s.Core(c.Parent) == nil {
			return fmt.Errorf("soc %s: core %d (%s) has unknown parent %d", s.Name, c.ID, c.Name, c.Parent)
		}
		// Walk up; a chain longer than the core count means a cycle.
		steps := 0
		for p := c.Parent; p != 0; p = s.Core(p).Parent {
			steps++
			if steps > len(s.Cores) {
				return fmt.Errorf("soc %s: hierarchy cycle involving core %d (%s)", s.Name, c.ID, c.Name)
			}
		}
	}
	return nil
}
