package datavol

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestRunParallelMatchesSequential asserts the width fan-out is
// deterministic: Workers=1 (the pre-parallel path) and any other worker
// count produce identical sweeps on both benchmark SOCs.
func TestRunParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		soc    string
		lo, hi int
	}{
		{"demo8", 4, 24},
		{"d695", 12, 40},
	}
	for _, tc := range cases {
		s, err := bench.ByName(tc.soc)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{WidthLo: tc.lo, WidthHi: tc.hi, Percents: []int{1, 5, 10}, Deltas: []int{0, 2}}
		cfg.Workers = 1
		seq, err := Run(s, cfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.soc, err)
		}
		for _, workers := range []int{0, 2, 4} {
			cfg.Workers = workers
			par, err := Run(s, cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.soc, workers, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s: workers=%d sweep differs from sequential", tc.soc, workers)
			}
		}
	}
}

// TestRunParallelErrorMatchesSequential checks the lowest failing width
// wins the error race, matching the sequential path's first error.
func TestRunParallelErrorMatchesSequential(t *testing.T) {
	s := bench.Demo()
	// A power budget below any single core's test power makes every width
	// fail the constraint feasibility check, deterministically.
	cfg := Config{WidthLo: 4, WidthHi: 12}
	cfg.Params.PowerMax = 1
	cfg.Workers = 1
	_, seqErr := Run(s, cfg)
	cfg.Workers = 4
	_, parErr := Run(s, cfg)
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error mismatch:\n seq: %v\n par: %v", seqErr, parErr)
	}
	if !strings.Contains(seqErr.Error(), "width 4") {
		t.Errorf("error not attributed to the lowest width: %v", seqErr)
	}
}

// TestFinalizeMinimaZeroTimeSample is the regression test for the old
// `== 0` unset sentinel: a theoretical zero-time first sample must be
// recognized as the minimum, not mistaken for "unset" and overwritten.
func TestFinalizeMinimaZeroTimeSample(t *testing.T) {
	sw := &Sweep{Samples: []Sample{
		{TAMWidth: 4, Time: 0, Volume: 0},
		{TAMWidth: 5, Time: 100, Volume: 500},
	}}
	sw.finalizeMinima()
	if sw.MinTime != 0 || sw.MinTimeWidth != 4 {
		t.Errorf("MinTime=%d at W=%d, want 0 at W=4", sw.MinTime, sw.MinTimeWidth)
	}
	if sw.MinVolume != 0 || sw.MinVolumeWidth != 4 {
		t.Errorf("MinVolume=%d at W=%d, want 0 at W=4", sw.MinVolume, sw.MinVolumeWidth)
	}
}

// TestCostGuardsZeroMinima: a hand-built or JSON-decoded Sweep with zero
// minima must fail loudly instead of producing silent +Inf/NaN costs.
func TestCostGuardsZeroMinima(t *testing.T) {
	sw := &Sweep{Samples: []Sample{{TAMWidth: 8, Time: 100, Volume: 800}}}
	// Minima left zero, as a buggy producer would.
	if _, err := sw.EffectiveWidth(0.5); err == nil {
		t.Error("EffectiveWidth accepted zero minima")
	}
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s did not panic on zero minima", name)
			}
		}()
		fn()
	}
	assertPanics("Cost", func() { sw.Cost(0.5, sw.Samples[0]) })
	assertPanics("CostCurve", func() { sw.CostCurve(0.5) })

	empty := &Sweep{}
	if _, err := empty.EffectiveWidth(0.5); err == nil {
		t.Error("EffectiveWidth accepted an empty sweep")
	}
	assertPanics("CostCurve(empty)", func() { empty.CostCurve(0.5) })
}
