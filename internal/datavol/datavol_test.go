package datavol

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/soc"
)

// quickSweep runs a small sweep on a small SOC (kept cheap for CI).
func quickSweep(t *testing.T) *Sweep {
	t.Helper()
	s := bench.Demo()
	sw, err := Run(s, Config{WidthLo: 4, WidthHi: 24, Percents: []int{1, 5, 10, 20}, Deltas: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestSweepBasics(t *testing.T) {
	sw := quickSweep(t)
	if len(sw.Samples) != 21 {
		t.Fatalf("got %d samples, want 21", len(sw.Samples))
	}
	for i, smp := range sw.Samples {
		if smp.TAMWidth != 4+i {
			t.Fatalf("sample %d has width %d", i, smp.TAMWidth)
		}
		if smp.Volume != int64(smp.TAMWidth)*smp.Time {
			t.Fatalf("D != W·T at W=%d: %d vs %d·%d", smp.TAMWidth, smp.Volume, smp.TAMWidth, smp.Time)
		}
	}
	// Minima bookkeeping.
	var minT, minD int64 = math.MaxInt64, math.MaxInt64
	for _, smp := range sw.Samples {
		if smp.Time < minT {
			minT = smp.Time
		}
		if smp.Volume < minD {
			minD = smp.Volume
		}
	}
	if sw.MinTime != minT || sw.MinVolume != minD {
		t.Fatalf("minima wrong: T %d vs %d, D %d vs %d", sw.MinTime, minT, sw.MinVolume, minD)
	}
}

func TestTimeTrendsDownward(t *testing.T) {
	// The scheduler is heuristic so T(W) need not be monotone pointwise,
	// but the wide end must beat the narrow end decisively.
	sw := quickSweep(t)
	first, last := sw.Samples[0], sw.Samples[len(sw.Samples)-1]
	if last.Time >= first.Time {
		t.Fatalf("T(%d)=%d not below T(%d)=%d", last.TAMWidth, last.Time, first.TAMWidth, first.Time)
	}
}

func TestCostFunction(t *testing.T) {
	sw := quickSweep(t)
	// γ=1 reduces C to T/T_min: minimized where T is minimal.
	eff1, err := sw.EffectiveWidth(1)
	if err != nil {
		t.Fatal(err)
	}
	if eff1.Time != sw.MinTime {
		t.Fatalf("γ=1 picked T=%d, want T_min=%d", eff1.Time, sw.MinTime)
	}
	if math.Abs(eff1.CostMin-1.0) > 1e-9 {
		t.Fatalf("γ=1 C_min = %v, want 1", eff1.CostMin)
	}
	// γ=0 reduces C to D/D_min.
	eff0, err := sw.EffectiveWidth(0)
	if err != nil {
		t.Fatal(err)
	}
	if eff0.Volume != sw.MinVolume {
		t.Fatalf("γ=0 picked D=%d, want D_min=%d", eff0.Volume, sw.MinVolume)
	}
	// C is always >= 1 (both ratios are >= their minima).
	for _, g := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, smp := range sw.Samples {
			if c := sw.Cost(g, smp); c < 1-1e-9 {
				t.Fatalf("C(γ=%v, W=%d) = %v < 1", g, smp.TAMWidth, c)
			}
		}
	}
	if _, err := sw.EffectiveWidth(-0.1); err == nil {
		t.Error("γ<0 accepted")
	}
	if _, err := sw.EffectiveWidth(1.1); err == nil {
		t.Error("γ>1 accepted")
	}
}

// Property: the effective width's cost is minimal over the whole sweep for
// arbitrary γ.
func TestEffectiveWidthIsArgminProperty(t *testing.T) {
	sw := quickSweep(t)
	f := func(g float64) bool {
		gamma := math.Abs(math.Mod(g, 1))
		eff, err := sw.EffectiveWidth(gamma)
		if err != nil {
			return false
		}
		for _, smp := range sw.Samples {
			if sw.Cost(gamma, smp) < eff.CostMin-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCostCurve(t *testing.T) {
	sw := quickSweep(t)
	curve := sw.CostCurve(0.5)
	if len(curve) != len(sw.Samples) {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i, p := range curve {
		want := sw.Cost(0.5, sw.Samples[i])
		if math.Abs(p.Cost-want) > 1e-12 || p.TAMWidth != sw.Samples[i].TAMWidth {
			t.Fatalf("curve[%d] = %+v, want cost %v", i, p, want)
		}
	}
}

func TestRunConfigErrors(t *testing.T) {
	s := bench.Demo()
	if _, err := Run(s, Config{WidthLo: 10, WidthHi: 5}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := Run(s, Config{WidthLo: -1, WidthHi: 5}); err == nil {
		t.Error("negative lo accepted")
	}
}

func TestMultisiteThroughput(t *testing.T) {
	smp := Sample{TAMWidth: 16, Time: 1000, Volume: 16000}
	thr, err := MultisiteThroughput(smp, 512, 1_000_000, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	// 32 sites, 1000/50e6 s per batch -> 32·50e3 = 1.6e6 dies/s.
	if math.Abs(thr-1.6e6) > 1 {
		t.Fatalf("throughput = %v, want 1.6e6", thr)
	}
	if _, err := MultisiteThroughput(smp, 8, 1_000_000, 50e6); err == nil {
		t.Error("width beyond pins accepted")
	}
	if _, err := MultisiteThroughput(smp, 512, 10, 50e6); err == nil {
		t.Error("buffer overflow accepted")
	}
}

// TestVolumeLocalMinimaAtParetoDrops: D(W) dips where T(W) drops — the
// paper's Fig. 9(b) structure.
func TestVolumeLocalMinimaAtParetoDrops(t *testing.T) {
	sw := quickSweep(t)
	dips := 0
	for i := 1; i < len(sw.Samples)-1; i++ {
		prev, cur, next := sw.Samples[i-1], sw.Samples[i], sw.Samples[i+1]
		if cur.Volume < prev.Volume && cur.Volume <= next.Volume {
			dips++
			// A dip requires a time drop from the previous width.
			if cur.Time >= prev.Time {
				t.Errorf("D dips at W=%d without T dropping (T: %d -> %d)", cur.TAMWidth, prev.Time, cur.Time)
			}
		}
	}
	t.Logf("observed %d local minima in D(W)", dips)
}

var _ = soc.SOC{} // keep the import for documentation examples
