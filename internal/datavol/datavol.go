// Package datavol implements Problem 3 of the DAC 2002 framework: the
// relationship between total TAM width W, SOC testing time T(W), and tester
// data volume D(W), and the identification of an "effective" TAM width that
// trades the two off.
//
// The tester stores, for each TAM pin, one memory column as deep as the
// test schedule is long, so the per-pin memory depth equals T(W) and the
// total tester data volume is D(W) = W · T(W) bits. T(W) decreases only at
// Pareto-optimal widths, so D(W) is non-monotonic with local minima exactly
// at those widths. The normalized cost
//
//	C(γ, W) = γ·T(W)/T_min + (1−γ)·D(W)/D_min
//
// is U-shaped in W; its minimizer is the effective TAM width W_e.
package datavol

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/soc"
)

// Sample is one point of the W sweep.
type Sample struct {
	// TAMWidth is W.
	TAMWidth int
	// Time is the scheduled SOC testing time T(W) in cycles.
	Time int64
	// Volume is the tester data volume D(W) = W·T(W) in bits.
	Volume int64
}

// Sweep holds T(W) and D(W) across a width range for one SOC.
type Sweep struct {
	// SOC names the swept SOC.
	SOC string
	// Samples are ordered by increasing TAMWidth.
	Samples []Sample
	// MinTime / MinTimeWidth locate T_min.
	MinTime      int64
	MinTimeWidth int
	// MinVolume / MinVolumeWidth locate D_min.
	MinVolume      int64
	MinVolumeWidth int
}

// Config tunes a sweep.
type Config struct {
	// WidthLo and WidthHi bound the sweep (inclusive). Defaults: 4..80
	// (the paper plots 0..80; widths below 4 are uninformative and slow).
	WidthLo, WidthHi int
	// Params carries scheduler settings applied at every width; TAMWidth
	// is overwritten per sample. Preemption is normally disabled for
	// data-volume studies (the paper's Table 2 uses the non-preemptive
	// times).
	Params sched.Params
	// Percents, Deltas optionally override the per-width parameter grid
	// used to pick the best schedule (defaults: paper grid).
	Percents, Deltas []int
	// Workers bounds the number of widths scheduled concurrently: 0 means
	// GOMAXPROCS, 1 forces the fully sequential path. Every width is an
	// independent scheduler run against a shared read-only Optimizer, and
	// samples are collected in width order, so the resulting Sweep is
	// identical regardless of the worker count. When the width fan-out is
	// parallel (Workers != 1) the per-width parameter-grid sweep runs
	// sequentially to avoid oversubscribing the pool; Workers == 1 also
	// pins the grid sweep to one worker unless Params.Workers explicitly
	// requests grid-level parallelism.
	Workers int
}

// Run sweeps W over the configured range, scheduling the SOC at each width
// with the best (percent, delta) found on the grid. Widths are fanned out
// over cfg.Workers goroutines; see Config.Workers for the determinism
// guarantee.
func Run(s *soc.SOC, cfg Config) (*Sweep, error) {
	return RunContext(context.Background(), s, cfg)
}

// RunContext is Run with cancellation: once ctx is done the sweep stops
// scheduling further widths (and the per-width parameter-grid sweeps stop
// launching grid points), in-flight scheduler runs finish, and ctx's error
// is returned. A nil ctx behaves like context.Background(), and an
// uncancellable context leaves the Sweep byte-identical to Run.
func RunContext(ctx context.Context, s *soc.SOC, cfg Config) (*Sweep, error) {
	opt, err := sched.New(s, cfg.Params.Defaults().MaxWidth)
	if err != nil {
		return nil, err
	}
	return RunWithContext(ctx, opt, cfg)
}

// RunWith is Run against a pre-built scheduler optimizer, reusing its
// Pareto-staircase and wrapper-design caches across sweeps (a service
// answering repeated sweeps for one SOC pays the staircase construction
// once). The optimizer's width cap must cover cfg.Params.MaxWidth.
func RunWith(opt *sched.Optimizer, cfg Config) (*Sweep, error) {
	return RunWithContext(context.Background(), opt, cfg)
}

// RunWithContext is RunWith with cancellation (see RunContext for the
// contract).
func RunWithContext(ctx context.Context, opt *sched.Optimizer, cfg Config) (*Sweep, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := opt.SOC()
	if cfg.WidthLo == 0 {
		cfg.WidthLo = 4
	}
	if cfg.WidthHi == 0 {
		cfg.WidthHi = 80
	}
	if cfg.WidthLo < 1 || cfg.WidthHi < cfg.WidthLo {
		return nil, fmt.Errorf("datavol: bad width range [%d,%d]", cfg.WidthLo, cfg.WidthHi)
	}
	n := cfg.WidthHi - cfg.WidthLo + 1
	samples := make([]Sample, n)
	errs := make([]error, n)
	// minFail tracks the lowest failing width index so far. Widths above it
	// are skipped — the sweep's outcome is already fixed to that error —
	// while lower widths still run, so the error finally returned is the
	// lowest failing width's, exactly as on the sequential path.
	var minFail atomic.Int64
	minFail.Store(int64(n))
	ferr := sched.ForEachContext(ctx, cfg.Workers, n, func(i int) {
		if int64(i) > minFail.Load() {
			return
		}
		w := cfg.WidthLo + i
		p := cfg.Params
		p.TAMWidth = w
		if cfg.Workers != 1 {
			p.Workers = 1 // don't oversubscribe the width pool
		} else if p.Workers == 0 {
			p.Workers = 1 // Workers == 1 means fully sequential
		}
		best, err := opt.SweepBestContext(ctx, p, cfg.Percents, cfg.Deltas)
		if err != nil {
			errs[i] = fmt.Errorf("datavol: width %d: %v", w, err)
			for {
				cur := minFail.Load()
				if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			return
		}
		samples[i] = Sample{TAMWidth: w, Time: best.Makespan, Volume: int64(w) * best.Makespan}
	})
	if ferr != nil {
		return nil, ferr // cancelled: the partial sweep is meaningless
	}
	if m := minFail.Load(); m < int64(n) {
		return nil, errs[m]
	}
	sw := &Sweep{SOC: s.Name, Samples: samples}
	sw.finalizeMinima()
	return sw, nil
}

// finalizeMinima recomputes MinTime/MinVolume (and their widths) from the
// samples. The minima seed from the first sample rather than a zero
// sentinel, so a theoretical zero-time sample cannot corrupt them.
func (sw *Sweep) finalizeMinima() {
	for i, smp := range sw.Samples {
		if i == 0 || smp.Time < sw.MinTime {
			sw.MinTime, sw.MinTimeWidth = smp.Time, smp.TAMWidth
		}
		if i == 0 || smp.Volume < sw.MinVolume {
			sw.MinVolume, sw.MinVolumeWidth = smp.Volume, smp.TAMWidth
		}
	}
}

// checkMinima rejects sweeps whose normalization minima are unusable: an
// empty sweep, or one built by hand / decoded from JSON with non-positive
// MinTime or MinVolume, would otherwise yield silent ±Inf/NaN costs.
func (sw *Sweep) checkMinima() error {
	if len(sw.Samples) == 0 {
		return fmt.Errorf("datavol: empty sweep")
	}
	if sw.MinTime <= 0 || sw.MinVolume <= 0 {
		return fmt.Errorf("datavol: sweep %q has non-positive minima (T_min=%d, D_min=%d); cost is undefined",
			sw.SOC, sw.MinTime, sw.MinVolume)
	}
	return nil
}

// Cost returns C(γ, W) for the sample, normalized by the sweep's minima.
// It panics with a descriptive message when the sweep's minima are
// non-positive (a hand-built or corrupt Sweep); EffectiveWidth reports the
// same condition as an error.
func (sw *Sweep) Cost(gamma float64, s Sample) float64 {
	if err := sw.checkMinima(); err != nil {
		panic(err)
	}
	return gamma*float64(s.Time)/float64(sw.MinTime) +
		(1-gamma)*float64(s.Volume)/float64(sw.MinVolume)
}

// CostCurve returns the C(γ, W) series over the sweep (Fig. 9(c)/(d)).
type CostPoint struct {
	TAMWidth int
	Cost     float64
}

// CostCurve evaluates the cost function at every swept width. Like Cost,
// it panics when the sweep is empty or its minima are non-positive.
func (sw *Sweep) CostCurve(gamma float64) []CostPoint {
	if err := sw.checkMinima(); err != nil {
		panic(err)
	}
	out := make([]CostPoint, len(sw.Samples))
	for i, s := range sw.Samples {
		out[i] = CostPoint{TAMWidth: s.TAMWidth, Cost: sw.Cost(gamma, s)}
	}
	return out
}

// Effective is the outcome of an effective-width identification: the W
// minimizing C(γ, ·) and the resulting time/volume (a Table 2 row).
type Effective struct {
	Gamma    float64
	CostMin  float64
	TAMWidth int
	Time     int64
	Volume   int64
}

// EffectiveWidth minimizes C(γ, ·) over the sweep. Ties break toward the
// smaller width (cheaper routing, per the paper's motivation).
func (sw *Sweep) EffectiveWidth(gamma float64) (Effective, error) {
	if gamma < 0 || gamma > 1 {
		return Effective{}, fmt.Errorf("datavol: gamma %v outside [0,1]", gamma)
	}
	if err := sw.checkMinima(); err != nil {
		return Effective{}, err
	}
	best := Effective{Gamma: gamma, CostMin: math.Inf(1)}
	for _, s := range sw.Samples {
		c := sw.Cost(gamma, s)
		if c < best.CostMin-1e-12 {
			best.CostMin = c
			best.TAMWidth = s.TAMWidth
			best.Time = s.Time
			best.Volume = s.Volume
		}
	}
	return best, nil
}

// MultisiteThroughput models the paper's multisite-testing motivation:
// given a tester with pinCount digital channels and a per-pin vector buffer
// of bufferDepth bits, a schedule at width W with per-pin depth T fits only
// when T <= bufferDepth, and the number of ICs testable in parallel is
// floor(pinCount / W). The returned figure is sites tested per second at
// the given tester cycle rate, or an error when the buffer is exceeded
// (requiring costly mid-test reloads).
func MultisiteThroughput(s Sample, pinCount int, bufferDepth int64, hz float64) (float64, error) {
	if s.TAMWidth > pinCount {
		return 0, fmt.Errorf("datavol: width %d exceeds tester pin count %d", s.TAMWidth, pinCount)
	}
	if s.Time > bufferDepth {
		return 0, fmt.Errorf("datavol: per-pin depth %d exceeds tester buffer %d", s.Time, bufferDepth)
	}
	sites := pinCount / s.TAMWidth
	perBatchSeconds := float64(s.Time) / hz
	return float64(sites) / perBatchSeconds, nil
}
