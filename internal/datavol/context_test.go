package datavol

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/sched"
)

// TestRunContextMatchesRun asserts nil and Background contexts leave the
// sweep byte-identical to the context-free path, sequential and parallel.
func TestRunContextMatchesRun(t *testing.T) {
	s, err := bench.ByName("demo8")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{WidthLo: 4, WidthHi: 20, Percents: []int{1, 5, 10}, Deltas: []int{0, 2}}
	for _, workers := range []int{1, 3} {
		cfg.Workers = workers
		want, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ctx := range []context.Context{nil, context.Background()} {
			got, err := RunContext(ctx, s, cfg)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d: RunContext differs from Run", workers)
			}
		}
	}
}

// TestRunWithContextCancelled asserts a pre-cancelled context aborts the
// sweep immediately with the context's error.
func TestRunWithContextCancelled(t *testing.T) {
	s, err := bench.ByName("demo8")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		sw, err := RunWithContext(ctx, opt, Config{WidthLo: 4, WidthHi: 40, Workers: workers})
		if sw != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got (%v, %v), want (nil, context.Canceled)", workers, sw, err)
		}
	}
}

// TestRunWithContextCancelMidSweep cancels a long sweep shortly after it
// starts and asserts the workers stop promptly: the call must return far
// sooner than the full sweep would take, with the context's error.
func TestRunWithContextCancelMidSweep(t *testing.T) {
	s, err := bench.ByName("p93791like")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		// The full 4..80 sweep over the default parameter grid takes on the
		// order of seconds; the per-grid-point cancellation checks fire
		// every few hundred microseconds.
		_, err := RunWithContext(ctx, opt, Config{WidthLo: 4, WidthHi: 80, Workers: 2})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("cancellation took %v to unwind", waited)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep never returned")
	}
}
