package bench

import (
	"bytes"
	"testing"

	"repro/internal/soc"
	"repro/internal/socfile"
)

// TestSynthClassicCompat pins the promoted generator to the classic
// `socgen -random` byte stream: a default config must reproduce exactly
// what the pre-promotion generator emitted (same rng draw sequence), so
// historical seeds keep their meaning.
func TestSynthClassicCompat(t *testing.T) {
	s := Synth(SynthConfig{Cores: 5, Seed: 3})
	var buf bytes.Buffer
	if err := socfile.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	const classic = `SocName rand5
TotalCores 5

Core 1 core1
  Inputs 87 Outputs 41 Bidirs 0
  ScanChains 18 : 170 171 172 167 170 169 173 172 174 173 168 169 173 169 173 168 174 168
  Test Patterns 242

Core 2 core2
  Inputs 49 Outputs 57 Bidirs 0
  Test Patterns 284

Core 3 core3
  Inputs 8 Outputs 6 Bidirs 0
  ScanChains 4 : 270 132 132 192
  Test Patterns 317 Kind bist Engine 1

Core 4 core4
  Inputs 64 Outputs 43 Bidirs 0
  ScanChains 8 : 53 134 165 132 174 179 43 96
  Test Patterns 156

Core 5 core5
  Inputs 31 Outputs 51 Bidirs 0
  ScanChains 25 : 161 161 157 155 155 160 160 161 155 162 158 158 160 158 162 160 155 157 162 159 160 157 155 161 157
  Test Patterns 247

Precedence 3 5
`
	if got := buf.String(); got != classic {
		t.Errorf("Synth default config diverged from the classic generator:\n got:\n%s\nwant:\n%s", got, classic)
	}
}

func TestSynthKnobs(t *testing.T) {
	t.Run("bist-single-engine", func(t *testing.T) {
		s := Synth(SynthConfig{Cores: 30, Seed: 2, BISTEngines: 1})
		bist := 0
		for _, c := range s.Cores {
			if c.Test.Kind == soc.BISTTest {
				bist++
				if c.Test.BISTEngine != 0 {
					t.Errorf("core %d: engine %d, want 0", c.ID, c.Test.BISTEngine)
				}
			}
		}
		if bist < 2 {
			t.Fatalf("expected >= 2 BIST cores in a 30-core mixed SOC, got %d", bist)
		}
	})
	t.Run("bist-disabled", func(t *testing.T) {
		s := Synth(SynthConfig{Cores: 30, Seed: 2, BISTEngines: -1})
		for _, c := range s.Cores {
			if c.Test.Kind == soc.BISTTest {
				t.Errorf("core %d is BIST with BISTEngines=-1", c.ID)
			}
		}
	})
	t.Run("bist-disabled-keeps-core-mix", func(t *testing.T) {
		// Disabling BIST must not shift the rng sequence: the structural
		// core mix has to match the default generation bit for bit.
		a := Synth(SynthConfig{Cores: 30, Seed: 2})
		b := Synth(SynthConfig{Cores: 30, Seed: 2, BISTEngines: -1})
		for i := range a.Cores {
			ca, cb := a.Cores[i], b.Cores[i]
			if ca.Inputs != cb.Inputs || ca.Outputs != cb.Outputs ||
				ca.ScanBits() != cb.ScanBits() || ca.Test.Patterns != cb.Test.Patterns {
				t.Errorf("core %d: structure diverged when BIST disabled", ca.ID)
			}
		}
	})
	t.Run("hierarchy", func(t *testing.T) {
		s := Synth(SynthConfig{Cores: 40, Seed: 5, HierarchyPct: 50})
		nested := 0
		for _, c := range s.Cores {
			if c.Parent != 0 {
				nested++
				if c.Parent >= c.ID {
					t.Errorf("core %d has parent %d >= its own ID", c.ID, c.Parent)
				}
			}
		}
		if nested == 0 {
			t.Error("HierarchyPct=50 produced a flat 40-core SOC")
		}
	})
	t.Run("power", func(t *testing.T) {
		s := Synth(SynthConfig{Cores: 20, Seed: 4, PowerValues: true, PowerBudgetPct: 110})
		if s.PowerMax <= 0 {
			t.Fatal("PowerBudgetPct did not set PowerMax")
		}
		for _, c := range s.Cores {
			if c.Test.Power <= 0 {
				t.Errorf("core %d: no explicit power value", c.ID)
			}
			if c.TestPower() > s.PowerMax {
				t.Errorf("core %d: power %d exceeds budget %d (unschedulable)", c.ID, c.TestPower(), s.PowerMax)
			}
		}
	})
	t.Run("constraints", func(t *testing.T) {
		s := Synth(SynthConfig{Cores: 15, Seed: 6, ExtraPrecedences: 5, ExtraConcurrencies: 5})
		if len(s.Precedences) < 5 {
			t.Errorf("got %d precedences, want >= 5", len(s.Precedences))
		}
		if len(s.Concurrencies) != 5 {
			t.Errorf("got %d concurrencies, want 5", len(s.Concurrencies))
		}
		for _, p := range s.Precedences {
			if p.Before >= p.After {
				t.Errorf("precedence %d<%d is not low-to-high (cycle risk)", p.Before, p.After)
			}
		}
	})
	t.Run("profiles", func(t *testing.T) {
		for _, prof := range []string{"mixed", "combo", "longchain"} {
			s := Synth(SynthConfig{Cores: 10, Seed: 3, Profile: prof})
			if err := s.Validate(); err != nil {
				t.Errorf("profile %s: %v", prof, err)
			}
		}
	})
}
