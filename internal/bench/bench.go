// Package bench provides the benchmark SOCs the DAC 2002 paper evaluates
// on: d695 (the academic Duke SOC built from ISCAS-85/89 circuits,
// reconstructed from the open literature) and synthetic stand-ins for the
// three industrial Philips SOCs p22810, p34392 and p93791, whose ITC'02
// benchmark files are not redistributable here.
//
// The synthetic SOCs match the originals in module count and core-type mix,
// and their pattern counts are calibrated (see calibrate.go) so that the
// total minimum rectangle area A = Σ_i min_w w·T_i(w) equals the value
// implied by the paper's published lower bounds — which pins the
// area-bound LB column of Table 1 to the paper's numbers exactly. Two
// cores are engineered to reproduce specific narratives:
//
//   - p34392like core 18 is the paper's bottleneck core: highest
//     Pareto-optimal width 10, minimum testing time exactly 544579 cycles,
//     and a T(9) within 7% of T(10) so the δ "bottleneck rescue" heuristic
//     is what recovers the SOC's minimum testing time.
//   - p93791like core 6 reproduces the Fig. 1 staircase shape: Pareto
//     plateau from width 47 to 64 at exactly 114317 cycles.
package bench

import (
	"fmt"
	"sync"

	"repro/internal/soc"
)

// Paper-implied total minimum areas (wire-cycles), derived from Table 1's
// area-dominated lower bounds: A = W · LB(W) at the smallest reported W.
const (
	AreaP22810 = 6743568  // 16 · 421473
	AreaP34392 = 14990112 // 16 · 936882
	AreaP93791 = 27990208 // 16 · 1749388
	// AreaD695Paper is the paper-implied area for d695 (16 · 41232).
	// d695 is real reconstructed data and is NOT calibrated; the measured
	// area lands within ~0.3% of this value (see EXPERIMENTS.md).
	AreaD695Paper = 659712
)

// D695 returns the academic d695 SOC: ten ISCAS-85/89 cores with the
// benchmark's published I/O, pattern, and scan-chain parameters.
func D695() *soc.SOC {
	s := &soc.SOC{
		Name: "d695",
		Cores: []*soc.Core{
			core(1, "c6288", 0, 32, 32, 0, nil, 12),
			core(2, "c7552", 0, 207, 108, 0, nil, 73),
			core(3, "s838", 0, 34, 1, 0, []int{32}, 75),
			core(4, "s9234", 0, 19, 22, 0, []int{54, 53, 52, 52}, 105),
			core(5, "s38584", 0, 38, 304, 0, chains(18, 45, 14, 44), 110),
			core(6, "s13207", 0, 62, 152, 0, chains(14, 40, 2, 39), 234),
			core(7, "s15850", 0, 77, 150, 0, chains(6, 34, 10, 33), 95),
			core(8, "s5378", 0, 35, 49, 0, []int{46, 45, 44, 44}, 97),
			core(9, "s35932", 0, 35, 320, 0, chains(32, 54, 0, 0), 12),
			core(10, "s38417", 0, 28, 106, 0, chains(4, 52, 28, 51), 68),
		},
	}
	mustValidate(s)
	return s
}

// Demo returns a small 8-core SOC used by the quickstart example and the
// Fig. 2 schedule illustration: a mix of combinational, scan, and BIST
// cores with one hierarchical pair and a precedence chain (memories first,
// per the paper's "memories tested earlier" motivation).
func Demo() *soc.SOC {
	s := &soc.SOC{
		Name: "demo8",
		Cores: []*soc.Core{
			core(1, "riscCPU", 0, 48, 40, 8, chains(8, 96, 4, 90), 220),
			core(2, "dmaCtrl", 1, 30, 26, 0, chains(4, 40, 0, 0), 120),
			core(3, "sram64k", 0, 24, 18, 0, chains(2, 128, 0, 0), 90),
			core(4, "uart", 0, 18, 12, 0, chains(2, 30, 0, 0), 60),
			core(5, "glueLogic", 0, 96, 64, 0, nil, 150),
			core(6, "dspFIR", 0, 36, 36, 0, chains(6, 70, 0, 0), 180),
			core(7, "romBIST", 0, 6, 4, 0, chains(1, 24, 0, 0), 140),
			core(8, "sramBIST", 0, 8, 4, 0, chains(1, 32, 0, 0), 160),
		},
		Precedences: []soc.Precedence{
			{Before: 3, After: 1}, // memory diagnosed before the CPU uses it
			{Before: 3, After: 2},
		},
		Concurrencies: []soc.Concurrency{
			{A: 5, B: 6}, // shared functional bus
		},
	}
	// The two BIST cores share on-chip engine 0.
	s.Cores[6].Test = soc.Test{Patterns: 140, Kind: soc.BISTTest, BISTEngine: 0}
	s.Cores[7].Test = soc.Test{Patterns: 160, Kind: soc.BISTTest, BISTEngine: 0}
	mustValidate(s)
	return s
}

var (
	onceP22810, onceP34392, onceP93791 sync.Once
	socP22810, socP34392, socP93791    *soc.SOC
)

// P22810Like returns the calibrated 28-core stand-in for Philips p22810.
func P22810Like() *soc.SOC {
	onceP22810.Do(func() {
		s := rawP22810()
		if err := calibrate(s, AreaP22810, adjustableIDs(s), trimCoreID(s)); err != nil {
			panic(fmt.Sprintf("bench: p22810like calibration: %v", err))
		}
		mustValidate(s)
		socP22810 = s
	})
	return socP22810.Clone()
}

// P34392Like returns the calibrated 19-core stand-in for Philips p34392,
// including the engineered bottleneck core 18.
func P34392Like() *soc.SOC {
	onceP34392.Do(func() {
		s := rawP34392()
		if err := calibrate(s, AreaP34392, adjustableIDs(s), trimCoreID(s)); err != nil {
			panic(fmt.Sprintf("bench: p34392like calibration: %v", err))
		}
		mustValidate(s)
		socP34392 = s
	})
	return socP34392.Clone()
}

// P93791Like returns the calibrated 32-core stand-in for Philips p93791,
// including the engineered Fig. 1 core 6.
func P93791Like() *soc.SOC {
	onceP93791.Do(func() {
		s := rawP93791()
		if err := calibrate(s, AreaP93791, adjustableIDs(s), trimCoreID(s)); err != nil {
			panic(fmt.Sprintf("bench: p93791like calibration: %v", err))
		}
		mustValidate(s)
		socP93791 = s
	})
	return socP93791.Clone()
}

// All returns the four benchmark SOCs in the paper's Table order.
func All() []*soc.SOC {
	return []*soc.SOC{D695(), P22810Like(), P34392Like(), P93791Like()}
}

// ByName returns a benchmark SOC by its name ("d695", "p22810like",
// "p34392like", "p93791like", "demo8").
func ByName(name string) (*soc.SOC, error) {
	switch name {
	case "d695":
		return D695(), nil
	case "p22810like", "p22810":
		return P22810Like(), nil
	case "p34392like", "p34392":
		return P34392Like(), nil
	case "p93791like", "p93791":
		return P93791Like(), nil
	case "demo8", "demo":
		return Demo(), nil
	}
	return nil, fmt.Errorf("bench: unknown SOC %q (want d695, p22810like, p34392like, p93791like, demo8)", name)
}

// core builds a scan-tested core.
func core(id int, name string, parent, in, out, bidir int, scan []int, patterns int) *soc.Core {
	return &soc.Core{
		ID: id, Name: name, Parent: parent,
		Inputs: in, Outputs: out, Bidirs: bidir,
		ScanChains: scan,
		Test:       soc.Test{Patterns: patterns, BISTEngine: -1},
	}
}

// bistCore builds a BIST-tested core attached to an engine.
func bistCore(id int, name string, parent, in, out int, scan []int, patterns, engine int) *soc.Core {
	c := core(id, name, parent, in, out, 0, scan, patterns)
	c.Test.Kind = soc.BISTTest
	c.Test.BISTEngine = engine
	return c
}

// chains builds a scan-chain list: n1 chains of length l1 then n2 of l2.
func chains(n1, l1, n2, l2 int) []int {
	out := make([]int, 0, n1+n2)
	for i := 0; i < n1; i++ {
		out = append(out, l1)
	}
	for i := 0; i < n2; i++ {
		out = append(out, l2)
	}
	return out
}

// repeat builds n chains of length l.
func repeat(n, l int) []int { return chains(n, l, 0, 0) }

func mustValidate(s *soc.SOC) {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
}
