package bench

import (
	"testing"

	"repro/internal/pareto"
	"repro/internal/soc"
)

func TestAllBenchmarksValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if err := Demo().Validate(); err != nil {
		t.Errorf("demo8: %v", err)
	}
}

func TestCoreCountsMatchPaper(t *testing.T) {
	counts := map[string]int{
		"d695":       10,
		"p22810like": 28,
		"p34392like": 19,
		"p93791like": 32,
	}
	for name, want := range counts {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(s.Cores); got != want {
			t.Errorf("%s has %d cores, want %d", name, got, want)
		}
	}
}

func TestCalibrationExact(t *testing.T) {
	targets := map[string]int64{
		"p22810like": AreaP22810,
		"p34392like": AreaP34392,
		"p93791like": AreaP93791,
	}
	for name, want := range targets {
		s, _ := ByName(name)
		got, err := MeasuredArea(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s area = %d, calibration target %d", name, got, want)
		}
	}
}

func TestD695AreaNearPaper(t *testing.T) {
	a, err := MeasuredArea(D695())
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(a-AreaD695Paper) / float64(AreaD695Paper)
	t.Logf("d695 area %d vs paper-implied %d (%.3f%%)", a, int64(AreaD695Paper), 100*diff)
	if diff < -0.01 || diff > 0.01 {
		t.Errorf("d695 reconstruction drifted beyond 1%%: %.3f%%", 100*diff)
	}
}

func TestBottleneckCore18(t *testing.T) {
	s := P34392Like()
	c := s.Core(18)
	ps, err := pareto.Compute(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.MaxParetoWidth(); got != 10 {
		t.Errorf("core 18 max Pareto width = %d, want 10", got)
	}
	if got := ps.MinTime(); got != 544579 {
		t.Errorf("core 18 min time = %d, want 544579 (paper)", got)
	}
	// T(9) within 10% of T(10): the α heuristic picks 9, δ must rescue.
	t9, t10 := ps.Time(9), ps.Time(10)
	if t9 <= t10 || t9 > t10*110/100 {
		t.Errorf("T(9)=%d not in (T(10), 1.1·T(10)]: δ narrative broken", t9)
	}
	if pref := ps.PreferredWidth(10, 0); pref != 9 {
		t.Errorf("α=10 δ=0 preferred width = %d, want 9", pref)
	}
	if pref := ps.PreferredWidth(10, 1); pref != 10 {
		t.Errorf("α=10 δ=1 preferred width = %d, want 10", pref)
	}
	// No other core exceeds the bottleneck's minimum time.
	for _, other := range s.Cores {
		po, err := pareto.Compute(other, 64)
		if err != nil {
			t.Fatal(err)
		}
		if po.MinTime() > 544579 {
			t.Errorf("core %d min time %d exceeds the designated bottleneck", other.ID, po.MinTime())
		}
	}
}

func TestFig1Core6(t *testing.T) {
	s := P93791Like()
	c := s.Core(6)
	ps, err := pareto.Compute(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.MaxParetoWidth(); got != 47 {
		t.Errorf("core 6 max Pareto width = %d, want 47", got)
	}
	for w := 47; w <= 64; w++ {
		if got := ps.Time(w); got != 114317 {
			t.Errorf("core 6 T(%d) = %d, want plateau 114317", w, got)
		}
	}
	if t46 := ps.Time(46); t46 <= 114317 {
		t.Errorf("core 6 T(46) = %d, must exceed the plateau", t46)
	}
}

func TestBuildersReturnIsolatedClones(t *testing.T) {
	a := P22810Like()
	b := P22810Like()
	a.Cores[0].Test.Patterns = 99999
	a.Cores[0].ScanChains = append(a.Cores[0].ScanChains, 12345)
	if b.Cores[0].Test.Patterns == 99999 {
		t.Fatal("builders share pattern state across calls")
	}
	c := P22810Like()
	if c.Cores[0].Test.Patterns == 99999 {
		t.Fatal("mutation leaked into the cached benchmark")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"d695", "p22810like", "p22810", "p34392like", "p93791like", "demo8", "demo"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestD695KnownCores(t *testing.T) {
	s := D695()
	c := s.Core(9) // s35932: 32 chains of 54, 12 patterns
	if c.Name != "s35932" || len(c.ScanChains) != 32 || c.ScanChains[0] != 54 || c.Test.Patterns != 12 {
		t.Errorf("s35932 data wrong: %+v", c)
	}
	if got := c.ScanBits(); got != 1728 {
		t.Errorf("s35932 scan bits = %d, want 1728", got)
	}
	c2 := s.Core(2) // c7552: combinational
	if len(c2.ScanChains) != 0 || c2.Inputs != 207 {
		t.Errorf("c7552 data wrong: %+v", c2)
	}
}

func TestSyntheticSOCsHaveRichStructure(t *testing.T) {
	// The stand-ins must exercise the full constraint machinery: some
	// hierarchy, some BIST engines with sharing, a mix of combinational
	// and scan cores.
	for _, name := range []string{"p22810like", "p34392like", "p93791like"} {
		s, _ := ByName(name)
		var hasParent, comb, scan bool
		engines := make(map[int]int)
		for _, c := range s.Cores {
			if c.Parent != 0 {
				hasParent = true
			}
			if len(c.ScanChains) == 0 {
				comb = true
			} else {
				scan = true
			}
			if c.Test.BISTEngine >= 0 {
				engines[c.Test.BISTEngine]++
			}
		}
		if !hasParent {
			t.Errorf("%s has no hierarchy", name)
		}
		if !comb || !scan {
			t.Errorf("%s lacks core-type mix (comb=%v scan=%v)", name, comb, scan)
		}
		shared := false
		for _, n := range engines {
			if n >= 2 {
				shared = true
			}
		}
		if !shared {
			t.Errorf("%s has no shared BIST engine", name)
		}
	}
}

func TestCalibrateRejectsImpossibleTargets(t *testing.T) {
	s := rawP22810()
	err := calibrate(s, 1, adjustableIDs(s), trimCoreID(s))
	if err == nil {
		t.Fatal("absurd target accepted")
	}
	if err := calibrate(rawP22810(), AreaP22810, adjustableIDs(s), 0); err == nil {
		t.Fatal("missing trim core accepted")
	}
}

func TestChainsHelper(t *testing.T) {
	got := chains(2, 10, 3, 7)
	want := []int{10, 10, 7, 7, 7}
	if len(got) != len(want) {
		t.Fatalf("chains = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chains = %v, want %v", got, want)
		}
	}
	if r := repeat(3, 5); len(r) != 3 || r[0] != 5 {
		t.Fatalf("repeat = %v", r)
	}
}

var _ = soc.SOC{}
