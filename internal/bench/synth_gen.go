package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/soc"
)

// SynthConfig tunes Synth, the seeded synthetic-SOC generator behind
// `socgen -random` and the regression corpus (package corpus). Every knob
// is deterministic: the same config always yields byte-identical SOCs.
//
// The zero value of every optional knob reproduces the classic generator
// (a mix of combinational glue, small and large scan cores, and a couple
// of BIST memories on two engines), so `socgen -random -cores N -seed S`
// keeps emitting exactly the bytes it always has.
type SynthConfig struct {
	// Name labels the SOC; empty means "rand<Cores>".
	Name string
	// Cores is the core count (default 16).
	Cores int
	// Seed seeds the generator and is used verbatim — every seed,
	// including 0, names a distinct deterministic SOC (the socgen flag
	// defaults to 1).
	Seed int64
	// Profile selects the core-size mix:
	//
	//	"mixed"     (default) glue + BIST memories + small and large scan
	//	"combo"     combinational-heavy: mostly glue, no BIST
	//	"longchain" few-but-deep scan chains (bottleneck-dominated SOCs)
	Profile string
	// BISTEngines is the number of distinct on-chip BIST engines that
	// generated BIST memories draw from: 0 means the classic two engines,
	// 1 funnels every memory onto one engine (maximum resource conflict),
	// and a negative value disables BIST cores entirely (memories become
	// plain scan cores).
	BISTEngines int
	// HierarchyPct gives each core (except core 1) that percent chance of
	// being parented under a lower-ID core, producing implicit parent/child
	// concurrency constraints. 0 keeps the SOC flat.
	HierarchyPct int
	// PowerValues assigns an explicit random power figure to every test
	// instead of the data-bits-per-pattern default.
	PowerValues bool
	// PowerBudgetPct, when > 0, sets the SOC's PowerMax to that percent of
	// the largest single-test power (>= 100 keeps every test schedulable;
	// values near 100 force near-serial schedules).
	PowerBudgetPct int
	// ExtraPrecedences adds that many random precedence edges on top of
	// the classic "memories before the last core" rule. Edges always point
	// from a lower core ID to a higher one, so the order stays acyclic.
	ExtraPrecedences int
	// ExtraConcurrencies adds that many random mutual-exclusion pairs.
	ExtraConcurrencies int
}

func (cfg SynthConfig) defaults() SynthConfig {
	if cfg.Cores == 0 {
		cfg.Cores = 16
	}
	if cfg.Profile == "" {
		cfg.Profile = "mixed"
	}
	if cfg.BISTEngines == 0 {
		cfg.BISTEngines = 2
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("rand%d", cfg.Cores)
	}
	return cfg
}

// Synth generates a plausible synthetic SOC from the config. The generator
// is pure: the same SynthConfig always returns an identical, validated SOC.
// It panics on an invalid config (non-positive core count, unknown profile)
// and on any generator invariant violation — both are programmer errors.
func Synth(cfg SynthConfig) *soc.SOC {
	cfg = cfg.defaults()
	if cfg.Cores < 1 {
		panic(fmt.Sprintf("bench: Synth core count %d < 1", cfg.Cores))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &soc.SOC{Name: cfg.Name}
	for id := 1; id <= cfg.Cores; id++ {
		s.Cores = append(s.Cores, synthCore(cfg, rng, id))
	}
	// Classic precedence rule: memories (BIST) finish before the last core
	// begins — the paper's "memories tested earlier" motivation.
	for _, c := range s.Cores {
		if c.Test.Kind == soc.BISTTest && c.ID != cfg.Cores {
			s.Precedences = append(s.Precedences, soc.Precedence{Before: c.ID, After: cfg.Cores})
		}
	}
	// Every knob below draws from the rng only when enabled, so the default
	// config consumes exactly the classic draw sequence.
	if cfg.HierarchyPct > 0 && cfg.Cores > 1 {
		for _, c := range s.Cores[1:] {
			if rng.Intn(100) < cfg.HierarchyPct {
				c.Parent = 1 + rng.Intn(c.ID-1)
			}
		}
	}
	if cfg.PowerValues {
		for _, c := range s.Cores {
			c.Test.Power = 50 + rng.Intn(950)
		}
	}
	if cfg.PowerBudgetPct > 0 {
		max := 0
		for _, c := range s.Cores {
			if p := c.TestPower(); p > max {
				max = p
			}
		}
		s.PowerMax = (max*cfg.PowerBudgetPct + 99) / 100
	}
	for i := 0; i < cfg.ExtraPrecedences && cfg.Cores > 1; i++ {
		before := 1 + rng.Intn(cfg.Cores-1)
		after := before + 1 + rng.Intn(cfg.Cores-before)
		s.Precedences = append(s.Precedences, soc.Precedence{Before: before, After: after})
	}
	for i := 0; i < cfg.ExtraConcurrencies && cfg.Cores > 1; i++ {
		a := 1 + rng.Intn(cfg.Cores)
		b := 1 + rng.Intn(cfg.Cores)
		if a == b {
			b = a%cfg.Cores + 1
		}
		s.Concurrencies = append(s.Concurrencies, soc.Concurrency{A: a, B: b})
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("bench: Synth invariant: %v", err)) // generator bug
	}
	return s
}

// synthCore draws one core. The "mixed" branch is the classic generator
// verbatim (same rng call sequence), so default configs stay byte-stable.
func synthCore(cfg SynthConfig, rng *rand.Rand, id int) *soc.Core {
	c := &soc.Core{
		ID:   id,
		Name: fmt.Sprintf("core%d", id),
		Test: soc.Test{BISTEngine: -1},
	}
	switch cfg.Profile {
	case "mixed":
		switch k := rng.Intn(10); {
		case k < 2: // combinational glue
			c.Inputs = 20 + rng.Intn(120)
			c.Outputs = 10 + rng.Intn(80)
			c.Test.Patterns = 30 + rng.Intn(300)
		case k < 4: // BIST memory
			c.Inputs = 8 + rng.Intn(20)
			c.Outputs = 4 + rng.Intn(16)
			nc := 1 + rng.Intn(4)
			for j := 0; j < nc; j++ {
				c.ScanChains = append(c.ScanChains, 80+rng.Intn(200))
			}
			c.Test.Patterns = 100 + rng.Intn(300)
			if cfg.BISTEngines > 0 {
				c.Test.Kind = soc.BISTTest
				c.Test.BISTEngine = rng.Intn(cfg.BISTEngines)
			} else {
				// BIST disabled: keep the memory as an external scan test,
				// but burn the engine draw so the core mix is unchanged
				// relative to the classic generator.
				_ = rng.Intn(2)
			}
		case k < 8: // small-to-medium scan core
			c.Inputs = 15 + rng.Intn(60)
			c.Outputs = 10 + rng.Intn(50)
			nc := 2 + rng.Intn(10)
			for j := 0; j < nc; j++ {
				c.ScanChains = append(c.ScanChains, 30+rng.Intn(150))
			}
			c.Test.Patterns = 50 + rng.Intn(250)
		default: // large scan core
			c.Inputs = 30 + rng.Intn(80)
			c.Outputs = 25 + rng.Intn(70)
			nc := 12 + rng.Intn(28)
			l := 90 + rng.Intn(140)
			for j := 0; j < nc; j++ {
				c.ScanChains = append(c.ScanChains, l+rng.Intn(8))
			}
			c.Test.Patterns = 120 + rng.Intn(320)
		}
	case "combo":
		// Mostly combinational glue with a thin scan tail: wide wrappers,
		// shallow tests, no BIST.
		if rng.Intn(10) < 8 {
			c.Inputs = 40 + rng.Intn(160)
			c.Outputs = 20 + rng.Intn(120)
			c.Test.Patterns = 40 + rng.Intn(400)
		} else {
			c.Inputs = 10 + rng.Intn(40)
			c.Outputs = 8 + rng.Intn(30)
			nc := 1 + rng.Intn(4)
			for j := 0; j < nc; j++ {
				c.ScanChains = append(c.ScanChains, 20+rng.Intn(60))
			}
			c.Test.Patterns = 30 + rng.Intn(120)
		}
	case "longchain":
		// Few but deep chains: the per-core staircases flatten early, so
		// the bottleneck term dominates the lower bound.
		c.Inputs = 10 + rng.Intn(30)
		c.Outputs = 8 + rng.Intn(24)
		nc := 1 + rng.Intn(3)
		l := 600 + rng.Intn(900)
		for j := 0; j < nc; j++ {
			c.ScanChains = append(c.ScanChains, l+rng.Intn(40))
		}
		c.Test.Patterns = 80 + rng.Intn(240)
	default:
		panic(fmt.Sprintf("bench: Synth profile %q (want mixed, combo, longchain)", cfg.Profile))
	}
	return c
}
