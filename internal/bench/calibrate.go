package bench

import (
	"fmt"

	"repro/internal/pareto"
	"repro/internal/soc"
)

// calibrationWidthCap is the per-core width cap used when measuring areas,
// matching the paper's w_max = 64.
const calibrationWidthCap = 64

// calibrate adjusts the SOC in place until its total minimum rectangle
// area A = Σ_i min_w w·T_i(w) equals target exactly. Three phases:
//
//  1. Proportional: scale the pattern counts of the adjustable cores by
//     the ratio of the remaining gap.
//  2. Greedy integer: repeatedly add/remove single patterns on the
//     adjustable core whose per-pattern area step best fits the gap.
//  3. Trim: close the final sub-pattern gap with the trim core, whose
//     area is Inputs + 2·scanlen + 1 at one pattern — adjustable in unit
//     steps via its input count.
func calibrate(s *soc.SOC, target int64, adjustable []int, trimID int) error {
	if trimID == 0 {
		return fmt.Errorf("no trim core")
	}
	areas := make(map[int]int64, len(s.Cores))
	var total int64
	for _, c := range s.Cores {
		a, err := minArea(c)
		if err != nil {
			return err
		}
		areas[c.ID] = a
		total += a
	}

	// Phase 1: proportional pattern scaling.
	var adjArea int64
	for _, id := range adjustable {
		adjArea += areas[id]
	}
	gap := target - total
	if adjArea > 0 && gap != 0 {
		factor := float64(adjArea+gap) / float64(adjArea)
		if factor <= 0 {
			return fmt.Errorf("target %d too small: adjustable area %d, fixed %d", target, adjArea, total-adjArea)
		}
		for _, id := range adjustable {
			c := s.Core(id)
			np := int(float64(c.Test.Patterns)*factor + 0.5)
			if np < 1 {
				np = 1
			}
			c.Test.Patterns = np
			a, err := minArea(c)
			if err != nil {
				return err
			}
			total += a - areas[id]
			areas[id] = a
		}
	}

	// Phase 2: greedy single-pattern steps. Each iteration moves the total
	// strictly toward the target or stops when no step fits.
	for iter := 0; iter < 100000; iter++ {
		gap = target - total
		if gap == 0 {
			break
		}
		bestID, bestStep := 0, int64(0)
		for _, id := range adjustable {
			c := s.Core(id)
			dir := 1
			if gap < 0 {
				dir = -1
				if c.Test.Patterns <= 1 {
					continue
				}
			}
			c.Test.Patterns += dir
			a, err := minArea(c)
			c.Test.Patterns -= dir
			if err != nil {
				return err
			}
			step := a - areas[id] // signed change in total
			// Accept steps that reduce |gap| without crossing zero.
			if gap > 0 && step > 0 && step <= gap && step > bestStep {
				bestID, bestStep = id, step
			}
			if gap < 0 && step < 0 && step >= gap && step < bestStep {
				bestID, bestStep = id, step
			}
		}
		if bestID == 0 {
			break // remaining gap smaller than any pattern step: trim phase
		}
		c := s.Core(bestID)
		if gap > 0 {
			c.Test.Patterns++
		} else {
			c.Test.Patterns--
		}
		a, err := minArea(c)
		if err != nil {
			return err
		}
		total += a - areas[bestID]
		areas[bestID] = a
	}

	// Phase 3: trim core inputs. area = inputs + 2·L + 1 at w=1.
	gap = target - total
	trim := s.Core(trimID)
	newInputs := trim.Inputs + int(gap)
	maxInputs := 2 * trim.ScanBits() // keep min-area width at w=1
	if newInputs < 0 || newInputs > maxInputs {
		return fmt.Errorf("trim gap %d outside trim range [%d,%d] (inputs %d)",
			gap, -trim.Inputs, maxInputs-trim.Inputs, trim.Inputs)
	}
	trim.Inputs = newInputs
	a, err := minArea(trim)
	if err != nil {
		return err
	}
	total += a - areas[trimID]
	if total != target {
		return fmt.Errorf("calibration missed: area %d, target %d", total, target)
	}
	return nil
}

// minArea computes min_w w·T(w) for one core with the standard width cap.
func minArea(c *soc.Core) (int64, error) {
	ps, err := pareto.Compute(c, calibrationWidthCap)
	if err != nil {
		return 0, err
	}
	return ps.MinArea(), nil
}

// MeasuredArea reports Σ_i min_w w·T_i(w) for any SOC at the calibration
// width cap — the quantity the synthetic SOCs are calibrated on.
func MeasuredArea(s *soc.SOC) (int64, error) {
	var total int64
	for _, c := range s.Cores {
		a, err := minArea(c)
		if err != nil {
			return 0, err
		}
		total += a
	}
	return total, nil
}
