package bench

import "repro/internal/soc"

// The synthetic Philips-like SOCs below are authored, not copied: the
// ITC'02 industrial benchmark files are not available offline. Core-type
// mix, module counts, and hierarchy mirror the published summaries; exact
// per-core numbers are invented and then calibrated (calibrate.go) so the
// SOC-level minimum rectangle area matches the paper's lower bounds.
//
// Core naming: the trim core (see calibrate.go) is always called "trim";
// engineered cores carry their paper roles in the name.

// rawP22810 is the uncalibrated 28-core p22810 stand-in: one hierarchical
// controller with two children, three large scan cores, six mid-size
// peripherals, a tail of small logic and combinational glue cores, and two
// BIST memories sharing engine 0 (plus one on engine 1).
func rawP22810() *soc.SOC {
	s := &soc.SOC{
		Name: "p22810like",
		Cores: []*soc.Core{
			core(1, "sysCtrl", 0, 28, 56, 10, repeat(6, 90), 160),
			core(2, "usbIf", 1, 50, 40, 0, repeat(8, 220), 210),
			core(3, "uartQuad", 1, 34, 30, 0, repeat(4, 60), 110),
			core(4, "gpio", 0, 61, 52, 0, nil, 190),
			core(5, "mpegDec", 0, 80, 64, 0, chains(16, 170, 13, 168), 250),
			core(6, "dmaEng", 0, 40, 36, 0, repeat(6, 110), 140),
			core(7, "timerBlk", 0, 22, 18, 0, repeat(2, 48), 80),
			core(8, "enetMac", 0, 77, 58, 0, repeat(12, 130), 240),
			core(9, "spiFlashIf", 0, 26, 22, 0, repeat(2, 70), 95),
			bistCore(10, "sram32k", 0, 20, 16, repeat(4, 200), 300, 0),
			core(11, "dspCore", 0, 60, 40, 0, repeat(32, 150), 230),
			core(12, "i2cDual", 0, 18, 14, 0, repeat(2, 40), 70),
			core(13, "serdes", 0, 30, 28, 0, repeat(10, 160), 250),
			core(14, "crcUnit", 0, 48, 33, 0, nil, 260),
			core(15, "pwmBlk", 0, 20, 16, 0, repeat(2, 36), 65),
			bistCore(16, "sram16k", 0, 16, 12, repeat(4, 180), 280, 0),
			core(17, "pciBridge", 0, 66, 50, 0, repeat(14, 120), 230),
			core(18, "intCtrl", 0, 35, 24, 0, repeat(3, 55), 100),
			core(19, "aluComb", 0, 88, 44, 0, nil, 330),
			core(20, "keypadIf", 0, 24, 20, 0, repeat(2, 44), 75),
			core(21, "fifoFabric", 0, 44, 52, 0, repeat(24, 180), 270),
			core(22, "adcCtrl", 0, 28, 22, 0, repeat(3, 66), 105),
			bistCore(23, "dpram8k", 0, 14, 10, repeat(2, 160), 240, 1),
			core(24, "videoScaler", 0, 42, 38, 0, repeat(16, 100), 260),
			core(25, "muxComb", 0, 72, 36, 0, nil, 160),
			core(26, "watchdog", 0, 16, 12, 0, repeat(1, 40), 55),
			core(27, "audioCodec", 0, 36, 32, 0, repeat(6, 260), 250),
			core(28, "trim", 0, 600, 0, 0, []int{400}, 1),
		},
	}
	return s
}

// rawP34392 is the uncalibrated 19-core p34392 stand-in. Core 18 is the
// engineered bottleneck: one 1459-bit scan chain plus 45 chains of 260
// bits and 372 patterns gives T(10) = 1460·372 + 1459 = 544579 cycles at
// its highest Pareto width 10, with T(9) = 582252 (6.9% above) so the
// preferred-width heuristic picks 9 wires for α ≥ 7 and only the δ ≥ 1
// promotion recovers the SOC's minimum testing time (the paper's §6
// narrative).
func rawP34392() *soc.SOC {
	s := &soc.SOC{
		Name: "p34392like",
		Cores: []*soc.Core{
			core(1, "busMatrix", 0, 40, 44, 12, repeat(8, 80), 150),
			core(2, "cpuCluster", 0, 70, 56, 0, repeat(40, 180), 300),
			core(3, "mmu", 2, 30, 26, 0, repeat(6, 90), 130),
			core(4, "fpu", 2, 36, 32, 0, repeat(8, 120), 170),
			core(5, "gfx2d", 0, 52, 46, 0, repeat(16, 160), 390),
			bistCore(6, "sram128k", 0, 22, 18, repeat(6, 240), 320, 0),
			core(7, "l2cacheCtl", 0, 50, 42, 0, repeat(20, 250), 430),
			core(8, "tagRam", 7, 18, 14, 0, repeat(4, 130), 120),
			core(9, "displayIf", 0, 46, 40, 0, repeat(16, 160), 380),
			core(10, "camIf", 0, 38, 34, 0, repeat(12, 140), 360),
			core(11, "jpegCodec", 0, 44, 40, 0, repeat(16, 150), 400),
			core(12, "glueComb", 0, 90, 60, 0, nil, 280),
			bistCore(13, "rom64k", 0, 12, 8, repeat(2, 120), 200, 0),
			core(14, "ioCtrl", 0, 32, 28, 0, repeat(4, 70), 110),
			core(15, "smartcardIf", 0, 20, 16, 0, repeat(2, 50), 85),
			core(16, "dmac", 0, 34, 30, 0, repeat(6, 100), 140),
			core(17, "sysTimers", 0, 24, 18, 0, repeat(2, 42), 75),
			core(18, "memArrayCore18", 0, 0, 0, 0, append([]int{1459}, repeat(45, 260)...), 372),
			core(19, "trim", 0, 600, 0, 0, []int{400}, 1),
		},
	}
	return s
}

// rawP93791 is the uncalibrated 32-core p93791 stand-in. Core 6 is the
// engineered Fig. 1 core: one 437-bit chain plus 92 chains of 210 bits and
// 260 patterns gives the plateau T(47..64) = 438·260 + 437 = 114317 cycles
// with highest Pareto width 47.
func rawP93791() *soc.SOC {
	s := &soc.SOC{
		Name: "p93791like",
		Cores: []*soc.Core{
			core(1, "nocRouter", 0, 44, 48, 16, repeat(10, 90), 170),
			core(2, "cpu0", 0, 72, 60, 0, repeat(44, 190), 330),
			core(3, "cpu1", 0, 72, 60, 0, repeat(44, 190), 330),
			core(4, "l2slice0", 0, 48, 40, 0, repeat(24, 230), 420),
			core(5, "vectorUnit", 0, 64, 52, 0, repeat(36, 170), 380),
			core(6, "fig1Core6", 0, 109, 32, 0, append([]int{437}, repeat(92, 210)...), 260),
			core(7, "ddrCtl", 0, 56, 48, 0, repeat(20, 200), 410),
			bistCore(8, "sram256k", 0, 24, 20, repeat(8, 260), 340, 0),
			core(9, "pcieRoot", 0, 60, 50, 0, repeat(18, 180), 390),
			core(10, "gbeSwitch", 0, 54, 46, 0, repeat(16, 190), 370),
			core(11, "cryptoEng", 0, 40, 36, 0, repeat(12, 150), 300),
			core(12, "h264Dec", 0, 50, 44, 0, repeat(28, 160), 360),
			core(13, "audioDsp", 0, 38, 34, 0, repeat(10, 140), 280),
			core(14, "glue0", 0, 84, 52, 0, nil, 240),
			bistCore(15, "dpram32k", 0, 16, 12, repeat(4, 180), 260, 1),
			core(16, "usb3Phy", 0, 34, 30, 0, repeat(6, 110), 190),
			core(17, "sataCtl", 0, 36, 32, 0, repeat(8, 120), 210),
			core(18, "ispPipe", 0, 58, 50, 0, repeat(30, 150), 350),
			core(19, "mipiCsi", 0, 28, 24, 0, repeat(4, 90), 150),
			core(20, "ticker", 2, 18, 14, 0, repeat(1, 36), 60),
			core(21, "l2slice1", 0, 48, 40, 0, repeat(24, 230), 420),
			core(22, "spisQuad", 0, 22, 18, 0, repeat(2, 48), 80),
			core(23, "i3cHub", 9, 20, 16, 0, repeat(2, 44), 70),
			bistCore(24, "rom128k", 0, 14, 10, repeat(2, 140), 220, 1),
			core(25, "fabricComb", 0, 96, 58, 0, nil, 310),
			core(26, "gpioWide", 0, 57, 49, 0, nil, 180),
			core(27, "tempSensorIf", 0, 14, 10, 0, repeat(1, 30), 50),
			core(28, "secBoot", 0, 26, 22, 0, repeat(4, 80), 130),
			core(29, "modemDfe", 0, 46, 40, 0, repeat(14, 160), 320),
			core(30, "rtcBlk", 0, 12, 10, 0, repeat(1, 28), 45),
			core(31, "padRing", 0, 68, 38, 0, nil, 140),
			core(32, "trim", 0, 600, 0, 0, []int{400}, 1),
		},
	}
	return s
}

// adjustableIDs returns the cores whose pattern counts calibration may
// scale: everything except engineered cores (pinned to exact paper
// constants) and the trim core.
func adjustableIDs(s *soc.SOC) []int {
	var out []int
	for _, c := range s.Cores {
		switch c.Name {
		case "trim", "memArrayCore18", "fig1Core6":
			continue
		}
		out = append(out, c.ID)
	}
	return out
}

// trimCoreID locates the "trim" core.
func trimCoreID(s *soc.SOC) int {
	for _, c := range s.Cores {
		if c.Name == "trim" {
			return c.ID
		}
	}
	return 0
}
