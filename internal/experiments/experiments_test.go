package experiments

import (
	"testing"

	"repro/internal/bench"
)

// Small grids keep these tests quick; socbench runs the full defaults.
var (
	testPercents = []int{5, 10, 20}
	testDeltas   = []int{0, 1}
)

func TestTable1Shapes(t *testing.T) {
	s := bench.D695()
	rows, err := Table1(s, testPercents, testDeltas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for i, r := range rows {
		if r.LowerBound <= 0 {
			t.Fatalf("row %d: LB %d", i, r.LowerBound)
		}
		// Every regime respects the lower bound.
		for _, v := range []int64{r.NonPreemptive, r.Preemptive, r.PowerConstrained} {
			if v < r.LowerBound {
				t.Fatalf("W=%d: time %d below LB %d", r.TAMWidth, v, r.LowerBound)
			}
		}
		// Larger widths never slow the non-preemptive schedule down much:
		// allow small heuristic inversions but not gross ones.
		if i > 0 && r.NonPreemptive > rows[i-1].NonPreemptive {
			t.Errorf("non-preemptive time rose from W=%d (%d) to W=%d (%d)",
				rows[i-1].TAMWidth, rows[i-1].NonPreemptive, r.TAMWidth, r.NonPreemptive)
		}
	}
}

func TestTable1WidthsPerSOC(t *testing.T) {
	if w := Table1Widths("p34392like"); w[1] != 24 || w[3] != 32 {
		t.Fatalf("p34392 widths %v", w)
	}
	if w := Table1Widths("d695"); w[3] != 64 {
		t.Fatalf("d695 widths %v", w)
	}
}

func TestFig1PlateauStructure(t *testing.T) {
	s := bench.P93791Like()
	pts, err := Fig1(s, 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 64 {
		t.Fatalf("got %d points", len(pts))
	}
	// The engineered core: Pareto plateau 47..64 at 114317 cycles.
	for _, p := range pts[46:] {
		if p.Time != 114317 {
			t.Fatalf("T(%d) = %d, want 114317", p.Width, p.Time)
		}
	}
	if !pts[46].Pareto {
		t.Fatal("width 47 not marked Pareto")
	}
	for _, p := range pts[47:] {
		if p.Pareto {
			t.Fatalf("width %d marked Pareto beyond the plateau start", p.Width)
		}
	}
	if _, err := Fig1(s, 99, 64); err == nil {
		t.Fatal("unknown core accepted")
	}
}

func TestFig9AndTable2(t *testing.T) {
	s := bench.Demo()
	f9, err := Fig9Sweep(s, 6, 20, testPercents, testDeltas, 0)
	if err != nil {
		t.Fatal(err)
	}
	sw := f9.Sweep
	if len(sw.Samples) != 15 {
		t.Fatalf("%d samples", len(sw.Samples))
	}
	res, err := Table2(f9)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinTime != sw.MinTime || res.MinVolume != sw.MinVolume {
		t.Fatal("Table2 minima disagree with the sweep")
	}
	if len(res.Rows) == 0 {
		t.Fatal("no gamma rows")
	}
	for _, r := range res.Rows {
		if r.WEff < 6 || r.WEff > 20 {
			t.Fatalf("γ=%v effective width %d outside sweep", r.Gamma, r.WEff)
		}
		if r.VolAtW != int64(r.WEff)*r.TimeAtW {
			t.Fatalf("γ=%v: D != W·T", r.Gamma)
		}
		if r.CostMin < 1 {
			t.Fatalf("γ=%v: C_min %v < 1", r.Gamma, r.CostMin)
		}
	}
}

func TestTable2GammasPerPaper(t *testing.T) {
	if g := Table2Gammas("d695"); len(g) != 3 || g[0] != 0.1 {
		t.Fatalf("d695 gammas %v", g)
	}
	if g := Table2Gammas("p22810like"); g[0] != 0.01 {
		t.Fatalf("p22810 gammas %v", g)
	}
	if g := Table2Gammas("unknown"); len(g) != 3 {
		t.Fatalf("default gammas %v", g)
	}
}

// TestAblationDeltaNarrative reproduces the paper's §6 p34392 story: with
// α=10 and δ=0 the bottleneck core prefers 9 wires and the SOC misses its
// minimum; sweeping δ recovers T = 544579 at W=32.
func TestAblationDeltaNarrative(t *testing.T) {
	rows, err := AblationDelta(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BottleneckPrefDelta0 != 9 {
			t.Errorf("W=%d: δ=0 pref = %d, want 9", r.TAMWidth, r.BottleneckPrefDelta0)
		}
		if r.MakespanDeltaSwept > r.MakespanDelta0 {
			t.Errorf("W=%d: δ sweep worsened %d -> %d", r.TAMWidth, r.MakespanDelta0, r.MakespanDeltaSwept)
		}
		if r.TAMWidth == 32 {
			// At α=10 alone the swept-δ schedule lands within 0.5% of the
			// bottleneck bound; the exact 544579 needs the full α sweep
			// (asserted in TestFullSweepHitsBottleneckMinimum).
			if r.MakespanDeltaSwept > 544579*1005/1000 {
				t.Errorf("W=32 with δ swept: %d, want within 0.5%% of 544579", r.MakespanDeltaSwept)
			}
			if r.MakespanDelta0 <= 544579 {
				t.Errorf("W=32 δ=0 already optimal (%d): narrative lost", r.MakespanDelta0)
			}
		}
	}
}

func TestBaselinesRows(t *testing.T) {
	s := bench.D695()
	rows, err := Baselines(s, []int{16, 32}, 2, testPercents, testDeltas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Flexible <= 0 || r.FixedWidth <= 0 || r.NFDH <= 0 || r.FFDH <= 0 {
			t.Fatalf("empty cells: %+v", r)
		}
		// FFDH <= NFDH is a theorem for classical height-minimizing shelf
		// packing but NOT for the time-shelf transposition here (shelf span
		// is the longest member's test time, so an earlier-fit can lengthen
		// a shelf). Log the relation rather than asserting it.
		t.Logf("W=%d flexible=%d fixed=%d NFDH=%d FFDH=%d", r.TAMWidth, r.Flexible, r.FixedWidth, r.NFDH, r.FFDH)
	}
}

// TestFullSweepHitsBottleneckMinimum pins the paper's headline p34392
// result: with the full parameter sweep, T(W=32) equals the bottleneck
// core's minimum testing time, 544579 cycles.
func TestFullSweepHitsBottleneckMinimum(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	s := bench.P34392Like()
	rows, err := Table1(s, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.TAMWidth != 32 || last.NonPreemptive != 544579 {
		t.Errorf("W=%d non-preemptive = %d, want exactly 544579", last.TAMWidth, last.NonPreemptive)
	}
}

func TestAblationHeuristicsRows(t *testing.T) {
	s := bench.D695()
	rows, err := AblationHeuristics(s, []int{32}, testPercents, testDeltas, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Greedy heuristics are not monotone: an ablated variant can win a
	// particular (SOC, W) point — at d695 W=32 disabling the widening
	// heuristic gains ~2.7% (a real finding, recorded in EXPERIMENTS.md).
	// The full algorithm must stay within 5% of the best variant.
	best := r.Full
	for _, v := range []int64{r.NoInsert, r.NoWiden, r.Neither} {
		if v < best {
			best = v
		}
	}
	if r.Full*100 > best*105 {
		t.Errorf("full %d more than 5%% behind the best ablated variant %d: %+v", r.Full, best, r)
	}
	t.Logf("full=%d noInsert=%d noWiden=%d neither=%d", r.Full, r.NoInsert, r.NoWiden, r.Neither)
}
