// Package experiments regenerates every table and figure of the DAC 2002
// paper's evaluation section on the repository's benchmark SOCs: Table 1
// (wrapper/TAM co-optimization and test scheduling under four regimes),
// Table 2 (effective TAM widths for tester data volume reduction), Fig. 1
// (a core's testing-time staircase), and Fig. 9 (T, D, and cost curves
// versus W), plus the ablations DESIGN.md calls out.
package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/datavol"
	"repro/internal/lb"
	"repro/internal/pareto"
	"repro/internal/sched"
	"repro/internal/soc"
)

// PowerBudgetFactorPct is the default power budget as a percentage of the
// largest single-test power (the paper does not publish its constant; 110%
// binds firmly, producing the Table-1 power column's characteristic growth
// with W).
const PowerBudgetFactorPct = 110

// PreemptionBudget is the paper's Table-1 setting: maxpreempts = 2 for the
// larger cores.
const PreemptionBudget = 2

// Table1Widths returns the paper's Table 1 width column for a benchmark.
func Table1Widths(name string) []int {
	if name == "p34392like" || name == "p34392" {
		return []int{16, 24, 28, 32}
	}
	return []int{16, 32, 48, 64}
}

// Table1Row is one (SOC, W) row of Table 1.
type Table1Row struct {
	SOC        string
	TAMWidth   int
	LowerBound int64
	// NonPreemptive, Preemptive, PowerConstrained are the scheduled SOC
	// testing times under the three regimes (power-constrained includes
	// preemption, as in the paper).
	NonPreemptive    int64
	Preemptive       int64
	PowerConstrained int64
	// Preemptions counts resume-after-gap events in the power run.
	Preemptions int
	// PowerMax echoes the budget used.
	PowerMax int
}

// Table1 regenerates Table 1 for one SOC. percents/deltas override the
// sweep grid (nil = defaults); workers bounds sweep concurrency
// (0 = GOMAXPROCS, 1 = sequential).
func Table1(s *soc.SOC, percents, deltas []int, workers int) ([]Table1Row, error) {
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		return nil, err
	}
	// The optimizer already holds every Pareto staircase; derive the
	// preemption policy and the lower bounds from its cache instead of
	// redesigning wrappers per width.
	mp, err := opt.LargerCorePreemptions(PreemptionBudget)
	if err != nil {
		return nil, err
	}
	pmax := sched.DefaultPowerBudget(s, PowerBudgetFactorPct)
	var rows []Table1Row
	for _, w := range Table1Widths(s.Name) {
		bound, err := lb.FromSets(opt.ParetoSets(), w, sched.DefaultMaxWidth)
		if err != nil {
			return nil, err
		}
		np, err := opt.SweepBest(sched.Params{TAMWidth: w, Workers: workers}, percents, deltas)
		if err != nil {
			return nil, err
		}
		pre, err := opt.SweepBest(sched.Params{TAMWidth: w, MaxPreemptions: mp, Workers: workers}, percents, deltas)
		if err != nil {
			return nil, err
		}
		pw, err := opt.SweepBest(sched.Params{TAMWidth: w, MaxPreemptions: mp, PowerMax: pmax, Workers: workers}, percents, deltas)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, a := range pw.Assignments {
			n += a.Preemptions
		}
		rows = append(rows, Table1Row{
			SOC:              s.Name,
			TAMWidth:         w,
			LowerBound:       bound.Value(),
			NonPreemptive:    np.Makespan,
			Preemptive:       pre.Makespan,
			PowerConstrained: pw.Makespan,
			Preemptions:      n,
			PowerMax:         pmax,
		})
	}
	return rows, nil
}

// Fig1Point is one point of the Fig. 1 staircase.
type Fig1Point struct {
	Width  int
	Time   int64
	Pareto bool
}

// Fig1 regenerates the Fig. 1 staircase: testing time versus TAM width for
// the designated core (the paper uses Core 6 of p93791; our p93791like
// embeds an engineered equivalent with the same plateau structure).
func Fig1(s *soc.SOC, coreID, maxWidth int) ([]Fig1Point, error) {
	c := s.Core(coreID)
	if c == nil {
		return nil, fmt.Errorf("experiments: no core %d in %s", coreID, s.Name)
	}
	ps, err := pareto.Compute(c, maxWidth)
	if err != nil {
		return nil, err
	}
	isPareto := make(map[int]bool)
	for _, p := range ps.Points {
		isPareto[p.Width] = true
	}
	var out []Fig1Point
	for _, p := range ps.Staircase() {
		out = append(out, Fig1Point{Width: p.Width, Time: p.Time, Pareto: isPareto[p.Width]})
	}
	return out, nil
}

// Fig9 holds the sweep behind Fig. 9 and Table 2 for one SOC.
type Fig9 struct {
	Sweep *datavol.Sweep
}

// Fig9Sweep runs the W sweep (non-preemptive, best-of-grid at each width).
// workers bounds the width fan-out (0 = GOMAXPROCS, 1 = sequential).
func Fig9Sweep(s *soc.SOC, lo, hi int, percents, deltas []int, workers int) (*Fig9, error) {
	sw, err := datavol.Run(s, datavol.Config{
		WidthLo:  lo,
		WidthHi:  hi,
		Percents: percents,
		Deltas:   deltas,
		Workers:  workers,
	})
	if err != nil {
		return nil, err
	}
	return &Fig9{Sweep: sw}, nil
}

// Table2Gammas returns the paper's Table 2 γ rows per SOC.
func Table2Gammas(name string) []float64 {
	switch name {
	case "d695":
		return []float64{0.1, 0.3, 0.5}
	case "p22810like", "p22810":
		return []float64{0.01, 0.3, 0.5}
	case "p34392like", "p34392":
		return []float64{0.2, 0.25, 0.3}
	case "p93791like", "p93791":
		return []float64{0.5, 0.95, 0.99}
	}
	return []float64{0.25, 0.5, 0.75}
}

// Table2Row is one γ row of Table 2.
type Table2Row struct {
	SOC     string
	Gamma   float64
	CostMin float64
	WEff    int
	TimeAtW int64
	VolAtW  int64
}

// Table2Result bundles a SOC's sweep minima with its γ rows.
type Table2Result struct {
	SOC            string
	MinTime        int64
	MinTimeWidth   int
	MinVolume      int64
	MinVolumeWidth int
	Rows           []Table2Row
}

// Table2 regenerates the Table 2 block for one SOC from a Fig. 9 sweep.
func Table2(f *Fig9) (*Table2Result, error) {
	sw := f.Sweep
	res := &Table2Result{
		SOC:            sw.SOC,
		MinTime:        sw.MinTime,
		MinTimeWidth:   sw.MinTimeWidth,
		MinVolume:      sw.MinVolume,
		MinVolumeWidth: sw.MinVolumeWidth,
	}
	for _, g := range Table2Gammas(sw.SOC) {
		eff, err := sw.EffectiveWidth(g)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			SOC:     sw.SOC,
			Gamma:   g,
			CostMin: eff.CostMin,
			WEff:    eff.TAMWidth,
			TimeAtW: eff.Time,
			VolAtW:  eff.Volume,
		})
	}
	return res, nil
}

// AblationDeltaRow compares δ=0 against δ∈{1..4} on the bottleneck SOC.
type AblationDeltaRow struct {
	TAMWidth                int
	MakespanDelta0          int64
	MakespanDeltaSwept      int64
	BottleneckPrefDelta0    int
	BottleneckPrefDeltaBest int
}

// AblationDelta reproduces the paper's §6 narrative on p34392: without the
// δ promotion the bottleneck core is assigned its α-preferred width and the
// SOC misses its minimum testing time; with δ ≥ 1 the core is widened to
// its highest Pareto width and the SOC reaches the bottleneck-bound
// minimum. workers bounds sweep concurrency (0 = GOMAXPROCS).
func AblationDelta(percent, workers int) ([]AblationDeltaRow, error) {
	s := bench.P34392Like()
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		return nil, err
	}
	const bottleneck = 18
	var rows []AblationDeltaRow
	for _, w := range []int{28, 32} {
		d0, err := opt.SweepBest(sched.Params{TAMWidth: w, Workers: workers}, []int{percent}, []int{0})
		if err != nil {
			return nil, err
		}
		ds, err := opt.SweepBest(sched.Params{TAMWidth: w, Workers: workers}, []int{percent}, []int{0, 1, 2, 3, 4})
		if err != nil {
			return nil, err
		}
		ps := opt.ParetoSet(bottleneck)
		rows = append(rows, AblationDeltaRow{
			TAMWidth:                w,
			MakespanDelta0:          d0.Makespan,
			MakespanDeltaSwept:      ds.Makespan,
			BottleneckPrefDelta0:    ps.PreferredWidth(percent, 0),
			BottleneckPrefDeltaBest: ps.PreferredWidth(percent, ds.Params.Delta),
		})
	}
	return rows, nil
}

// BaselineRow compares the flexible-width scheduler against the fixed-width
// TAM architecture and shelf packing at one width.
type BaselineRow struct {
	SOC        string
	TAMWidth   int
	Flexible   int64
	FixedWidth int64
	FixedBuses []int
	NFDH       int64
	FFDH       int64
}

// Baselines regenerates the architecture ablation for one SOC. workers
// bounds the flexible-scheduler sweep concurrency (0 = GOMAXPROCS).
func Baselines(s *soc.SOC, widths []int, maxBuses int, percents, deltas []int, workers int) ([]BaselineRow, error) {
	if len(widths) == 0 {
		widths = Table1Widths(s.Name)
	}
	if maxBuses == 0 {
		maxBuses = 3
	}
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		return nil, err
	}
	var rows []BaselineRow
	for _, w := range widths {
		flex, err := opt.SweepBest(sched.Params{TAMWidth: w, Workers: workers}, percents, deltas)
		if err != nil {
			return nil, err
		}
		fixed, err := baseline.FixedWidth(s, w, sched.DefaultMaxWidth, maxBuses)
		if err != nil {
			return nil, err
		}
		nf, err := baseline.BestShelves(s, w, sched.DefaultMaxWidth, percents, deltas, baseline.NFDH)
		if err != nil {
			return nil, err
		}
		ff, err := baseline.BestShelves(s, w, sched.DefaultMaxWidth, percents, deltas, baseline.FFDH)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			SOC:        s.Name,
			TAMWidth:   w,
			Flexible:   flex.Makespan,
			FixedWidth: fixed.Makespan,
			FixedBuses: fixed.BusWidths,
			NFDH:       nf.Makespan,
			FFDH:       ff.Makespan,
		})
	}
	return rows, nil
}

// AblationHeuristics measures what each scheduler heuristic contributes:
// full algorithm vs no idle-time insertion, vs no widening, vs both off.
type AblationHeuristicsRow struct {
	SOC                     string
	TAMWidth                int
	Full, NoInsert, NoWiden int64
	Neither                 int64
}

// AblationHeuristics runs the heuristic on/off matrix for one SOC.
// workers bounds sweep concurrency (0 = GOMAXPROCS).
func AblationHeuristics(s *soc.SOC, widths []int, percents, deltas []int, workers int) ([]AblationHeuristicsRow, error) {
	if len(widths) == 0 {
		widths = Table1Widths(s.Name)
	}
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		return nil, err
	}
	var rows []AblationHeuristicsRow
	for _, w := range widths {
		run := func(insertSlack int, noWiden bool) (int64, error) {
			sch, err := opt.SweepBest(sched.Params{
				TAMWidth:        w,
				InsertSlack:     insertSlack,
				DisableWidening: noWiden,
				Workers:         workers,
			}, percents, deltas)
			if err != nil {
				return 0, err
			}
			return sch.Makespan, nil
		}
		full, err := run(sched.DefaultInsertSlack, false)
		if err != nil {
			return nil, err
		}
		noIns, err := run(-1, false)
		if err != nil {
			return nil, err
		}
		noWid, err := run(sched.DefaultInsertSlack, true)
		if err != nil {
			return nil, err
		}
		neither, err := run(-1, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationHeuristicsRow{
			SOC: s.Name, TAMWidth: w,
			Full: full, NoInsert: noIns, NoWiden: noWid, Neither: neither,
		})
	}
	return rows, nil
}
