// Package pattern generates deterministic per-core test data: scan-in
// stimulus vectors and their expected responses, used by the TAM/ATE
// simulator to move real bits through wrapper chains and to count tester
// data volume from first principles.
//
// The core under test is modeled functionally: the captured response of a
// pattern is a keyed parity function of the stimulus (each response bit is
// the XOR of a core-specific selection of stimulus bits). This "golden
// model" is arbitrary but fixed, which is all a test-scheduling framework
// needs — the same model generates expected responses on the ATE side and
// actual responses in the simulated core, so any transport corruption is
// detected.
package pattern

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/soc"
	"repro/internal/wrapper"
)

// Vector is one test pattern: the bits shifted in and the bits expected
// back out.
type Vector struct {
	// Stimulus has one bit per scan-in cell (wrapper input/bidir cells +
	// internal scan), in wrapper chain order.
	Stimulus []byte
	// Response has one bit per scan-out cell (internal scan + wrapper
	// output/bidir cells), in wrapper chain order.
	Response []byte
}

// Set is a complete test set for one core at one wrapper design.
type Set struct {
	// CoreID identifies the core.
	CoreID int
	// Vectors holds one entry per pattern.
	Vectors []Vector
	// ScanInBits and ScanOutBits give the per-pattern stimulus/response
	// sizes (summed over all wrapper chains).
	ScanInBits, ScanOutBits int
}

// TotalBits returns the total test data moved for this set: stimulus in
// plus response out, over all patterns.
func (s *Set) TotalBits() int64 {
	return int64(len(s.Vectors)) * int64(s.ScanInBits+s.ScanOutBits)
}

// Generate builds the deterministic test set for a core: stimulus from an
// LFSR seeded by the core ID, responses from the keyed-parity core model.
func Generate(c *soc.Core, d *wrapper.Design) (*Set, error) {
	if c.ID != d.CoreID {
		return nil, fmt.Errorf("pattern: design for core %d used with core %d", d.CoreID, c.ID)
	}
	in, out := 0, 0
	for i := range d.Chains {
		in += d.Chains[i].ScanIn()
		out += d.Chains[i].ScanOut()
	}
	src := bist.DefaultLFSR(uint64(c.ID)*0x9E3779B9 + 0x1234567)
	set := &Set{CoreID: c.ID, ScanInBits: in, ScanOutBits: out}
	for p := 0; p < c.Test.Patterns; p++ {
		stim := src.Bits(in)
		set.Vectors = append(set.Vectors, Vector{
			Stimulus: stim,
			Response: Respond(c.ID, stim, out),
		})
	}
	return set, nil
}

// Respond computes the golden core model's response to a stimulus: response
// bit j is the parity of the stimulus bits selected by a (coreID, j)-keyed
// hash. It is pure and deterministic.
func Respond(coreID int, stimulus []byte, outBits int) []byte {
	resp := make([]byte, outBits)
	if len(stimulus) == 0 {
		return resp
	}
	for j := range resp {
		// Select a pseudo-random subset of stimulus positions.
		h := uint64(coreID)*0x100000001B3 + uint64(j)*0x9E3779B97F4A7C15 + 0xCBF29CE484222325
		var bit byte
		// Walk a keyed stride over the stimulus; ~8 taps per output bit.
		stride := int(h%uint64(len(stimulus))) | 1
		idx := int((h >> 17) % uint64(len(stimulus)))
		for k := 0; k < 8; k++ {
			bit ^= stimulus[idx] & 1
			idx = (idx + stride) % len(stimulus)
		}
		resp[j] = bit
	}
	return resp
}
