package pattern

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/soc"
	"repro/internal/wrapper"
)

func testCore() *soc.Core {
	return &soc.Core{
		ID: 3, Name: "t", Inputs: 5, Outputs: 4, Bidirs: 1,
		ScanChains: []int{12, 9},
		Test:       soc.Test{Patterns: 7, BISTEngine: -1},
	}
}

func TestGenerateSizes(t *testing.T) {
	c := testCore()
	d, err := wrapper.DesignWrapper(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Generate(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Vectors) != c.Test.Patterns {
		t.Fatalf("got %d vectors, want %d", len(set.Vectors), c.Test.Patterns)
	}
	// Scan-in bits: inputs + bidirs + scan = 5+1+21 = 27; scan-out:
	// scan + outputs + bidirs = 21+4+1 = 26.
	if set.ScanInBits != 27 || set.ScanOutBits != 26 {
		t.Fatalf("si/so bits = %d/%d, want 27/26", set.ScanInBits, set.ScanOutBits)
	}
	for i, v := range set.Vectors {
		if len(v.Stimulus) != 27 || len(v.Response) != 26 {
			t.Fatalf("vector %d sized %d/%d", i, len(v.Stimulus), len(v.Response))
		}
		for _, b := range v.Stimulus {
			if b > 1 {
				t.Fatalf("non-binary stimulus bit %d", b)
			}
		}
	}
	if got, want := set.TotalBits(), int64(7*(27+26)); got != want {
		t.Fatalf("TotalBits = %d, want %d", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := testCore()
	d, _ := wrapper.DesignWrapper(c, 2)
	a, err := Generate(c, d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Vectors {
		if !bytes.Equal(a.Vectors[i].Stimulus, b.Vectors[i].Stimulus) ||
			!bytes.Equal(a.Vectors[i].Response, b.Vectors[i].Response) {
			t.Fatalf("vector %d differs between runs", i)
		}
	}
}

func TestGenerateMismatchedDesign(t *testing.T) {
	c := testCore()
	other := testCore()
	other.ID = 9
	d, _ := wrapper.DesignWrapper(other, 2)
	if _, err := Generate(c, d); err == nil {
		t.Fatal("mismatched design accepted")
	}
}

func TestRespondProperties(t *testing.T) {
	stim := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1}
	r1 := Respond(1, stim, 8)
	r2 := Respond(1, stim, 8)
	if !bytes.Equal(r1, r2) {
		t.Fatal("Respond not deterministic")
	}
	r3 := Respond(2, stim, 8)
	if bytes.Equal(r1, r3) {
		t.Fatal("different cores produced identical responses (likely a keying bug)")
	}
	if len(Respond(1, nil, 4)) != 4 {
		t.Fatal("empty stimulus must still size the response")
	}
	for _, b := range r1 {
		if b > 1 {
			t.Fatalf("non-binary response bit %d", b)
		}
	}
}

// Property: responses depend on the stimulus — flipping a stimulus bit
// changes at least one response bit for a reasonably wide response (the
// keyed-parity model taps ~8 positions per output, so sensitivity is high
// but not guaranteed per bit; require sensitivity in aggregate).
func TestRespondSensitivityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := 40
		stim := make([]byte, n)
		for i := range stim {
			stim[i] = byte((int(seed) + i*7) % 2)
		}
		base := Respond(5, stim, 64)
		changed := 0
		for i := 0; i < n; i++ {
			stim[i] ^= 1
			if !bytes.Equal(base, Respond(5, stim, 64)) {
				changed++
			}
			stim[i] ^= 1
		}
		// At least half the single-bit flips must perturb the response.
		return changed >= n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
