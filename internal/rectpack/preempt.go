// Preemptive rectangle packing: the "preempt-rectpack" backend extends
// the event-driven best-fit-decreasing packer with horizontal rectangle
// splitting, in the spirit of the split placements of the rectangle
// bin-packing line (arXiv:1008.4448, 1008.4446). A core's (width, time)
// rectangle may be cut into up to maxPreemptions+1 segments placed
// independently at the same width (the vertical-split rule), each
// resume-after-gap paying the wrapper's preemption penalty. The split
// trigger is priority preemption: when a high-priority core is blocked —
// its quality floor or Pareto widths demand more wires than are free —
// weaker running cores with budget left are suspended to free wires, and
// resume later in the big core's shadow. Every base non-preemptive
// strategy races too, so the preemptive backend never packs worse than
// plain rectpack on the same parameters.
package rectpack

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/constraint"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/rect"
	"repro/internal/sched"
)

// PreemptName is the preemptive backend's registry name.
const PreemptName = "preempt-rectpack"

// sitePreempt is the failpoint the chaos suite arms to make the
// preemptive backend fail, stall, or hang inside a portfolio race.
const sitePreempt = "rectpack/preempt/schedule"

// PreemptBackend is the splitting rectangle packer. The zero value is
// ready to use; it is stateless and safe for concurrent use.
type PreemptBackend struct{}

// NewPreempt returns the preempt-rectpack backend (also registered
// globally on import).
func NewPreempt() *PreemptBackend { return &PreemptBackend{} }

// Name returns "preempt-rectpack".
func (*PreemptBackend) Name() string { return PreemptName }

// Declines reports the regime this backend leaves to plain rectpack: with
// every preemption budget zero no rectangle may ever be split, so the
// preemptive passes collapse into the non-preemptive portfolio and racing
// both backends would duplicate work.
func (*PreemptBackend) Declines(params sched.Params) (reason string, declined bool) {
	if !hasBudget(params.MaxPreemptions) {
		return "no preemption budgets (rectpack covers the non-preemptive regime)", true
	}
	return "", false
}

// pcState is a core's phase within one preemptive pass.
type pcState uint8

const (
	pcUnstarted pcState = iota
	pcRunning
	pcPreempted
	pcDone
)

// span is one closed segment of a split rectangle.
type span struct {
	start, end int64
}

// preemptCore is the per-core state of one preemptive pass.
type preemptCore struct {
	id     int
	set    *pareto.Set
	budget int // max resumes-after-gap

	state     pcState
	width     int   // fixed at first start (vertical-split rule)
	remaining int64 // cycles left in the current run
	segStart  int64 // begin of the open segment (state == pcRunning)
	segs      []span
	preempts  int
	penalty   int64
}

// closeSeg ends the open segment at end, merging seamless continuations
// so preemption gaps are the only split points.
func (c *preemptCore) closeSeg(end int64) {
	c.remaining -= end - c.segStart
	if n := len(c.segs); n > 0 && c.segs[n-1].end == c.segStart {
		c.segs[n-1].end = end
	} else {
		c.segs = append(c.segs, span{c.segStart, end})
	}
}

// presult is one preemptive pass's outcome before wire assignment.
type presult struct {
	cores    []*preemptCore // id-ascending
	makespan int64
	events   int
	splits   int
}

// preemptPack runs one event-driven pass with priority preemption. The
// fill logic mirrors pack: at every event each core is offered, in
// strategy order, the largest Pareto width that fits the free wires under
// the strategy's cap and quality floor. The difference is the blocked
// case: a core whose floor (or width demand) exceeds the free wires may
// suspend strictly weaker running cores that still have preemption budget
// — freeing their wires — and start at its full target width. Suspended
// cores resume at their fixed width once wires free up, paying the
// wrapper's preemption penalty per resume-after-gap. penFor returns that
// penalty for a core at a width.
func preemptPack(template []*packCore, st strategy, chk *constraint.Checker, tamWidth int, budgets map[int]int, penFor func(id, width int) int64) (*presult, error) {
	cores := make([]*preemptCore, len(template))
	for i, t := range template {
		cores[i] = &preemptCore{id: t.id, set: t.set, budget: budgets[t.id]}
	}
	// template is id-ascending, so a stable sort on the strategy key breaks
	// ties toward the lower core ID — every pass is deterministic.
	idx := make([]int, len(template))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return st.order(template[idx[a]], template[idx[b]]) })

	running := make(map[int]bool)
	complete := make(map[int]bool)
	var now int64
	avail := tamWidth
	left := len(cores)
	events := 0
	splits := 0
	for left > 0 {
		events++
		// Fill pass in priority order: resume suspended cores, start
		// unstarted ones, and preempt weaker runners for blocked cores.
		for pos, ti := range idx {
			c := cores[ti]
			tc := template[ti]
			switch c.state {
			case pcPreempted:
				if avail >= c.width && chk.OK(c.id, complete, running) {
					c.resumeAt(now, penFor)
					running[c.id] = true
					avail -= c.width
					continue
				}
				if w, ok := preemptFor(cores, idx, pos, c.width, avail, now, chk, complete, running); ok {
					avail = w
					c.resumeAt(now, penFor)
					running[c.id] = true
					avail -= c.width
				}
			case pcUnstarted:
				floor := st.minFor(tc)
				if avail >= 1 {
					limit := st.capFor(tc, tamWidth)
					if limit > avail {
						limit = avail
					}
					if w, ok := c.set.SnapDown(limit); ok && (floor == 0 || w >= floor) && chk.OK(c.id, complete, running) {
						c.startAt(now, w)
						running[c.id] = true
						avail -= w
						continue
					}
				}
				// Blocked: aim for the full target width, wires willing.
				target, ok := c.set.SnapDown(st.capFor(tc, tamWidth))
				if !ok || (floor > 0 && target < floor) {
					continue
				}
				if w, ok := preemptFor(cores, idx, pos, target, avail, now, chk, complete, running); ok {
					splits++
					avail = w
					c.startAt(now, target)
					running[c.id] = true
					avail -= target
				}
			}
		}
		if len(running) == 0 {
			return nil, fmt.Errorf("rectpack: no core can run at t=%d with %d cores left", now, left)
		}
		// Advance to the earliest segment completion and retire everything
		// that ends there. Suspensions never make events: segments only end
		// here or inside the fill pass above, so every event retires a core.
		var next int64 = -1
		for _, c := range cores {
			if c.state == pcRunning {
				if end := c.segStart + c.remaining; next == -1 || end < next {
					next = end
				}
			}
		}
		for _, c := range cores {
			if c.state == pcRunning && c.segStart+c.remaining == next {
				c.closeSeg(next)
				c.state = pcDone
				delete(running, c.id)
				complete[c.id] = true
				avail += c.width
				left--
			}
		}
		now = next
	}
	return &presult{cores: cores, makespan: now, events: events, splits: splits}, nil
}

// startAt opens a core's first segment at the chosen width.
func (c *preemptCore) startAt(now int64, width int) {
	c.state = pcRunning
	c.width = width
	c.remaining = c.set.Time(width)
	c.segStart = now
}

// resumeAt reopens a suspended core at its fixed width. A resume after a
// gap is a preemption: it consumes one budget unit and pays the wrapper's
// penalty; a seamless resume (suspended and re-admitted at the same
// instant) merges back into the previous segment for free.
func (c *preemptCore) resumeAt(now int64, penFor func(id, width int) int64) {
	if n := len(c.segs); n > 0 && c.segs[n-1].end < now {
		pen := penFor(c.id, c.width)
		c.preempts++
		c.penalty += pen
		c.remaining += pen
	}
	c.state = pcRunning
	c.segStart = now
}

// preemptFor tries to free enough wires for a blocked core (cores[idx[pos]],
// needing want wires) by suspending strictly weaker running cores — later
// than pos in the strategy order — that have budget left and have made
// progress this segment. Victims are taken weakest first, so the strongest
// runners keep their wires. On success the suspensions are committed
// (segments closed at now, wires freed) and the new avail (>= want) is
// returned with ok true. When the core still cannot start — too few
// eligible victim wires, or the constraint checker refuses even with the
// victims gone — nothing is suspended and ok is false.
func preemptFor(cores []*preemptCore, idx []int, pos, want, avail int, now int64, chk *constraint.Checker, complete, running map[int]bool) (int, bool) {
	id := cores[idx[pos]].id
	var victims []*preemptCore
	freed := 0
	for vpos := len(idx) - 1; vpos > pos && avail+freed < want; vpos-- {
		v := cores[idx[vpos]]
		if v.state != pcRunning || v.preempts >= v.budget || v.segStart >= now {
			continue
		}
		victims = append(victims, v)
		freed += v.width
	}
	if avail+freed < want {
		return avail, false
	}
	for _, v := range victims {
		delete(running, v.id)
	}
	if !chk.OK(id, complete, running) {
		for _, v := range victims {
			running[v.id] = true
		}
		return avail, false
	}
	for _, v := range victims {
		v.closeSeg(now)
		v.state = pcPreempted
	}
	return avail + freed, true
}

// emitPreempt maps a preemptive pass onto concrete TAM wires. Fragments
// are placed in global start order; a resumed segment prefers its previous
// wires (wire stability), exactly like the classic scheduler's preempted
// resumes. Split layouts are busier than one-piece ones, so first-fit
// placement can run out of simultaneously-free wires — that is an error
// here, and the caller falls back to the next-best candidate pass.
func emitPreempt(opt *sched.Optimizer, params sched.Params, res *presult) (*sched.Schedule, error) {
	bin, err := rect.NewBin(params.TAMWidth)
	if err != nil {
		return nil, err
	}
	type frag struct {
		c   *preemptCore
		seg span
	}
	frags := make([]frag, 0, len(res.cores))
	for _, c := range res.cores {
		for _, sg := range c.segs {
			frags = append(frags, frag{c, sg})
		}
	}
	sort.Slice(frags, func(i, j int) bool {
		if frags[i].seg.start != frags[j].seg.start {
			return frags[i].seg.start < frags[j].seg.start
		}
		return frags[i].c.id < frags[j].c.id
	})
	out := &sched.Schedule{
		SOC:         opt.SOC().Name,
		TAMWidth:    params.TAMWidth,
		Params:      params,
		Assignments: make(map[int]*sched.Assignment, len(res.cores)),
		Makespan:    res.makespan,
		Bin:         bin,
		Events:      res.events,
	}
	for _, f := range frags {
		var prefer []int
		a := out.Assignments[f.c.id]
		if a != nil {
			prefer = a.Pieces[len(a.Pieces)-1].Wires
		}
		p, err := bin.PlacePreferred(f.c.id, f.c.width, f.seg.start, f.seg.end, prefer)
		if err != nil {
			return nil, fmt.Errorf("rectpack: preemptive wire assignment: %v", err)
		}
		if a == nil {
			d := opt.Design(f.c.id, f.c.width)
			if d == nil {
				return nil, fmt.Errorf("rectpack: no cached design for core %d width %d", f.c.id, f.c.width)
			}
			a = &sched.Assignment{
				CoreID:        f.c.id,
				Width:         f.c.width,
				Preemptions:   f.c.preempts,
				PenaltyCycles: f.c.penalty,
				BaseTime:      f.c.set.Time(f.c.width),
				ScanIn:        d.ScanInMax,
				ScanOut:       d.ScanOutMax,
			}
			out.Assignments[f.c.id] = a
		}
		a.Pieces = append(a.Pieces, *p)
	}
	return out, nil
}

// penaltyFn returns the per-resume preemption penalty lookup, served from
// the optimizer's wrapper-design cache.
func penaltyFn(opt *sched.Optimizer) func(id, width int) int64 {
	return func(id, width int) int64 {
		d := opt.Design(id, width)
		if d == nil {
			// Width in 1..maxWidth and core validated: cannot happen.
			panic(fmt.Sprintf("rectpack: no cached design for core %d width %d", id, width))
		}
		return d.PreemptionPenalty()
	}
}

// preemptStrategies returns the splitting pass portfolio: floor-bearing
// strategies, since only a quality floor (or an all-or-nothing width
// demand) can block a core and so trigger a preemption — cap-only
// strategies always snap down to some width and never split. Ascending
// orders are raced alongside the usual decreasing ones because the
// preemption-budget policy puts budgets on the larger cores: with small
// cores in front, the budgeted giants are the low-priority victims, and a
// floor-blocked small core can split a giant's rectangle and run in the
// gap — the same squeeze the classic scheduler's preempt-larger policy
// exploits.
func preemptStrategies() []strategy {
	full := func(c *packCore, w int) int { return w }
	minAreaFloor := func(c *packCore) int { return c.minAreaWidth }
	widestFloor := func(c *packCore) int { return c.set.MaxParetoWidth() }
	ascTime := func(a, b *packCore) bool { return orderByTime(b, a) }
	ascArea := func(a, b *packCore) bool { return orderByArea(b, a) }
	orders := []func(a, b *packCore) bool{orderByTime, orderByArea, ascTime, ascArea}
	var out []strategy
	for _, order := range orders {
		for _, stretch := range []int64{25, 50, 100} {
			out = append(out, strategy{order: order, capFor: full, minFor: qualityFloor(stretch)})
		}
		out = append(out, strategy{order: order, capFor: full, minFor: minAreaFloor})
		out = append(out, strategy{order: order, capFor: full, minFor: widestFloor})
	}
	return out
}

// candidate is one pass outcome awaiting wire assignment: exactly one of
// np (non-preemptive) or pp (preemptive) is set.
type candidate struct {
	makespan int64
	np       *result
	pp       *presult
}

// Schedule packs the optimizer's SOC with every non-preemptive strategy
// plus the splitting portfolio and returns the shortest placeable
// schedule. With the same parameters it is never worse than rectpack —
// the non-preemptive passes are a subset of its race.
func (*PreemptBackend) Schedule(ctx context.Context, opt *sched.Optimizer, params sched.Params) (*sched.Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "rectpack/preempt")
	defer span.End()
	defer obs.TimeStage("rectpack/preempt")()
	if err := chaos.InjectContext(ctx, sitePreempt); err != nil {
		return nil, err
	}
	params = params.Defaults()
	cores, chk, err := buildCores(ctx, opt, params)
	if err != nil {
		return nil, err
	}
	penFor := penaltyFn(opt)
	var cands []candidate
	var firstErr error
	for _, st := range strategies() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := pack(cores, st, chk, params.TAMWidth)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cands = append(cands, candidate{makespan: res.makespan, np: res})
	}
	for _, st := range preemptStrategies() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := preemptPack(cores, st, chk, params.TAMWidth, params.MaxPreemptions, penFor)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cands = append(cands, candidate{makespan: res.makespan, pp: res})
	}
	// Emit candidates best-first: wire assignment may reject a split
	// layout, in which case the next-best pass gets its chance. Ties break
	// toward the earlier pass, so the result is deterministic.
	used := make([]bool, len(cands))
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best := -1
		for i := range cands {
			if used[i] {
				continue
			}
			if best < 0 || cands[i].makespan < cands[best].makespan {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("rectpack: every preemptive strategy failed: %w", firstErr)
		}
		used[best] = true
		var sch *sched.Schedule
		if cands[best].pp != nil {
			sch, err = emitPreempt(opt, params, cands[best].pp)
			span.SetAttr("splits", cands[best].pp.splits)
		} else {
			sch, err = emit(opt, params, cands[best].np)
		}
		if err == nil {
			span.SetAttr("strategies", len(cands))
			span.SetAttr("makespan", sch.Makespan)
			return sch, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
}

func init() {
	sched.RegisterBackend(NewPreempt())
	chaos.RegisterSites(sitePreempt)
}
