// Package rectpack implements the "rectpack" scheduling backend: best-fit
// decreasing rectangle bin packing over the per-core Pareto-optimal
// (width, time) points, in the spirit of the rectangle-packing
// formulations of Babu et al. (arXiv:1008.4448) and Islam et al.
// (arXiv:1008.3320). Where the classic backend grows preferred-width
// assignments through a priority loop and sweeps an (α, δ, slack) grid,
// rectpack packs each core's rectangle directly: cores are sorted by a
// decreasing size key (testing time, rectangle area, serial length, or
// width), and at every schedule event the packer starts the biggest
// eligible core at the best Pareto width that fits the free TAM wires,
// subject to the same precedence / concurrency / power / BIST checks the
// classic scheduler uses. A small deterministic portfolio of (ordering,
// width-cap, quality-floor) strategies is packed and the shortest result
// wins — still an order of magnitude fewer scheduler passes than the
// classic grid sweep.
//
// The backend registers itself as "rectpack" with the sched backend
// registry on import; it reuses the sched.Optimizer's cached Pareto
// staircases and wrapper designs, so no wrapper is ever redesigned here.
package rectpack

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/constraint"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/rect"
	"repro/internal/sched"
)

// Name is the backend's registry name.
const Name = "rectpack"

// siteSchedule is the failpoint the chaos suite arms to make this backend
// fail, stall, or hang inside a portfolio race.
const siteSchedule = "rectpack/schedule"

// Backend is the rectangle bin-packing backend. The zero value is ready to
// use; it is stateless and safe for concurrent use.
type Backend struct{}

// New returns the rectpack backend (also registered globally on import).
func New() *Backend { return &Backend{} }

// Name returns "rectpack".
func (*Backend) Name() string { return Name }

// Declines reports the regime rectpack cannot honestly serve: non-zero
// preemption budgets. Rectpack never splits a rectangle, so racing it
// against a budget would silently return a non-preemptive schedule; the
// preempt-rectpack backend covers that regime instead.
func (*Backend) Declines(params sched.Params) (reason string, declined bool) {
	if hasBudget(params.MaxPreemptions) {
		return "preemption budgets are not supported (preempt-rectpack splits rectangles)", true
	}
	return "", false
}

// hasBudget reports whether any core has a non-zero preemption budget.
func hasBudget(budgets map[int]int) bool {
	for _, b := range budgets {
		if b > 0 {
			return true
		}
	}
	return false
}

// strategy is one deterministic packing pass configuration.
type strategy struct {
	// order ranks unstarted cores; the packer starts the first eligible
	// core that fits (best-fit decreasing over the chosen size key).
	order func(a, b *packCore) bool
	// capFor bounds the width offered to a core (the best fit is the
	// largest Pareto width <= min(cap, free wires)).
	capFor func(c *packCore, tamWidth int) int
	// minFor is the quality floor: a core is not started below this width
	// (0 = any width), so a long test is never squeezed onto one wire
	// just because a wire is free.
	minFor func(c *packCore) int
}

// packCore is the per-core packing state of one pass.
type packCore struct {
	id  int
	set *pareto.Set // capped at min(MaxWidth, TAMWidth)
	// minAreaWidth is the Pareto width minimizing w·T(w).
	minAreaWidth int

	started bool
	width   int
	start   int64
	end     int64
}

// Schedule packs the optimizer's SOC and returns the shortest schedule any
// strategy produced. The result is non-preemptive (preemption budgets are
// upper bounds; rectpack simply never splits a rectangle) and satisfies
// every constraint the classic backend honors.
func (*Backend) Schedule(ctx context.Context, opt *sched.Optimizer, params sched.Params) (*sched.Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "rectpack/pack")
	defer span.End()
	defer obs.TimeStage("rectpack/pack")()
	if err := chaos.InjectContext(ctx, siteSchedule); err != nil {
		return nil, err
	}
	params = params.Defaults()
	cores, chk, err := buildCores(ctx, opt, params)
	if err != nil {
		return nil, err
	}

	var best *result
	var firstErr error
	for _, st := range strategies() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := pack(cores, st, chk, params.TAMWidth)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || res.makespan < best.makespan {
			best = res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("rectpack: every strategy failed: %w", firstErr)
	}
	span.SetAttr("strategies", len(strategies()))
	span.SetAttr("makespan", best.makespan)
	return emit(opt, params, best)
}

// buildCores validates the parameters and assembles the shared per-core
// packing inputs: the capped Pareto sets plus the constraint checker. Both
// the non-preemptive and the preemptive backend start here.
func buildCores(ctx context.Context, opt *sched.Optimizer, params sched.Params) ([]*packCore, *constraint.Checker, error) {
	if params.TAMWidth < 1 {
		return nil, nil, fmt.Errorf("rectpack: non-positive TAM width %d", params.TAMWidth)
	}
	if params.MaxWidth > opt.MaxWidth() {
		return nil, nil, fmt.Errorf("rectpack: params.MaxWidth %d exceeds optimizer cap %d", params.MaxWidth, opt.MaxWidth())
	}
	s := opt.SOC()
	chk, err := constraint.New(s, constraint.Config{
		PowerMax:        params.PowerMax,
		IgnoreHierarchy: params.IgnoreHierarchy,
	})
	if err != nil {
		return nil, nil, err
	}
	wmax := params.MaxWidth
	if wmax > params.TAMWidth {
		wmax = params.TAMWidth
	}
	cores := make([]*packCore, 0, len(s.Cores))
	for _, c := range s.Cores {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		set, err := opt.ParetoSet(c.ID).Capped(wmax)
		if err != nil {
			return nil, nil, err
		}
		pc := &packCore{id: c.ID, set: set, minAreaWidth: minAreaWidth(set)}
		cores = append(cores, pc)
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i].id < cores[j].id })
	return cores, chk, nil
}

// Core orderings shared by the non-preemptive, preemptive, and annealing
// pass portfolios (decreasing size keys; stable sorts break ties toward
// the lower core ID).
func orderByTime(a, b *packCore) bool   { return a.set.MinTime() > b.set.MinTime() }
func orderByArea(a, b *packCore) bool   { return a.set.MinArea() > b.set.MinArea() }
func orderBySerial(a, b *packCore) bool { return a.set.Time(1) > b.set.Time(1) }
func orderByWidth(a, b *packCore) bool {
	if a.set.MaxParetoWidth() != b.set.MaxParetoWidth() {
		return a.set.MaxParetoWidth() > b.set.MaxParetoWidth()
	}
	return a.set.MinTime() > b.set.MinTime()
}

// qualityFloor returns the smallest width whose time is within stretchPct%
// of the core's best time: starting narrower than this is worse than
// waiting.
func qualityFloor(stretchPct int64) func(*packCore) int {
	return func(c *packCore) int {
		limit := c.set.MinTime() + c.set.MinTime()*stretchPct/100
		for _, p := range c.set.Points {
			if p.Time <= limit {
				return p.Width
			}
		}
		return c.set.MaxParetoWidth()
	}
}

// strategies returns the deterministic pass portfolio, in tie-break order.
func strategies() []strategy {
	full := func(c *packCore, w int) int { return w }
	frac := func(den int) func(*packCore, int) int {
		return func(c *packCore, w int) int {
			f := w / den
			if f < 1 {
				f = 1
			}
			return f
		}
	}
	minArea := func(c *packCore, w int) int { return c.minAreaWidth }
	anyWidth := func(c *packCore) int { return 0 }

	var out []strategy
	for _, order := range []func(a, b *packCore) bool{orderByTime, orderByArea, orderBySerial, orderByWidth} {
		for _, capFor := range []func(*packCore, int) int{full, frac(2), frac(3), frac(4), minArea} {
			out = append(out, strategy{order: order, capFor: capFor, minFor: anyWidth})
		}
	}
	for _, order := range []func(a, b *packCore) bool{orderByTime, orderByArea} {
		for _, stretch := range []int64{25, 50, 100} {
			out = append(out, strategy{order: order, capFor: full, minFor: qualityFloor(stretch)})
		}
	}
	return out
}

// minAreaWidth returns the Pareto width minimizing w·T(w).
func minAreaWidth(set *pareto.Set) int {
	best := set.Points[0].Width
	bestArea := int64(set.Points[0].Width) * set.Points[0].Time
	for _, p := range set.Points[1:] {
		if a := int64(p.Width) * p.Time; a < bestArea {
			best, bestArea = p.Width, a
		}
	}
	return best
}

// result is one pass's outcome before wire assignment.
type result struct {
	cores    []*packCore // started/width/start/end filled, id-ascending
	makespan int64
	events   int
}

// pack runs one event-driven best-fit-decreasing pass. At every event time
// it starts, in strategy order, each eligible unstarted core at the
// largest Pareto width that fits the free wires (bounded by the strategy's
// cap and quality floor), then advances to the earliest completion.
func pack(template []*packCore, st strategy, chk *constraint.Checker, tamWidth int) (*result, error) {
	cores := make([]*packCore, len(template))
	for i, c := range template {
		cp := *c
		cp.started = false
		cp.width, cp.start, cp.end = 0, 0, 0
		cores[i] = &cp
	}
	// cores is id-ascending, so a stable sort on the strategy key breaks
	// ties toward the lower core ID — every pass is deterministic.
	byOrder := make([]*packCore, len(cores))
	copy(byOrder, cores)
	sort.SliceStable(byOrder, func(i, j int) bool { return st.order(byOrder[i], byOrder[j]) })

	running := make(map[int]bool)
	complete := make(map[int]bool)
	var now int64
	avail := tamWidth
	left := len(cores)
	events := 0
	for left > 0 {
		events++
		// Fill pass: start every eligible core the free wires can carry,
		// biggest (by the strategy's key) first.
		for _, c := range byOrder {
			if c.started || avail < 1 {
				continue
			}
			limit := st.capFor(c, tamWidth)
			if limit > avail {
				limit = avail
			}
			w, ok := c.set.SnapDown(limit)
			if !ok {
				continue
			}
			if floor := st.minFor(c); floor > 0 && w < floor {
				continue
			}
			if !chk.OK(c.id, complete, running) {
				continue
			}
			c.started = true
			c.width = w
			c.start = now
			c.end = now + c.set.Time(w)
			running[c.id] = true
			avail -= w
		}
		if len(running) == 0 {
			return nil, fmt.Errorf("rectpack: no core can start at t=%d with %d cores left", now, left)
		}
		// Advance to the earliest completion and retire everything that
		// ends there.
		var next int64 = -1
		for _, c := range cores {
			if running[c.id] && (next == -1 || c.end < next) {
				next = c.end
			}
		}
		for _, c := range cores {
			if running[c.id] && c.end == next {
				delete(running, c.id)
				complete[c.id] = true
				avail += c.width
				left--
			}
		}
		now = next
	}
	var makespan int64
	for _, c := range cores {
		if c.end > makespan {
			makespan = c.end
		}
	}
	return &result{cores: cores, makespan: makespan, events: events}, nil
}

// emit maps the winning pass onto concrete TAM wires and builds the
// sched.Schedule, with wrapper metadata served from the optimizer's cache.
func emit(opt *sched.Optimizer, params sched.Params, res *result) (*sched.Schedule, error) {
	bin, err := rect.NewBin(params.TAMWidth)
	if err != nil {
		return nil, err
	}
	placed := make([]*packCore, len(res.cores))
	copy(placed, res.cores)
	sort.Slice(placed, func(i, j int) bool {
		if placed[i].start != placed[j].start {
			return placed[i].start < placed[j].start
		}
		return placed[i].id < placed[j].id
	})
	out := &sched.Schedule{
		SOC:         opt.SOC().Name,
		TAMWidth:    params.TAMWidth,
		Params:      params,
		Assignments: make(map[int]*sched.Assignment, len(res.cores)),
		Makespan:    res.makespan,
		Bin:         bin,
		Events:      res.events,
	}
	for _, c := range placed {
		p, err := bin.Place(c.id, c.width, c.start, c.end)
		if err != nil {
			return nil, fmt.Errorf("rectpack: wire assignment: %v", err)
		}
		d := opt.Design(c.id, c.width)
		if d == nil {
			return nil, fmt.Errorf("rectpack: no cached design for core %d width %d", c.id, c.width)
		}
		out.Assignments[c.id] = &sched.Assignment{
			CoreID:   c.id,
			Width:    c.width,
			Pieces:   []rect.Piece{*p},
			BaseTime: c.set.Time(c.width),
			ScanIn:   d.ScanInMax,
			ScanOut:  d.ScanOutMax,
		}
	}
	return out, nil
}

func init() {
	sched.RegisterBackend(New())
	chaos.RegisterSites(siteSchedule)
}
