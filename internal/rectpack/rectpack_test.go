package rectpack

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/schedio"
)

func optimizer(t *testing.T, name string) *sched.Optimizer {
	t.Helper()
	s, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

func TestRegistered(t *testing.T) {
	b, err := sched.BackendByName(Name)
	if err != nil {
		t.Fatalf("rectpack not registered: %v", err)
	}
	if b.Name() != Name {
		t.Fatalf("registered name %q, want %q", b.Name(), Name)
	}
}

func TestScheduleVerifiesAcrossBenchmarks(t *testing.T) {
	for _, name := range []string{"d695", "demo8", "p22810like", "p34392like", "p93791like"} {
		opt := optimizer(t, name)
		for _, w := range []int{8, 16, 32, 64} {
			sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: w})
			if err != nil {
				t.Fatalf("%s W=%d: %v", name, w, err)
			}
			if err := opt.Verify(sch); err != nil {
				t.Errorf("%s W=%d: verify: %v", name, w, err)
			}
			if err := sched.CheckInvariants(opt.SOC(), sch); err != nil {
				t.Errorf("%s W=%d: invariants: %v", name, w, err)
			}
			if sch.Params.TAMWidth != w || sch.TAMWidth != w {
				t.Errorf("%s W=%d: echoed width %d/%d", name, w, sch.Params.TAMWidth, sch.TAMWidth)
			}
		}
	}
}

func TestScheduleHonorsPowerBudget(t *testing.T) {
	opt := optimizer(t, "d695")
	budget := sched.DefaultPowerBudget(opt.SOC(), 110)
	sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 16, PowerMax: budget})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.CheckInvariants(opt.SOC(), sch); err != nil {
		t.Fatalf("power-constrained schedule: %v", err)
	}
}

func TestScheduleNonPreemptive(t *testing.T) {
	opt := optimizer(t, "d695")
	mp, err := opt.LargerCorePreemptions(3)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 24, MaxPreemptions: mp})
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range sch.Assignments {
		if a.Preemptions != 0 || len(a.Pieces) != 1 || a.PenaltyCycles != 0 {
			t.Errorf("core %d: rectpack preempted (%d pieces, %d preemptions)", id, len(a.Pieces), a.Preemptions)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	var outs [2][]byte
	for i := range outs {
		opt := optimizer(t, "p22810like")
		sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 32})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := schedio.Save(&buf, sch); err != nil {
			t.Fatal(err)
		}
		outs[i] = buf.Bytes()
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("rectpack schedules differ across runs")
	}
}

func TestScheduleErrors(t *testing.T) {
	opt := optimizer(t, "demo8")
	if _, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 0}); err == nil {
		t.Error("TAMWidth 0 accepted")
	}
	if _, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 16, MaxWidth: 999}); err == nil {
		t.Error("MaxWidth above the optimizer cap accepted")
	}
}

func TestScheduleCancelled(t *testing.T) {
	opt := optimizer(t, "demo8")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New().Schedule(ctx, opt, sched.Params{TAMWidth: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rectpack returned %v, want context.Canceled", err)
	}
}

func TestScheduleRespectsMaxWidthCap(t *testing.T) {
	opt := optimizer(t, "d695")
	sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 32, MaxWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range sch.Assignments {
		if a.Width > 4 {
			t.Errorf("core %d assigned width %d above MaxWidth 4", id, a.Width)
		}
	}
	if err := opt.Verify(sch); err != nil {
		t.Fatal(err)
	}
}
