package rectpack

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/schedio"
)

func preemptParams(t *testing.T, opt *sched.Optimizer, w, budget int) sched.Params {
	t.Helper()
	mp, err := opt.LargerCorePreemptions(budget)
	if err != nil {
		t.Fatal(err)
	}
	return sched.Params{TAMWidth: w, MaxPreemptions: mp}
}

func TestPreemptRegistered(t *testing.T) {
	b, err := sched.BackendByName(PreemptName)
	if err != nil {
		t.Fatalf("preempt-rectpack not registered: %v", err)
	}
	if b.Name() != PreemptName {
		t.Fatalf("registered name %q, want %q", b.Name(), PreemptName)
	}
}

// TestDeclinesPartition: rectpack and preempt-rectpack split the
// parameter space exactly in two — budgets go to the splitter, their
// absence to the plain packer, and never both.
func TestDeclinesPartition(t *testing.T) {
	opt := optimizer(t, "d695")
	plain := sched.Params{TAMWidth: 32}
	budget := preemptParams(t, opt, 32, 2)

	if reason, declined := New().Declines(budget); !declined {
		t.Error("rectpack accepted a preemption budget")
	} else if reason == "" {
		t.Error("rectpack declined without a reason")
	}
	if _, declined := New().Declines(plain); declined {
		t.Error("rectpack declined a plain run")
	}
	if reason, declined := NewPreempt().Declines(plain); !declined {
		t.Error("preempt-rectpack accepted a run with no budgets")
	} else if reason == "" {
		t.Error("preempt-rectpack declined without a reason")
	}
	if _, declined := NewPreempt().Declines(budget); declined {
		t.Error("preempt-rectpack declined a preemption budget")
	}
	// An all-zero budget map is the same as no budgets.
	if _, declined := NewPreempt().Declines(sched.Params{TAMWidth: 32, MaxPreemptions: map[int]int{1: 0}}); !declined {
		t.Error("preempt-rectpack accepted an all-zero budget map")
	}
}

func TestPreemptScheduleVerifies(t *testing.T) {
	opt := optimizer(t, "d695")
	for _, w := range []int{16, 24, 32} {
		params := preemptParams(t, opt, w, 2)
		sch, err := NewPreempt().Schedule(context.Background(), opt, params)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		if err := opt.Verify(sch); err != nil {
			t.Errorf("W=%d: verify: %v", w, err)
		}
		if err := sched.CheckInvariants(opt.SOC(), sch); err != nil {
			t.Errorf("W=%d: invariants: %v", w, err)
		}
		for id, a := range sch.Assignments {
			if a.Preemptions > params.MaxPreemptions[id] {
				t.Errorf("W=%d core %d: %d preemptions over budget %d", w, id, a.Preemptions, params.MaxPreemptions[id])
			}
		}
	}
}

// TestPreemptNeverWorseThanRectpack: the splitter races every
// non-preemptive strategy too, so splitting is only ever taken when it
// helps.
func TestPreemptNeverWorseThanRectpack(t *testing.T) {
	opt := optimizer(t, "d695")
	for _, w := range []int{16, 24} {
		params := preemptParams(t, opt, w, 2)
		p, err := NewPreempt().Schedule(context.Background(), opt, params)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		if p.Makespan > r.Makespan {
			t.Errorf("W=%d: preempt-rectpack %d worse than rectpack %d", w, p.Makespan, r.Makespan)
		}
	}
}

// TestPreemptScheduleActuallySplits replays the corpus monster60 regime
// (where the splitter beats classic by ~10%) and checks a split really
// materializes: some core must carry a resumed segment, and the
// preemptive emission path must place it on concrete wires.
func TestPreemptScheduleActuallySplits(t *testing.T) {
	s := bench.Synth(bench.SynthConfig{
		Name: "monster60", Cores: 60, Seed: 114, HierarchyPct: 25,
		PowerValues: true, PowerBudgetPct: 200,
		ExtraPrecedences: 6, ExtraConcurrencies: 6,
	})
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := sched.LargerCorePreemptions(s, sched.DefaultMaxWidth, 4)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewPreempt().Schedule(context.Background(), opt, sched.Params{TAMWidth: 64, Workers: 1, MaxPreemptions: mp})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.CheckInvariants(s, sch); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	split := 0
	for _, a := range sch.Assignments {
		if a.Preemptions > 0 {
			split++
			if len(a.Pieces) != a.Preemptions+1 {
				t.Errorf("core %d: %d pieces for %d preemptions", a.CoreID, len(a.Pieces), a.Preemptions)
			}
		}
	}
	if split == 0 {
		t.Fatal("no core was split on the monster60 regime where splitting wins")
	}
}

func TestPreemptScheduleDeterministic(t *testing.T) {
	var outs [2][]byte
	for i := range outs {
		opt := optimizer(t, "d695")
		sch, err := NewPreempt().Schedule(context.Background(), opt, preemptParams(t, opt, 24, 2))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := schedio.Save(&buf, sch); err != nil {
			t.Fatal(err)
		}
		outs[i] = buf.Bytes()
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("preempt-rectpack schedules differ across runs")
	}
}

func TestPreemptScheduleHonorsPowerBudget(t *testing.T) {
	opt := optimizer(t, "d695")
	params := preemptParams(t, opt, 16, 2)
	params.PowerMax = sched.DefaultPowerBudget(opt.SOC(), 110)
	sch, err := NewPreempt().Schedule(context.Background(), opt, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.CheckInvariants(opt.SOC(), sch); err != nil {
		t.Fatalf("power-constrained preemptive schedule: %v", err)
	}
}

func TestPreemptScheduleErrors(t *testing.T) {
	opt := optimizer(t, "demo8")
	if _, err := NewPreempt().Schedule(context.Background(), opt, sched.Params{TAMWidth: 0}); err == nil {
		t.Error("TAMWidth 0 accepted")
	}
}

func TestPreemptScheduleCancelled(t *testing.T) {
	opt := optimizer(t, "demo8")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	params := preemptParams(t, opt, 16, 1)
	if _, err := NewPreempt().Schedule(ctx, opt, params); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled preempt-rectpack returned %v, want context.Canceled", err)
	}
}
