package schedio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/sched"
)

func TestRoundTrip(t *testing.T) {
	s := bench.Demo()
	sch, err := sched.SweepBest(s, sched.Params{TAMWidth: 16}, []int{5, 10}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()), s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != sch.Makespan || got.TAMWidth != sch.TAMWidth {
		t.Fatalf("headline mismatch: %d/%d vs %d/%d", got.Makespan, got.TAMWidth, sch.Makespan, sch.TAMWidth)
	}
	for id, a := range sch.Assignments {
		b := got.Assignments[id]
		if b == nil {
			t.Fatalf("core %d missing after round trip", id)
		}
		if a.Width != b.Width || a.BaseTime != b.BaseTime || len(a.Pieces) != len(b.Pieces) {
			t.Fatalf("core %d assignment changed", id)
		}
		for i := range a.Pieces {
			if a.Pieces[i].Start != b.Pieces[i].Start || a.Pieces[i].End != b.Pieces[i].End {
				t.Fatalf("core %d piece %d moved", id, i)
			}
			for j := range a.Pieces[i].Wires {
				if a.Pieces[i].Wires[j] != b.Pieces[i].Wires[j] {
					t.Fatalf("core %d piece %d wires changed", id, i)
				}
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := bench.D695()
	sch, err := sched.SweepBest(s, sched.Params{TAMWidth: 32}, []int{10}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/sch.json"
	if err := SaveFile(path, sch); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != sch.Makespan {
		t.Fatal("makespan changed")
	}
	if _, err := LoadFile(path+".missing", s); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadRejectsWrongSOC(t *testing.T) {
	s := bench.Demo()
	sch, err := sched.SweepBest(s, sched.Params{TAMWidth: 16}, []int{5}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	other := bench.D695()
	if _, err := Load(bytes.NewReader(buf.Bytes()), other); err == nil || !strings.Contains(err.Error(), "for SOC") {
		t.Fatalf("wrong SOC accepted: %v", err)
	}
}

func TestLoadRejectsTampering(t *testing.T) {
	s := bench.Demo()
	sch, err := sched.SweepBest(s, sched.Params{TAMWidth: 16}, []int{5}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	base := buf.String()

	cases := []struct {
		name, from, to string
	}{
		{"version", `"version": 1`, `"version": 2`},
		{"makespan", `"makespan": `, `"makespan": 1`}, // prefix-breaks the value
		{"unknown field", `"version": 1`, `"version": 1, "extra": true`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			text := strings.Replace(base, tc.from, tc.to, 1)
			if text == base {
				t.Fatalf("mutation %q did not apply", tc.name)
			}
			if _, err := Load(strings.NewReader(text), s); err == nil {
				t.Fatalf("tampered file (%s) accepted", tc.name)
			}
		})
	}
}

func TestLoadRejectsWireConflicts(t *testing.T) {
	s := bench.Demo()
	sch, err := sched.SweepBest(s, sched.Params{TAMWidth: 16}, []int{5}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	// Rewrite every piece's wire list to [0, 1, ...]: overlapping pieces
	// then collide on wire 0 and the exact-replay must fail.
	text := buf.String()
	if !strings.Contains(text, `"wires"`) {
		t.Fatal("no wires in file")
	}
	// Cheap structural corruption: change the first listed wire of every
	// piece to 0. (Some schedules may survive if nothing overlaps; the
	// demo SOC at W=16 always has concurrent tests.)
	mutated := wireZeroRe(text)
	if mutated == text {
		t.Skip("mutation not applicable")
	}
	if _, err := Load(strings.NewReader(mutated), s); err == nil {
		t.Fatal("wire-conflicting file accepted")
	}
}

// wireZeroRe rewrites `"wires": [N` to `"wires": [0` everywhere.
func wireZeroRe(text string) string {
	const key = `"wires": [`
	var b strings.Builder
	for {
		i := strings.Index(text, key)
		if i < 0 {
			b.WriteString(text)
			return b.String()
		}
		b.WriteString(text[:i+len(key)])
		text = text[i+len(key):]
		j := 0
		for j < len(text) && text[j] != ',' && text[j] != ']' {
			j++
		}
		b.WriteString("0")
		text = text[j:]
	}
}

func TestSaveIsSorted(t *testing.T) {
	s := bench.Demo()
	sch, err := sched.SweepBest(s, sched.Params{TAMWidth: 16}, []int{5}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	// Core IDs must appear in ascending order for stable diffs.
	text := buf.String()
	last := -1
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, `"coreId": `) {
			var id int
			if _, err := fmt.Sscanf(line, `"coreId": %d,`, &id); err != nil {
				continue
			}
			if id <= last {
				t.Fatalf("core IDs out of order: %d after %d", id, last)
			}
			last = id
		}
	}
	if last < 1 {
		t.Fatal("no cores found in output")
	}
}
