package schedio

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/soc"
)

// fuzzSOC is the SOC every fuzz input is loaded against. demo8 exercises
// hierarchy, precedence, concurrency, and BIST constraints in a small
// verification surface.
func fuzzSOC(tb testing.TB) *soc.SOC {
	tb.Helper()
	s, err := bench.ByName("demo8")
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// seedSchedules serializes a few real schedules (plain, preemptive,
// power-constrained, rectpack-style backend echo) as fuzz seeds, so the
// fuzzer starts from the valid-document neighborhood.
func seedSchedules(f *testing.F) {
	s := fuzzSOC(f)
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		f.Fatal(err)
	}
	mp, err := opt.LargerCorePreemptions(1)
	if err != nil {
		f.Fatal(err)
	}
	for _, params := range []sched.Params{
		{TAMWidth: 16, Percent: 5, Delta: 1},
		{TAMWidth: 12, Percent: 3, Delta: 0, MaxPreemptions: mp},
		{TAMWidth: 8, Percent: 5, Delta: 1, PowerMax: sched.DefaultPowerBudget(s, 110)},
		{TAMWidth: 16, Percent: 5, Delta: 1, Backend: "rectpack"},
	} {
		sch, err := opt.Run(params)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, sch); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"soc":"demo8","tamWidth":0}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
}

// FuzzLoadSchedule asserts that Load never panics on arbitrary bytes, and
// that any input it accepts round-trips byte-identically: Save(Load(x))
// re-loaded and re-saved yields the same bytes (the canonical form is a
// fixed point).
func FuzzLoadSchedule(f *testing.F) {
	seedSchedules(f)
	s := fuzzSOC(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		sch, err := Load(bytes.NewReader(data), s)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		var first bytes.Buffer
		if err := Save(&first, sch); err != nil {
			t.Fatalf("Save after successful Load: %v", err)
		}
		sch2, err := Load(bytes.NewReader(first.Bytes()), s)
		if err != nil {
			t.Fatalf("re-Load of saved schedule: %v", err)
		}
		var second bytes.Buffer
		if err := Save(&second, sch2); err != nil {
			t.Fatalf("re-Save: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Save→Load→Save not a fixed point:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
		}
	})
}

// TestBackendFieldRoundTrip pins the schedio backend annotation: schedules
// produced by a non-classic backend record it, loaders get it back, and
// the default classic backend stays invisible on the wire (goldens from
// before the backend registry are unchanged).
func TestBackendFieldRoundTrip(t *testing.T) {
	s := fuzzSOC(t)
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := opt.Run(sched.Params{TAMWidth: 16, Percent: 5, Delta: 1, Backend: "rectpack"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"backend": "rectpack"`)) {
		t.Fatalf("saved schedule missing backend annotation:\n%s", buf.Bytes())
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), s)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Params.Backend != "rectpack" {
		t.Fatalf("loaded backend %q, want %q", loaded.Params.Backend, "rectpack")
	}

	sch.Params.Backend = ""
	buf.Reset()
	if err := Save(&buf, sch); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"backend"`)) {
		t.Fatalf("classic schedule leaked a backend field:\n%s", buf.Bytes())
	}
}
