// Package schedio serializes completed test schedules to and from JSON so
// downstream tools (ATE program generators, floorplanners, dashboards) can
// consume the framework's output without linking Go. The format is stable,
// versioned, and round-trips losslessly; Load re-validates the schedule
// against its SOC before handing it back.
package schedio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/rect"
	"repro/internal/sched"
	"repro/internal/soc"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// File is the serialized form of a schedule.
type File struct {
	Version  int    `json:"version"`
	SOC      string `json:"soc"`
	TAMWidth int    `json:"tamWidth"`
	// Params echoes the scheduling parameters that produced the schedule.
	Params ParamsJSON `json:"params"`
	// Makespan is the SOC testing time in cycles.
	Makespan int64 `json:"makespan"`
	// DataVolume is TAMWidth × Makespan bits.
	DataVolume int64 `json:"dataVolume"`
	// Cores holds per-core assignments sorted by core ID.
	Cores []CoreJSON `json:"cores"`
}

// ParamsJSON mirrors sched.Params (stable field names). Backend records
// which scheduling backend produced the schedule; it is omitted for the
// default classic backend, so pre-backend files and goldens are unchanged.
type ParamsJSON struct {
	Percent     int    `json:"percent"`
	Delta       int    `json:"delta"`
	PowerMax    int    `json:"powerMax,omitempty"`
	InsertSlack int    `json:"insertSlack"`
	MaxWidth    int    `json:"maxWidth"`
	Backend     string `json:"backend,omitempty"`
	// Seed records the randomized-backend seed (anneal); omitted when
	// zero, so deterministic-backend files and goldens are unchanged.
	Seed int64 `json:"seed,omitempty"`
}

// CoreJSON is one core's assignment.
type CoreJSON struct {
	CoreID        int         `json:"coreId"`
	Width         int         `json:"width"`
	BaseTime      int64       `json:"baseTime"`
	Preemptions   int         `json:"preemptions"`
	PenaltyCycles int64       `json:"penaltyCycles,omitempty"`
	ScanIn        int         `json:"scanIn"`
	ScanOut       int         `json:"scanOut"`
	Pieces        []PieceJSON `json:"pieces"`
}

// PieceJSON is one scheduled fragment with its concrete TAM wires.
type PieceJSON struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	Wires []int `json:"wires"`
}

// Save writes the schedule as indented JSON.
func Save(w io.Writer, sch *sched.Schedule) error {
	f := File{
		Version:  FormatVersion,
		SOC:      sch.SOC,
		TAMWidth: sch.TAMWidth,
		Params: ParamsJSON{
			Percent:     sch.Params.Percent,
			Delta:       sch.Params.Delta,
			PowerMax:    sch.Params.PowerMax,
			InsertSlack: sch.Params.InsertSlack,
			MaxWidth:    sch.Params.MaxWidth,
			Backend:     sch.Params.Backend,
			Seed:        sch.Params.Seed,
		},
		Makespan:   sch.Makespan,
		DataVolume: sch.DataVolume(),
	}
	var ids []int
	for id := range sch.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := sch.Assignments[id]
		cj := CoreJSON{
			CoreID:        a.CoreID,
			Width:         a.Width,
			BaseTime:      a.BaseTime,
			Preemptions:   a.Preemptions,
			PenaltyCycles: a.PenaltyCycles,
			ScanIn:        a.ScanIn,
			ScanOut:       a.ScanOut,
		}
		for _, p := range a.Pieces {
			cj.Pieces = append(cj.Pieces, PieceJSON{Start: p.Start, End: p.End, Wires: append([]int(nil), p.Wires...)})
		}
		f.Cores = append(f.Cores, cj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// SaveFile writes the schedule to the named file.
func SaveFile(path string, sch *sched.Schedule) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, sch); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a schedule and reconstructs it against the SOC it was
// produced for. The reconstructed schedule is re-verified (packing,
// timing model, constraints) before being returned, so a tampered or
// stale file is rejected rather than silently trusted.
func Load(r io.Reader, s *soc.SOC) (*sched.Schedule, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("schedio: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("schedio: unsupported format version %d (want %d)", f.Version, FormatVersion)
	}
	if f.SOC != s.Name {
		return nil, fmt.Errorf("schedio: schedule is for SOC %q, loaded against %q", f.SOC, s.Name)
	}
	if f.TAMWidth < 1 {
		return nil, fmt.Errorf("schedio: bad TAM width %d", f.TAMWidth)
	}
	bin, err := rect.NewBin(f.TAMWidth)
	if err != nil {
		return nil, fmt.Errorf("schedio: %v", err)
	}
	sch := &sched.Schedule{
		SOC:      f.SOC,
		TAMWidth: f.TAMWidth,
		Params: sched.Params{
			TAMWidth:    f.TAMWidth,
			Percent:     f.Params.Percent,
			Delta:       f.Params.Delta,
			PowerMax:    f.Params.PowerMax,
			InsertSlack: f.Params.InsertSlack,
			MaxWidth:    f.Params.MaxWidth,
			Backend:     f.Params.Backend,
			Seed:        f.Params.Seed,
		},
		Assignments: make(map[int]*sched.Assignment, len(f.Cores)),
		Makespan:    f.Makespan,
		Bin:         bin,
	}
	for _, cj := range f.Cores {
		a := &sched.Assignment{
			CoreID:        cj.CoreID,
			Width:         cj.Width,
			BaseTime:      cj.BaseTime,
			Preemptions:   cj.Preemptions,
			PenaltyCycles: cj.PenaltyCycles,
			ScanIn:        cj.ScanIn,
			ScanOut:       cj.ScanOut,
		}
		for _, pj := range cj.Pieces {
			placed, err := placeExact(bin, cj.CoreID, pj)
			if err != nil {
				return nil, err
			}
			a.Pieces = append(a.Pieces, *placed)
		}
		sch.Assignments[cj.CoreID] = a
	}
	if err := sched.Verify(s, sch); err != nil {
		return nil, fmt.Errorf("schedio: loaded schedule fails verification: %w", err)
	}
	return sch, nil
}

// LoadFile reads a schedule from the named file.
func LoadFile(path string, s *soc.SOC) (*sched.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sch, err := Load(f, s)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sch, nil
}

// placeExact re-occupies exactly the serialized wires, ensuring the file's
// wire assignment is conflict-free (PlacePreferred with every wire pinned).
func placeExact(bin *rect.Bin, coreID int, pj PieceJSON) (*rect.Piece, error) {
	if len(pj.Wires) == 0 {
		return nil, fmt.Errorf("schedio: core %d piece [%d,%d) has no wires", coreID, pj.Start, pj.End)
	}
	p, err := bin.PlacePreferred(coreID, len(pj.Wires), pj.Start, pj.End, pj.Wires)
	if err != nil {
		return nil, fmt.Errorf("schedio: core %d: %v", coreID, err)
	}
	// PlacePreferred falls back to other wires when a preferred one is
	// busy; for an exact replay that is corruption, not flexibility.
	want := append([]int(nil), pj.Wires...)
	sort.Ints(want)
	for i, w := range p.Wires {
		if want[i] != w {
			return nil, fmt.Errorf("schedio: core %d piece [%d,%d): wires %v unavailable (conflict in file)",
				coreID, pj.Start, pj.End, pj.Wires)
		}
	}
	return p, nil
}
