// Package anneal implements the "anneal" scheduling backend: seeded
// simulated-annealing local search over rectangle placements. A candidate
// solution is a genome — a core priority order, a per-core width cap and
// quality floor over the Pareto staircase, and an optional forced split
// point when the core has preemption budget — decoded by the same
// event-driven packing the rectpack backend uses, honoring the identical
// precedence / concurrency / power / BIST checks. The search is seeded
// with every strategy of rectpack's deterministic portfolio, so its
// best-ever solution is never worse than rectpack on the same parameters;
// annealing then perturbs orders, Pareto points, and split points to
// escape the greedy packer's local minima.
//
// The search is fully deterministic under a fixed Params.Seed (zero means
// sched.DefaultSeed): the same seed always yields byte-identical
// schedules. The backend registers itself as "anneal" on import.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/chaos"
	"repro/internal/constraint"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/rect"
	"repro/internal/sched"
)

// Name is the backend's registry name.
const Name = "anneal"

// siteSchedule is the failpoint the chaos suite arms to make this backend
// fail, stall, or hang inside a portfolio race.
const siteSchedule = "anneal/schedule"

// Backend is the annealing local-search backend. The zero value is ready
// to use; it is stateless and safe for concurrent use (each Schedule call
// owns its own seeded generator).
type Backend struct{}

// New returns the anneal backend (also registered globally on import).
func New() *Backend { return &Backend{} }

// Name returns "anneal".
func (*Backend) Name() string { return Name }

// core is the immutable per-core search input.
type core struct {
	id     int
	set    *pareto.Set // capped at min(MaxWidth, TAMWidth)
	budget int         // preemption budget (0 = the split gene is inert)
	dur    int64       // MinTime, cached for ordering
	area   int64       // MinArea, cached for ordering
}

// genome is one candidate solution. Slices are indexed by core position in
// the id-ascending core slice, except perm, which lists those positions in
// fill-priority order.
type genome struct {
	perm  []int
	cap   []int   // width cap; the decoder starts at SnapDown(min(cap, free))
	floor []int   // quality floor; 0 = any width
	split []int64 // forced first-segment cycles; 0 = run to completion
}

func (g *genome) clone() *genome {
	c := &genome{
		perm:  append([]int(nil), g.perm...),
		cap:   append([]int(nil), g.cap...),
		floor: append([]int(nil), g.floor...),
		split: append([]int64(nil), g.split...),
	}
	return c
}

// simState is a core's phase within one decode.
type simState uint8

const (
	simUnstarted simState = iota
	simRunning
	simSuspended
	simDone
)

// span is one closed segment of a (possibly split) rectangle.
type span struct {
	start, end int64
}

// simCore is the per-core state of one decode.
type simCore struct {
	state     simState
	width     int
	remaining int64
	segStart  int64
	yieldAt   int64 // forced split instant; -1 = none
	yieldedAt int64 // instant of the last suspension (no same-instant resume)
	segs      []span
	preempts  int
	penalty   int64
}

// closeSeg ends the open segment at end, merging seamless continuations.
func (s *simCore) closeSeg(end int64) {
	s.remaining -= end - s.segStart
	if n := len(s.segs); n > 0 && s.segs[n-1].end == s.segStart {
		s.segs[n-1].end = end
	} else {
		s.segs = append(s.segs, span{s.segStart, end})
	}
}

// decoded is one genome's simulation outcome before wire assignment.
type decoded struct {
	sim      []simCore // parallel to the id-ascending core slice
	makespan int64
	events   int
	splits   int
}

// decode runs the genome through the event-driven packer and returns the
// resulting placement, or an error when the genome is infeasible (a floor
// no reachable width satisfies, or a constraint deadlock). The decoder is
// the same machine rectpack races: at every event each core is offered, in
// genome priority order, the largest Pareto width that fits the free
// wires under its cap, subject to its floor and the constraint checker. A
// core whose split gene fires suspends itself mid-run, freeing its wires;
// it resumes at a later event at the same width (the vertical-split rule),
// paying the wrapper's preemption penalty for the gap.
func decode(cores []*core, g *genome, chk *constraint.Checker, tamWidth int, penFor func(id, width int) int64) (*decoded, error) {
	n := len(cores)
	sim := make([]simCore, n)
	running := make(map[int]bool, n)
	complete := make(map[int]bool, n)
	var now int64
	avail := tamWidth
	left := n
	events := 0
	splits := 0
	for left > 0 {
		events++
		for _, ci := range g.perm {
			c := cores[ci]
			s := &sim[ci]
			switch s.state {
			case simSuspended:
				if avail >= s.width && now > s.yieldedAt && chk.OK(c.id, complete, running) {
					pen := penFor(c.id, s.width)
					s.preempts++
					s.penalty += pen
					s.remaining += pen
					s.state = simRunning
					s.segStart = now
					running[c.id] = true
					avail -= s.width
				}
			case simUnstarted:
				if avail < 1 {
					continue
				}
				limit := g.cap[ci]
				if limit > avail {
					limit = avail
				}
				w, ok := c.set.SnapDown(limit)
				if !ok || (g.floor[ci] > 0 && w < g.floor[ci]) {
					continue
				}
				if !chk.OK(c.id, complete, running) {
					continue
				}
				s.state = simRunning
				s.width = w
				s.remaining = c.set.Time(w)
				s.segStart = now
				s.yieldAt = -1
				if g.split[ci] > 0 && c.budget > 0 && g.split[ci] < s.remaining {
					s.yieldAt = now + g.split[ci]
					splits++
				}
				running[c.id] = true
				avail -= w
			}
		}
		if len(running) == 0 {
			return nil, fmt.Errorf("anneal: no core can run at t=%d with %d cores left", now, left)
		}
		// Advance to the earliest segment end or forced split among the
		// running cores, then retire or suspend everything landing there.
		var next int64 = -1
		for i := range sim {
			s := &sim[i]
			if s.state != simRunning {
				continue
			}
			end := s.segStart + s.remaining
			if s.yieldAt >= 0 && s.yieldAt < end {
				end = s.yieldAt
			}
			if next == -1 || end < next {
				next = end
			}
		}
		for i := range sim {
			s := &sim[i]
			if s.state != simRunning {
				continue
			}
			end := s.segStart + s.remaining
			if s.yieldAt >= 0 && s.yieldAt < end && s.yieldAt == next {
				s.closeSeg(next)
				s.state = simSuspended
				s.yieldedAt = next
				s.yieldAt = -1
				delete(running, cores[i].id)
				avail += s.width
			} else if end == next {
				s.closeSeg(next)
				s.state = simDone
				delete(running, cores[i].id)
				complete[cores[i].id] = true
				avail += s.width
				left--
			}
		}
		now = next
	}
	return &decoded{sim: sim, makespan: now, events: events, splits: splits}, nil
}

// seedGenomes mirrors rectpack's deterministic strategy portfolio as
// genomes — four decreasing orders crossed with the cap ladder, the
// quality-floor passes, plus two ascending orders for budget-bearing
// parameter sets (budgets land on the larger cores, so small-cores-first
// priority makes the budgeted giants the natural split candidates). With
// these seeds evaluated before any annealing move, the backend's best-ever
// solution starts no worse than rectpack's portfolio winner.
func seedGenomes(cores []*core, wmax int) []*genome {
	n := len(cores)
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	permBy := func(less func(a, b *core) bool) []int {
		p := append([]int(nil), base...)
		sort.SliceStable(p, func(i, j int) bool { return less(cores[p[i]], cores[p[j]]) })
		return p
	}
	byTime := permBy(func(a, b *core) bool { return a.dur > b.dur })
	byArea := permBy(func(a, b *core) bool { return a.area > b.area })
	bySerial := permBy(func(a, b *core) bool { return a.set.Time(1) > b.set.Time(1) })
	byWidth := permBy(func(a, b *core) bool {
		if a.set.MaxParetoWidth() != b.set.MaxParetoWidth() {
			return a.set.MaxParetoWidth() > b.set.MaxParetoWidth()
		}
		return a.dur > b.dur
	})
	ascTime := permBy(func(a, b *core) bool { return a.dur < b.dur })
	ascArea := permBy(func(a, b *core) bool { return a.area < b.area })

	uniform := func(w int) []int {
		caps := make([]int, n)
		for i := range caps {
			caps[i] = w
		}
		return caps
	}
	minArea := make([]int, n)
	for i, c := range cores {
		minArea[i] = minAreaWidth(c.set)
	}
	frac := func(den int) []int {
		w := wmax / den
		if w < 1 {
			w = 1
		}
		return uniform(w)
	}
	quality := func(stretchPct int64) []int {
		floors := make([]int, n)
		for i, c := range cores {
			floors[i] = qualityWidth(c.set, stretchPct)
		}
		return floors
	}

	zero := make([]int, n)
	zero64 := make([]int64, n)
	mk := func(perm, caps, floors []int) *genome {
		return &genome{
			perm:  append([]int(nil), perm...),
			cap:   append([]int(nil), caps...),
			floor: append([]int(nil), floors...),
			split: append([]int64(nil), zero64...),
		}
	}

	var out []*genome
	for _, perm := range [][]int{byTime, byArea, bySerial, byWidth} {
		for _, caps := range [][]int{uniform(wmax), frac(2), frac(3), frac(4), minArea} {
			out = append(out, mk(perm, caps, zero))
		}
	}
	for _, perm := range [][]int{byTime, byArea} {
		for _, stretch := range []int64{25, 50, 100} {
			out = append(out, mk(perm, uniform(wmax), quality(stretch)))
		}
	}
	for _, perm := range [][]int{ascTime, ascArea} {
		out = append(out, mk(perm, uniform(wmax), zero))
	}
	return out
}

// qualityWidth returns the smallest width whose time is within stretchPct%
// of the core's best time (rectpack's quality floor).
func qualityWidth(set *pareto.Set, stretchPct int64) int {
	limit := set.MinTime() + set.MinTime()*stretchPct/100
	for _, p := range set.Points {
		if p.Time <= limit {
			return p.Width
		}
	}
	return set.MaxParetoWidth()
}

// minAreaWidth returns the Pareto width minimizing w·T(w).
func minAreaWidth(set *pareto.Set) int {
	best := set.Points[0].Width
	bestArea := int64(set.Points[0].Width) * set.Points[0].Time
	for _, p := range set.Points[1:] {
		if a := int64(p.Width) * p.Time; a < bestArea {
			best, bestArea = p.Width, a
		}
	}
	return best
}

// neighbor mutates g in place with one random move and returns an undo
// closure. Moves: swap two priority positions, relocate one core in the
// priority order, re-aim a core at a different Pareto point, move its
// quality floor, or (for budget-bearing cores) set, move, or clear its
// forced split point.
func neighbor(g *genome, cores []*core, wmax int, anyBudget bool, rng *rand.Rand) func() {
	n := len(g.perm)
	kind := rng.Intn(100)
	if !anyBudget && kind >= 90 {
		kind = 60 // fold split moves into cap moves
	}
	switch {
	case kind < 30: // swap two priority positions
		i, j := rng.Intn(n), rng.Intn(n)
		g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
		return func() { g.perm[i], g.perm[j] = g.perm[j], g.perm[i] }
	case kind < 50: // relocate one core in the priority order
		from, to := rng.Intn(n), rng.Intn(n)
		v := g.perm[from]
		g.perm = append(g.perm[:from], g.perm[from+1:]...)
		g.perm = append(g.perm[:to], append([]int{v}, g.perm[to:]...)...)
		return func() {
			g.perm = append(g.perm[:to], g.perm[to+1:]...)
			g.perm = append(g.perm[:from], append([]int{v}, g.perm[from:]...)...)
		}
	case kind < 75: // re-aim a core at a different Pareto point
		ci := rng.Intn(n)
		old := g.cap[ci]
		pts := cores[ci].set.Points
		if rng.Intn(8) == 0 {
			g.cap[ci] = wmax
		} else {
			g.cap[ci] = pts[rng.Intn(len(pts))].Width
		}
		oldFloor := g.floor[ci]
		if w, ok := cores[ci].set.SnapDown(g.cap[ci]); ok && g.floor[ci] > w {
			g.floor[ci] = 0 // keep the genome feasible: floor above cap never starts
		}
		return func() { g.cap[ci], g.floor[ci] = old, oldFloor }
	case kind < 90: // move a core's quality floor
		ci := rng.Intn(n)
		old := g.floor[ci]
		if rng.Intn(2) == 0 {
			g.floor[ci] = 0
		} else if w, ok := cores[ci].set.SnapDown(g.cap[ci]); ok {
			pts := cores[ci].set.Points
			f := pts[rng.Intn(len(pts))].Width
			if f > w {
				f = w
			}
			g.floor[ci] = f
		}
		return func() { g.floor[ci] = old }
	default: // set, move, or clear a forced split point
		budgeted := make([]int, 0, n)
		for i, c := range cores {
			if c.budget > 0 {
				budgeted = append(budgeted, i)
			}
		}
		ci := budgeted[rng.Intn(len(budgeted))]
		old := g.split[ci]
		if old != 0 && rng.Intn(3) == 0 {
			g.split[ci] = 0
		} else {
			w, ok := cores[ci].set.SnapDown(g.cap[ci])
			if !ok {
				w = cores[ci].set.MaxParetoWidth()
			}
			dur := cores[ci].set.Time(w)
			if dur > 1 {
				// Split somewhere in the middle three quarters of the run.
				lo := dur / 8
				if lo < 1 {
					lo = 1
				}
				hi := dur - dur/8
				if hi <= lo {
					hi = lo + 1
				}
				g.split[ci] = lo + rng.Int63n(hi-lo)
			}
		}
		return func() { g.split[ci] = old }
	}
}

// iterBudget scales the annealing move count down as the SOC grows, so a
// Schedule call stays a few tens of milliseconds across the corpus: each
// move costs one decode, roughly quadratic in the core count.
func iterBudget(n int) int {
	if n < 1 {
		n = 1
	}
	iters := 24000 / n
	if iters < 400 {
		iters = 400
	}
	if iters > 3000 {
		iters = 3000
	}
	return iters
}

// Schedule searches for the shortest placeable schedule: rectpack's
// portfolio as seeds, then simulated annealing over the best seed with
// best-ever tracking. Deterministic under a fixed Params.Seed.
func (*Backend) Schedule(ctx context.Context, opt *sched.Optimizer, params sched.Params) (*sched.Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "anneal/search")
	defer span.End()
	defer obs.TimeStage("anneal/search")()
	if err := chaos.InjectContext(ctx, siteSchedule); err != nil {
		return nil, err
	}
	params = params.Defaults()
	cores, chk, err := buildCores(ctx, opt, params)
	if err != nil {
		return nil, err
	}
	penFor := func(id, width int) int64 {
		d := opt.Design(id, width)
		if d == nil {
			// Width in 1..maxWidth and core validated: cannot happen.
			panic(fmt.Sprintf("anneal: no cached design for core %d width %d", id, width))
		}
		return d.PreemptionPenalty()
	}
	wmax := params.MaxWidth
	if wmax > params.TAMWidth {
		wmax = params.TAMWidth
	}
	anyBudget := false
	for _, c := range cores {
		if c.budget > 0 {
			anyBudget = true
			break
		}
	}

	seed := params.Seed
	if seed == 0 {
		seed = sched.DefaultSeed
	}
	rng := rand.New(rand.NewSource(seed))

	// Evaluate the deterministic seeds; the best becomes the annealing
	// start and the best-ever floor.
	var cur *genome
	var curCost int64
	var firstErr error
	for _, g := range seedGenomes(cores, wmax) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := decode(cores, g, chk, params.TAMWidth, penFor)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if cur == nil || res.makespan < curCost {
			cur, curCost = g, res.makespan
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("anneal: every seed infeasible: %w", firstErr)
	}

	// Anneal: one random move per iteration, Metropolis acceptance on the
	// simulated makespan, geometric cooling, and a restart from the best
	// known solution when progress stalls. Every improvement is kept in
	// best-first order so wire assignment can fall back if the very best
	// layout turns out unplaceable.
	bests := []*genome{cur.clone()}
	bestCost := curCost
	iters := iterBudget(len(cores))
	t0 := float64(bestCost) / 100
	if t0 < 1 {
		t0 = 1
	}
	cooling := math.Pow(1e-3, 1/float64(iters))
	temp := t0
	stall := 0
	improved := 0
	for i := 0; i < iters; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		undo := neighbor(cur, cores, wmax, anyBudget, rng)
		res, err := decode(cores, cur, chk, params.TAMWidth, penFor)
		cost := int64(math.MaxInt64)
		if err == nil {
			cost = res.makespan
		}
		delta := float64(cost - curCost)
		if delta <= 0 || (err == nil && rng.Float64() < math.Exp(-delta/temp)) {
			curCost = cost
			if cost < bestCost {
				bestCost = cost
				bests = append([]*genome{cur.clone()}, bests...)
				improved++
				stall = 0
			} else {
				stall++
			}
		} else {
			undo()
			stall++
		}
		if stall > iters/5 {
			cur, curCost = bests[0].clone(), bestCost
			stall = 0
		}
		temp *= cooling
	}
	span.SetAttr("iters", iters)
	span.SetAttr("improved", improved)

	// Emit best-first: wire assignment may reject a busy split layout, in
	// which case the next-best recorded solution gets its chance.
	for _, g := range bests {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := decode(cores, g, chk, params.TAMWidth, penFor)
		if err != nil {
			continue
		}
		sch, err := emit(opt, params, cores, res)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		span.SetAttr("makespan", sch.Makespan)
		span.SetAttr("splits", res.splits)
		return sch, nil
	}
	return nil, fmt.Errorf("anneal: no solution placeable: %w", firstErr)
}

// buildCores validates the parameters and assembles the per-core search
// inputs plus the constraint checker, mirroring rectpack's setup so both
// backends compete on identical ground.
func buildCores(ctx context.Context, opt *sched.Optimizer, params sched.Params) ([]*core, *constraint.Checker, error) {
	if params.TAMWidth < 1 {
		return nil, nil, fmt.Errorf("anneal: non-positive TAM width %d", params.TAMWidth)
	}
	if params.MaxWidth > opt.MaxWidth() {
		return nil, nil, fmt.Errorf("anneal: params.MaxWidth %d exceeds optimizer cap %d", params.MaxWidth, opt.MaxWidth())
	}
	s := opt.SOC()
	chk, err := constraint.New(s, constraint.Config{
		PowerMax:        params.PowerMax,
		IgnoreHierarchy: params.IgnoreHierarchy,
	})
	if err != nil {
		return nil, nil, err
	}
	wmax := params.MaxWidth
	if wmax > params.TAMWidth {
		wmax = params.TAMWidth
	}
	cores := make([]*core, 0, len(s.Cores))
	for _, c := range s.Cores {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		set, err := opt.ParetoSet(c.ID).Capped(wmax)
		if err != nil {
			return nil, nil, err
		}
		cores = append(cores, &core{
			id:     c.ID,
			set:    set,
			budget: params.MaxPreemptions[c.ID],
			dur:    set.MinTime(),
			area:   set.MinArea(),
		})
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i].id < cores[j].id })
	return cores, chk, nil
}

// emit maps a decoded solution onto concrete TAM wires. Fragments are
// placed in global start order; a resumed segment prefers its previous
// wires, exactly like the classic scheduler's preempted resumes.
func emit(opt *sched.Optimizer, params sched.Params, cores []*core, res *decoded) (*sched.Schedule, error) {
	bin, err := rect.NewBin(params.TAMWidth)
	if err != nil {
		return nil, err
	}
	type frag struct {
		ci  int
		seg span
	}
	var frags []frag
	for i := range res.sim {
		for _, sg := range res.sim[i].segs {
			frags = append(frags, frag{i, sg})
		}
	}
	sort.Slice(frags, func(i, j int) bool {
		if frags[i].seg.start != frags[j].seg.start {
			return frags[i].seg.start < frags[j].seg.start
		}
		return cores[frags[i].ci].id < cores[frags[j].ci].id
	})
	out := &sched.Schedule{
		SOC:         opt.SOC().Name,
		TAMWidth:    params.TAMWidth,
		Params:      params,
		Assignments: make(map[int]*sched.Assignment, len(cores)),
		Makespan:    res.makespan,
		Bin:         bin,
		Events:      res.events,
	}
	for _, f := range frags {
		c := cores[f.ci]
		s := &res.sim[f.ci]
		var prefer []int
		a := out.Assignments[c.id]
		if a != nil {
			prefer = a.Pieces[len(a.Pieces)-1].Wires
		}
		p, err := bin.PlacePreferred(c.id, s.width, f.seg.start, f.seg.end, prefer)
		if err != nil {
			return nil, fmt.Errorf("anneal: wire assignment: %v", err)
		}
		if a == nil {
			d := opt.Design(c.id, s.width)
			if d == nil {
				return nil, fmt.Errorf("anneal: no cached design for core %d width %d", c.id, s.width)
			}
			a = &sched.Assignment{
				CoreID:        c.id,
				Width:         s.width,
				Preemptions:   s.preempts,
				PenaltyCycles: s.penalty,
				BaseTime:      c.set.Time(s.width),
				ScanIn:        d.ScanInMax,
				ScanOut:       d.ScanOutMax,
			}
			out.Assignments[c.id] = a
		}
		a.Pieces = append(a.Pieces, *p)
	}
	return out, nil
}

func init() {
	sched.RegisterBackend(New())
	chaos.RegisterSites(siteSchedule)
}
