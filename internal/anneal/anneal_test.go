package anneal

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/rectpack"
	"repro/internal/sched"
	"repro/internal/schedio"
)

func optimizer(t *testing.T, name string) *sched.Optimizer {
	t.Helper()
	s, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

func TestRegistered(t *testing.T) {
	b, err := sched.BackendByName(Name)
	if err != nil {
		t.Fatalf("anneal not registered: %v", err)
	}
	if b.Name() != Name {
		t.Fatalf("registered name %q, want %q", b.Name(), Name)
	}
}

func TestScheduleVerifiesAcrossBenchmarks(t *testing.T) {
	for _, name := range []string{"demo8", "d695"} {
		opt := optimizer(t, name)
		for _, w := range []int{8, 16, 32} {
			sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: w})
			if err != nil {
				t.Fatalf("%s W=%d: %v", name, w, err)
			}
			if err := opt.Verify(sch); err != nil {
				t.Errorf("%s W=%d: verify: %v", name, w, err)
			}
			if err := sched.CheckInvariants(opt.SOC(), sch); err != nil {
				t.Errorf("%s W=%d: invariants: %v", name, w, err)
			}
		}
	}
}

func TestScheduleHonorsPowerBudget(t *testing.T) {
	opt := optimizer(t, "demo8")
	budget := sched.DefaultPowerBudget(opt.SOC(), 110)
	sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 16, PowerMax: budget})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.CheckInvariants(opt.SOC(), sch); err != nil {
		t.Fatalf("power-constrained schedule: %v", err)
	}
}

// TestSchedulePreemptive: under a preemption budget the split genes are
// live; whatever the search finds must stay inside the budget and pass
// the split-accounting invariants.
func TestSchedulePreemptive(t *testing.T) {
	opt := optimizer(t, "d695")
	mp, err := opt.LargerCorePreemptions(2)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 24, MaxPreemptions: mp})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.CheckInvariants(opt.SOC(), sch); err != nil {
		t.Fatalf("preemptive schedule: %v", err)
	}
	for id, a := range sch.Assignments {
		if a.Preemptions > mp[id] {
			t.Errorf("core %d: %d preemptions over budget %d", id, a.Preemptions, mp[id])
		}
	}
}

// TestScheduleSeedDeterministic: one seed is one byte stream; a second
// seed is an independent but equally reproducible stream.
func TestScheduleSeedDeterministic(t *testing.T) {
	runBytes := func(seed int64) []byte {
		opt := optimizer(t, "d695")
		sch, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 32, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := schedio.Save(&buf, sch); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(runBytes(0), runBytes(0)) {
		t.Fatal("zero seed not reproducible")
	}
	if !bytes.Equal(runBytes(7), runBytes(7)) {
		t.Fatal("seed 7 not reproducible")
	}
}

// TestScheduleNeverWorseThanRectpack: the seed genomes replicate
// rectpack's whole deterministic portfolio through an equivalent decoder,
// so the best-ever solution can never lose to rectpack head-to-head.
func TestScheduleNeverWorseThanRectpack(t *testing.T) {
	for _, w := range []int{16, 32} {
		opt := optimizer(t, "d695")
		a, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		r, err := rectpack.New().Schedule(context.Background(), opt, sched.Params{TAMWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan > r.Makespan {
			t.Errorf("W=%d: anneal %d worse than rectpack %d", w, a.Makespan, r.Makespan)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	opt := optimizer(t, "demo8")
	if _, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 0}); err == nil {
		t.Error("TAMWidth 0 accepted")
	}
	if _, err := New().Schedule(context.Background(), opt, sched.Params{TAMWidth: 16, MaxWidth: 999}); err == nil {
		t.Error("MaxWidth above the optimizer cap accepted")
	}
}

func TestScheduleCancelled(t *testing.T) {
	opt := optimizer(t, "demo8")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New().Schedule(ctx, opt, sched.Params{TAMWidth: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled anneal returned %v, want context.Canceled", err)
	}
}

func TestIterBudget(t *testing.T) {
	if got := iterBudget(1); got != 3000 {
		t.Errorf("iterBudget(1) = %d, want clamped to 3000", got)
	}
	if got := iterBudget(1000); got != 400 {
		t.Errorf("iterBudget(1000) = %d, want clamped to 400", got)
	}
	if got := iterBudget(24); got != 1000 {
		t.Errorf("iterBudget(24) = %d, want 1000", got)
	}
}

// TestNeighborUndo: every neighbor move must be perfectly reversible —
// the annealer relies on the undo closure to reject moves without
// re-decoding from a fresh genome.
func TestNeighborUndo(t *testing.T) {
	opt := optimizer(t, "d695")
	mp, err := opt.LargerCorePreemptions(2)
	if err != nil {
		t.Fatal(err)
	}
	params := sched.Params{TAMWidth: 24, MaxPreemptions: mp}.Defaults()
	cores, _, err := buildCores(context.Background(), opt, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, anyBudget := range []bool{true, false} {
		rng := rand.New(rand.NewSource(1))
		for _, g := range seedGenomes(cores, params.TAMWidth) {
			before := g.clone()
			for i := 0; i < 50; i++ {
				undo := neighbor(g, cores, params.TAMWidth, anyBudget, rng)
				undo()
				if !reflect.DeepEqual(g, before) {
					t.Fatalf("anyBudget=%t move %d: undo did not restore the genome", anyBudget, i)
				}
			}
		}
	}
}
