// Package wrapperrtl elaborates a wrapper design (internal/wrapper) into a
// structural, IEEE 1500-style hardware description: a Wrapper Instruction
// Register (WIR), a Wrapper Bypass register (WBY), and per-TAM-wire
// wrapper chains stitched from Wrapper Boundary Register (WBR) cells and
// the core's internal scan chains. The result can be inspected, costed
// (cell/mux/flop counts), checked for serial-path consistency, and emitted
// as a synthesizable-shaped Verilog module — the hardware the DAC 2002
// framework's wrapper/TAM co-optimization actually implies.
package wrapperrtl

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/soc"
	"repro/internal/wrapper"
)

// CellKind labels one element on a wrapper chain's serial path.
type CellKind int

const (
	// InputCell is a WBR cell on a functional core input.
	InputCell CellKind = iota
	// OutputCell is a WBR cell on a functional core output.
	OutputCell
	// BidirCell is a WBR cell on a bidirectional terminal.
	BidirCell
	// ScanSegment is one of the core's internal scan chains (a multi-bit
	// segment on the path).
	ScanSegment
)

// String returns the kind's mnemonic.
func (k CellKind) String() string {
	switch k {
	case InputCell:
		return "wbr_in"
	case OutputCell:
		return "wbr_out"
	case BidirCell:
		return "wbr_bidir"
	case ScanSegment:
		return "scan"
	default:
		return fmt.Sprintf("CellKind(%d)", int(k))
	}
}

// Element is one stop on a wrapper chain's serial path.
type Element struct {
	Kind CellKind
	// Index identifies the terminal (for WBR cells) or the internal scan
	// chain (for ScanSegment), within its respective namespace.
	Index int
	// Bits is the element's serial length (1 for WBR cells).
	Bits int
}

// ChainRTL is the elaborated serial path for one TAM wire: input cells
// first, then internal scan segments, then output cells (bidir cells sit
// on both the stimulus and observation portions; structurally they are
// placed between inputs and scan).
type ChainRTL struct {
	// Wire is the chain index (= the TAM wire it terminates).
	Wire int
	// Path is the serial order from scan-in terminal to scan-out terminal.
	Path []Element
}

// Length returns the chain's total serial length in bits.
func (c *ChainRTL) Length() int {
	n := 0
	for _, e := range c.Path {
		n += e.Bits
	}
	return n
}

// Module is the elaborated wrapper for one core.
type Module struct {
	// CoreName and CoreID identify the wrapped core.
	CoreName string
	CoreID   int
	// TAMWidth is the number of wrapper chains / TAM terminals.
	TAMWidth int
	// Chains holds the per-wire serial paths.
	Chains []ChainRTL
	// WIRBits is the instruction register width (1500 instructions:
	// WS_BYPASS, WS_EXTEST, WS_INTEST_SCAN — 2 bits suffice; kept explicit
	// for costing).
	WIRBits int
}

// Instruction opcodes held in the WIR.
const (
	OpBypass = 0 // WS_BYPASS: TAM passes through the 1-bit WBY
	OpExtest = 1 // WS_EXTEST: WBR drives/observes the core's neighbourhood
	OpIntest = 2 // WS_INTEST_SCAN: wrapper chains test the core itself
)

// Elaborate builds the structural wrapper from a wrapper.Design. The
// element order per chain is: input cells, bidir cells, internal scan
// chains (in design order), output cells.
func Elaborate(c *soc.Core, d *wrapper.Design) (*Module, error) {
	if err := d.Validate(c); err != nil {
		return nil, err
	}
	m := &Module{
		CoreName: c.Name,
		CoreID:   c.ID,
		TAMWidth: d.Width,
		WIRBits:  2,
	}
	// Terminal indices are handed out in chain order so every functional
	// terminal gets exactly one WBR cell.
	nextIn, nextOut, nextBidir := 0, 0, 0
	for w := range d.Chains {
		ch := &d.Chains[w]
		rtl := ChainRTL{Wire: w}
		for i := 0; i < ch.InputCells; i++ {
			rtl.Path = append(rtl.Path, Element{Kind: InputCell, Index: nextIn, Bits: 1})
			nextIn++
		}
		for i := 0; i < ch.BidirCells; i++ {
			rtl.Path = append(rtl.Path, Element{Kind: BidirCell, Index: nextBidir, Bits: 1})
			nextBidir++
		}
		for _, sc := range ch.ScanChains {
			rtl.Path = append(rtl.Path, Element{Kind: ScanSegment, Index: sc, Bits: c.ScanChains[sc]})
		}
		for i := 0; i < ch.OutputCells; i++ {
			rtl.Path = append(rtl.Path, Element{Kind: OutputCell, Index: nextOut, Bits: 1})
			nextOut++
		}
		m.Chains = append(m.Chains, rtl)
	}
	return m, nil
}

// Cost summarizes the wrapper's hardware overhead.
type Cost struct {
	// WBRCells counts boundary register cells (one flop + one mux each).
	WBRCells int
	// Flops counts all wrapper-added flip-flops (WBR + WBY + WIR).
	Flops int
	// Muxes counts the path-select muxes: one per WBR cell, one per chain
	// head (TAM/functional select), one for the bypass.
	Muxes int
}

// Cost computes the hardware overhead of the elaborated wrapper.
func (m *Module) Cost() Cost {
	var c Cost
	for i := range m.Chains {
		for _, e := range m.Chains[i].Path {
			if e.Kind != ScanSegment {
				c.WBRCells += e.Bits
			}
		}
	}
	c.Flops = c.WBRCells + 1 /* WBY */ + m.WIRBits
	c.Muxes = c.WBRCells + len(m.Chains) + 1
	return c
}

// Validate checks structural consistency against the core: every terminal
// has exactly one WBR cell, every internal scan chain appears exactly
// once, and chain lengths reconstruct the design's scan-in/scan-out maxima.
func (m *Module) Validate(c *soc.Core, d *wrapper.Design) error {
	in, out, bid := 0, 0, 0
	seenScan := make(map[int]bool)
	for i := range m.Chains {
		ch := &m.Chains[i]
		si, so := 0, 0
		afterScan := false
		for _, e := range ch.Path {
			switch e.Kind {
			case InputCell:
				if afterScan {
					return fmt.Errorf("wrapperrtl: %s chain %d: input cell after scan segment", m.CoreName, i)
				}
				in++
				si += e.Bits
			case BidirCell:
				bid++
				si += e.Bits
				so += e.Bits
			case OutputCell:
				out++
				so += e.Bits
			case ScanSegment:
				if seenScan[e.Index] {
					return fmt.Errorf("wrapperrtl: %s: scan chain %d stitched twice", m.CoreName, e.Index)
				}
				if e.Bits != c.ScanChains[e.Index] {
					return fmt.Errorf("wrapperrtl: %s: scan chain %d has %d bits, core says %d",
						m.CoreName, e.Index, e.Bits, c.ScanChains[e.Index])
				}
				seenScan[e.Index] = true
				afterScan = true
				si += e.Bits
				so += e.Bits
			}
		}
		if si > d.ScanInMax || so > d.ScanOutMax {
			return fmt.Errorf("wrapperrtl: %s chain %d: si/so %d/%d exceed design maxima %d/%d",
				m.CoreName, i, si, so, d.ScanInMax, d.ScanOutMax)
		}
	}
	if in != c.Inputs || out != c.Outputs || bid != c.Bidirs {
		return fmt.Errorf("wrapperrtl: %s: WBR cells in/out/bidir = %d/%d/%d, want %d/%d/%d",
			m.CoreName, in, out, bid, c.Inputs, c.Outputs, c.Bidirs)
	}
	if len(seenScan) != len(c.ScanChains) {
		return fmt.Errorf("wrapperrtl: %s: %d scan chains stitched, want %d", m.CoreName, len(seenScan), len(c.ScanChains))
	}
	return nil
}

// WriteVerilog emits the wrapper as a structural Verilog module: TAM
// terminals, WIR/WBY, and one generate block per wrapper chain. The
// output is synthesizable-shaped (flops and muxes, no behavioural
// shortcuts) and intended for inspection and downstream tooling, not
// tape-out.
func (m *Module) WriteVerilog(w io.Writer) error {
	name := sanitize(m.CoreName)
	var b strings.Builder
	fmt.Fprintf(&b, "// Auto-generated IEEE 1500-style wrapper for core %s (TAM width %d)\n", m.CoreName, m.TAMWidth)
	fmt.Fprintf(&b, "module wrapper_%s (\n", name)
	fmt.Fprintf(&b, "  input  wire                 wrck,      // wrapper clock\n")
	fmt.Fprintf(&b, "  input  wire                 wrstn,     // async reset, active low\n")
	fmt.Fprintf(&b, "  input  wire                 selectwir, // WIR shift select\n")
	fmt.Fprintf(&b, "  input  wire                 shiftwr,   // shift enable\n")
	fmt.Fprintf(&b, "  input  wire                 capturewr, // capture enable\n")
	fmt.Fprintf(&b, "  input  wire [%d:0]           tam_in,    // TAM scan-in terminals\n", m.TAMWidth-1)
	fmt.Fprintf(&b, "  output wire [%d:0]           tam_out    // TAM scan-out terminals\n", m.TAMWidth-1)
	fmt.Fprintf(&b, ");\n\n")
	fmt.Fprintf(&b, "  reg  [%d:0] wir;      // %d-bit instruction register\n", m.WIRBits-1, m.WIRBits)
	fmt.Fprintf(&b, "  reg        wby;      // 1-bit bypass register\n")
	fmt.Fprintf(&b, "  wire intest = (wir == %d'd%d);\n", m.WIRBits, OpIntest)
	fmt.Fprintf(&b, "  wire extest = (wir == %d'd%d);\n\n", m.WIRBits, OpExtest)
	fmt.Fprintf(&b, "  always @(posedge wrck or negedge wrstn)\n")
	fmt.Fprintf(&b, "    if (!wrstn) wir <= %d'd%d;\n", m.WIRBits, OpBypass)
	fmt.Fprintf(&b, "    else if (selectwir && shiftwr) wir <= {tam_in[0], wir[%d:1]};\n\n", m.WIRBits-1)
	fmt.Fprintf(&b, "  always @(posedge wrck) wby <= tam_in[0];\n\n")

	for i := range m.Chains {
		ch := &m.Chains[i]
		n := ch.Length()
		if n == 0 {
			fmt.Fprintf(&b, "  // chain %d: empty (unused TAM wire)\n", i)
			fmt.Fprintf(&b, "  assign tam_out[%d] = tam_in[%d];\n\n", i, i)
			continue
		}
		fmt.Fprintf(&b, "  // chain %d: %d bits (%s)\n", i, n, describePath(ch))
		fmt.Fprintf(&b, "  reg [%d:0] chain%d;\n", n-1, i)
		fmt.Fprintf(&b, "  always @(posedge wrck)\n")
		fmt.Fprintf(&b, "    if (shiftwr && intest) chain%d <= {tam_in[%d], chain%d[%d:1]};\n", i, i, i, n-1)
		fmt.Fprintf(&b, "    else if (capturewr) chain%d <= chain%d; // capture stitched to core logic\n", i, i)
		fmt.Fprintf(&b, "  assign tam_out[%d] = intest ? chain%d[0] : wby;\n\n", i, i)
	}
	fmt.Fprintf(&b, "endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func describePath(ch *ChainRTL) string {
	var parts []string
	for _, e := range ch.Path {
		if e.Kind == ScanSegment {
			parts = append(parts, fmt.Sprintf("scan%d[%d]", e.Index, e.Bits))
		} else {
			parts = append(parts, e.Kind.String())
		}
	}
	const max = 6
	if len(parts) > max {
		parts = append(parts[:max], fmt.Sprintf("... %d more", len(parts)-max))
	}
	return strings.Join(parts, " -> ")
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "core"
	}
	return b.String()
}
