package wrapperrtl

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/soc"
	"repro/internal/wrapper"
)

func testCore() *soc.Core {
	return &soc.Core{
		ID: 7, Name: "accel-1", Inputs: 5, Outputs: 4, Bidirs: 2,
		ScanChains: []int{12, 9, 6},
		Test:       soc.Test{Patterns: 10, BISTEngine: -1},
	}
}

func elaborate(t *testing.T, c *soc.Core, w int) (*Module, *wrapper.Design) {
	t.Helper()
	d, err := wrapper.DesignWrapper(c, w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Elaborate(c, d)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestElaborateStructure(t *testing.T) {
	c := testCore()
	m, d := elaborate(t, c, 3)
	if err := m.Validate(c, d); err != nil {
		t.Fatal(err)
	}
	if m.TAMWidth != 3 || len(m.Chains) != 3 {
		t.Fatalf("chain count %d, want 3", len(m.Chains))
	}
	// Total serial bits = all WBR cells + all scan bits.
	total := 0
	for i := range m.Chains {
		total += m.Chains[i].Length()
	}
	want := c.Inputs + c.Outputs + c.Bidirs + c.ScanBits()
	if total != want {
		t.Fatalf("total serial bits %d, want %d", total, want)
	}
}

func TestCost(t *testing.T) {
	c := testCore()
	m, _ := elaborate(t, c, 2)
	cost := m.Cost()
	if cost.WBRCells != c.Inputs+c.Outputs+c.Bidirs {
		t.Fatalf("WBR cells %d, want %d", cost.WBRCells, c.Inputs+c.Outputs+c.Bidirs)
	}
	if cost.Flops != cost.WBRCells+1+m.WIRBits {
		t.Fatalf("flops %d", cost.Flops)
	}
	if cost.Muxes != cost.WBRCells+2+1 {
		t.Fatalf("muxes %d", cost.Muxes)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := testCore()
	m, d := elaborate(t, c, 2)
	// Duplicate a scan segment.
	for i := range m.Chains {
		for j, e := range m.Chains[i].Path {
			if e.Kind == ScanSegment {
				m.Chains[i].Path = append(m.Chains[i].Path, m.Chains[i].Path[j])
				if err := m.Validate(c, d); err == nil {
					t.Fatal("duplicated scan segment accepted")
				}
				return
			}
		}
	}
	t.Fatal("no scan segment found")
}

func TestValidateCatchesCellMiscount(t *testing.T) {
	c := testCore()
	m, d := elaborate(t, c, 2)
	m.Chains[0].Path = append(m.Chains[0].Path, Element{Kind: OutputCell, Index: 99, Bits: 1})
	if err := m.Validate(c, d); err == nil {
		t.Fatal("extra WBR cell accepted")
	}
}

func TestWriteVerilog(t *testing.T) {
	c := testCore()
	m, _ := elaborate(t, c, 3)
	var buf bytes.Buffer
	if err := m.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module wrapper_accel_1",
		"endmodule",
		"wir", "wby", "tam_in", "tam_out",
		"chain0", "chain1", "chain2",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%.400s", want, v)
		}
	}
	// Balanced module/endmodule and no illegal identifier from the name.
	if strings.Count(v, "module ") != 1 || strings.Count(v, "endmodule") != 1 {
		t.Fatal("module structure wrong")
	}
	if strings.Contains(v, "accel-1") && strings.Contains(v, "module wrapper_accel-1") {
		t.Fatal("unsanitized identifier")
	}
}

func TestEmptyChainBecomesFeedthrough(t *testing.T) {
	// A combinational core with fewer cells than TAM wires leaves empty
	// chains; the RTL must pass those wires through.
	c := &soc.Core{ID: 1, Name: "tiny", Inputs: 1, Outputs: 1, Test: soc.Test{Patterns: 1, BISTEngine: -1}}
	m, d := elaborate(t, c, 4)
	if err := m.Validate(c, d); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty (unused TAM wire)") {
		t.Fatal("empty chain not emitted as feedthrough")
	}
}

// Property: elaboration validates for random cores across widths, and the
// serial lengths reconstruct the wrapper design's si/so maxima.
func TestElaborationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := &soc.Core{
			ID: 1, Name: "r",
			Inputs:  rng.Intn(20),
			Outputs: rng.Intn(20),
			Bidirs:  rng.Intn(6),
			Test:    soc.Test{Patterns: 1 + rng.Intn(50), BISTEngine: -1},
		}
		for j := rng.Intn(6); j > 0; j-- {
			c.ScanChains = append(c.ScanChains, 1+rng.Intn(40))
		}
		if c.Inputs+c.Outputs+c.Bidirs+len(c.ScanChains) == 0 {
			c.Inputs = 1
		}
		w := 1 + rng.Intn(8)
		d, err := wrapper.DesignWrapper(c, w)
		if err != nil {
			return false
		}
		m, err := Elaborate(c, d)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := m.Validate(c, d); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		var buf bytes.Buffer
		return m.WriteVerilog(&buf) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCellKindString(t *testing.T) {
	if InputCell.String() != "wbr_in" || ScanSegment.String() != "scan" {
		t.Fatal("kind strings wrong")
	}
	if !strings.Contains(CellKind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
}
