package corpus

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/socfile"
)

// TestCorpusShape pins the corpus contract the regression gate depends on:
// enough scenarios, unique names, valid builds, and sane knobs.
func TestCorpusShape(t *testing.T) {
	scenarios := All()
	if len(scenarios) < 30 {
		t.Fatalf("corpus has %d scenarios, the gate requires >= 30", len(scenarios))
	}
	if len(Layers()) < 5 {
		t.Fatalf("corpus freezes %d layers, the gate requires >= 5", len(Layers()))
	}
	seen := make(map[string]bool)
	for _, sc := range scenarios {
		if sc.Name == "" || strings.ContainsAny(sc.Name, " /\\") {
			t.Errorf("scenario %q: name must be a path-safe slug", sc.Name)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Params.TAMWidth < 1 {
			t.Errorf("%s: TAMWidth %d < 1", sc.Name, sc.Params.TAMWidth)
		}
		if sc.WidthLo < 1 || sc.WidthHi < sc.WidthLo {
			t.Errorf("%s: bad sweep range [%d,%d]", sc.Name, sc.WidthLo, sc.WidthHi)
		}
		s := sc.Build()
		if err := s.Validate(); err != nil {
			t.Errorf("%s: build: %v", sc.Name, err)
		}
		if err := socfile.ValidateNames(s); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
	}
}

// TestBuildDeterministic checks that Build returns semantically identical
// SOCs on repeated calls (the corpus is meaningless otherwise).
func TestBuildDeterministic(t *testing.T) {
	for _, sc := range All() {
		a, b := socfile.Fingerprint(sc.Build()), socfile.Fingerprint(sc.Build())
		if a != b {
			t.Errorf("%s: two builds fingerprint differently (%s vs %s)", sc.Name, a, b)
		}
	}
}

// TestReplayDeterministic replays a cheap scenario twice and demands
// byte-identical artifacts on every layer, including the HTTP ones.
func TestReplayDeterministic(t *testing.T) {
	sc, ok := ByName("toy4-w8")
	if !ok {
		t.Fatal("toy4-w8 missing from corpus")
	}
	first, err := Replay(sc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Replay(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range Layers() {
		if len(first[layer]) == 0 {
			t.Errorf("layer %s: empty artifact", layer)
		}
		if !bytes.Equal(first[layer], second[layer]) {
			t.Errorf("layer %s: two replays differ:\n%s", layer, Diff(first[layer], second[layer]))
		}
	}
}

func TestDiff(t *testing.T) {
	if d := Diff([]byte("a\nb\n"), []byte("a\nb\n")); d != "" {
		t.Errorf("identical bytes reported a diff: %s", d)
	}
	d := Diff([]byte("a\nb\nc\n"), []byte("a\nX\nc\n"))
	if !strings.Contains(d, "line 2") || !strings.Contains(d, "X") {
		t.Errorf("diff did not locate the divergence: %s", d)
	}
	if d := Diff([]byte("a\n"), []byte("a\nb\n")); !strings.Contains(d, "lines") {
		t.Errorf("length-only diff not reported: %s", d)
	}
}
