// Package corpus defines the repository's frozen scenario corpus: a
// deterministic set of SOC scheduling scenarios spanning the space the DAC
// 2002 framework covers — flat and hierarchical designs, BIST engine
// conflicts, power budgets from tight to unconstrained, preemption
// budgets, precedence and concurrency constraint mixes, and sizes from
// 4-core toys to 60-core monsters — together with a replay engine that
// captures canonical output bytes at every layer of the stack (schedule
// JSON, width sweeps, data-volume curves, effective widths, lower bounds,
// and socserved HTTP responses).
//
// The replayed bytes are committed as golden files under testdata/golden/
// and gated by cmd/socregress and the corpus_regress_test.go wrapper:
// any optimization PR that drifts an output byte anywhere in the stack
// fails the gate until the change is understood and re-blessed with
// `socregress -update`.
package corpus

import (
	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/soc"
)

// Scenario is one frozen corpus entry. Everything in it is deterministic:
// Build must return the same SOC every call, and the replay engine forces
// sequential workers so the frozen bytes never depend on the host.
type Scenario struct {
	// Name is the scenario's unique slug; it names the golden directory.
	Name string
	// Notes says what regime the scenario pins down.
	Notes string
	// Build constructs the SOC (a fresh copy per call).
	Build func() *soc.SOC
	// Params are the scheduling parameters for the schedule layer;
	// TAMWidth is required. Workers is forced to 1 during replay.
	Params sched.Params
	// SingleRun freezes a single sched.Run at Params instead of the
	// grid-swept best (and replays /v1/schedule instead of /v1/schedule/best).
	SingleRun bool
	// WidthLo, WidthHi bound the width sweep for the sweep, data-volume,
	// effective-width, and service-effective layers.
	WidthLo, WidthHi int
	// PowerPct, when > 0, sets Params.PowerMax to that percent of the
	// largest single-test power (sched.DefaultPowerBudget).
	PowerPct int
	// PreemptLarger, when > 0, grants the larger cores that many
	// preemptions (sched.LargerCorePreemptions).
	PreemptLarger int
}

// Gammas are the trade-off weights frozen by the effective-width layer.
var Gammas = []float64{0, 0.25, 0.5, 0.75, 1}

// LBWidths are the TAM widths frozen by the lower-bound layer.
var LBWidths = []int{8, 16, 24, 32, 48, 64}

func builtin(name string) func() *soc.SOC {
	return func() *soc.SOC {
		s, err := bench.ByName(name)
		if err != nil {
			panic(err) // corpus invariant: built-in names are valid
		}
		return s
	}
}

func synth(cfg bench.SynthConfig) func() *soc.SOC {
	return func() *soc.SOC { return bench.Synth(cfg) }
}

// All returns the corpus in frozen order. Scenario names and semantics are
// append-only: renaming or re-seeding an existing scenario invalidates its
// golden directory and history, so add new scenarios instead.
func All() []Scenario {
	return []Scenario{
		// ---- built-in benchmarks under varied constraint regimes ----
		{
			Name:    "d695-w32",
			Notes:   "flagship paper SOC, unconstrained, grid-swept best at W=32",
			Build:   builtin("d695"),
			Params:  sched.Params{TAMWidth: 32},
			WidthLo: 16, WidthHi: 40,
		},
		{
			Name:     "d695-w16-power-tight",
			Notes:    "d695 under a 110% power budget (near-serial packing pressure)",
			Build:    builtin("d695"),
			Params:   sched.Params{TAMWidth: 16},
			PowerPct: 110,
			WidthLo:  8, WidthHi: 24,
		},
		{
			Name:          "d695-w24-preempt2",
			Notes:         "d695 with 2 preemptions for the larger cores",
			Build:         builtin("d695"),
			Params:        sched.Params{TAMWidth: 24},
			PreemptLarger: 2,
			WidthLo:       16, WidthHi: 32,
		},
		{
			Name:    "d695-w64",
			Notes:   "d695 at the widest paper TAM, sweep past the per-core cap",
			Build:   builtin("d695"),
			Params:  sched.Params{TAMWidth: 64},
			WidthLo: 48, WidthHi: 72,
		},
		{
			Name:      "d695-w32-lean-heuristics",
			Notes:     "single run, idle-insertion and widening disabled (ablation regime)",
			Build:     builtin("d695"),
			Params:    sched.Params{TAMWidth: 32, Percent: 5, Delta: 1, InsertSlack: -1, DisableWidening: true},
			SingleRun: true,
			WidthLo:   24, WidthHi: 36,
		},
		{
			Name:    "demo8-w16",
			Notes:   "hierarchy + precedence + concurrency + shared BIST engine in one toy",
			Build:   builtin("demo8"),
			Params:  sched.Params{TAMWidth: 16},
			WidthLo: 8, WidthHi: 24,
		},
		{
			Name:    "demo8-w16-ignorehier",
			Notes:   "same toy with implicit parent/child concurrency suppressed",
			Build:   builtin("demo8"),
			Params:  sched.Params{TAMWidth: 16, IgnoreHierarchy: true},
			WidthLo: 8, WidthHi: 24,
		},
		{
			Name:     "demo8-w8-power105",
			Notes:    "tightest schedulable power budget on the toy at a narrow TAM",
			Build:    builtin("demo8"),
			Params:   sched.Params{TAMWidth: 8},
			PowerPct: 105,
			WidthLo:  6, WidthHi: 16,
		},
		{
			Name:          "demo8-w12-preempt1",
			Notes:         "one preemption for the larger toy cores",
			Build:         builtin("demo8"),
			Params:        sched.Params{TAMWidth: 12},
			PreemptLarger: 1,
			WidthLo:       8, WidthHi: 20,
		},
		{
			Name:    "p22810-w32",
			Notes:   "28-core industrial stand-in, unconstrained",
			Build:   builtin("p22810like"),
			Params:  sched.Params{TAMWidth: 32},
			WidthLo: 24, WidthHi: 40,
		},
		{
			Name:     "p22810-w16-power110",
			Notes:    "industrial stand-in under the Table-1 style power budget",
			Build:    builtin("p22810like"),
			Params:   sched.Params{TAMWidth: 16},
			PowerPct: 110,
			WidthLo:  12, WidthHi: 20,
		},
		{
			Name:    "p34392-w24",
			Notes:   "bottleneck-core SOC: the δ rescue decides the best schedule",
			Build:   builtin("p34392like"),
			Params:  sched.Params{TAMWidth: 24},
			WidthLo: 16, WidthHi: 32,
		},
		{
			Name:      "p34392-w16-alpha7-delta0",
			Notes:     "single run that misses the δ bottleneck rescue (paper §6 narrative)",
			Build:     builtin("p34392like"),
			Params:    sched.Params{TAMWidth: 16, Percent: 7, Delta: 0},
			SingleRun: true,
			WidthLo:   12, WidthHi: 20,
		},
		{
			Name:    "p93791-w48",
			Notes:   "largest industrial stand-in with the Fig. 1 staircase core",
			Build:   builtin("p93791like"),
			Params:  sched.Params{TAMWidth: 48},
			WidthLo: 40, WidthHi: 56,
		},
		{
			Name:          "p93791-w32-preempt1",
			Notes:         "largest stand-in, one preemption for the larger cores",
			Build:         builtin("p93791like"),
			Params:        sched.Params{TAMWidth: 32},
			PreemptLarger: 1,
			WidthLo:       24, WidthHi: 40,
		},

		// ---- synthetic scenarios spanning the generator's knobs ----
		{
			Name:    "toy4-w8",
			Notes:   "4-core toy, the smallest corpus entry",
			Build:   synth(bench.SynthConfig{Name: "toy4", Cores: 4, Seed: 101}),
			Params:  sched.Params{TAMWidth: 8},
			WidthLo: 4, WidthHi: 16,
		},
		{
			Name:    "toy6-bist1-w8",
			Notes:   "toy with every BIST memory funneled onto one engine",
			Build:   synth(bench.SynthConfig{Name: "toy6bist1", Cores: 6, Seed: 102, BISTEngines: 1}),
			Params:  sched.Params{TAMWidth: 8},
			WidthLo: 4, WidthHi: 16,
		},
		{
			Name:    "rand16-classic-w24",
			Notes:   "the classic `socgen -random -cores 16 -seed 7` SOC, frozen",
			Build:   synth(bench.SynthConfig{Cores: 16, Seed: 7}),
			Params:  sched.Params{TAMWidth: 24},
			WidthLo: 16, WidthHi: 32,
		},
		{
			Name:    "rand16-seed9-w24",
			Notes:   "a second 16-core draw, different seed",
			Build:   synth(bench.SynthConfig{Cores: 16, Seed: 9}),
			Params:  sched.Params{TAMWidth: 24},
			WidthLo: 16, WidthHi: 32,
		},
		{
			Name:    "hier12-w16",
			Notes:   "shallow hierarchy: ~35% of cores nested",
			Build:   synth(bench.SynthConfig{Name: "hier12", Cores: 12, Seed: 103, HierarchyPct: 35}),
			Params:  sched.Params{TAMWidth: 16},
			WidthLo: 8, WidthHi: 24,
		},
		{
			Name:    "hier24-deep-w32",
			Notes:   "deep hierarchy: ~60% of cores nested, long Extest chains",
			Build:   synth(bench.SynthConfig{Name: "hier24", Cores: 24, Seed: 104, HierarchyPct: 60}),
			Params:  sched.Params{TAMWidth: 32},
			WidthLo: 24, WidthHi: 40,
		},
		{
			Name:    "bistconflict20-w24",
			Notes:   "20 cores with all BIST memories on a single engine",
			Build:   synth(bench.SynthConfig{Name: "bistconflict20", Cores: 20, Seed: 105, BISTEngines: 1}),
			Params:  sched.Params{TAMWidth: 24},
			WidthLo: 16, WidthHi: 32,
		},
		{
			Name:    "nobist18-w24",
			Notes:   "same generator with BIST disabled: memories become scan cores",
			Build:   synth(bench.SynthConfig{Name: "nobist18", Cores: 18, Seed: 106, BISTEngines: -1}),
			Params:  sched.Params{TAMWidth: 24},
			WidthLo: 16, WidthHi: 32,
		},
		{
			Name:    "power20-tight-w24",
			Notes:   "explicit per-test powers, budget 105% of the largest (tight)",
			Build:   synth(bench.SynthConfig{Name: "power20", Cores: 20, Seed: 107, PowerValues: true, PowerBudgetPct: 105}),
			Params:  sched.Params{TAMWidth: 24},
			WidthLo: 16, WidthHi: 32,
		},
		{
			Name:    "power20-loose-w24",
			Notes:   "same SOC structure, 400% budget (barely binding)",
			Build:   synth(bench.SynthConfig{Name: "power20", Cores: 20, Seed: 107, PowerValues: true, PowerBudgetPct: 400}),
			Params:  sched.Params{TAMWidth: 24},
			WidthLo: 16, WidthHi: 32,
		},
		{
			Name:    "power20-uncon-w24",
			Notes:   "same SOC structure, unconstrained power",
			Build:   synth(bench.SynthConfig{Name: "power20", Cores: 20, Seed: 107, PowerValues: true}),
			Params:  sched.Params{TAMWidth: 24},
			WidthLo: 16, WidthHi: 32,
		},
		{
			Name:    "prec12-chain-w16",
			Notes:   "dense acyclic precedence web on 12 cores",
			Build:   synth(bench.SynthConfig{Name: "prec12", Cores: 12, Seed: 108, ExtraPrecedences: 8}),
			Params:  sched.Params{TAMWidth: 16},
			WidthLo: 8, WidthHi: 24,
		},
		{
			Name:    "conc14-dense-w16",
			Notes:   "10 mutual-exclusion pairs on 14 cores",
			Build:   synth(bench.SynthConfig{Name: "conc14", Cores: 14, Seed: 109, ExtraConcurrencies: 10}),
			Params:  sched.Params{TAMWidth: 16},
			WidthLo: 8, WidthHi: 24,
		},
		{
			Name:  "mixed24-all-constraints-w32",
			Notes: "hierarchy + power + precedence + concurrency on one 24-core SOC",
			Build: synth(bench.SynthConfig{
				Name: "mixed24", Cores: 24, Seed: 110, HierarchyPct: 30,
				PowerValues: true, PowerBudgetPct: 150,
				ExtraPrecedences: 5, ExtraConcurrencies: 5,
			}),
			Params:  sched.Params{TAMWidth: 32},
			WidthLo: 24, WidthHi: 40,
		},
		{
			Name:    "combo10-w16",
			Notes:   "combinational-heavy profile: wide wrappers, shallow tests",
			Build:   synth(bench.SynthConfig{Name: "combo10", Cores: 10, Seed: 111, Profile: "combo"}),
			Params:  sched.Params{TAMWidth: 16},
			WidthLo: 8, WidthHi: 24,
		},
		{
			Name:    "longchain8-w16",
			Notes:   "few-but-deep scan chains: bottleneck-dominated lower bounds",
			Build:   synth(bench.SynthConfig{Name: "longchain8", Cores: 8, Seed: 112, Profile: "longchain"}),
			Params:  sched.Params{TAMWidth: 16},
			WidthLo: 8, WidthHi: 24,
		},
		{
			Name:          "longchain8-w16-preempt2",
			Notes:         "the same bottleneck SOC with 2 preemptions for the larger cores",
			Build:         synth(bench.SynthConfig{Name: "longchain8", Cores: 8, Seed: 112, Profile: "longchain"}),
			Params:        sched.Params{TAMWidth: 16},
			PreemptLarger: 2,
			WidthLo:       8, WidthHi: 24,
		},
		{
			Name:    "monster48-w48",
			Notes:   "48-core SOC with light hierarchy",
			Build:   synth(bench.SynthConfig{Name: "monster48", Cores: 48, Seed: 113, HierarchyPct: 20}),
			Params:  sched.Params{TAMWidth: 48},
			WidthLo: 40, WidthHi: 56,
		},
		{
			Name:  "monster60-w64",
			Notes: "60-core monster: hierarchy, power, precedence, concurrency at once",
			Build: synth(bench.SynthConfig{
				Name: "monster60", Cores: 60, Seed: 114, HierarchyPct: 25,
				PowerValues: true, PowerBudgetPct: 200,
				ExtraPrecedences: 6, ExtraConcurrencies: 6,
			}),
			Params:  sched.Params{TAMWidth: 64},
			WidthLo: 56, WidthHi: 72,
		},
		{
			Name:  "monster60-w64-preempt4",
			Notes: "the monster with 4 preemptions for the larger cores",
			Build: synth(bench.SynthConfig{
				Name: "monster60", Cores: 60, Seed: 114, HierarchyPct: 25,
				PowerValues: true, PowerBudgetPct: 200,
				ExtraPrecedences: 6, ExtraConcurrencies: 6,
			}),
			Params:        sched.Params{TAMWidth: 64},
			PreemptLarger: 4,
			WidthLo:       56, WidthHi: 72,
		},
	}
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, bool) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
