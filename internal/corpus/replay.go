package corpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"

	"repro/internal/datavol"
	"repro/internal/lb"
	"repro/internal/sched"
	"repro/internal/schedio"
	"repro/internal/service"
	"repro/internal/soc"
)

// Layer file names, one golden file per layer per scenario.
const (
	LayerSchedule         = "schedule.json"          // schedio bytes of the frozen schedule
	LayerSweep            = "sweep.json"             // datavol.Sweep over [WidthLo, WidthHi]
	LayerDataVolume       = "datavol.csv"            // W, T(W), D(W), C(0.5, W) curve
	LayerEffective        = "effective.json"         // effective widths across Gammas
	LayerLowerBounds      = "lowerbounds.txt"        // LB(W) decomposition across LBWidths
	LayerServiceSchedule  = "service_schedule.json"  // socserved /v1/schedule[/best] response
	LayerServiceEffective = "service_effective.json" // socserved /v1/effective response
)

// Layers lists every golden layer in replay order.
func Layers() []string {
	return []string{
		LayerSchedule,
		LayerSweep,
		LayerDataVolume,
		LayerEffective,
		LayerLowerBounds,
		LayerServiceSchedule,
		LayerServiceEffective,
	}
}

// ResolveParams returns the scenario's effective scheduling parameters:
// Params with the PowerPct and PreemptLarger knobs applied against the
// built SOC and Workers pinned to 1 (host-independent replay).
func (sc Scenario) ResolveParams(s *soc.SOC) (sched.Params, error) {
	p := sc.Params
	p.Workers = 1
	if sc.PowerPct > 0 {
		p.PowerMax = sched.DefaultPowerBudget(s, sc.PowerPct)
	}
	if sc.PreemptLarger > 0 {
		mp, err := sched.LargerCorePreemptions(s, sched.DefaultMaxWidth, sc.PreemptLarger)
		if err != nil {
			return sched.Params{}, fmt.Errorf("corpus: %s: preemption policy: %w", sc.Name, err)
		}
		p.MaxPreemptions = mp
	}
	return p, nil
}

// Replay runs the scenario through every layer of the stack and returns
// the canonical bytes per layer (keyed by the Layer* file names). The
// result is deterministic: identical on every host, every run.
func Replay(sc Scenario) (map[string][]byte, error) {
	s := sc.Build()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("corpus: %s: bad SOC: %w", sc.Name, err)
	}
	params, err := sc.ResolveParams(s)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(Layers()))

	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: optimizer: %w", sc.Name, err)
	}

	// Layer 1: the frozen schedule, serialized exactly as schedio emits it.
	var schBest *sched.Schedule
	if sc.SingleRun {
		schBest, err = opt.Run(params)
	} else {
		schBest, err = opt.SweepBest(params, nil, nil)
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: schedule: %w", sc.Name, err)
	}
	var buf bytes.Buffer
	if err := schedio.Save(&buf, schBest); err != nil {
		return nil, fmt.Errorf("corpus: %s: save schedule: %w", sc.Name, err)
	}
	out[LayerSchedule] = append([]byte(nil), buf.Bytes()...)

	// Layer 2: the width sweep T(W)/D(W) under the scenario's parameters.
	sw, err := datavol.RunWith(opt, datavol.Config{
		WidthLo: sc.WidthLo, WidthHi: sc.WidthHi,
		Params: params, Workers: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: sweep: %w", sc.Name, err)
	}
	out[LayerSweep], err = marshalJSON(sw)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", sc.Name, err)
	}

	// Layer 3: the data-volume curve as CSV (the Fig. 9 plot data).
	buf.Reset()
	buf.WriteString("tamWidth,timeCycles,volumeBits,cost0.5\n")
	for _, smp := range sw.Samples {
		fmt.Fprintf(&buf, "%d,%d,%d,%s\n", smp.TAMWidth, smp.Time, smp.Volume,
			strconv.FormatFloat(sw.Cost(0.5, smp), 'g', -1, 64))
	}
	out[LayerDataVolume] = append([]byte(nil), buf.Bytes()...)

	// Layer 4: effective TAM widths across the frozen γ grid.
	effs := make([]datavol.Effective, 0, len(Gammas))
	for _, g := range Gammas {
		eff, err := sw.EffectiveWidth(g)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: effective γ=%v: %w", sc.Name, g, err)
		}
		effs = append(effs, eff)
	}
	out[LayerEffective], err = marshalJSON(effs)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", sc.Name, err)
	}

	// Layer 5: lower-bound decompositions across the frozen width grid.
	buf.Reset()
	for _, w := range LBWidths {
		b, err := lb.Compute(s, w, sched.DefaultMaxWidth)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: lower bound W=%d: %w", sc.Name, w, err)
		}
		fmt.Fprintf(&buf, "W=%d LB=%d area=%d bottleneck=%d minArea=%d\n",
			w, b.Value(), b.AreaBound, b.BottleneckBound, b.MinArea)
	}
	out[LayerLowerBounds] = append([]byte(nil), buf.Bytes()...)

	// Layers 6-7: the socserved HTTP surface, replayed through httptest.
	if err := replayService(sc, s, params, out); err != nil {
		return nil, err
	}
	return out, nil
}

// replayService uploads the SOC into a fresh socserved instance and
// freezes the /v1/schedule[/best] and /v1/effective response bytes.
func replayService(sc Scenario, s *soc.SOC, params sched.Params, out map[string][]byte) error {
	svc, err := service.New(service.Config{})
	if err != nil {
		return fmt.Errorf("corpus: %s: service: %w", sc.Name, err)
	}
	defer svc.Close()
	fp, err := svc.Registry().Add(s)
	if err != nil {
		return fmt.Errorf("corpus: %s: register SOC: %w", sc.Name, err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	schedPath := "/v1/schedule/best"
	if sc.SingleRun {
		schedPath = "/v1/schedule"
	}
	schedReq := map[string]any{
		"soc": fp,
		"params": service.ParamsJSON{
			TAMWidth:        params.TAMWidth,
			MaxWidth:        params.MaxWidth,
			Percent:         params.Percent,
			Delta:           params.Delta,
			PowerMax:        params.PowerMax,
			InsertSlack:     params.InsertSlack,
			MaxPreemptions:  params.MaxPreemptions,
			DisableWidening: params.DisableWidening,
			IgnoreHierarchy: params.IgnoreHierarchy,
			Workers:         1,
		},
	}
	out[LayerServiceSchedule], err = post(ts, sc.Name, schedPath, schedReq)
	if err != nil {
		return err
	}
	out[LayerServiceEffective], err = post(ts, sc.Name, "/v1/effective", map[string]any{
		"soc": fp,
		"params": map[string]any{
			"widthLo": sc.WidthLo,
			"widthHi": sc.WidthHi,
			"workers": 1,
		},
	})
	return err
}

func post(ts *httptest.Server, scenario, path string, body any) ([]byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: marshal %s request: %w", scenario, path, err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: POST %s: %w", scenario, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: read %s response: %w", scenario, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("corpus: %s: POST %s: HTTP %d: %s", scenario, path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return raw, nil
}

// marshalJSON matches the repository's canonical JSON shape: two-space
// indentation with a trailing newline (schedio, writeJSON).
func marshalJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Diff compares golden bytes against replayed bytes and returns a readable
// description of the first divergence ("" when identical): the 1-based
// line number, the want/got lines, and the overall line counts.
func Diff(want, got []byte) string {
	if bytes.Equal(want, got) {
		return ""
	}
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first diff at line %d:\n  golden: %s\n  replay: %s\n(golden %d lines, replay %d lines)",
				i+1, truncate(wl[i]), truncate(gl[i]), len(wl), len(gl))
		}
	}
	return fmt.Sprintf("line %d onward: golden has %d lines, replay has %d lines",
		n+1, len(wl), len(gl))
}

// StaleDirs returns subdirectories of goldenDir that name no corpus
// scenario — frozen bytes nobody checks anymore. Both the socregress gate
// and the go-test wrapper police this through the same helper, so the
// definition of "stale" cannot drift between them. A missing goldenDir
// returns nil (the per-layer checks report it as missing goldens).
func StaleDirs(goldenDir string) []string {
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		return nil
	}
	known := make(map[string]bool)
	for _, sc := range All() {
		known[sc.Name] = true
	}
	var stale []string
	for _, e := range entries {
		if e.IsDir() && !known[e.Name()] {
			stale = append(stale, e.Name())
		}
	}
	sort.Strings(stale)
	return stale
}

func truncate(line []byte) string {
	const max = 160
	if len(line) <= max {
		return string(line)
	}
	return string(line[:max]) + "…"
}
