package corpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
)

// TestBatchParityWithGoldens is the fleet-scale acceptance test: one
// POST /v1/batch carrying every corpus scenario (plus one invalid item)
// returns per-item schedule documents byte-identical to the frozen
// per-request golden bytes under testdata/golden/, with the invalid item
// failing alone. Under -short only a subset of scenarios runs.
func TestBatchParityWithGoldens(t *testing.T) {
	scenarios := All()
	if testing.Short() {
		scenarios = scenarios[:8]
	}
	goldenRoot := filepath.Join("..", "..", "testdata", "golden")
	if _, err := os.Stat(goldenRoot); err != nil {
		t.Skipf("golden directory unavailable: %v", err)
	}

	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	type expect struct {
		name   string
		golden []byte // nil for the planted invalid item
	}
	var items []map[string]any
	var expects []expect
	for i, sc := range scenarios {
		s := sc.Build()
		params, err := sc.ResolveParams(s)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		fp, err := svc.Registry().Add(s)
		if err != nil {
			t.Fatalf("%s: register: %v", sc.Name, err)
		}
		golden, err := os.ReadFile(filepath.Join(goldenRoot, sc.Name, LayerServiceSchedule))
		if err != nil {
			t.Fatalf("%s: golden: %v", sc.Name, err)
		}
		items = append(items, map[string]any{
			"soc": fp,
			"params": service.ParamsJSON{
				TAMWidth:        params.TAMWidth,
				MaxWidth:        params.MaxWidth,
				Percent:         params.Percent,
				Delta:           params.Delta,
				PowerMax:        params.PowerMax,
				InsertSlack:     params.InsertSlack,
				MaxPreemptions:  params.MaxPreemptions,
				DisableWidening: params.DisableWidening,
				IgnoreHierarchy: params.IgnoreHierarchy,
				Workers:         1,
			},
			"best": !sc.SingleRun,
		})
		expects = append(expects, expect{name: sc.Name, golden: golden})
		if i == len(scenarios)/2 {
			// Plant one invalid item mid-batch: it must fail alone.
			items = append(items, map[string]any{
				"soc":    "no-such-soc",
				"params": service.ParamsJSON{TAMWidth: 16},
			})
			expects = append(expects, expect{name: "invalid"})
		}
	}

	payload, err := json.Marshal(map[string]any{"items": items, "workers": 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d: %s", resp.StatusCode, raw)
	}
	var batch service.BatchResponse
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != len(expects) {
		t.Fatalf("items = %d, want %d", len(batch.Items), len(expects))
	}
	if batch.Stats.Failed != 1 || batch.Stats.OK != len(expects)-1 {
		t.Fatalf("stats = %+v, want exactly the planted item failed", batch.Stats)
	}
	for i, want := range expects {
		got := batch.Items[i]
		if want.golden == nil {
			if got.Error == nil || got.Status != http.StatusNotFound {
				t.Fatalf("planted invalid item = %+v, want a 404 per-item error", got)
			}
			continue
		}
		if got.Error != nil {
			t.Fatalf("%s: item error %d %s: %s", want.name, got.Status, got.Error.Code, got.Error.Message)
		}
		if doc := reindent(t, got.Result); !bytes.Equal(doc, want.golden) {
			t.Errorf("%s: batch document differs from the frozen per-request golden", want.name)
		}
	}
}

// reindent recovers a batch-embedded document's standalone bytes: the
// batch envelope nests results one level deeper, so re-indenting to top
// level (plus the canonical trailing newline) reverses exactly that.
func reindent(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&buf)
	return buf.Bytes()
}
