package corpus

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/sched"
	"repro/internal/schedio"

	// Register the search backends so per-backend replays (and the
	// invariant suite built on them) always see the full registry,
	// regardless of what else the test binary imports.
	_ "repro/internal/anneal"
	_ "repro/internal/rectpack"
)

// ReplaySchedule replays just the scenario's schedule layer under the
// named scheduling backend ("" = the default classic backend) and returns
// the schedule plus its canonical schedio bytes. For the classic backend
// it reproduces the scenario's golden schedule layer exactly: SingleRun
// scenarios replay a single sched.Run, everything else the grid-swept
// best. Other backends always produce their best schedule — they have no
// (α, δ) grid to pin.
func ReplaySchedule(sc Scenario, backend string) (*sched.Schedule, []byte, error) {
	s := sc.Build()
	if err := s.Validate(); err != nil {
		return nil, nil, fmt.Errorf("corpus: %s: bad SOC: %w", sc.Name, err)
	}
	params, err := sc.ResolveParams(s)
	if err != nil {
		return nil, nil, err
	}
	// The classic default keeps Backend empty so the echoed Params — and
	// with them the schedio bytes — stay identical to the frozen goldens.
	if !sched.IsDefaultBackend(backend) {
		params.Backend = backend
	}
	opt, err := sched.New(s, sched.DefaultMaxWidth)
	if err != nil {
		return nil, nil, fmt.Errorf("corpus: %s: optimizer: %w", sc.Name, err)
	}
	var sch *sched.Schedule
	if sc.SingleRun && sched.IsDefaultBackend(backend) {
		sch, err = opt.Run(params)
	} else {
		sch, err = opt.ScheduleBackend(context.Background(), params)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("corpus: %s: backend %q: %w", sc.Name, backend, err)
	}
	var buf bytes.Buffer
	if err := schedio.Save(&buf, sch); err != nil {
		return nil, nil, fmt.Errorf("corpus: %s: save schedule: %w", sc.Name, err)
	}
	return sch, buf.Bytes(), nil
}
