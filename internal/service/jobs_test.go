package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// waitTerminal blocks until the job is terminal or the test times out.
func waitTerminal(t *testing.T, jb *Job) {
	t.Helper()
	select {
	case <-jb.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never reached a terminal state", jb.ID())
	}
}

func TestJobLifecycle(t *testing.T) {
	j := NewJobs(2, 0, 0, 0)
	defer j.Close()
	jb, err := j.Submit("answer", func(ctx context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jb)
	res, err, ok := j.Result(jb)
	if !ok || err != nil || res != 42 {
		t.Fatalf("Result = (%v, %v, %v), want (42, nil, true)", res, err, ok)
	}
	st := j.Snapshot(jb)
	if st.State != JobDone || st.Error != "" || st.Duration == "" {
		t.Fatalf("snapshot = %+v, want done with duration", st)
	}
	if got, ok := j.Get(jb.ID()); !ok || got != jb {
		t.Fatal("Get lost the job")
	}
}

// TestJobPanicContained asserts a panicking job body is converted into a
// failed job instead of crashing the worker (and the process); the pool
// keeps serving afterwards.
func TestJobPanicContained(t *testing.T) {
	j := NewJobs(1, 0, 0, 0)
	defer j.Close()
	jb, err := j.Submit("panic", func(ctx context.Context) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jb)
	st := j.Snapshot(jb)
	if st.State != JobFailed || !strings.Contains(st.Error, "kaboom") {
		t.Fatalf("snapshot = %+v, want failed with panic message", st)
	}
	// The single worker survived and still runs jobs.
	next, err := j.Submit("after", noop)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, next)
	if st := j.Snapshot(next); st.State != JobDone {
		t.Fatalf("job after panic = %s, want done", st.State)
	}
}

func TestJobFailed(t *testing.T) {
	j := NewJobs(1, 0, 0, 0)
	defer j.Close()
	boom := errors.New("boom")
	jb, err := j.Submit("fail", func(ctx context.Context) (any, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jb)
	if st := j.Snapshot(jb); st.State != JobFailed || st.Error != "boom" {
		t.Fatalf("snapshot = %+v, want failed/boom", st)
	}
}

// TestJobCancelRunning asserts Cancel unblocks a running job through its
// context — the core of "a cancelled job stops its workers".
func TestJobCancelRunning(t *testing.T) {
	j := NewJobs(1, 0, 0, 0)
	defer j.Close()
	running := make(chan struct{})
	jb, err := j.Submit("block", func(ctx context.Context) (any, error) {
		close(running)
		<-ctx.Done() // a well-behaved long job: returns when cancelled
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	if _, ok := j.Cancel(jb.ID()); !ok {
		t.Fatal("Cancel lost the job")
	}
	waitTerminal(t, jb)
	if st := j.Snapshot(jb); st.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if _, _, ok := j.Result(jb); !ok {
		t.Fatal("terminal job has no result record")
	}
}

// TestJobCancelQueued cancels a job that never reached a worker.
func TestJobCancelQueued(t *testing.T) {
	j := NewJobs(1, 4, 0, 0)
	defer j.Close()
	release := make(chan struct{})
	blocker, err := j.Submit("blocker", func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := j.Submit("queued", func(ctx context.Context) (any, error) {
		t.Error("cancelled queued job must not run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Cancel(queued.ID()); !ok {
		t.Fatal("Cancel lost the queued job")
	}
	if st := j.Snapshot(queued); st.State != JobCancelled {
		t.Fatalf("queued job state = %s, want cancelled immediately", st.State)
	}
	close(release)
	waitTerminal(t, blocker)
	// Give the worker a beat to (incorrectly) pick the cancelled job up;
	// the t.Error above would fire if it ran.
	sentinel, err := j.Submit("sentinel", func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, sentinel)
}

func TestJobQueueFull(t *testing.T) {
	j := NewJobs(1, 1, 0, 0)
	defer j.Close()
	release := make(chan struct{})
	defer close(release)
	running := make(chan struct{})
	if _, err := j.Submit("running", func(ctx context.Context) (any, error) {
		close(running)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-running // worker busy; queue (cap 1) is empty
	if _, err := j.Submit("queued", noop); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Submit("overflow", noop); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func noop(ctx context.Context) (any, error) { return nil, nil }

// TestJobsClose asserts Close cancels running jobs and rejects further
// submissions.
func TestJobsClose(t *testing.T) {
	j := NewJobs(2, 0, 0, 0)
	running := make(chan struct{})
	jb, err := j.Submit("hang", func(ctx context.Context) (any, error) {
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	j.Close()
	if st := j.Snapshot(jb); st.State != JobCancelled {
		t.Fatalf("state after Close = %s, want cancelled", st.State)
	}
	if _, err := j.Submit("late", noop); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close err = %v, want ErrClosed", err)
	}
}

// TestJobsRetention asserts finished jobs beyond the retention bound are
// pruned oldest-first while live jobs survive.
func TestJobsRetention(t *testing.T) {
	j := NewJobs(1, 16, 3, 0)
	defer j.Close()
	var ids []string
	for i := 0; i < 6; i++ {
		jb, err := j.Submit(fmt.Sprintf("n%d", i), noop)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, jb)
		ids = append(ids, jb.ID())
	}
	j.mu.Lock()
	n := len(j.jobs)
	j.mu.Unlock()
	if n > 3+1 { // pruning happens on submit, so one extra may linger
		t.Fatalf("%d jobs retained, bound 3", n)
	}
	if _, ok := j.Get(ids[0]); ok {
		t.Fatal("oldest finished job survived pruning")
	}
	if _, ok := j.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest job was pruned")
	}
}
