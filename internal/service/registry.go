// Package service turns the repro library into a long-running SOC
// test-scheduling service: a Planner registry that builds each SOC's
// scheduling session at most once (singleflight) and bounds the number of
// sessions held in memory (LRU), an asynchronous job pool for long-running
// sweeps with cancellation, and an HTTP/JSON API (cmd/socserved) whose
// responses are byte-identical to the library's direct Planner answers.
package service

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/soc"
	"repro/internal/socfile"
)

// siteRegistryBuild is the failpoint fired before every Planner build; the
// chaos suite arms it to prove failed builds are not cached (the next
// caller rebuilds) and that the sweep job pool retries transient failures.
const siteRegistryBuild = "service/registry/build"

// DefaultPlannerCapacity bounds the Planner LRU when Config leaves it
// unset. Planners hold every (core, width) wrapper design and Pareto
// staircase of their SOC, so they are the registry's memory cost; SOC
// descriptions themselves are tiny and retained for every upload.
const DefaultPlannerCapacity = 32

// ErrUnknownSOC reports a schedule/sweep request naming a SOC that was
// never uploaded (or whose name points at nothing).
var ErrUnknownSOC = fmt.Errorf("service: unknown SOC")

// Registry maps canonical SOC fingerprints to scheduling state. Uploaded
// SOCs are deduplicated by socfile.Fingerprint; Planners are built lazily,
// at most once per fingerprint at a time (concurrent requests for the same
// fingerprint share one build), and held in an LRU bounded by capacity.
// An evicted Planner is rebuilt on next use — the SOC description is never
// forgotten. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	capacity int                      // immutable after NewRegistry
	socs     map[string]*soc.SOC      // guarded by mu; fingerprint → validated, registry-owned SOC
	names    map[string]string        // guarded by mu; SOC name → fingerprint (last upload wins)
	planners map[string]*plannerEntry // guarded by mu
	lru      *list.List               // guarded by mu; of *plannerEntry; front = most recently used

	builds    atomic.Int64
	evictions atomic.Int64
	hits      atomic.Int64 // Planner calls answered from the cache
}

// plannerEntry is one singleflight-guarded Planner slot. The builder
// publishes planner and err before closing ready, so waiters that block on
// ready may read them lock-free afterwards.
type plannerEntry struct {
	fp      string
	ready   chan struct{}  // closed once the build finished
	done    bool           // guarded by Registry.mu; build finished
	planner *repro.Planner // guarded by Registry.mu
	err     error          // guarded by Registry.mu
	elem    *list.Element  // guarded by Registry.mu
}

// NewRegistry returns a registry bounding its Planner cache to capacity
// (<= 0 means DefaultPlannerCapacity).
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultPlannerCapacity
	}
	return &Registry{
		capacity: capacity,
		socs:     make(map[string]*soc.SOC),
		names:    make(map[string]string),
		planners: make(map[string]*plannerEntry),
		lru:      list.New(),
	}
}

// Add validates and registers a SOC, returning its canonical fingerprint.
// The SOC is deep-copied, so the caller may keep mutating its own copy.
// Re-adding an identical SOC is a no-op returning the same fingerprint;
// a different SOC with the same name re-points the name at the new upload.
// Names must survive the .soc grammar (socfile.ValidateNames) — otherwise
// two different SOCs could collide on one fingerprint.
func (r *Registry) Add(s *soc.SOC) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	if err := socfile.ValidateNames(s); err != nil {
		return "", err
	}
	c := s.Clone()
	fp := socfile.Fingerprint(c)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.socs[fp]; !ok {
		r.socs[fp] = c
	}
	r.names[c.Name] = fp
	return fp, nil
}

// Resolve maps a client-supplied key — a fingerprint or a SOC name — to
// the fingerprint of a registered SOC.
func (r *Registry) Resolve(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.socs[key]; ok {
		return key, true
	}
	fp, ok := r.names[key]
	return fp, ok
}

// SOC returns the registered SOC for a fingerprint-or-name key. The SOC is
// shared and must be treated as read-only.
func (r *Registry) SOC(key string) (*soc.SOC, string, error) {
	fp, ok := r.Resolve(key)
	if !ok {
		return nil, "", fmt.Errorf("%w %q", ErrUnknownSOC, key)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.socs[fp], fp, nil
}

// Planner returns the Planner for a fingerprint-or-name key, building it
// on first use. Concurrent calls for the same fingerprint wait on a single
// build; distinct fingerprints build independently. A successful build
// enters the LRU (possibly evicting the least-recently-used completed
// Planner); a failed build is not cached, so the error is re-derived on
// retry. ctx carries the request trace (a "registry/planner" span records
// whether the wrapper-design cache hit); it does not cancel the build —
// waiters sharing the singleflight would inherit the abandonment.
func (r *Registry) Planner(ctx context.Context, key string) (*repro.Planner, error) {
	fp, ok := r.Resolve(key)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownSOC, key)
	}
	_, span := obs.Start(ctx, "registry/planner")
	defer span.End()
	span.SetAttr("soc", fp)
	r.mu.Lock()
	if pe, ok := r.planners[fp]; ok {
		if pe.elem != nil {
			r.lru.MoveToFront(pe.elem)
		}
		r.mu.Unlock()
		r.hits.Add(1)
		span.SetAttr("cached", true)
		<-pe.ready
		return pe.planner, pe.err
	}
	s := r.socs[fp]
	pe := &plannerEntry{fp: fp, ready: make(chan struct{})}
	r.planners[fp] = pe
	pe.elem = r.lru.PushFront(pe)
	r.evictLocked(pe)
	r.mu.Unlock()

	span.SetAttr("cached", false)
	buildDone := obs.TimeStage("registry/build")
	var planner *repro.Planner
	err := chaos.InjectContext(ctx, siteRegistryBuild)
	if err == nil {
		planner, err = repro.NewPlanner(s)
	}
	buildDone()
	r.builds.Add(1)

	r.mu.Lock()
	pe.planner, pe.err, pe.done = planner, err, true
	if err != nil {
		r.removeLocked(pe)
	}
	r.mu.Unlock()
	close(pe.ready)
	return planner, err
}

// evictLocked trims the LRU to capacity, never evicting keep or entries
// still building (their waiters would re-trigger concurrent builds).
// r.mu must be held.
func (r *Registry) evictLocked(keep *plannerEntry) {
	for len(r.planners) > r.capacity {
		evicted := false
		for e := r.lru.Back(); e != nil; e = e.Prev() {
			pe := e.Value.(*plannerEntry)
			if pe == keep || !pe.done {
				continue
			}
			r.removeLocked(pe)
			r.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return // everything else is mid-build; exceed capacity briefly
		}
	}
}

// removeLocked drops an entry from the planner map and LRU. r.mu must be
// held. In-flight waiters keep their direct entry pointer and are
// unaffected; the Planner simply stops being cached.
func (r *Registry) removeLocked(pe *plannerEntry) {
	delete(r.planners, pe.fp)
	if pe.elem != nil {
		r.lru.Remove(pe.elem)
		pe.elem = nil
	}
}

// SOCInfo summarizes one registered SOC for listings.
type SOCInfo struct {
	Fingerprint string `json:"fingerprint"`
	Name        string `json:"name"`
	Cores       int    `json:"cores"`
	// Planner reports whether a built Planner is currently cached.
	Planner bool `json:"planner"`
}

// List returns every registered SOC, sorted by name then fingerprint.
func (r *Registry) List() []SOCInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SOCInfo, 0, len(r.socs))
	for fp, s := range r.socs {
		pe, ok := r.planners[fp]
		out = append(out, SOCInfo{
			Fingerprint: fp,
			Name:        s.Name,
			Cores:       len(s.Cores),
			Planner:     ok && pe.done && pe.err == nil,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// RegistryStats is a point-in-time registry counter snapshot.
type RegistryStats struct {
	SOCs      int   `json:"socs"`
	Planners  int   `json:"planners"`
	Builds    int64 `json:"plannerBuilds"`
	Evictions int64 `json:"plannerEvictions"`
	Hits      int64 `json:"plannerHits"`
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	socs, planners := len(r.socs), len(r.planners)
	r.mu.Unlock()
	return RegistryStats{
		SOCs:      socs,
		Planners:  planners,
		Builds:    r.builds.Load(),
		Evictions: r.evictions.Load(),
		Hits:      r.hits.Load(),
	}
}
