package service

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// traceEnvelope mirrors tracedResponse for decoding in tests.
type traceEnvelope struct {
	Trace  obs.TraceData   `json:"trace"`
	Result json.RawMessage `json:"result"`
}

// backendsResponse mirrors the GET /v1/backends document.
type backendsResponse struct {
	Backends []BackendInfo `json:"backends"`
}

// TestObservability drives a portfolio schedule through the full stack and
// checks every telemetry surface: X-Trace-Id, the ?debug=trace envelope,
// /v1/traces/{id}, /v1/backends, and the extended /metrics latency block.
func TestObservability(t *testing.T) {
	sched.ResetPortfolioHealth()
	t.Cleanup(sched.ResetPortfolioHealth)
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()
	reqBody := map[string]any{
		"soc":    "demo8",
		"params": map[string]any{"tamWidth": 16, "backend": "portfolio", "workers": 1},
	}

	// Plain request: the response body is the untouched schedule document
	// and the trace ID rides in the header.
	body, _ := json.Marshal(reqBody)
	resp, err := client.Post(ts.URL+"/v1/schedule/best", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	plain := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule status %d: %s", resp.StatusCode, plain)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-Trace-Id header on schedule response")
	}

	// The retained trace is served by ID and its root is the route.
	code, raw := doJSON(t, client, "GET", ts.URL+"/v1/traces/"+traceID, nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s status %d: %s", traceID, code, raw)
	}
	var td obs.TraceData
	if err := json.Unmarshal(raw, &td); err != nil {
		t.Fatal(err)
	}
	if td.TraceID != traceID || td.Root.Name != "POST /v1/schedule/best" {
		t.Fatalf("trace = %s root %q", td.TraceID, td.Root.Name)
	}
	if len(td.Root.Children) == 0 {
		t.Fatal("schedule trace has no child spans; backend instrumentation missing")
	}
	if code, _ := doJSON(t, client, "GET", ts.URL+"/v1/traces/t-nonexistent", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", code)
	}

	// ?debug=trace wraps the same document in an envelope without changing
	// a byte of its JSON content, and the span tree is non-empty.
	code, raw = doJSON(t, client, "POST", ts.URL+"/v1/schedule/best?debug=trace", reqBody)
	if code != http.StatusOK {
		t.Fatalf("debug=trace status %d: %s", code, raw)
	}
	var env traceEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("envelope: %v", err)
	}
	if env.Trace.SpanCount() < 2 {
		t.Fatalf("debug trace has %d spans, want a tree", env.Trace.SpanCount())
	}
	var got, want any
	if err := json.Unmarshal(env.Result, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(plain, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("debug=trace result differs from the plain response document")
	}

	// /v1/backends: every registered backend, sorted, with race records
	// and latency quantiles for the ones that ran.
	code, raw = doJSON(t, client, "GET", ts.URL+"/v1/backends", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/backends status %d: %s", code, raw)
	}
	var br backendsResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]BackendInfo, len(br.Backends))
	var names []string
	for _, b := range br.Backends {
		byName[b.Name] = b
		names = append(names, b.Name)
	}
	if !reflect.DeepEqual(names, sched.Backends()) {
		t.Fatalf("backend rows %v, want sorted %v", names, sched.Backends())
	}
	if st := byName["classic"].Race.State; st != "exempt" {
		t.Fatalf("classic state %q, want exempt", st)
	}
	// Exactly one decided race: the second (identical) schedule request was
	// answered by the result cache, so no second portfolio race ran.
	for _, name := range []string{"classic", "rectpack"} {
		b := byName[name]
		if decided := b.Race.Won + b.Race.Lost; decided != 1 {
			t.Fatalf("%s decided races = %d, want 1 (repeat request is a cache hit)", name, decided)
		}
		if b.Race.WinRate < 0 || b.Race.WinRate > 1 {
			t.Fatalf("%s winRate = %v", name, b.Race.WinRate)
		}
		if b.Latency.Count < 1 {
			t.Fatalf("%s latency count = %d, want >= 1", name, b.Latency.Count)
		}
	}

	// /metrics grows the latency block: per-route, per-backend, per-stage.
	code, raw = doJSON(t, client, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics status %d", code)
	}
	var ms MetricsSnapshot
	if err := json.Unmarshal(raw, &ms); err != nil {
		t.Fatal(err)
	}
	if h := ms.Latency.Routes["POST /v1/schedule/best"]; h.Count < 2 || h.MaxNs < h.P50Ns {
		t.Fatalf("route histogram = %+v", h)
	}
	if h := ms.Latency.Backends["portfolio"]; h.Count < 1 {
		t.Fatalf("portfolio backend histogram = %+v", h)
	}
	if ms.Cache.Hits < 1 || ms.Cache.Misses < 1 {
		t.Fatalf("cache stats = %+v, want the repeat request counted as a hit", ms.Cache)
	}
	if h := ms.Latency.Stages["registry/build"]; h.Count < 1 {
		t.Fatalf("registry/build stage histogram = %+v", h)
	}
	if ms.Registry.Hits < 1 {
		t.Fatalf("registry hits = %d, want >= 1 (second schedule reused the planner)", ms.Registry.Hits)
	}
	if ms.Backends["rectpack"].WinRate < 0 {
		t.Fatalf("metrics backends = %+v", ms.Backends)
	}
}

// TestDebugTraceNonJSON pins the pass-through: a non-JSON answer (the
// gantt SVG) is never wrapped in the trace envelope.
func TestDebugTraceNonJSON(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	body, _ := json.Marshal(map[string]any{
		"soc":    "demo8",
		"params": map[string]any{"tamWidth": 16},
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/gantt?debug=trace", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	svg := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gantt status %d: %s", resp.StatusCode, svg)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "svg") {
		t.Fatalf("Content-Type = %q, want SVG pass-through", ct)
	}
	if !bytes.Contains(svg, []byte("<svg")) || bytes.Contains(svg, []byte(`"trace"`)) {
		t.Fatal("SVG body was wrapped or mangled by the trace envelope")
	}
}

// TestMiddlewareDefaultStatus pins the statusWriter fix: a handler that
// completes without writing anything is net/http's implicit 200 and must
// be logged and counted as 200, never 0.
func TestMiddlewareDefaultStatus(t *testing.T) {
	var logBuf bytes.Buffer
	svc, err := New(Config{Logger: log.New(&logBuf, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Write nothing: net/http sends an implicit 200 on return.
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/silent", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("recorded code %d", rr.Code)
	}
	if got := logBuf.String(); !strings.Contains(got, "status=200") {
		t.Fatalf("log line %q does not report status=200", got)
	}
	if n := svc.metrics.status4xx.Load() + svc.metrics.status5xx.Load(); n != 0 {
		t.Fatalf("error counters moved on an implicit 200: %d", n)
	}
	if got := svc.metrics.requests.Load(); got != 1 {
		t.Fatalf("requests = %d, want 1", got)
	}
}

// readAll drains a response body, failing the test on error.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
