package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// indentDoc re-indents an embedded batch result to top level, recovering
// the exact standalone document bytes (the batch envelope nests results,
// so their raw bytes carry the envelope's deeper indentation).
func indentDoc(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

// TestBatchPartialFailure is the batch contract test: a mixed batch with
// invalid items answers 200 with per-item statuses — each bad item fails
// alone with the same {code,message} body a per-request call carries, and
// every good item's document is byte-identical to the per-request answer.
func TestBatchPartialFailure(t *testing.T) {
	svc, ts := newTestService(t, Config{Preload: []string{"demo8", "d695"}})
	client := ts.Client()

	req := map[string]any{
		"items": []map[string]any{
			{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}},
			{"soc": "no-such-soc", "params": ParamsJSON{TAMWidth: 16}},
			{"soc": "d695", "params": ParamsJSON{TAMWidth: 24, Backend: "rectpack"}},
			{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16, Backend: "warp-drive"}},
			{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}}, // duplicate of item 0
		},
	}
	code, body := doJSON(t, client, "POST", ts.URL+"/v1/batch", req)
	if code != http.StatusOK {
		t.Fatalf("batch: HTTP %d: %s", code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 5 {
		t.Fatalf("items = %d, want 5", len(resp.Items))
	}
	if resp.Stats.Items != 5 || resp.Stats.OK != 3 || resp.Stats.Failed != 2 {
		t.Fatalf("stats = %+v, want 3 ok / 2 failed", resp.Stats)
	}

	for i, it := range resp.Items {
		if it.Index != i {
			t.Fatalf("item %d reports index %d", i, it.Index)
		}
	}
	if it := resp.Items[1]; it.Status != http.StatusNotFound || it.Error == nil || it.Error.Code != CodeNotFound {
		t.Fatalf("unknown-soc item = %+v, want 404 %s", it, CodeNotFound)
	}
	if it := resp.Items[3]; it.Status != http.StatusUnprocessableEntity || it.Error == nil || it.Error.Code != CodeUnknownBackend {
		t.Fatalf("unknown-backend item = %+v, want 422 %s", it, CodeUnknownBackend)
	}

	// Identical items share one computation: the duplicate is a cache or
	// singleflight hit carrying the exact same bytes.
	if !bytes.Equal(resp.Items[0].Result, resp.Items[4].Result) {
		t.Fatal("duplicate items returned different documents")
	}
	if resp.Stats.CacheHits < 1 {
		t.Fatalf("stats = %+v, want the duplicate item counted as a cache hit", resp.Stats)
	}

	// Per-item documents are byte-identical to the per-request endpoints.
	for _, check := range []struct {
		item int
		body map[string]any
	}{
		{0, map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}}},
		{2, map[string]any{"soc": "d695", "params": ParamsJSON{TAMWidth: 24, Backend: "rectpack"}}},
	} {
		code, single := doJSON(t, client, "POST", ts.URL+"/v1/schedule", check.body)
		if code != http.StatusOK {
			t.Fatalf("per-request item %d: HTTP %d: %s", check.item, code, single)
		}
		if got := indentDoc(t, resp.Items[check.item].Result); !bytes.Equal(got, single) {
			t.Fatalf("item %d batch document differs from per-request /v1/schedule bytes", check.item)
		}
	}
	if got := svc.metrics.batches.Load(); got != 1 {
		t.Fatalf("batches counter = %d, want 1", got)
	}
}

// TestBatchWarmRepeat repeats an identical batch and asserts the warm
// pass is served entirely from the cache: every item flagged cached, the
// hit counter on /metrics grown, and the bytes unchanged.
func TestBatchWarmRepeat(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()

	req := map[string]any{
		"items": []map[string]any{
			{"soc": "demo8", "params": ParamsJSON{TAMWidth: 12}},
			{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}},
			{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}, "best": true},
		},
		"workers": 2,
	}
	code, cold := doJSON(t, client, "POST", ts.URL+"/v1/batch", req)
	if code != http.StatusOK {
		t.Fatalf("cold batch: HTTP %d: %s", code, cold)
	}
	code, warm := doJSON(t, client, "POST", ts.URL+"/v1/batch", req)
	if code != http.StatusOK {
		t.Fatalf("warm batch: HTTP %d: %s", code, warm)
	}
	var coldResp, warmResp BatchResponse
	if err := json.Unmarshal(cold, &coldResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(warm, &warmResp); err != nil {
		t.Fatal(err)
	}
	if coldResp.Stats.OK != 3 || warmResp.Stats.OK != 3 {
		t.Fatalf("ok counts: cold %+v warm %+v", coldResp.Stats, warmResp.Stats)
	}
	if warmResp.Stats.CacheHits != 3 {
		t.Fatalf("warm stats = %+v, want every item a cache hit", warmResp.Stats)
	}
	for i := range warmResp.Items {
		if !warmResp.Items[i].Cached {
			t.Fatalf("warm item %d not flagged cached", i)
		}
		if !bytes.Equal(warmResp.Items[i].Result, coldResp.Items[i].Result) {
			t.Fatalf("warm item %d bytes differ from the cold pass", i)
		}
	}

	code, body := doJSON(t, client, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Batches != 2 {
		t.Fatalf("batches = %d, want 2", m.Batches)
	}
	if m.Cache.Hits < 3 {
		t.Fatalf("cache stats = %+v, want >= 3 hits from the warm batch", m.Cache)
	}
}

// TestBatchValidation pins the request-level rejections: empty batches,
// oversized batches, and negative worker counts are 422; malformed JSON
// is 400 — all in the standard error envelope.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()

	tooMany := make([]map[string]any, MaxBatchItems+1)
	for i := range tooMany {
		tooMany[i] = map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}}
	}
	for _, tc := range []struct {
		name string
		body map[string]any
		want int
		code string
	}{
		{"empty", map[string]any{"items": []map[string]any{}}, http.StatusUnprocessableEntity, CodeBadRequest},
		{"too many items", map[string]any{"items": tooMany}, http.StatusUnprocessableEntity, CodeBadRequest},
		{"negative workers", map[string]any{"items": []map[string]any{{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}}}, "workers": -1}, http.StatusUnprocessableEntity, CodeBadRequest},
		{"unknown field", map[string]any{"items": []map[string]any{}, "nope": 1}, http.StatusBadRequest, CodeBadRequest},
	} {
		code, body := doJSON(t, client, "POST", ts.URL+"/v1/batch", tc.body)
		if code != tc.want {
			t.Fatalf("%s: HTTP %d (want %d): %s", tc.name, code, tc.want, body)
		}
		var envelope errorEnvelope
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != tc.code {
			t.Fatalf("%s: body %q, want code %s", tc.name, body, tc.code)
		}
	}
}
