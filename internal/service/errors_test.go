package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestErrorEnvelopeAllRoutes is the wire-contract table: every /v1 route,
// driven into each of its failure modes, answers the single envelope
// {"error":{"code","message"}} with the documented machine-readable code.
func TestErrorEnvelopeAllRoutes(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()

	sched16 := ParamsJSON{TAMWidth: 16}
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		code   string
	}{
		// 400 bad_request: malformed or route-violating envelopes.
		{"schedule unknown field", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "nope": 1}, http.StatusBadRequest, CodeBadRequest},
		{"schedule best field", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": sched16, "best": true}, http.StatusBadRequest, CodeBadRequest},
		{"schedule wait field", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": sched16, "wait": true}, http.StatusBadRequest, CodeBadRequest},
		{"best wait field", "POST", "/v1/schedule/best", map[string]any{"soc": "demo8", "params": sched16, "wait": true}, http.StatusBadRequest, CodeBadRequest},
		{"effective best field", "POST", "/v1/effective", map[string]any{"soc": "demo8", "params": sched16, "best": true}, http.StatusBadRequest, CodeBadRequest},
		{"gantt wait field", "POST", "/v1/gantt", map[string]any{"soc": "demo8", "params": sched16, "wait": true}, http.StatusBadRequest, CodeBadRequest},
		{"batch unknown field", "POST", "/v1/batch", map[string]any{"items": []any{}, "nope": 1}, http.StatusBadRequest, CodeBadRequest},

		// 404 not_found: unknown SOCs, jobs, traces.
		{"schedule unknown soc", "POST", "/v1/schedule", map[string]any{"soc": "ghost", "params": sched16}, http.StatusNotFound, CodeNotFound},
		{"best unknown soc", "POST", "/v1/schedule/best", map[string]any{"soc": "ghost", "params": sched16}, http.StatusNotFound, CodeNotFound},
		{"sweep unknown soc", "POST", "/v1/sweep", map[string]any{"soc": "ghost", "params": map[string]any{"widthLo": 8, "widthHi": 12}, "wait": true}, http.StatusNotFound, CodeNotFound},
		{"effective unknown soc", "POST", "/v1/effective", map[string]any{"soc": "ghost", "params": map[string]any{"widthLo": 8, "widthHi": 12}}, http.StatusNotFound, CodeNotFound},
		{"gantt unknown soc", "POST", "/v1/gantt", map[string]any{"soc": "ghost", "params": sched16}, http.StatusNotFound, CodeNotFound},
		{"soc get unknown", "GET", "/v1/socs/ghost", nil, http.StatusNotFound, CodeNotFound},
		{"job get unknown", "GET", "/v1/jobs/job-999999", nil, http.StatusNotFound, CodeNotFound},
		{"job result unknown", "GET", "/v1/jobs/job-999999/result", nil, http.StatusNotFound, CodeNotFound},
		{"job cancel unknown", "POST", "/v1/jobs/job-999999/cancel", nil, http.StatusNotFound, CodeNotFound},
		{"trace unknown", "GET", "/v1/traces/t-999999", nil, http.StatusNotFound, CodeNotFound},

		// 422 unknown_backend / bad_request: parameter rejections.
		{"schedule bad backend", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16, Backend: "warp"}}, http.StatusUnprocessableEntity, CodeUnknownBackend},
		{"gantt bad backend", "POST", "/v1/gantt", map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16, Backend: "warp"}}, http.StatusUnprocessableEntity, CodeUnknownBackend},
		{"schedule width cap", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: MaxRequestWidth + 1}}, http.StatusUnprocessableEntity, CodeBadRequest},
		{"sweep width cap", "POST", "/v1/sweep", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 1, "widthHi": MaxRequestWidth + 1}, "wait": true}, http.StatusUnprocessableEntity, CodeBadRequest},
		{"effective bad gamma", "POST", "/v1/effective", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 8, "widthHi": 12, "gamma": 1.5}}, http.StatusUnprocessableEntity, CodeBadRequest},
		{"schedule negative timeout", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16, TimeoutMS: -1}}, http.StatusUnprocessableEntity, CodeBadRequest},
		{"batch empty", "POST", "/v1/batch", map[string]any{"items": []any{}}, http.StatusUnprocessableEntity, CodeBadRequest},

		// 422 unknown_core: preemption budgets for cores the SOC lacks.
		{"schedule bad preemption core", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": map[string]any{"tamWidth": 16, "maxPreemptions": map[string]int{"999": 1}}}, http.StatusUnprocessableEntity, CodeUnknownCore},

		// 422 backend_declined: a directly-named backend honestly refusing
		// parameters outside its regime (rectpack under preemption budgets,
		// preempt-rectpack without any).
		{"schedule declined rectpack", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": map[string]any{"tamWidth": 16, "backend": "rectpack", "maxPreemptions": map[string]int{"1": 1}}}, http.StatusUnprocessableEntity, CodeBackendDeclined},
		{"best declined preempt-rectpack", "POST", "/v1/schedule/best", map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16, Backend: "preempt-rectpack"}}, http.StatusUnprocessableEntity, CodeBackendDeclined},

		// 504 deadline: a 1ms budget on a full-range synchronous sweep.
		{"sweep deadline", "POST", "/v1/sweep", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 1, "widthHi": 1024, "timeoutMs": 1}, "wait": true}, http.StatusGatewayTimeout, CodeDeadline},
	}
	for _, tc := range cases {
		code, body := doJSON(t, client, tc.method, ts.URL+tc.path, tc.body)
		if code != tc.status {
			t.Errorf("%s: HTTP %d (want %d): %s", tc.name, code, tc.status, body)
			continue
		}
		var envelope errorEnvelope
		if err := json.Unmarshal(body, &envelope); err != nil {
			t.Errorf("%s: body %q is not the error envelope: %v", tc.name, body, err)
			continue
		}
		if envelope.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q (message %q)", tc.name, envelope.Error.Code, tc.code, envelope.Error.Message)
		}
		if envelope.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
		// The envelope is the whole body: exactly one top-level key.
		var top map[string]json.RawMessage
		if err := json.Unmarshal(body, &top); err != nil || len(top) != 1 {
			t.Errorf("%s: body %q carries keys beyond the envelope", tc.name, body)
		}
	}
}

// TestErrorCodeSheds covers the back-pressure codes: admission-control
// shedding answers 429 with code "shed" and a Retry-After header.
func TestErrorCodeSheds(t *testing.T) {
	svc, ts := newTestService(t, Config{Preload: []string{"demo8"}, MaxConcurrent: 1})
	client := ts.Client()

	// Occupy the only admission slot from inside the semaphore, then watch
	// a request get shed.
	if !svc.sem.TryAcquire() {
		t.Fatal("could not take the only admission slot")
	}
	defer svc.sem.Release()

	req, err := http.NewRequest("POST", ts.URL+"/v1/schedule",
		strings.NewReader(`{"soc":"demo8","params":{"tamWidth":16}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: HTTP %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After")
	}
	var envelope errorEnvelope
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != CodeShed {
		t.Fatalf("shed body %q, want code %s", body, CodeShed)
	}
}
