package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServiceScheduleD695 measures a full service round-trip — HTTP
// request decode, registry hit on a warm Planner, scheduler run, schedio
// response encode — for a single d695 schedule at W=32. The gap between
// this and BenchmarkSingleSchedule-style library numbers is the service
// overhead per request.
func BenchmarkServiceScheduleD695(b *testing.B) {
	svc, err := New(Config{Preload: []string{"d695"}})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, err := json.Marshal(map[string]any{
		"soc":    "d695",
		"params": ParamsJSON{TAMWidth: 32, Percent: 10, Delta: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	do := func() {
		resp, err := client.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}
	do() // warm the Planner outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
}
