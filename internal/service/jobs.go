package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// JobState is the lifecycle of an async job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing it.
	JobRunning JobState = "running"
	// JobDone: finished successfully; the result is available.
	JobDone JobState = "done"
	// JobFailed: finished with a non-cancellation error.
	JobFailed JobState = "failed"
	// JobCancelled: cancelled before or during execution.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// ErrQueueFull reports a Submit rejected because the job queue is at
// capacity (the HTTP layer maps it to 429 with a Retry-After).
var ErrQueueFull = errors.New("service: job queue full")

// ErrQueueWait reports a job that waited in the queue past the pool's
// queue-wait deadline and was failed without running — by the time a
// worker would have picked it up, the submitter has long stopped caring.
var ErrQueueWait = errors.New("service: job exceeded queue-wait deadline")

// ErrClosed reports a Submit after Close.
var ErrClosed = errors.New("service: job pool closed")

// siteJobsRun is the failpoint fired at the top of every job execution;
// the chaos suite arms it to inject panics and transient errors into the
// worker pool.
const siteJobsRun = "service/jobs/run"

func init() {
	chaos.RegisterSites(siteJobsRun, siteRegistryBuild, siteSchedule)
}

// Job is one asynchronous unit of work. All state is guarded by the owning
// pool's mutex; read it through Snapshot.
type Job struct {
	id      string
	kind    string
	state   JobState // guarded by Jobs.mu
	result  any      // guarded by Jobs.mu
	err     error    // guarded by Jobs.mu
	trace   string   // guarded by Jobs.mu; trace ID once the job ran
	created time.Time
	started time.Time // guarded by Jobs.mu
	ended   time.Time // guarded by Jobs.mu
	cancel  context.CancelFunc
	ctx     context.Context
	run     func(context.Context) (any, error)
	done    chan struct{} // closed when the job reaches a terminal state
	expiry  *time.Timer   // fails the job if still queued at the deadline
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is a copyable snapshot of a job.
type JobStatus struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    JobState  `json:"state"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Ended    time.Time `json:"ended,omitzero"`
	Duration string    `json:"duration,omitempty"`
	// TraceID names the job's execution trace (GET /v1/traces/{id}),
	// present once the job has started on a pool with tracing enabled.
	TraceID string `json:"traceId,omitempty"`
}

// Jobs is a bounded asynchronous job pool: a fixed set of workers drains a
// bounded queue, every job carries a cancellable context, and finished
// jobs are retained (bounded) so clients can poll results. All methods are
// safe for concurrent use.
type Jobs struct {
	mu        sync.Mutex
	jobs      map[string]*Job // guarded by mu
	order     []string        // guarded by mu; creation order, for retention pruning
	queue     chan *Job
	seq       int64 // guarded by mu
	retained  int
	queueWait time.Duration // immutable after NewJobs; 0 = unbounded
	qTimeouts int64         // guarded by mu; jobs failed by the queue-wait deadline
	closed    bool          // guarded by mu
	tracer    *obs.Tracer   // immutable after SetTracer; nil = tracing off
	baseCtx   context.Context
	stopAll   context.CancelFunc
	wg        sync.WaitGroup
}

// Queue, retention, and queue-wait bounds applied by NewJobs when Config
// leaves them unset.
const (
	DefaultJobQueue     = 64
	DefaultJobRetained  = 256
	DefaultJobQueueWait = 30 * time.Second
)

// NewJobs starts a pool of workers (<= 0 means 1) with a bounded queue
// (queue <= 0 means DefaultJobQueue) retaining at most retained finished
// jobs (<= 0 means DefaultJobRetained). A job still queued after queueWait
// fails with ErrQueueWait instead of running long after its submitter gave
// up (0 means DefaultJobQueueWait; negative disables the deadline).
func NewJobs(workers, queue, retained int, queueWait time.Duration) *Jobs {
	if workers <= 0 {
		workers = 1
	}
	if queue <= 0 {
		queue = DefaultJobQueue
	}
	if retained <= 0 {
		retained = DefaultJobRetained
	}
	if queueWait == 0 {
		queueWait = DefaultJobQueueWait
	} else if queueWait < 0 {
		queueWait = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Jobs{
		jobs:      make(map[string]*Job),
		queue:     make(chan *Job, queue),
		retained:  retained,
		queueWait: queueWait,
		baseCtx:   ctx,
		stopAll:   cancel,
	}
	for i := 0; i < workers; i++ {
		j.wg.Add(1)
		go j.worker()
	}
	return j
}

// SetTracer enables per-job execution traces. Call it before the pool
// receives work (the server does, right after New); a nil tracer leaves
// tracing off.
func (j *Jobs) SetTracer(t *obs.Tracer) { j.tracer = t }

// Submit enqueues a job. run receives a context cancelled by Cancel (or by
// Close) and should return promptly once it is done; returning the
// context's error marks the job cancelled rather than failed.
func (j *Jobs) Submit(kind string, run func(context.Context) (any, error)) (*Job, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil, ErrClosed
	}
	j.seq++
	ctx, cancel := context.WithCancel(j.baseCtx)
	jb := &Job{
		id:      fmt.Sprintf("job-%06d", j.seq),
		kind:    kind,
		state:   JobQueued,
		created: time.Now(),
		cancel:  cancel,
		ctx:     ctx,
		run:     run,
		done:    make(chan struct{}),
	}
	select {
	case j.queue <- jb:
	default:
		j.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
	j.jobs[jb.id] = jb
	j.order = append(j.order, jb.id)
	if j.queueWait > 0 {
		jb.expiry = time.AfterFunc(j.queueWait, func() { j.expireQueued(jb) })
	}
	j.pruneLocked()
	j.mu.Unlock()
	return jb, nil
}

// expireQueued fails a job that is still waiting for a worker when its
// queue-wait deadline fires; the worker skips it like a cancelled job.
func (j *Jobs) expireQueued(jb *Job) {
	j.mu.Lock()
	if jb.state != JobQueued {
		j.mu.Unlock()
		return
	}
	jb.state = JobFailed
	jb.err = ErrQueueWait
	jb.ended = time.Now()
	j.qTimeouts++
	close(jb.done)
	j.mu.Unlock()
	jb.cancel()
}

// pruneLocked drops the oldest terminal jobs beyond the retention bound.
// j.mu must be held.
func (j *Jobs) pruneLocked() {
	if len(j.jobs) <= j.retained {
		return
	}
	kept := j.order[:0]
	for _, id := range j.order {
		jb := j.jobs[id]
		if jb != nil && len(j.jobs) > j.retained && jb.state.Terminal() {
			delete(j.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	j.order = kept
}

// Get returns a job by ID.
func (j *Jobs) Get(id string) (*Job, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jb, ok := j.jobs[id]
	return jb, ok
}

// Snapshot returns the job's current status.
func (j *Jobs) Snapshot(jb *Job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      jb.id,
		Kind:    jb.kind,
		State:   jb.state,
		Created: jb.created,
		Started: jb.started,
		Ended:   jb.ended,
	}
	if jb.err != nil {
		st.Error = jb.err.Error()
	}
	if !jb.started.IsZero() && !jb.ended.IsZero() {
		st.Duration = jb.ended.Sub(jb.started).String()
	}
	st.TraceID = jb.trace
	return st
}

// Result returns a terminal job's result and error. ok is false while the
// job is still queued or running.
func (j *Jobs) Result(jb *Job) (result any, err error, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !jb.state.Terminal() {
		return nil, nil, false
	}
	return jb.result, jb.err, true
}

// Cancel requests cancellation of a job. A queued job is marked cancelled
// immediately (the worker will skip it); a running job has its context
// cancelled and reaches the cancelled state once its workers unwind.
// Cancelling a terminal job is a no-op.
func (j *Jobs) Cancel(id string) (*Job, bool) {
	j.mu.Lock()
	jb, ok := j.jobs[id]
	if !ok {
		j.mu.Unlock()
		return nil, false
	}
	if jb.state == JobQueued {
		jb.state = JobCancelled
		jb.err = context.Canceled
		jb.ended = time.Now()
		close(jb.done)
	}
	j.mu.Unlock()
	jb.cancel() // outside the lock: may synchronously wake run()
	return jb, true
}

// worker drains the queue until Close.
func (j *Jobs) worker() {
	defer j.wg.Done()
	for jb := range j.queue {
		j.mu.Lock()
		if jb.state != JobQueued { // cancelled while queued
			j.mu.Unlock()
			continue
		}
		if jb.ctx.Err() != nil { // pool shutting down
			jb.state = JobCancelled
			jb.err = jb.ctx.Err()
			jb.ended = time.Now()
			close(jb.done)
			j.mu.Unlock()
			continue
		}
		jb.state = JobRunning
		jb.started = time.Now()
		if jb.expiry != nil {
			jb.expiry.Stop()
		}
		run, ctx := jb.run, jb.ctx
		j.mu.Unlock()

		result, err := j.runTraced(jb, run, ctx)

		j.mu.Lock()
		jb.ended = time.Now()
		switch {
		case err == nil:
			jb.state, jb.result = JobDone, result
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
			jb.state, jb.err = JobCancelled, err
		default:
			jb.state, jb.err = JobFailed, err
		}
		close(jb.done)
		j.mu.Unlock()
		jb.cancel() // release the context's resources
	}
}

// runTraced runs one job under its own trace ("job/<kind>"), recording the
// trace ID on the job and the run duration in the stage histograms. With no
// tracer set it is exactly runJob.
func (j *Jobs) runTraced(jb *Job, run func(context.Context) (any, error), ctx context.Context) (any, error) {
	tctx, span := j.tracer.StartTrace(ctx, "job/"+jb.kind)
	defer span.End()
	if span != nil {
		j.mu.Lock()
		jb.trace = span.TraceID()
		j.mu.Unlock()
	}
	defer obs.TimeStage("jobs/run")()
	result, err := runJob(run, tctx)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return result, err
}

// runJob executes one job body, converting a panic into a failed-job
// error so a misbehaving job cannot take down the worker (and with it the
// whole process) — the async counterpart of the HTTP middleware's recover.
func runJob(run func(context.Context) (any, error), ctx context.Context) (result any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			result, err = nil, fmt.Errorf("service: job panicked: %v", rec)
		}
	}()
	if err := chaos.InjectContext(ctx, siteJobsRun); err != nil {
		return nil, err
	}
	return run(ctx)
}

// JobsStats counts jobs by state, plus queue health: Depth is the number
// of jobs sitting in the queue channel right now and QueueTimeouts counts
// jobs failed by the queue-wait deadline since the pool started.
type JobsStats struct {
	Queued        int   `json:"queued"`
	Running       int   `json:"running"`
	Done          int   `json:"done"`
	Failed        int   `json:"failed"`
	Cancelled     int   `json:"cancelled"`
	Depth         int   `json:"queueDepth"`
	QueueTimeouts int64 `json:"queueTimeouts"`
}

// Stats snapshots the per-state job counts over the retained window.
func (j *Jobs) Stats() JobsStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobsStats{Depth: len(j.queue), QueueTimeouts: j.qTimeouts}
	for _, jb := range j.jobs {
		switch jb.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Close cancels every job context, stops accepting submissions, and waits
// for the workers to drain.
func (j *Jobs) Close() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		j.wg.Wait()
		return
	}
	j.closed = true
	j.mu.Unlock()
	j.stopAll()
	close(j.queue)
	j.wg.Wait()
}
