package service

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// Metrics holds the service's request counters. Snapshot-able without
// locks; served by GET /metrics.
type Metrics struct {
	requests  atomic.Int64
	inflight  atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64
	schedules atomic.Int64
	sweeps    atomic.Int64
	panics    atomic.Int64
	shed      atomic.Int64 // requests rejected 429 by admission control
	timeouts  atomic.Int64 // requests that hit their deadline (504)
}

// MetricsSnapshot is the JSON form of the counters plus registry/job
// state, served by GET /metrics. Backends carries every backend's
// cumulative portfolio-race record (races won/lost/failed/timed-out and
// quarantine benchings, plus its breaker state).
type MetricsSnapshot struct {
	UptimeSeconds float64                           `json:"uptimeSeconds"`
	Requests      int64                             `json:"requests"`
	Inflight      int64                             `json:"inflight"`
	Status4xx     int64                             `json:"status4xx"`
	Status5xx     int64                             `json:"status5xx"`
	Schedules     int64                             `json:"schedules"`
	Sweeps        int64                             `json:"sweeps"`
	Panics        int64                             `json:"panics"`
	Shed          int64                             `json:"shed"`
	Timeouts      int64                             `json:"timeouts"`
	Registry      RegistryStats                     `json:"registry"`
	Jobs          JobsStats                         `json:"jobs"`
	Backends      map[string]sched.BackendRaceStats `json:"backends"`
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// middleware wraps the API mux with panic recovery, request logging, and
// the request counters. A panic in a handler becomes a 500 with a JSON
// body instead of tearing down the connection state.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.requests.Add(1)
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Add(1)
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal error"))
				}
			}
			switch {
			case sw.status >= 500:
				s.metrics.status5xx.Add(1)
			case sw.status >= 400:
				s.metrics.status4xx.Add(1)
			}
			s.logf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
		}()
		next.ServeHTTP(sw, r)
	})
}

// logf logs through the configured logger; a nil logger silences the
// service (tests, benchmarks).
func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}
