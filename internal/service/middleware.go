package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Metrics holds the service's request counters. Snapshot-able without
// locks; served by GET /metrics.
type Metrics struct {
	requests  atomic.Int64
	inflight  atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64
	schedules atomic.Int64
	sweeps    atomic.Int64
	batches   atomic.Int64
	panics    atomic.Int64
	shed      atomic.Int64 // requests rejected 429 by admission control
	timeouts  atomic.Int64 // requests that hit their deadline (504)
}

// MetricsSnapshot is the JSON form of the counters plus registry/job
// state, served by GET /metrics. Backends carries every backend's
// cumulative portfolio-race record (races won/lost/failed/timed-out and
// quarantine benchings, breaker state and transitions, win rate); Latency
// carries the per-route, per-backend, and per-stage latency histograms.
type MetricsSnapshot struct {
	UptimeSeconds float64                           `json:"uptimeSeconds"`
	Requests      int64                             `json:"requests"`
	Inflight      int64                             `json:"inflight"`
	Status4xx     int64                             `json:"status4xx"`
	Status5xx     int64                             `json:"status5xx"`
	Schedules     int64                             `json:"schedules"`
	Sweeps        int64                             `json:"sweeps"`
	Batches       int64                             `json:"batches"`
	Panics        int64                             `json:"panics"`
	Shed          int64                             `json:"shed"`
	Timeouts      int64                             `json:"timeouts"`
	Cache         CacheStats                        `json:"cache"`
	Registry      RegistryStats                     `json:"registry"`
	Jobs          JobsStats                         `json:"jobs"`
	Backends      map[string]sched.BackendRaceStats `json:"backends"`
	Latency       obs.Latency                       `json:"latency"`
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Status returns the response status for accounting. A handler that
// returned without writing anything left net/http's implicit 200 in
// place, so an unwritten response reports 200, not 0.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// routeLabel normalizes a request to its route pattern (path parameters
// collapsed) for the per-route latency histograms and trace names, so
// /v1/jobs/job-000042 and /v1/jobs/job-000007 share one series.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/jobs/"):
		switch {
		case strings.HasSuffix(p, "/result"):
			p = "/v1/jobs/{id}/result"
		case strings.HasSuffix(p, "/cancel"):
			p = "/v1/jobs/{id}/cancel"
		default:
			p = "/v1/jobs/{id}"
		}
	case strings.HasPrefix(p, "/v1/socs/"):
		p = "/v1/socs/{key}"
	case strings.HasPrefix(p, "/v1/traces/"):
		p = "/v1/traces/{id}"
	}
	return r.Method + " " + p
}

// responseRecorder buffers a handler's response so the middleware can
// wrap it in a trace envelope afterwards (?debug=trace).
type responseRecorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func newResponseRecorder() *responseRecorder {
	return &responseRecorder{header: make(http.Header)}
}

func (rr *responseRecorder) Header() http.Header { return rr.header }

func (rr *responseRecorder) WriteHeader(code int) {
	if rr.status == 0 {
		rr.status = code
	}
}

func (rr *responseRecorder) Write(b []byte) (int, error) {
	if rr.status == 0 {
		rr.status = http.StatusOK
	}
	return rr.buf.Write(b)
}

// tracedResponse is the ?debug=trace envelope: the request's span tree
// plus the exact response document the handler produced.
type tracedResponse struct {
	Trace  obs.TraceData   `json:"trace"`
	Result json.RawMessage `json:"result"`
}

// middleware wraps the API mux with panic recovery, structured request
// logging, the request counters, and per-request tracing: every request
// runs under a root span (ID echoed in X-Trace-Id, tree retained for
// GET /v1/traces/{id}), its latency lands in the per-route histograms,
// and ?debug=trace returns the handler's JSON answer wrapped in a trace
// envelope. A panic in a handler becomes a 500 with a JSON body instead
// of tearing down the connection state.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.requests.Add(1)
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)

		route := routeLabel(r)
		ctx, span := s.tracer.StartTrace(r.Context(), route)
		traceID := span.TraceID()
		if span != nil {
			span.SetAttr("path", r.URL.Path)
			w.Header().Set("X-Trace-Id", traceID)
			r = r.WithContext(ctx)
		}

		var rec *responseRecorder
		sw := &statusWriter{ResponseWriter: w}
		if span != nil && r.URL.Query().Get("debug") == "trace" {
			rec = newResponseRecorder()
			sw = &statusWriter{ResponseWriter: rec}
		}
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Add(1)
				s.logf("msg=panic method=%s path=%s trace=%s err=%q\n%s",
					r.Method, r.URL.Path, traceID, fmt.Sprint(p), debug.Stack())
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal error"))
				}
			}
			status := sw.Status()
			switch {
			case status >= 500:
				s.metrics.status5xx.Add(1)
			case status >= 400:
				s.metrics.status4xx.Add(1)
			}
			elapsed := time.Since(start)
			obs.Routes.Observe(route, elapsed)
			span.SetAttr("status", status)
			span.End()
			s.logf("method=%s path=%s status=%d dur=%s trace=%s",
				r.Method, r.URL.Path, status, elapsed.Round(time.Microsecond), traceID)
			if rec != nil {
				s.writeTraced(w, rec, traceID)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// writeTraced replays a buffered response, wrapping a JSON document in
// the tracedResponse envelope now that the root span has ended and the
// full tree is retrievable. Non-JSON answers (the gantt SVG) pass through
// unwrapped — the trace is still reachable via X-Trace-Id.
func (s *Server) writeTraced(w http.ResponseWriter, rec *responseRecorder, traceID string) {
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	keys := make([]string, 0, len(rec.header))
	for k := range rec.header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range rec.header[k] {
			w.Header().Add(k, v)
		}
	}
	td, ok := s.tracer.Get(traceID)
	if !ok || !strings.Contains(rec.header.Get("Content-Type"), "json") {
		w.WriteHeader(status)
		_, _ = w.Write(rec.buf.Bytes())
		return
	}
	result := json.RawMessage("null")
	if rec.buf.Len() > 0 {
		result = json.RawMessage(rec.buf.Bytes())
	}
	writeJSON(w, status, tracedResponse{Trace: td, Result: result})
}

// logf logs through the configured logger; a nil logger silences the
// service (tests, benchmarks).
func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}
