package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
)

// TestChaosJobPanicLifecycle injects a panic into the job pool's run
// failpoint and asserts the panic is contained: the job lands in
// JobFailed (not JobCancelled, not lost) and the worker survives to run
// the next job.
func TestChaosJobPanicLifecycle(t *testing.T) {
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: "service/jobs/run", Mode: chaos.ModePanic, Count: 1},
	}})
	defer plan.Disable()

	j := NewJobs(1, 4, 16, 0)
	defer j.Close()

	doomed, err := j.Submit("sweep", func(context.Context) (any, error) {
		return "never reached", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-doomed.Done()
	if st := j.Snapshot(doomed); st.State != JobFailed {
		t.Fatalf("panicked job state = %s, want %s (err %q)", st.State, JobFailed, st.Error)
	}
	if _, jerr, ok := j.Result(doomed); !ok || jerr == nil {
		t.Fatalf("panicked job result: err=%v ok=%v, want a failure error", jerr, ok)
	}

	// The worker goroutine must have recovered: a second job still runs.
	next, err := j.Submit("sweep", func(context.Context) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-next.Done()
	if res, jerr, _ := j.Result(next); jerr != nil || res != 42 {
		t.Fatalf("job after panic: result=%v err=%v, want 42", res, jerr)
	}
}

// TestChaosRegistrySingleflightBuildError injects a one-shot error into
// the Planner build failpoint and asserts the failed build is NOT cached:
// the next caller rebuilds and succeeds, and concurrent waiters of the
// failed build all see the same error (singleflight) without wedging.
func TestChaosRegistrySingleflightBuildError(t *testing.T) {
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: "service/registry/build", Mode: chaos.ModeError, Count: 1},
	}})
	defer plan.Disable()

	r := NewRegistry(4)
	s, err := bench.ByName("demo8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(s); err != nil {
		t.Fatal(err)
	}

	// Several concurrent callers race the first (sabotaged) build. Exactly
	// one build runs; every caller of that round gets the injected error.
	const callers = 4
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Planner(context.Background(), "demo8")
		}(i)
	}
	wg.Wait()
	var injected *chaos.InjectedError
	failed := 0
	for _, err := range errs {
		if err != nil {
			if !errors.As(err, &injected) {
				t.Fatalf("build error %v is not the injected fault", err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("injected build error reached no caller")
	}
	// Late callers may have arrived after the failed entry was dropped and
	// triggered a fresh, healthy build — that is the desired behaviour, so
	// failed < callers is fine.

	// The failure must not be cached: the next call rebuilds and succeeds.
	p, err := r.Planner(context.Background(), "demo8")
	if err != nil || p == nil {
		t.Fatalf("rebuild after injected failure: planner=%v err=%v", p, err)
	}
	if got := r.Stats().Builds; got < 2 {
		t.Fatalf("builds = %d, want >= 2 (failed build + rebuild)", got)
	}
}

// TestChaosServiceRequestDeadline arms a delay at the service schedule
// failpoint so a request with timeoutMs=1 deterministically overruns its
// deadline, and asserts the 504 envelope plus the timeouts counter.
func TestChaosServiceRequestDeadline(t *testing.T) {
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: "service/schedule", Mode: chaos.ModeDelay, Delay: 200 * time.Millisecond},
	}})
	defer plan.Disable()

	svc, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()
	code, body := doJSON(t, client, "POST", ts.URL+"/v1/schedule",
		map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16, TimeoutMS: 1}})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out schedule: HTTP %d (want 504): %s", code, body)
	}
	if !bytes.Contains(body, []byte(`"error"`)) {
		t.Fatalf("504 body %q is not an error envelope", body)
	}
	if got := svc.metrics.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts counter = %d, want 1", got)
	}
	if plan.Hits("service/schedule") == 0 {
		t.Fatal("service/schedule failpoint never fired")
	}
}

// TestChaosServiceAdmissionShed fills the admission semaphore and asserts
// scheduling requests are shed with 429 + Retry-After, the shed counter
// climbs, and capacity freeing up restores service.
func TestChaosServiceAdmissionShed(t *testing.T) {
	svc, ts := newTestService(t, Config{Preload: []string{"demo8"}, MaxConcurrent: 1})
	client := ts.Client()

	if !svc.sem.TryAcquire() {
		t.Fatal("could not take the only admission slot")
	}
	req := map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}}
	resp, err := client.Post(ts.URL+"/v1/schedule", "application/json",
		bytes.NewReader(encodeIndented(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	svc.sem.Release()

	if code, body := doJSON(t, client, "POST", ts.URL+"/v1/schedule", req); code != http.StatusOK {
		t.Fatalf("post-shed schedule: HTTP %d: %s", code, body)
	}
	var m MetricsSnapshot
	if code, body := doJSON(t, client, "GET", ts.URL+"/metrics", nil); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	} else if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", m.Shed)
	}
	if m.Backends == nil {
		t.Fatal("metrics snapshot missing backends map")
	}
}

// TestChaosReadyzDrain asserts /readyz flips from ready to draining when
// shutdown begins, so load balancers stop routing before Close.
func TestChaosReadyzDrain(t *testing.T) {
	svc, ts := newTestService(t, Config{})
	client := ts.Client()
	if svc.Registry() == nil || svc.Jobs() == nil {
		t.Fatal("Registry()/Jobs() accessors returned nil")
	}
	code, body := doJSON(t, client, "GET", ts.URL+"/readyz", nil)
	if code != http.StatusOK || !bytes.Contains(body, []byte("ready")) {
		t.Fatalf("readyz before drain: HTTP %d: %s", code, body)
	}
	svc.BeginDrain()
	code, body = doJSON(t, client, "GET", ts.URL+"/readyz", nil)
	if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("readyz during drain: HTTP %d: %s", code, body)
	}
}

// TestChaosJobQueueWaitDeadline occupies the pool's only worker and
// asserts a queued job past the queue-wait deadline fails with
// ErrQueueWait instead of running stale, and that the queue counters
// (depth, timeouts) in JobsStats reflect it.
func TestChaosJobQueueWaitDeadline(t *testing.T) {
	j := NewJobs(1, 4, 16, 20*time.Millisecond)
	defer j.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	var once sync.Once
	blocker, err := j.Submit("sweep", func(ctx context.Context) (any, error) {
		once.Do(func() { close(running) })
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running

	stale, err := j.Submit("sweep", func(context.Context) (any, error) {
		return "should never run", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stale.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("queued job not expired by the queue-wait deadline")
	}
	if st := j.Snapshot(stale); st.State != JobFailed || st.Error != ErrQueueWait.Error() {
		t.Fatalf("expired job: state=%s err=%q, want %s / %q", st.State, st.Error, JobFailed, ErrQueueWait)
	}
	if st := j.Stats(); st.QueueTimeouts != 1 {
		t.Fatalf("queue timeouts = %d, want 1", st.QueueTimeouts)
	}

	close(block)
	<-blocker.Done()
}

// TestChaosSweepWaitDeadline asserts a synchronous sweep honors the
// client's timeoutMs: a 1ms deadline on a full-range sweep (1..1024
// widths, far slower than 1ms) returns a clean 504 error envelope and
// bumps the timeouts counter instead of running to completion.
func TestChaosSweepWaitDeadline(t *testing.T) {
	svc, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()
	code, body := doJSON(t, client, "POST", ts.URL+"/v1/sweep",
		map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 1, "widthHi": 1024, "timeoutMs": 1}, "wait": true})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out sweep: HTTP %d (want 504): %s", code, body)
	}
	if !bytes.Contains(body, []byte(`"error"`)) {
		t.Fatalf("504 body %q is not an error envelope", body)
	}
	if got := svc.metrics.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts counter = %d, want 1", got)
	}
}

// TestChaosNegativeTimeoutsRejected asserts negative client deadlines are
// rejected as validation errors, not silently clamped.
func TestChaosNegativeTimeoutsRejected(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()
	for _, params := range []ParamsJSON{
		{TAMWidth: 16, TimeoutMS: -1},
		{TAMWidth: 16, BackendTimeoutMS: -1},
	} {
		code, body := doJSON(t, client, "POST", ts.URL+"/v1/schedule",
			map[string]any{"soc": "demo8", "params": params})
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("params %+v: HTTP %d (want 422): %s", params, code, body)
		}
	}
	for _, req := range []map[string]any{
		{"soc": "demo8", "params": map[string]any{"widthLo": 1, "widthHi": 8, "timeoutMs": -1}, "wait": true},
	} {
		code, body := doJSON(t, client, "POST", ts.URL+"/v1/sweep", req)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("sweep %+v: HTTP %d (want 422): %s", req, code, body)
		}
	}
	code, body := doJSON(t, client, "POST", ts.URL+"/v1/effective",
		map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 1, "widthHi": 8, "timeoutMs": -1}})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("effective with timeoutMs=-1: HTTP %d (want 422): %s", code, body)
	}
}
