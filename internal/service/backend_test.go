package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/sched"
)

func backendTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := New(Config{Preload: []string{"d695"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestScheduleBackendSelection(t *testing.T) {
	ts := backendTestServer(t)
	for _, backend := range []string{"rectpack", "anneal", "portfolio"} {
		for _, path := range []string{"/v1/schedule", "/v1/schedule/best"} {
			resp, raw := postJSON(t, ts, path, map[string]any{
				"soc":    "d695",
				"params": ParamsJSON{TAMWidth: 32, Workers: 1, Backend: backend},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s backend=%s: HTTP %d: %s", path, backend, resp.StatusCode, raw)
			}
			if !bytes.Contains(raw, []byte(`"makespan"`)) {
				t.Fatalf("%s backend=%s: no makespan in response: %s", path, backend, raw)
			}
		}
	}
}

// TestScheduleBackendMatchesLibrary pins the service/library differential
// for the rectpack backend: the HTTP response bytes equal schedio.Save of
// the library Planner's answer.
func TestScheduleBackendMatchesLibrary(t *testing.T) {
	ts := backendTestServer(t)
	opts := repro.Options{TAMWidth: 32, Workers: 1, Backend: "rectpack"}
	planner, err := repro.NewPlanner(repro.BenchmarkSOC("d695"))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := planner.ScheduleBest(opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := repro.SaveSchedule(&want, sch); err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, ts, "/v1/schedule/best", map[string]any{
		"soc":    "d695",
		"params": ParamsJSON{TAMWidth: 32, Workers: 1, Backend: "rectpack"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Equal(want.Bytes(), raw) {
		t.Fatalf("service bytes differ from library bytes:\nlibrary: %s\nservice: %s", want.Bytes(), raw)
	}
}

func TestScheduleUnknownBackend422(t *testing.T) {
	ts := backendTestServer(t)
	for _, path := range []string{"/v1/schedule", "/v1/schedule/best", "/v1/gantt"} {
		resp, raw := postJSON(t, ts, path, map[string]any{
			"soc":    "d695",
			"params": ParamsJSON{TAMWidth: 32, Backend: "no-such-backend"},
		})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: HTTP %d, want 422: %s", path, resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), "unknown backend") {
			t.Errorf("%s: error body %s does not name the unknown backend", path, raw)
		}
	}
}

// TestScheduleAnnealSeedRoundTrip pins the seed knob on the wire: the
// request's seed is echoed back in the schedule document, and the same
// seed reproduces byte-identical responses (the anneal backend's
// determinism contract, end to end).
func TestScheduleAnnealSeedRoundTrip(t *testing.T) {
	ts := backendTestServer(t)
	body := map[string]any{
		"soc":    "d695",
		"params": ParamsJSON{TAMWidth: 32, Workers: 1, Backend: "anneal", Seed: 42},
	}
	resp, first := postJSON(t, ts, "/v1/schedule/best", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, first)
	}
	if !bytes.Contains(first, []byte(`"seed": 42`)) {
		t.Fatalf("response does not record the seed: %s", first)
	}
	resp, again := postJSON(t, ts, "/v1/schedule/best", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: HTTP %d: %s", resp.StatusCode, again)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("same seed, different schedule bytes")
	}
}

// TestSchedulePortfolioWithPreemptions: preemption budgets must not break
// the portfolio — rectpack declines them, preempt-rectpack and anneal
// serve them — and the decline is visible in /v1/backends.
func TestSchedulePortfolioWithPreemptions(t *testing.T) {
	sched.ResetPortfolioHealth()
	t.Cleanup(sched.ResetPortfolioHealth)
	ts := backendTestServer(t)
	resp, raw := postJSON(t, ts, "/v1/schedule", map[string]any{
		"soc": "d695",
		"params": map[string]any{
			"tamWidth": 32, "workers": 1, "backend": "portfolio",
			"maxPreemptions": map[string]int{"2": 1},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(`"makespan"`)) {
		t.Fatalf("no makespan in response: %s", raw)
	}
	resp, raw = doGet(t, ts, "/v1/backends")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/backends: HTTP %d: %s", resp.StatusCode, raw)
	}
	var br backendsResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	for _, b := range br.Backends {
		if b.Name == "rectpack" {
			if b.Race.Declined < 1 {
				t.Fatalf("rectpack declined = %d, want >= 1: %s", b.Race.Declined, raw)
			}
			return
		}
	}
	t.Fatalf("no rectpack row in /v1/backends: %s", raw)
}

func doGet(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestScheduleUnknownPreemptionCore422(t *testing.T) {
	ts := backendTestServer(t)
	resp, raw := postJSON(t, ts, "/v1/schedule", map[string]any{
		"soc":    "d695",
		"params": ParamsJSON{TAMWidth: 32, MaxPreemptions: map[int]int{9999: 2}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("HTTP %d, want 422: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "unknown core 9999") {
		t.Fatalf("error body %s does not name the unknown core", raw)
	}
}
