package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestCacheSingleflight runs many concurrent identical requests through
// the cache and asserts exactly one build executes: everyone else either
// reads the stored entry or piggybacks on the in-flight build, and every
// caller gets the same bytes. Run with -race in CI.
func TestCacheSingleflight(t *testing.T) {
	c := NewResultCache(1 << 20)
	var builds atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const callers = 16
	docs := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc, _, err := c.Do(context.Background(), "k", func() ([]byte, error) {
				builds.Add(1)
				close(started)
				<-release // hold the build open so every caller piles up on it
				return []byte("document"), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			docs[i] = doc
		}(i)
	}
	<-started
	// Give the other callers time to reach the in-flight build before it
	// completes, so the singleflight-shared path is actually exercised.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want exactly 1 across %d concurrent callers", got, callers)
	}
	for i, doc := range docs {
		if !bytes.Equal(doc, []byte("document")) {
			t.Fatalf("caller %d got %q", i, doc)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, callers-1)
	}
	if st.SingleflightShared < 1 {
		t.Fatalf("stats = %+v, want at least one singleflight-shared caller", st)
	}
}

// TestCacheLRUEviction churns a tiny cache with distinct keys and asserts
// the byte bound holds, evictions hit the cold end first, and re-fetching
// an evicted key rebuilds.
func TestCacheLRUEviction(t *testing.T) {
	// Room for exactly 4 of the 10-byte documents below.
	c := NewResultCache(40)
	doc := func(i int) []byte { return fmt.Appendf(nil, "doc-%06d", i) }
	get := func(i int) ([]byte, bool) {
		t.Helper()
		got, hit, err := c.Do(context.Background(), fmt.Sprintf("k%d", i), func() ([]byte, error) {
			return doc(i), nil
		})
		if err != nil || !bytes.Equal(got, doc(i)) {
			t.Fatalf("key %d: doc=%q err=%v", i, got, err)
		}
		return got, hit
	}

	for i := 0; i < 10; i++ {
		get(i)
	}
	st := c.Stats()
	if st.Bytes > 40 || st.Entries != 4 {
		t.Fatalf("after churn: %+v, want <= 40 bytes in 4 entries", st)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6 (10 inserts into 4 slots)", st.Evictions)
	}

	// 6..9 survived; touching 6 makes 7 the coldest, so inserting one more
	// evicts 7, not 6.
	if _, hit := get(6); !hit {
		t.Fatal("key 6 should still be resident")
	}
	get(10)
	if _, hit := get(6); !hit {
		t.Fatal("recently-touched key 6 was evicted before colder keys")
	}
	if _, hit := get(7); hit {
		t.Fatal("coldest key 7 survived an over-capacity insert")
	}

	// A document larger than the whole cache is served but never stored.
	big := bytes.Repeat([]byte("x"), 64)
	got, _, err := c.Do(context.Background(), "huge", func() ([]byte, error) { return big, nil })
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("oversized doc: %v", err)
	}
	if _, hit, _ := c.Do(context.Background(), "huge", func() ([]byte, error) { return big, nil }); hit {
		t.Fatal("oversized document was stored despite exceeding capacity")
	}
}

// TestCacheFailureNotCached asserts a failed build is never stored: the
// caller gets the error, waiters on the failed flight retry rather than
// inheriting the failure, and the next build repopulates normally.
func TestCacheFailureNotCached(t *testing.T) {
	c := NewResultCache(1 << 20)
	boom := errors.New("boom")
	var builds atomic.Int64
	if _, _, err := c.Do(context.Background(), "k", func() ([]byte, error) {
		builds.Add(1)
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed build was cached: %+v", st)
	}
	doc, hit, err := c.Do(context.Background(), "k", func() ([]byte, error) {
		builds.Add(1)
		return []byte("ok"), nil
	})
	if err != nil || hit || !bytes.Equal(doc, []byte("ok")) {
		t.Fatalf("rebuild: doc=%q hit=%v err=%v", doc, hit, err)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (failure + rebuild)", builds.Load())
	}
}

// TestCacheWaitersSurviveFailedLeader pins the retry semantics under
// concurrency: when the singleflight leader's build fails, the waiters do
// not inherit the failure — they loop, one becomes the new leader, and
// everyone ends up with the good document. Run with -race in CI.
func TestCacheWaitersSurviveFailedLeader(t *testing.T) {
	c := NewResultCache(1 << 20)
	var builds atomic.Int64
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-leaderGo
			builds.Add(1)
			return nil, errors.New("leader failed")
		})
	}()
	<-leaderIn // the flight is registered; everyone below joins it

	const waiters = 8
	werrs := make([]error, waiters)
	wdocs := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wdocs[i], _, werrs[i] = c.Do(context.Background(), "k", func() ([]byte, error) {
				builds.Add(1)
				return []byte("good"), nil
			})
		}(i)
	}
	close(leaderGo)
	wg.Wait()

	if leaderErr == nil {
		t.Fatal("leader did not observe its own build failure")
	}
	for i := range werrs {
		if werrs[i] != nil || !bytes.Equal(wdocs[i], []byte("good")) {
			t.Fatalf("waiter %d: doc=%q err=%v, want the rebuilt document", i, wdocs[i], werrs[i])
		}
	}
	if got := builds.Load(); got != 2 {
		t.Fatalf("builds = %d, want 2 (failed leader + one retry leader)", got)
	}
}

// TestChaosScheduleFailureNotCached drives the full HTTP path: a
// chaos-injected scheduling failure answers 5xx/422 and must not poison
// the cache — the retry reschedules for real, succeeds, and only then do
// repeats become hits.
func TestChaosScheduleFailureNotCached(t *testing.T) {
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: "service/schedule", Mode: chaos.ModeError, Count: 1},
	}})
	defer plan.Disable()

	svc, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()
	req := map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}}

	code, body := doJSON(t, client, "POST", ts.URL+"/v1/schedule", req)
	if code == http.StatusOK {
		t.Fatalf("sabotaged schedule unexpectedly succeeded: %s", body)
	}
	if st := svc.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("failed schedule was cached: %+v", st)
	}

	code, first := doJSON(t, client, "POST", ts.URL+"/v1/schedule", req)
	if code != http.StatusOK {
		t.Fatalf("retry after injected failure: HTTP %d: %s", code, first)
	}
	code, second := doJSON(t, client, "POST", ts.URL+"/v1/schedule", req)
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Fatalf("warm repeat: HTTP %d, byte-identical=%v", code, bytes.Equal(first, second))
	}
	if st := svc.Cache().Stats(); st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("cache stats after recovery = %+v, want hits and misses", st)
	}
}
