package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/sched"
)

// DefaultCacheBytes bounds the result cache when Config.CacheBytes leaves
// it unset. Schedule documents for the paper's benchmark SOCs run a few
// KiB to a few hundred KiB, so 64 MiB holds hundreds to tens of thousands
// of distinct (SOC, params) points — plenty for the hot set of a sweep-
// heavy workload without letting the cache dominate the heap.
const DefaultCacheBytes int64 = 64 << 20

// CacheStats is the result cache's /metrics block.
type CacheStats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacityBytes"`
	// Hits counts requests answered from a stored document or a shared
	// in-flight build (see SingleflightShared for the latter alone).
	Hits int64 `json:"hits"`
	// Misses counts builds actually executed.
	Misses int64 `json:"misses"`
	// Evictions counts documents dropped by the LRU to stay under capacity.
	Evictions int64 `json:"evictions"`
	// SingleflightShared counts callers that piggybacked on a concurrent
	// identical build instead of computing or reading a stored entry.
	SingleflightShared int64 `json:"singleflightShared"`
}

// ResultCache is the content-addressed result cache: serialized response
// documents keyed by (fingerprint, canonical params, mode). Storing the
// exact bytes a cache miss served makes hits byte-identical by
// construction. Concurrent identical requests are deduplicated
// singleflight-style: one caller builds, the rest wait and share. Failed
// builds are never cached and never poison waiters — a waiter whose
// leader failed retries from the top (and becomes the new leader if the
// slot is still empty), so a chaos-injected or timed-out build costs only
// the callers it directly failed. Eviction is LRU by total stored bytes.
type ResultCache struct {
	mu       sync.Mutex
	capacity int64
	entries  map[string]*list.Element // guarded by mu; of *cacheEntry
	lru      *list.List               // guarded by mu; front = most recent
	bytes    int64                    // guarded by mu
	flights  map[string]*cacheFlight  // guarded by mu

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	shared    atomic.Int64
}

type cacheEntry struct {
	key string
	doc []byte
}

// cacheFlight is one in-progress build; doc/err are written exactly once
// before done is closed and read only after it.
type cacheFlight struct {
	done chan struct{}
	doc  []byte
	err  error
}

// NewResultCache builds a cache bounded to capacity bytes of stored
// documents (<= 0: DefaultCacheBytes).
func NewResultCache(capacity int64) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheBytes
	}
	return &ResultCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		flights:  make(map[string]*cacheFlight),
	}
}

// Do returns the document for key, building it at most once across
// concurrent identical calls. hit reports whether the answer came from
// the cache or a shared in-flight build (false: this call ran build).
// A build error is returned to the callers that depended on that build
// and nothing is stored.
func (c *ResultCache) Do(ctx context.Context, key string, build func() ([]byte, error)) (doc []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if elem, ok := c.entries[key]; ok {
			c.lru.MoveToFront(elem)
			doc := elem.Value.(*cacheEntry).doc
			c.mu.Unlock()
			c.hits.Add(1)
			return doc, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				c.hits.Add(1)
				c.shared.Add(1)
				return f.doc, true, nil
			}
			// The leader failed. Its failure was not cached, so retry: the
			// next lap either joins a newer flight or leads one. A caller
			// whose own deadline is the problem exits via ctx above.
			continue
		}
		f := &cacheFlight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		f.doc, f.err = build()
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.insertLocked(key, f.doc)
		}
		c.mu.Unlock()
		close(f.done)
		c.misses.Add(1)
		return f.doc, false, f.err
	}
}

// insertLocked stores doc under key and evicts from the cold end until
// the cache fits capacity again. Documents larger than the whole cache
// are served but not stored. Callers hold c.mu.
func (c *ResultCache) insertLocked(key string, doc []byte) {
	if int64(len(doc)) > c.capacity {
		return
	}
	if elem, ok := c.entries[key]; ok { // lost a race with an identical build
		c.lru.MoveToFront(elem)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, doc: doc})
	c.bytes += int64(len(doc))
	for c.bytes > c.capacity {
		elem := c.lru.Back()
		if elem == nil {
			break
		}
		e := c.lru.Remove(elem).(*cacheEntry)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.doc))
		c.evictions.Add(1)
	}
}

// Stats snapshots the cache counters for /metrics.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	bytes := c.bytes
	capacity := c.capacity
	c.mu.Unlock()
	return CacheStats{
		Entries:            entries,
		Bytes:              bytes,
		CapacityBytes:      capacity,
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Evictions:          c.evictions.Load(),
		SingleflightShared: c.shared.Load(),
	}
}

// scheduleCacheKey is the content address of a schedule document:
// fingerprint + effective mode + canonical params. Non-classic backends
// canonicalize Best to true (both routes dispatch to the backend's best
// mode), and CanonicalKey folds defaults and drops Workers, so every
// spelling of the same computation shares one entry.
func scheduleCacheKey(fp string, opts repro.Options, best bool) string {
	best = best || !sched.IsDefaultBackend(opts.Backend)
	return fmt.Sprintf("sched|%s|best=%t|%s", fp, best, opts.CanonicalKey())
}
