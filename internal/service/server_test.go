package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/bench"
)

// newTestService spins up the full stack — registry, jobs, handlers,
// middleware — behind an httptest server.
func newTestService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// doJSON posts a JSON body and returns status + raw response bytes.
func doJSON(t *testing.T, client *http.Client, method, url string, body any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// encodeIndented reproduces writeJSON's encoding for byte comparison.
func encodeIndented(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// directAnswers computes the library-side expected bodies for one SOC.
type directAnswers struct {
	schedule []byte // schedio bytes of Planner.Schedule
	best     []byte // schedio bytes of Planner.ScheduleBest
	sweep    []byte // indented JSON of Planner.SweepWidths
	eff      []byte // indented JSON of PickEffectiveWidth
	gantt    []byte // SVG of Planner.Schedule
}

func libraryAnswers(t *testing.T, name string, opts repro.Options, lo, hi int, gamma float64) directAnswers {
	t.Helper()
	s, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.NewPlanner(s)
	if err != nil {
		t.Fatal(err)
	}
	var a directAnswers
	sch, err := p.Schedule(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.SaveSchedule(&buf, sch); err != nil {
		t.Fatal(err)
	}
	a.schedule = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := repro.GanttSVG(&buf, sch); err != nil {
		t.Fatal(err)
	}
	a.gantt = append([]byte(nil), buf.Bytes()...)
	best, err := p.ScheduleBest(opts)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := repro.SaveSchedule(&buf, best); err != nil {
		t.Fatal(err)
	}
	a.best = append([]byte(nil), buf.Bytes()...)
	sw, err := p.SweepWidths(lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.sweep = encodeIndented(t, sw)
	eff, err := repro.PickEffectiveWidth(sw, gamma)
	if err != nil {
		t.Fatal(err)
	}
	a.eff = encodeIndented(t, eff)
	return a
}

// TestServiceDifferential is the acceptance test: concurrent schedule,
// sweep, effective-width, and Gantt requests against the service return
// bodies byte-identical to the library's direct Planner answers, for a mix
// of SOC fingerprints at once. Run with -race in CI.
func TestServiceDifferential(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"d695", "demo8"}, JobWorkers: 2})
	client := ts.Client()

	type socCase struct {
		name   string
		opts   repro.Options
		lo, hi int
		gamma  float64
		want   directAnswers
	}
	cases := []socCase{
		{name: "d695", opts: repro.Options{TAMWidth: 32, Percent: 10, Delta: 1}, lo: 24, hi: 36, gamma: 0.5},
		{name: "demo8", opts: repro.Options{TAMWidth: 24, Percent: 5}, lo: 8, hi: 24, gamma: 0.3},
	}
	for i := range cases {
		c := &cases[i]
		c.want = libraryAnswers(t, c.name, c.opts, c.lo, c.hi, c.gamma)
	}

	check := func(t *testing.T, c *socCase) {
		params := ParamsJSON{TAMWidth: c.opts.TAMWidth, Percent: c.opts.Percent, Delta: c.opts.Delta}
		code, got := doJSON(t, client, "POST", ts.URL+"/v1/schedule",
			map[string]any{"soc": c.name, "params": params})
		if code != http.StatusOK {
			t.Fatalf("%s schedule: HTTP %d: %s", c.name, code, got)
		}
		if !bytes.Equal(got, c.want.schedule) {
			t.Fatalf("%s: /v1/schedule differs from Planner.Schedule bytes", c.name)
		}
		code, got = doJSON(t, client, "POST", ts.URL+"/v1/schedule/best",
			map[string]any{"soc": c.name, "params": params})
		if code != http.StatusOK {
			t.Fatalf("%s best: HTTP %d: %s", c.name, code, got)
		}
		if !bytes.Equal(got, c.want.best) {
			t.Fatalf("%s: /v1/schedule/best differs from Planner.ScheduleBest bytes", c.name)
		}
		code, got = doJSON(t, client, "POST", ts.URL+"/v1/sweep",
			map[string]any{"soc": c.name, "params": map[string]any{"widthLo": c.lo, "widthHi": c.hi}, "wait": true})
		if code != http.StatusOK {
			t.Fatalf("%s sweep: HTTP %d: %s", c.name, code, got)
		}
		if !bytes.Equal(got, c.want.sweep) {
			t.Fatalf("%s: /v1/sweep differs from Planner.SweepWidths bytes", c.name)
		}
		code, got = doJSON(t, client, "POST", ts.URL+"/v1/effective",
			map[string]any{"soc": c.name, "params": map[string]any{"widthLo": c.lo, "widthHi": c.hi, "gamma": c.gamma}})
		if code != http.StatusOK {
			t.Fatalf("%s effective: HTTP %d: %s", c.name, code, got)
		}
		if !bytes.Equal(got, c.want.eff) {
			t.Fatalf("%s: /v1/effective differs from PickEffectiveWidth bytes", c.name)
		}
		code, got = doJSON(t, client, "POST", ts.URL+"/v1/gantt",
			map[string]any{"soc": c.name, "params": params})
		if code != http.StatusOK {
			t.Fatalf("%s gantt: HTTP %d: %s", c.name, code, got)
		}
		if !bytes.Equal(got, c.want.gantt) {
			t.Fatalf("%s: /v1/gantt differs from GanttSVG bytes", c.name)
		}
	}

	// One sequential pass for clear failure messages...
	for i := range cases {
		check(t, &cases[i])
	}
	// ...then the concurrent mixed-fingerprint storm.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			check(t, &cases[g%len(cases)])
		}(g)
	}
	wg.Wait()
}

// TestServiceAsyncSweepJob asserts the async path: a submitted sweep job
// completes and its /result document is byte-identical to the synchronous
// /v1/sweep answer.
func TestServiceAsyncSweepJob(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}, JobWorkers: 2})
	client := ts.Client()

	code, sync := doJSON(t, client, "POST", ts.URL+"/v1/sweep",
		map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 8, "widthHi": 20}, "wait": true})
	if code != http.StatusOK {
		t.Fatalf("sync sweep: HTTP %d: %s", code, sync)
	}

	code, body := doJSON(t, client, "POST", ts.URL+"/v1/sweep",
		map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 8, "widthHi": 20}})
	if code != http.StatusAccepted {
		t.Fatalf("async sweep: HTTP %d: %s", code, body)
	}
	var sub struct {
		Job       JobStatus `json:"job"`
		StatusURL string    `json:"statusUrl"`
		ResultURL string    `json:"resultUrl"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, client, ts.URL+sub.StatusURL, 10*time.Second)
	if st.State != JobDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	code, result := doJSON(t, client, "GET", ts.URL+sub.ResultURL, nil)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, result)
	}
	if !bytes.Equal(result, sync) {
		t.Fatal("async job result differs from synchronous sweep bytes")
	}
}

// pollJob polls a job status URL until the job is terminal.
func pollJob(t *testing.T, client *http.Client, url string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body := doJSON(t, client, "GET", url, nil)
		if code != http.StatusOK {
			t.Fatalf("poll %s: HTTP %d: %s", url, code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after %v", st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceCancelSweepJob is the acceptance cancellation test: a
// long-running sweep job is cancelled mid-flight, reaches the cancelled
// state promptly (which requires its sweep workers to have stopped and
// unwound), and its result endpoint reports the cancellation.
func TestServiceCancelSweepJob(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"p93791like"}, JobWorkers: 2})
	client := ts.Client()

	// The full 4..80 sweep of the largest benchmark SOC takes on the order
	// of seconds — far longer than the cancellation window asserted below.
	code, body := doJSON(t, client, "POST", ts.URL+"/v1/sweep",
		map[string]any{"soc": "p93791like", "params": map[string]any{"widthLo": 4, "widthHi": 80, "workers": 2}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	var sub struct {
		Job       JobStatus `json:"job"`
		StatusURL string    `json:"statusUrl"`
		ResultURL string    `json:"resultUrl"`
		CancelURL string    `json:"cancelUrl"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	// Wait until the job is actually running (so the cancel exercises the
	// worker-stopping path, not the queued-job shortcut).
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := doJSON(t, client, "GET", ts.URL+sub.StatusURL, nil)
		if code != http.StatusOK {
			t.Fatalf("poll: HTTP %d: %s", code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job reached %s before it could be cancelled", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // let the sweep get into its stride

	cancelled := time.Now()
	code, body = doJSON(t, client, "POST", ts.URL+sub.CancelURL, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d: %s", code, body)
	}
	st := pollJob(t, client, ts.URL+sub.StatusURL, 10*time.Second)
	if st.State != JobCancelled {
		t.Fatalf("state after cancel = %s (%s), want cancelled", st.State, st.Error)
	}
	if unwound := time.Since(cancelled); unwound > 5*time.Second {
		t.Fatalf("sweep workers took %v to stop after cancellation", unwound)
	}
	code, body = doJSON(t, client, "GET", ts.URL+sub.ResultURL, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("result of cancelled job: HTTP %d: %s", code, body)
	}
	if !strings.Contains(string(body), "cancel") {
		t.Fatalf("result error does not mention cancellation: %s", body)
	}
}

// TestServiceUploadSOC uploads the same SOC as .soc text and as JSON and
// asserts both land on the canonical fingerprint, address schedules, and
// match repro.Fingerprint.
func TestServiceUploadSOC(t *testing.T) {
	_, ts := newTestService(t, Config{})
	client := ts.Client()

	s := bench.Demo().Clone()
	s.Name = "uploaded"
	wantFP := repro.Fingerprint(s)

	var socText bytes.Buffer
	if err := repro.WriteSOC(&socText, s); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/v1/socs", "text/plain", bytes.NewReader(socText.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload .soc: HTTP %d: %s", resp.StatusCode, body)
	}
	var up struct {
		Fingerprint string `json:"fingerprint"`
		Name        string `json:"name"`
		Cores       int    `json:"cores"`
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Fingerprint != wantFP || up.Name != "uploaded" || up.Cores != len(s.Cores) {
		t.Fatalf("upload = %+v, want fingerprint %s", up, wantFP)
	}

	// The JSON wire form of the same SOC must deduplicate onto the same
	// fingerprint.
	code, body2 := doJSON(t, client, "POST", ts.URL+"/v1/socs", EncodeSOC(s))
	if code != http.StatusCreated {
		t.Fatalf("upload JSON: HTTP %d: %s", code, body2)
	}
	var up2 struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body2, &up2); err != nil {
		t.Fatal(err)
	}
	if up2.Fingerprint != wantFP {
		t.Fatalf("JSON upload fingerprint %s != .soc upload %s", up2.Fingerprint, wantFP)
	}

	// Addressing by fingerprint works end to end.
	code, sched := doJSON(t, client, "POST", ts.URL+"/v1/schedule",
		map[string]any{"soc": wantFP, "params": ParamsJSON{TAMWidth: 16}})
	if code != http.StatusOK {
		t.Fatalf("schedule by fingerprint: HTTP %d: %s", code, sched)
	}

	// And the stored SOC round-trips through GET /v1/socs/{key}.
	code, got := doJSON(t, client, "GET", ts.URL+"/v1/socs/"+wantFP, nil)
	if code != http.StatusOK {
		t.Fatalf("get soc: HTTP %d: %s", code, got)
	}
	var stored struct {
		Fingerprint string  `json:"fingerprint"`
		SOC         SOCJSON `json:"soc"`
	}
	if err := json.Unmarshal(got, &stored); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSOC(&stored.SOC)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatal("stored SOC does not round-trip through the JSON wire form")
	}

	// A JSON upload whose name smuggles grammar lines (a fingerprint
	// forgery attempt) is rejected, not registered.
	forged := bench.Demo().Clone()
	forged.Name = "x\nPowerMax 100"
	code, body3 := doJSON(t, client, "POST", ts.URL+"/v1/socs", EncodeSOC(forged))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("forged-name upload: HTTP %d (want 422): %s", code, body3)
	}
}

// TestSOCJSONRoundTrip asserts Encode/Decode are lossless over every
// built-in benchmark SOC (scan and BIST cores, hierarchy, constraints).
func TestSOCJSONRoundTrip(t *testing.T) {
	socs := append(bench.All(), bench.Demo())
	for _, s := range socs {
		got, err := DecodeSOC(EncodeSOC(s))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("%s: JSON wire form is not lossless", s.Name)
		}
	}
}

// TestServiceErrors covers the error mapping: unknown SOCs, malformed
// bodies, invalid parameters, unknown jobs.
func TestServiceErrors(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown soc", "POST", "/v1/schedule", map[string]any{"soc": "nope", "params": ParamsJSON{TAMWidth: 16}}, http.StatusNotFound},
		{"zero width", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 0}}, http.StatusUnprocessableEntity},
		{"unknown field", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "nope": 1}, http.StatusBadRequest},
		{"best field on /v1/schedule", "POST", "/v1/schedule", map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}, "best": true}, http.StatusBadRequest},
		{"unknown job", "GET", "/v1/jobs/job-999999", nil, http.StatusNotFound},
		{"cancel unknown job", "POST", "/v1/jobs/job-999999/cancel", nil, http.StatusNotFound},
		{"bad gamma", "POST", "/v1/effective", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 8, "widthHi": 12, "gamma": 1.5}}, http.StatusUnprocessableEntity},
		{"bad sweep range", "POST", "/v1/sweep", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 9, "widthHi": 3}, "wait": true}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		code, body := doJSON(t, client, tc.method, ts.URL+tc.path, tc.body)
		if code != tc.want {
			t.Fatalf("%s: HTTP %d (want %d): %s", tc.name, code, tc.want, body)
		}
		var envelope struct {
			Error ErrorBody `json:"error"`
		}
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code == "" || envelope.Error.Message == "" {
			t.Fatalf("%s: error body %q is not a {code,message} error envelope", tc.name, body)
		}
	}

	// Malformed raw body (not valid JSON at all).
	resp, err := client.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestServiceHealthAndMetrics smoke-tests the operational endpoints.
func TestServiceHealthAndMetrics(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}})
	client := ts.Client()
	code, body := doJSON(t, client, "GET", ts.URL+"/healthz", nil)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: HTTP %d: %s", code, body)
	}
	if code, _ = doJSON(t, client, "POST", ts.URL+"/v1/schedule",
		map[string]any{"soc": "demo8", "params": ParamsJSON{TAMWidth: 16}}); code != http.StatusOK {
		t.Fatalf("schedule: HTTP %d", code)
	}
	code, body = doJSON(t, client, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests < 2 || m.Schedules != 1 || m.Registry.SOCs != 1 || m.Registry.Builds != 1 {
		t.Fatalf("metrics snapshot %+v inconsistent with traffic", m)
	}
	if _, body = doJSON(t, client, "GET", ts.URL+"/", nil); !bytes.Contains(body, []byte("socserved")) {
		t.Fatalf("index: %s", body)
	}
}

// TestServiceSweepRangeCap asserts that absurd client-chosen width ranges
// are rejected up front with a 422 instead of allocating per-width sweep
// state (an unbounded widthHi could OOM the process before any per-width
// validation ran).
func TestServiceSweepRangeCap(t *testing.T) {
	_, ts := newTestService(t, Config{Preload: []string{"demo8"}, JobWorkers: 1})
	client := ts.Client()

	for _, tc := range []struct {
		path string
		body map[string]any
	}{
		{"/v1/sweep", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 1, "widthHi": 2_000_000_000}, "wait": true}},
		{"/v1/sweep", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 1, "widthHi": MaxRequestWidth + 1}}},
		{"/v1/sweep", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": -5, "widthHi": 8}, "wait": true}},
		{"/v1/effective", map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 1, "widthHi": 2_000_000_000}}},
		{"/v1/schedule", map[string]any{"soc": "demo8", "params": map[string]any{"tamWidth": 2_000_000_000}}},
		{"/v1/schedule/best", map[string]any{"soc": "demo8", "params": map[string]any{"tamWidth": 16, "maxWidth": MaxRequestWidth + 1}}},
		{"/v1/gantt", map[string]any{"soc": "demo8", "params": map[string]any{"tamWidth": -3}}},
	} {
		code, body := doJSON(t, client, "POST", ts.URL+tc.path, tc.body)
		if code != http.StatusUnprocessableEntity {
			t.Errorf("%s %v: HTTP %d (want 422): %s", tc.path, tc.body, code, body)
		}
	}

	// In-range requests still work, including the zero-value defaults.
	code, body := doJSON(t, client, "POST", ts.URL+"/v1/sweep",
		map[string]any{"soc": "demo8", "params": map[string]any{"widthLo": 8, "widthHi": 12}, "wait": true})
	if code != http.StatusOK {
		t.Errorf("in-range sweep: HTTP %d: %s", code, body)
	}
}
