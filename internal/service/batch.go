package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/obs"
	"repro/internal/sched"
)

// MaxBatchItems bounds one POST /v1/batch request. A batch occupies one
// admission slot however many items it carries, so the cap keeps a single
// request from monopolizing the scheduler for minutes; split larger
// workloads across batches.
const MaxBatchItems = 256

// MaxBatchWorkers caps per-batch fan-out regardless of the request's
// workers field.
const MaxBatchWorkers = 32

// BatchItemJSON is one scheduling request inside POST /v1/batch: the same
// (soc, params) pair as /v1/schedule, plus the mode bit. Best selects the
// grid-swept best schedule — item-level, because one batch may mix modes.
type BatchItemJSON struct {
	SOC    string     `json:"soc"`
	Params ParamsJSON `json:"params"`
	Best   bool       `json:"best,omitempty"`
}

// BatchRequest is the POST /v1/batch body. Workers bounds the batch's
// worker pool (0 = GOMAXPROCS, capped at MaxBatchWorkers and the item
// count); results are identical for any worker count.
type BatchRequest struct {
	Items   []BatchItemJSON `json:"items"`
	Workers int             `json:"workers,omitempty"`
}

// BatchItemResult is one item's outcome. Exactly one of Result and Error
// is set: Result carries the same document the per-request endpoint
// serves for this item (byte-identical modulo envelope indentation),
// Error the same {code,message} body a failed per-request call carries.
type BatchItemResult struct {
	Index  int  `json:"index"`
	Status int  `json:"status"`
	Cached bool `json:"cached,omitempty"`
	// Result is the schedule document (present on success).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the item's error body (present on failure).
	Error *ErrorBody `json:"error,omitempty"`
}

// BatchStats summarizes a batch response.
type BatchStats struct {
	Items     int `json:"items"`
	OK        int `json:"ok"`
	Failed    int `json:"failed"`
	CacheHits int `json:"cacheHits"`
	Workers   int `json:"workers"`
}

// BatchResponse is the POST /v1/batch answer: one result per item, in
// item order, plus the summary. The batch itself always answers 200 —
// per-item failures live in their own slots, so one bad item never fails
// the rest.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
	Stats BatchStats        `json:"stats"`
}

// batchWorkers resolves a batch's fan-out: the request's workers field
// through the library's convention (0 = GOMAXPROCS), capped at
// MaxBatchWorkers and the item count.
func batchWorkers(requested, items int) int {
	n := sched.ResolveWorkers(requested)
	if n > MaxBatchWorkers {
		n = MaxBatchWorkers
	}
	if n > items {
		n = items
	}
	return n
}

// handleBatch answers POST /v1/batch: every item runs through the result
// cache on a bounded worker pool under the batch's root span, one child
// span per item. The whole batch holds one admission slot and runs under
// one server-capped deadline; each item may shorten its own with
// params.timeoutMs.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("batch has no items"))
		return
	}
	if len(req.Items) > MaxBatchItems {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("batch has %d items, max %d", len(req.Items), MaxBatchItems))
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("workers=%d must be >= 0", req.Workers))
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	defer obs.TimeStage("service/batch")()

	workers := batchWorkers(req.Workers, len(req.Items))
	out := make([]BatchItemResult, len(req.Items))
	idx := make(chan int)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = s.runBatchItem(ctx, i, req.Items[i])
			}
		}()
	}
	for i := range req.Items {
		idx <- i
	}
	close(idx)
	wg.Wait()

	st := BatchStats{Items: len(req.Items), Workers: workers}
	for i := range out {
		if out[i].Error == nil {
			st.OK++
			if out[i].Cached {
				st.CacheHits++
			}
		} else {
			st.Failed++
		}
	}
	s.metrics.batches.Add(1)
	writeJSON(w, http.StatusOK, BatchResponse{Items: out, Stats: st})
}

// runBatchItem executes one batch item through the same validation,
// planner resolution, and cached scheduling path as a per-request call,
// under its own child span and per-item deadline. Failures land in the
// item's own slot with the same status and error body a per-request call
// would answer.
func (s *Server) runBatchItem(ctx context.Context, i int, item BatchItemJSON) BatchItemResult {
	ctx, span := obs.Start(ctx, "batch/item")
	defer span.End()
	span.SetAttr("index", i)
	span.SetAttr("soc", item.SOC)
	defer obs.TimeStage("service/batch/item")()

	fail := func(e *apiErr) BatchItemResult {
		span.SetAttr("error", e.Error())
		body := e.body()
		return BatchItemResult{Index: i, Status: e.status, Error: &body}
	}
	if e := item.Params.validate(); e != nil {
		return fail(e)
	}
	fp, ok := s.reg.Resolve(item.SOC)
	if !ok {
		return fail(apiError(http.StatusNotFound, fmt.Errorf("%w %q", ErrUnknownSOC, item.SOC)))
	}
	planner, err := s.reg.Planner(ctx, fp)
	if err != nil {
		return fail(apiError(http.StatusInternalServerError, err))
	}
	if e := preemptionsErr(planner, item.Params); e != nil {
		return fail(e)
	}
	ictx, cancel := s.deadlineCtx(ctx, item.Params.TimeoutMS)
	defer cancel()
	doc, hit, err := s.scheduleDoc(ictx, planner, fp, item.Params, item.Best)
	if err != nil {
		return fail(apiError(s.scheduleStatus(err), err))
	}
	s.metrics.schedules.Add(1)
	span.SetAttr("cached", hit)
	return BatchItemResult{Index: i, Status: http.StatusOK, Cached: hit, Result: json.RawMessage(doc)}
}
