package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro"
	"repro/internal/sched"
)

// This file is the v1 wire contract: one shared params struct decoded and
// validated the same way on every route, one request envelope, and one
// machine-readable error envelope. Handlers contain no ad-hoc decoding.

// ParamsJSON is the one wire form of scheduling parameters, shared by
// every /v1 scheduling route (schedule, schedule/best, sweep, effective,
// gantt, batch items). Each route reads the fields it uses — tamWidth for
// schedules, widthLo/widthHi/gamma for sweeps and effective-width picks —
// and ignores the rest; validation is identical everywhere. Zero-valued
// fields take the library defaults, exactly as in the Go API. Backend
// selects the scheduling backend ("classic", "rectpack",
// "preempt-rectpack", "anneal", "portfolio"; empty = classic); unknown
// names are rejected with 422 (code "unknown_backend") before any
// scheduling work starts, and a backend that declines the parameters
// (rectpack under preemption budgets, say) answers 422 with code
// "backend_declined".
type ParamsJSON struct {
	TAMWidth        int         `json:"tamWidth,omitempty"`
	MaxWidth        int         `json:"maxWidth,omitempty"`
	Percent         int         `json:"percent,omitempty"`
	Delta           int         `json:"delta,omitempty"`
	PowerMax        int         `json:"powerMax,omitempty"`
	InsertSlack     int         `json:"insertSlack,omitempty"`
	MaxPreemptions  map[int]int `json:"maxPreemptions,omitempty"`
	DisableWidening bool        `json:"disableWidening,omitempty"`
	IgnoreHierarchy bool        `json:"ignoreHierarchy,omitempty"`
	Workers         int         `json:"workers,omitempty"`
	Backend         string      `json:"backend,omitempty"`
	// WidthLo, WidthHi bound a width sweep (sweep, effective). Zero values
	// take the library defaults.
	WidthLo int `json:"widthLo,omitempty"`
	WidthHi int `json:"widthHi,omitempty"`
	// Gamma is the time/volume trade-off weight γ in [0,1] (effective);
	// omitted means 0.5 (equal weight).
	Gamma *float64 `json:"gamma,omitempty"`
	// TimeoutMS is the request deadline in milliseconds, capped by the
	// server's MaxTimeout; a request past its deadline answers 504
	// (code "deadline"). Zero means the server cap alone applies. In a
	// batch item it bounds that item, not the whole batch.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// BackendTimeoutMS bounds each racer in a portfolio race (see
	// Options.BackendTimeout); zero means no per-racer deadline.
	BackendTimeoutMS int64 `json:"backendTimeoutMs,omitempty"`
	// Seed seeds randomized backends (anneal): the same seed always
	// produces byte-identical schedules. Zero means the library default;
	// deterministic backends ignore it.
	Seed int64 `json:"seed,omitempty"`
}

// Options converts the wire params to library options. TimeoutMS is not an
// option: it shapes the request context, not the scheduling work. The
// sweep-only fields (widthLo, widthHi, gamma) are likewise read by the
// sweep handlers, not the scheduler.
func (p ParamsJSON) Options() repro.Options {
	return repro.Options{
		TAMWidth:        p.TAMWidth,
		MaxWidth:        p.MaxWidth,
		Percent:         p.Percent,
		Delta:           p.Delta,
		PowerMax:        p.PowerMax,
		InsertSlack:     p.InsertSlack,
		MaxPreemptions:  p.MaxPreemptions,
		DisableWidening: p.DisableWidening,
		IgnoreHierarchy: p.IgnoreHierarchy,
		Workers:         p.Workers,
		Backend:         p.Backend,
		BackendTimeout:  time.Duration(p.BackendTimeoutMS) * time.Millisecond,
		Seed:            p.Seed,
	}
}

// MaxRequestWidth caps every client-controlled TAM width: sweep ranges,
// params.tamWidth, and params.maxWidth. The paper's studies stop at W=80
// and per-core widths at 64; anything past this is a typo or an attack —
// the scheduler allocates per-wire bin state and the sweep per-width
// state up front, so an unbounded width would let one request OOM or
// CPU-starve the whole server.
const MaxRequestWidth = 1024

// validate applies the route-independent parameter checks: width bounds
// (before any per-wire allocation happens), non-negative deadlines, and a
// registered backend name. It returns nil or the apiErr to serve.
func (p ParamsJSON) validate() *apiErr {
	if p.TAMWidth < 0 || p.TAMWidth > MaxRequestWidth || p.MaxWidth < 0 || p.MaxWidth > MaxRequestWidth {
		return apiError(http.StatusUnprocessableEntity,
			fmt.Errorf("params widths tamWidth=%d maxWidth=%d outside [0,%d]", p.TAMWidth, p.MaxWidth, MaxRequestWidth))
	}
	if p.WidthLo < 0 || p.WidthHi < 0 || p.WidthLo > MaxRequestWidth || p.WidthHi > MaxRequestWidth {
		return apiError(http.StatusUnprocessableEntity,
			fmt.Errorf("params sweep width range [%d,%d] outside [0,%d]", p.WidthLo, p.WidthHi, MaxRequestWidth))
	}
	if p.TimeoutMS < 0 || p.BackendTimeoutMS < 0 {
		return apiError(http.StatusUnprocessableEntity,
			fmt.Errorf("params timeoutMs=%d backendTimeoutMs=%d must be >= 0", p.TimeoutMS, p.BackendTimeoutMS))
	}
	if _, err := sched.BackendByName(p.Backend); err != nil {
		return apiError(http.StatusUnprocessableEntity, err)
	}
	return nil
}

// preemptionsErr rejects preemption budgets keyed by core IDs the SOC
// does not define — silently ignoring them would let a typo'd request run
// an entirely different scheduling regime than the caller asked for. The
// error wraps the same typed *repro.UnknownCoreError the verifier
// returns, so the envelope code is "unknown_core".
func preemptionsErr(planner *repro.Planner, p ParamsJSON) *apiErr {
	if len(p.MaxPreemptions) == 0 {
		return nil
	}
	known := make(map[int]bool)
	for _, c := range planner.SOC().Cores {
		known[c.ID] = true
	}
	bad := -1
	for id := range p.MaxPreemptions {
		if !known[id] && (bad == -1 || id < bad) {
			bad = id
		}
	}
	if bad != -1 {
		return apiError(http.StatusUnprocessableEntity,
			fmt.Errorf("maxPreemptions: %w", &repro.UnknownCoreError{CoreID: bad}))
	}
	return nil
}

// Request is the one v1 request envelope: a SOC key (fingerprint or
// registered name), the shared params, and the two route-gated mode
// fields. Routes that do not accept a mode field reject it with 400
// rather than silently ignoring it.
type Request struct {
	// SOC is a fingerprint or a registered SOC name.
	SOC    string     `json:"soc"`
	Params ParamsJSON `json:"params"`
	// Best renders the grid-swept best schedule instead of a single run
	// (gantt only — the schedule routes pick the mode by path).
	Best bool `json:"best,omitempty"`
	// Wait runs the sweep synchronously on the request instead of
	// submitting an async job (sweep only).
	Wait bool `json:"wait,omitempty"`
}

// reqFields gates the optional Request fields per route.
type reqFields int

const (
	allowBest reqFields = 1 << iota
	allowWait
)

// decodeRequest decodes and validates one v1 request envelope, writing
// the error response itself on failure. This is the single decode path of
// every non-batch scheduling route.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, allow reqFields) (Request, bool) {
	var req Request
	if !decodeBody(w, r, &req) {
		return req, false
	}
	if req.Best && allow&allowBest == 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf(`field "best" is not accepted on this route (the route selects the mode)`))
		return req, false
	}
	if req.Wait && allow&allowWait == 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf(`field "wait" is not accepted on this route`))
		return req, false
	}
	if e := req.Params.validate(); e != nil {
		writeAPIErr(w, e)
		return req, false
	}
	return req, true
}

// ---- error envelope ----

// Machine-readable error codes, carried in every error envelope as
// error.code. The HTTP status says how to react (retry, back off, fix the
// request); the code says what happened.
const (
	// CodeBadRequest: malformed body or out-of-range parameters (400/422).
	CodeBadRequest = "bad_request"
	// CodeNotFound: unknown SOC, job, or trace (404).
	CodeNotFound = "not_found"
	// CodeUnknownBackend: params.backend names no registered backend (422).
	CodeUnknownBackend = "unknown_backend"
	// CodeBackendDeclined: the named backend declines these parameters
	// (it cannot honor them honestly); pick another backend or the
	// portfolio (422).
	CodeBackendDeclined = "backend_declined"
	// CodeUnknownCore: a parameter references a core ID the SOC does not
	// define (422).
	CodeUnknownCore = "unknown_core"
	// CodeDeadline: the request (or batch item) overran its deadline (504).
	CodeDeadline = "deadline"
	// CodeShed: admission control or a full job queue shed the request;
	// honor Retry-After (429).
	CodeShed = "shed"
	// CodeQueueWait: an async job waited in the queue past the pool's
	// queue-wait deadline and was failed without running.
	CodeQueueWait = "queue_wait"
	// CodeCancelled: the work was cancelled before it finished.
	CodeCancelled = "cancelled"
	// CodeConflict: the resource is not in a state to answer (e.g. the
	// result of a still-running job) (409).
	CodeConflict = "conflict"
	// CodeGone: the server is shutting down and no longer accepts this
	// work (410).
	CodeGone = "gone"
	// CodeInternal: an unexpected server-side failure (5xx).
	CodeInternal = "internal"
)

// ErrorBody is the inside of the v1 error envelope: a machine-readable
// code plus the human-readable message. Every error response on every
// /v1 route (and every failed batch item) carries exactly this shape.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is the error response document: {"error":{code,message}}.
type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// errorCode maps a failure to its wire code: typed errors first (they
// know exactly what happened), then the HTTP status family.
func errorCode(status int, err error) string {
	var uce *sched.UnknownCoreError
	switch {
	case errors.Is(err, sched.ErrUnknownBackend):
		return CodeUnknownBackend
	case errors.Is(err, sched.ErrBackendDeclined):
		return CodeBackendDeclined
	case errors.As(err, &uce):
		return CodeUnknownCore
	case errors.Is(err, ErrQueueWait):
		return CodeQueueWait
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCancelled
	case errors.Is(err, ErrQueueFull):
		return CodeShed
	case errors.Is(err, ErrUnknownSOC):
		return CodeNotFound
	}
	switch {
	case status == http.StatusNotFound:
		return CodeNotFound
	case status == http.StatusConflict:
		return CodeConflict
	case status == http.StatusGone:
		return CodeGone
	case status == http.StatusTooManyRequests:
		return CodeShed
	case status == http.StatusGatewayTimeout:
		return CodeDeadline
	case status >= 500:
		return CodeInternal
	default: // 400, 422, anything unmapped
		return CodeBadRequest
	}
}

// apiErr is a failure annotated with its HTTP status and wire code, so
// the same value can be written as a response or embedded as a per-item
// batch error.
type apiErr struct {
	status int
	code   string
	err    error
}

func (e *apiErr) Error() string { return e.err.Error() }

// body returns the wire form of the error.
func (e *apiErr) body() ErrorBody { return ErrorBody{Code: e.code, Message: e.err.Error()} }

// apiError wraps err with the code derived from the status and the error
// chain.
func apiError(status int, err error) *apiErr {
	return &apiErr{status: status, code: errorCode(status, err), err: err}
}

// writeAPIErr writes an annotated error as the v1 envelope.
func writeAPIErr(w http.ResponseWriter, e *apiErr) {
	writeJSON(w, e.status, errorEnvelope{Error: e.body()})
}

// writeError writes err as the v1 error envelope, deriving the code from
// the status and the error chain.
func writeError(w http.ResponseWriter, code int, err error) {
	writeAPIErr(w, apiError(code, err))
}

// ---- encoding helpers ----

// decodeBody decodes a JSON request body, writing a 400 on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	// Trailing garbage after the JSON document is a malformed request.
	if _, err := dec.Token(); err != io.EOF {
		writeError(w, http.StatusBadRequest, fmt.Errorf("trailing data after JSON body"))
		return false
	}
	return true
}

// writeJSON writes v as indented JSON (two spaces, trailing newline — the
// same encoding schedio and the library tools use, so responses are
// byte-comparable with direct library output).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
