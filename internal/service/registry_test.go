package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/soc"
)

// demoVariant returns a small, distinct SOC derived from demo8 — cheap to
// build a Planner for, with a fingerprint (and name) unique to i.
func demoVariant(t testing.TB, i int) *soc.SOC {
	t.Helper()
	s := bench.Demo().Clone()
	s.Name = fmt.Sprintf("demo8v%d", i)
	s.Cores[0].Test.Patterns += i
	return s
}

func TestRegistryAddDedupAndResolve(t *testing.T) {
	r := NewRegistry(4)
	s := bench.Demo()
	fp1, err := r.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := r.Add(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("re-adding the same SOC gave a new fingerprint: %s vs %s", fp1, fp2)
	}
	if got := len(r.List()); got != 1 {
		t.Fatalf("registry lists %d SOCs, want 1", got)
	}
	for _, key := range []string{fp1, "demo8"} {
		if fp, ok := r.Resolve(key); !ok || fp != fp1 {
			t.Fatalf("Resolve(%q) = (%s, %v), want (%s, true)", key, fp, ok, fp1)
		}
	}
	if _, ok := r.Resolve("nope"); ok {
		t.Fatal("Resolve accepted an unknown key")
	}
	if _, err := r.Planner(context.Background(), "nope"); !errors.Is(err, ErrUnknownSOC) {
		t.Fatalf("Planner(nope) err = %v, want ErrUnknownSOC", err)
	}
}

// TestRegistryRejectsUnserializableNames closes the fingerprint-forgery
// hole: a JSON-built SOC whose name smuggles .soc grammar (here a
// PowerMax line) would serialize to the same canonical bytes as a
// different SOC, so Add must reject names that cannot round-trip the
// grammar instead of colliding the two fingerprints.
func TestRegistryRejectsUnserializableNames(t *testing.T) {
	r := NewRegistry(2)
	honest := bench.Demo().Clone()
	honest.Name = "x"
	honest.PowerMax = 100
	if _, err := r.Add(honest); err != nil {
		t.Fatal(err)
	}
	forged := bench.Demo().Clone()
	forged.Name = "x\nPowerMax 100"
	forged.PowerMax = 0
	if _, err := r.Add(forged); err == nil || !strings.Contains(err.Error(), "round-trip") {
		t.Fatalf("Add accepted a grammar-smuggling SOC name (err = %v)", err)
	}
	badCore := bench.Demo().Clone()
	badCore.Cores[0].Name = "a b"
	if _, err := r.Add(badCore); err == nil {
		t.Fatal("Add accepted a core name with whitespace")
	}
}

// TestRegistrySingleflight asserts the singleflight guarantee under
// concurrent load: many goroutines racing on a mix of fingerprints cause
// exactly one Planner build per fingerprint, and every caller gets the
// same Planner instance. Run with -race in CI.
func TestRegistrySingleflight(t *testing.T) {
	const socs = 4
	const callersPerSOC = 16
	r := NewRegistry(socs + 1) // no eviction pressure
	keys := make([]string, socs)
	for i := range keys {
		fp, err := r.Add(demoVariant(t, i))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = fp
	}
	got := make([][]any, socs) // planners seen per SOC
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < socs*callersPerSOC; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := i % socs
			p, err := r.Planner(context.Background(), keys[k])
			if err != nil {
				t.Errorf("Planner(%d): %v", k, err)
				return
			}
			mu.Lock()
			got[k] = append(got[k], p)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if b := r.Stats().Builds; b != socs {
		t.Fatalf("%d Planner builds for %d fingerprints (singleflight broken)", b, socs)
	}
	for k, ps := range got {
		if len(ps) != callersPerSOC {
			t.Fatalf("soc %d: %d callers returned, want %d", k, len(ps), callersPerSOC)
		}
		for _, p := range ps {
			if p != ps[0] {
				t.Fatalf("soc %d: callers got different Planner instances", k)
			}
		}
	}
}

// TestRegistryLRUEviction asserts the size bound: with capacity 2, a third
// Planner evicts the least-recently-used one, which is rebuilt (a fresh
// build) on its next use while the still-cached Planner is served from
// the LRU without rebuilding.
func TestRegistryLRUEviction(t *testing.T) {
	r := NewRegistry(2)
	keys := make([]string, 3)
	for i := range keys {
		fp, err := r.Add(demoVariant(t, i))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = fp
	}
	planners := make([]any, 3)
	for i, k := range keys {
		p, err := r.Planner(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		planners[i] = p
	}
	if b := r.Stats().Builds; b != 3 {
		t.Fatalf("builds = %d, want 3", b)
	}
	if e := r.Stats().Evictions; e != 1 {
		t.Fatalf("evictions = %d, want 1 (capacity 2, 3 builds)", e)
	}
	if n := r.Stats().Planners; n != 2 {
		t.Fatalf("cached planners = %d, want 2", n)
	}

	// keys[0] was the LRU victim: requesting it again is a fresh build.
	p0, err := r.Planner(context.Background(), keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if b := r.Stats().Builds; b != 4 {
		t.Fatalf("builds = %d after re-requesting the evicted Planner, want 4", b)
	}
	if p0 == planners[0] {
		t.Fatal("evicted Planner instance was re-served instead of rebuilt")
	}

	// keys[2] stayed cached through the re-build (it evicted keys[1]).
	p2, err := r.Planner(context.Background(), keys[2])
	if err != nil {
		t.Fatal(err)
	}
	if b := r.Stats().Builds; b != 4 {
		t.Fatalf("builds = %d, want 4 (keys[2] should be cached)", b)
	}
	if p2 != planners[2] {
		t.Fatal("cached Planner changed identity")
	}
}

// TestRegistryConcurrentMixedWithEviction hammers a small-capacity
// registry with mixed-fingerprint traffic — builds, rebuilds after
// eviction, list and resolve calls — purely for -race coverage and
// internal-invariant checking under churn.
func TestRegistryConcurrentMixedWithEviction(t *testing.T) {
	const socs = 5
	r := NewRegistry(2) // heavy eviction churn
	keys := make([]string, socs)
	for i := range keys {
		fp, err := r.Add(demoVariant(t, i))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = fp
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := keys[(g+i)%socs]
				if _, err := r.Planner(context.Background(), k); err != nil {
					t.Errorf("Planner: %v", err)
				}
				r.List()
				r.Resolve(k)
				r.Stats()
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Planners > 2+socs { // capacity may be briefly exceeded mid-build
		t.Fatalf("planner cache grew to %d, capacity 2", st.Planners)
	}
	if st.SOCs != socs {
		t.Fatalf("SOCs = %d, want %d", st.SOCs, socs)
	}
}
