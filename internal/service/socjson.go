package service

import (
	"fmt"

	"repro/internal/soc"
)

// SOCJSON is the JSON wire form of an SOC test description, the
// application/json alternative to the .soc text grammar accepted by
// POST /v1/socs. It round-trips losslessly with the soc data model.
type SOCJSON struct {
	Name     string     `json:"name"`
	PowerMax int        `json:"powerMax,omitempty"`
	Cores    []CoreJSON `json:"cores"`
	// Precedences lists [before, after] core-ID pairs.
	Precedences [][2]int `json:"precedences,omitempty"`
	// Concurrencies lists [a, b] core-ID pairs that must never overlap.
	Concurrencies [][2]int `json:"concurrencies,omitempty"`
}

// CoreJSON is one embedded core in the JSON wire form.
type CoreJSON struct {
	ID         int    `json:"id"`
	Name       string `json:"name"`
	Parent     int    `json:"parent,omitempty"`
	Inputs     int    `json:"inputs,omitempty"`
	Outputs    int    `json:"outputs,omitempty"`
	Bidirs     int    `json:"bidirs,omitempty"`
	ScanChains []int  `json:"scanChains,omitempty"`
	Patterns   int    `json:"patterns"`
	// Kind is "scan" (default) or "bist".
	Kind string `json:"kind,omitempty"`
	// Engine is the BIST engine ID; nil means none.
	Engine *int `json:"engine,omitempty"`
	Power  int  `json:"power,omitempty"`
}

// EncodeSOC converts an SOC into its JSON wire form.
func EncodeSOC(s *soc.SOC) *SOCJSON {
	out := &SOCJSON{Name: s.Name, PowerMax: s.PowerMax}
	for _, c := range s.Cores {
		cj := CoreJSON{
			ID:         c.ID,
			Name:       c.Name,
			Parent:     c.Parent,
			Inputs:     c.Inputs,
			Outputs:    c.Outputs,
			Bidirs:     c.Bidirs,
			ScanChains: append([]int(nil), c.ScanChains...),
			Patterns:   c.Test.Patterns,
			Power:      c.Test.Power,
		}
		if c.Test.Kind == soc.BISTTest {
			cj.Kind = "bist"
		}
		if c.Test.BISTEngine >= 0 {
			e := c.Test.BISTEngine
			cj.Engine = &e
		}
		out.Cores = append(out.Cores, cj)
	}
	for _, p := range s.Precedences {
		out.Precedences = append(out.Precedences, [2]int{p.Before, p.After})
	}
	for _, c := range s.Concurrencies {
		out.Concurrencies = append(out.Concurrencies, [2]int{c.A, c.B})
	}
	return out
}

// DecodeSOC converts the JSON wire form back into a validated SOC.
func DecodeSOC(sj *SOCJSON) (*soc.SOC, error) {
	s := &soc.SOC{Name: sj.Name, PowerMax: sj.PowerMax}
	for _, cj := range sj.Cores {
		c := &soc.Core{
			ID:         cj.ID,
			Name:       cj.Name,
			Parent:     cj.Parent,
			Inputs:     cj.Inputs,
			Outputs:    cj.Outputs,
			Bidirs:     cj.Bidirs,
			ScanChains: append([]int(nil), cj.ScanChains...),
			Test: soc.Test{
				Patterns:   cj.Patterns,
				BISTEngine: -1,
				Power:      cj.Power,
			},
		}
		switch cj.Kind {
		case "", "scan":
			c.Test.Kind = soc.ScanTest
		case "bist":
			c.Test.Kind = soc.BISTTest
		default:
			return nil, fmt.Errorf("service: core %d: kind %q (want scan|bist)", cj.ID, cj.Kind)
		}
		if cj.Engine != nil {
			c.Test.BISTEngine = *cj.Engine
		}
		s.Cores = append(s.Cores, c)
	}
	for _, p := range sj.Precedences {
		s.Precedences = append(s.Precedences, soc.Precedence{Before: p[0], After: p[1]})
	}
	for _, c := range sj.Concurrencies {
		s.Concurrencies = append(s.Concurrencies, soc.Concurrency{A: c[0], B: c[1]})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
