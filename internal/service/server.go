package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/sched"
	"repro/internal/socfile"
)

// Admission and deadline bounds applied by New when Config leaves them
// unset.
const (
	// DefaultMaxConcurrent bounds scheduling-work requests in flight.
	DefaultMaxConcurrent = 64
	// DefaultMaxTimeout caps every request deadline, including requests
	// that ask for none.
	DefaultMaxTimeout = 60 * time.Second
)

// Config tunes a Server.
type Config struct {
	// PlannerCapacity bounds the Planner LRU (<= 0: DefaultPlannerCapacity).
	PlannerCapacity int
	// JobWorkers is the async worker pool size (<= 0: 1).
	JobWorkers int
	// JobQueue bounds the pending-job queue (<= 0: DefaultJobQueue).
	JobQueue int
	// JobRetained bounds retained finished jobs (<= 0: DefaultJobRetained).
	JobRetained int
	// JobQueueWait fails jobs still queued after this long (0:
	// DefaultJobQueueWait; < 0 disables the deadline).
	JobQueueWait time.Duration
	// MaxConcurrent bounds scheduling-work requests admitted at once;
	// excess requests are shed with 429 + Retry-After rather than queued
	// (<= 0: DefaultMaxConcurrent).
	MaxConcurrent int
	// MaxTimeout caps per-request deadlines: a request's params.timeoutMs
	// may shorten it but never extend past this (<= 0: DefaultMaxTimeout).
	MaxTimeout time.Duration
	// CacheBytes bounds the content-addressed result cache (total stored
	// document bytes; <= 0: DefaultCacheBytes).
	CacheBytes int64
	// Preload names built-in benchmark SOCs to register at startup; the
	// single entry "all" expands to every built-in.
	Preload []string
	// Logger receives request and panic logs; nil silences the server.
	Logger *log.Logger
}

// Server is the SOC test-scheduling service: a Planner registry, an async
// job pool, and the HTTP/JSON API wired together. Create it with New,
// mount Handler on an http.Server, and Close it on shutdown.
type Server struct {
	reg        *Registry
	jobs       *Jobs
	cache      *ResultCache
	metrics    Metrics
	tracer     *obs.Tracer
	sem        *resil.Semaphore
	maxTimeout time.Duration
	draining   atomic.Bool
	log        *log.Logger
	handler    http.Handler
	start      time.Time
}

// builtinNames are the Preload "all" expansion.
var builtinNames = []string{"d695", "p22810like", "p34392like", "p93791like", "demo8"}

// New builds a Server and registers any preloaded SOCs.
func New(cfg Config) (*Server, error) {
	maxConcurrent := cfg.MaxConcurrent
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	maxTimeout := cfg.MaxTimeout
	if maxTimeout <= 0 {
		maxTimeout = DefaultMaxTimeout
	}
	s := &Server{
		reg:        NewRegistry(cfg.PlannerCapacity),
		jobs:       NewJobs(cfg.JobWorkers, cfg.JobQueue, cfg.JobRetained, cfg.JobQueueWait),
		cache:      NewResultCache(cfg.CacheBytes),
		tracer:     obs.NewTracer(0),
		sem:        resil.NewSemaphore(maxConcurrent),
		maxTimeout: maxTimeout,
		log:        cfg.Logger,
		start:      time.Now(),
	}
	s.jobs.SetTracer(s.tracer)
	names := cfg.Preload
	if len(names) == 1 && names[0] == "all" {
		names = builtinNames
	}
	for _, name := range names {
		soc, err := bench.ByName(name)
		if err != nil {
			s.jobs.Close()
			return nil, err
		}
		if _, err := s.reg.Add(soc); err != nil {
			s.jobs.Close()
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/socs", s.handleSOCList)
	mux.HandleFunc("POST /v1/socs", s.handleSOCAdd)
	mux.HandleFunc("GET /v1/socs/{key}", s.handleSOCGet)
	mux.HandleFunc("POST /v1/schedule", func(w http.ResponseWriter, r *http.Request) { s.handleSchedule(w, r, false) })
	mux.HandleFunc("POST /v1/schedule/best", func(w http.ResponseWriter, r *http.Request) { s.handleSchedule(w, r, true) })
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/effective", s.handleEffective)
	mux.HandleFunc("POST /v1/gantt", s.handleGantt)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.handler = s.middleware(mux)
	return s, nil
}

// Handler returns the service's root http.Handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the Planner registry (metrics, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Cache exposes the result cache (metrics, tests).
func (s *Server) Cache() *ResultCache { return s.cache }

// Jobs exposes the async job pool (metrics, tests).
func (s *Server) Jobs() *Jobs { return s.jobs }

// Tracer exposes the request tracer (tests, tools).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// BeginDrain flips /readyz to 503 so load balancers stop routing here;
// in-flight work is unaffected. Call it before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close begins draining, cancels all running jobs, and drains the worker
// pool.
func (s *Server) Close() {
	s.BeginDrain()
	s.jobs.Close()
}

// ---- handlers ----

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"service": "socserved",
		"endpoints": []string{
			"GET  /healthz",
			"GET  /readyz",
			"GET  /metrics",
			"GET  /v1/socs",
			"POST /v1/socs                (.soc text or JSON body)",
			"GET  /v1/socs/{key}",
			"POST /v1/schedule            {soc, params}        (params.backend: classic|rectpack|portfolio)",
			"POST /v1/schedule/best       {soc, params}        (params.backend: classic|rectpack|portfolio)",
			"POST /v1/batch               {items: [{soc, params, best}], workers}",
			"POST /v1/sweep               {soc, params, wait}  (params.widthLo/widthHi/workers)",
			"POST /v1/effective           {soc, params}        (params.widthLo/widthHi/gamma/workers)",
			"POST /v1/gantt               {soc, params, best}",
			"GET  /v1/jobs/{id}",
			"GET  /v1/jobs/{id}/result",
			"POST /v1/jobs/{id}/cancel",
			"GET  /v1/backends",
			"GET  /v1/traces/{id}",
		},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the load-balancer readiness probe: 200 while serving,
// 503 once BeginDrain/Close flipped the server into drain so new traffic
// is routed elsewhere while in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MetricsSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.metrics.requests.Load(),
		Inflight:      s.metrics.inflight.Load(),
		Status4xx:     s.metrics.status4xx.Load(),
		Status5xx:     s.metrics.status5xx.Load(),
		Schedules:     s.metrics.schedules.Load(),
		Sweeps:        s.metrics.sweeps.Load(),
		Batches:       s.metrics.batches.Load(),
		Panics:        s.metrics.panics.Load(),
		Shed:          s.metrics.shed.Load(),
		Timeouts:      s.metrics.timeouts.Load(),
		Cache:         s.cache.Stats(),
		Registry:      s.reg.Stats(),
		Jobs:          s.jobs.Stats(),
		Backends:      sched.PortfolioStats(),
		Latency:       obs.LatencySnapshot(),
	})
}

// BackendInfo is one row of GET /v1/backends: a registered backend's race
// record and its observed scheduling latency.
type BackendInfo struct {
	Name string `json:"name"`
	// Race is the backend's cumulative portfolio-race record. A backend
	// that never raced reports State "idle" and zero counters.
	Race sched.BackendRaceStats `json:"race"`
	// Latency summarizes every observed scheduling run of this backend
	// (direct dispatch and portfolio racer legs alike).
	Latency obs.HistSnapshot `json:"latency"`
}

// handleBackends answers GET /v1/backends: every registered backend with
// its race record, quarantine state, and latency quantiles, sorted by
// name.
func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	race := sched.PortfolioStats()
	lat := obs.Backends.Snapshot()
	out := make([]BackendInfo, 0, 4)
	for _, name := range sched.Backends() {
		info := BackendInfo{Name: name, Latency: lat[name]}
		if st, ok := race[name]; ok {
			info.Race = st
		} else {
			info.Race.State = "idle"
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"backends": out})
}

// handleTraceGet serves a retained trace by ID (the X-Trace-Id of a past
// response, or a job's traceId).
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	td, ok := s.tracer.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q (ring retains the last %d)", r.PathValue("id"), obs.DefaultTraceCapacity))
		return
	}
	writeJSON(w, http.StatusOK, td)
}

func (s *Server) handleSOCList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"socs": s.reg.List()})
}

// handleSOCAdd accepts a .soc text body or (Content-Type: application/json)
// the SOCJSON wire form, registers the SOC, and returns its fingerprint.
func (s *Server) handleSOCAdd(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	var parsed *repro.SOC
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		var sj SOCJSON
		if err := json.NewDecoder(body).Decode(&sj); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON SOC: %w", err))
			return
		}
		soc, err := DecodeSOC(&sj)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		parsed = soc
	} else {
		soc, err := socfile.Parse(body)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		parsed = soc
	}
	fp, err := s.reg.Add(parsed)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"fingerprint": fp,
		"name":        parsed.Name,
		"cores":       len(parsed.Cores),
	})
}

func (s *Server) handleSOCGet(w http.ResponseWriter, r *http.Request) {
	soc, fp, err := s.reg.SOC(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"fingerprint": fp, "soc": EncodeSOC(soc)})
}

// admit takes an admission slot, shedding the request with 429 and a
// Retry-After when the server is at MaxConcurrent — a bounded, fast "try
// again" beats queueing work a deadline will kill anyway. On success the
// caller must call the returned release.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if !s.sem.TryAcquire() {
		s.metrics.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("service: at capacity (%d scheduling requests in flight)", s.sem.Cap()))
		return nil, false
	}
	return s.sem.Release, true
}

// requestCtx derives the work context for a scheduling request: the
// client's timeoutMs when given, always capped by the server's MaxTimeout.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	return s.deadlineCtx(r.Context(), timeoutMS)
}

// deadlineCtx derives a work context from parent: timeoutMS when given,
// always capped by the server's MaxTimeout. Batch items call it directly
// with the batch context as parent, so an item deadline can shorten but
// never outlive the batch's.
func (s *Server) deadlineCtx(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.maxTimeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return context.WithTimeout(parent, d)
}

// scheduleStatus maps a scheduling failure to its HTTP status: a missed
// deadline is the gateway-timeout family (and counted), everything else is
// the request's fault.
func (s *Server) scheduleStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		s.metrics.timeouts.Add(1)
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// handleSchedule answers POST /v1/schedule and /v1/schedule/best. The body
// is exactly what schedio.Save emits for the Planner's answer, so service
// responses and library results are interchangeable byte-for-byte — and
// because the result cache stores those exact bytes, a cache hit (X-Cache:
// hit) repeats the miss's body verbatim.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request, best bool) {
	req, ok := s.decodeRequest(w, r, 0)
	if !ok {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	fp, ok := s.reg.Resolve(req.SOC)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", ErrUnknownSOC, req.SOC))
		return
	}
	planner, ok := s.plannerFor(w, r, fp)
	if !ok {
		return
	}
	if e := preemptionsErr(planner, req.Params); e != nil {
		writeAPIErr(w, e)
		return
	}
	ctx, cancel := s.requestCtx(r, req.Params.TimeoutMS)
	defer cancel()
	doc, hit, err := s.scheduleDoc(ctx, planner, fp, req.Params, best)
	if err != nil {
		writeError(w, s.scheduleStatus(err), err)
		return
	}
	s.metrics.schedules.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheLabel(hit))
	if _, err := w.Write(doc); err != nil {
		s.logf("write schedule: %v", err)
	}
}

// cacheLabel renders a hit flag for the X-Cache response header.
func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// scheduleDoc returns the serialized schedule document for (fp, params,
// mode) through the content-addressed result cache: on a miss it runs the
// scheduler and stores the exact bytes it serves, so every later hit (and
// every concurrent singleflight waiter) is byte-identical to the miss.
func (s *Server) scheduleDoc(ctx context.Context, planner *repro.Planner, fp string, p ParamsJSON, best bool) ([]byte, bool, error) {
	opts := p.Options()
	return s.cache.Do(ctx, scheduleCacheKey(fp, opts, best), func() ([]byte, error) {
		sch, err := s.runSchedule(ctx, planner, opts, best)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := repro.SaveSchedule(&buf, sch); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// runSchedule dispatches a schedule request: /v1/schedule/best always runs
// the selected backend's best mode, /v1/schedule does too for non-classic
// backends (rectpack and portfolio have no single-run (α, δ) grid point to
// pin), and only the classic default keeps the historical single-run path.
// The work runs in its own goroutine so the handler honors ctx's deadline
// even on the context-free classic single-run path; on timeout the worker
// is abandoned (its result discarded), and its panics are contained here
// rather than in the HTTP middleware so an abandoned worker can never
// crash the process.
func (s *Server) runSchedule(ctx context.Context, planner *repro.Planner, opts repro.Options, best bool) (*repro.TestSchedule, error) {
	defer obs.TimeStage("service/schedule")()
	if err := chaos.InjectContext(ctx, siteSchedule); err != nil {
		return nil, err
	}
	type result struct {
		sch *repro.TestSchedule
		err error
	}
	ch := make(chan result, 1) // buffered: an abandoned worker's send never blocks
	go func() {
		var res result
		defer func() {
			if rec := recover(); rec != nil {
				res = result{nil, fmt.Errorf("service: schedule panicked: %v", rec)}
			}
			ch <- res
		}()
		if best || !sched.IsDefaultBackend(opts.Backend) {
			res.sch, res.err = planner.ScheduleBestContext(ctx, opts)
		} else {
			res.sch, res.err = planner.Schedule(opts)
		}
	}()
	select {
	case res := <-ch:
		return res.sch, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// siteSchedule is the failpoint fired at the top of every scheduling
// request's work phase (after admission, before the planner runs).
const siteSchedule = "service/schedule"

// handleSweep answers POST /v1/sweep: synchronously under the request
// context when wait is set, otherwise as an async job whose result is
// served by /v1/jobs/{id}/result with the same bytes as the synchronous
// answer. The sweep bounds ride in the shared params (widthLo, widthHi,
// workers).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r, allowWait)
	if !ok {
		return
	}
	fp, ok := s.reg.Resolve(req.SOC)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", ErrUnknownSOC, req.SOC))
		return
	}
	p := req.Params
	if req.Wait {
		release, ok := s.admit(w)
		if !ok {
			return
		}
		defer release()
		planner, ok := s.plannerFor(w, r, fp)
		if !ok {
			return
		}
		ctx, cancel := s.requestCtx(r, p.TimeoutMS)
		defer cancel()
		sw, err := planner.SweepWidthsContext(ctx, p.WidthLo, p.WidthHi, p.Workers)
		if err != nil {
			writeError(w, s.scheduleStatus(err), err)
			return
		}
		s.metrics.sweeps.Add(1)
		writeJSON(w, http.StatusOK, sw)
		return
	}
	job, err := s.jobs.Submit("sweep "+req.SOC, func(ctx context.Context) (any, error) {
		// Transient planner failures (a failed build is never cached — the
		// registry rebuilds on the next call) are retried with seeded
		// jittered backoff rather than failing the whole job.
		sw, err := resil.Retry(ctx, resil.RetryConfig{}, func(ctx context.Context) (*repro.WidthSweep, error) {
			planner, err := s.reg.Planner(ctx, fp)
			if err != nil {
				return nil, err
			}
			return planner.SweepWidthsContext(ctx, p.WidthLo, p.WidthHi, p.Workers)
		})
		if err != nil {
			return nil, err
		}
		s.metrics.sweeps.Add(1)
		return sw, nil
	})
	if err != nil {
		// A full queue is back-pressure, not an outage: shed like admission
		// control does, with a Retry-After.
		code := http.StatusServiceUnavailable
		switch {
		case errors.Is(err, ErrClosed):
			code = http.StatusGone
		case errors.Is(err, ErrQueueFull):
			s.metrics.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			code = http.StatusTooManyRequests
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job":       s.jobs.Snapshot(job),
		"statusUrl": "/v1/jobs/" + job.ID(),
		"resultUrl": "/v1/jobs/" + job.ID() + "/result",
		"cancelUrl": "/v1/jobs/" + job.ID() + "/cancel",
	})
}

// handleEffective runs a width sweep and picks the effective TAM width
// minimizing C(γ, W) — the paper's Problem 3 in one request. The sweep
// bounds and γ ride in the shared params (widthLo, widthHi, gamma,
// workers).
func (s *Server) handleEffective(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r, 0)
	if !ok {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	planner, ok := s.plannerFor(w, r, req.SOC)
	if !ok {
		return
	}
	p := req.Params
	ctx, cancel := s.requestCtx(r, p.TimeoutMS)
	defer cancel()
	sw, err := planner.SweepWidthsContext(ctx, p.WidthLo, p.WidthHi, p.Workers)
	if err != nil {
		writeError(w, s.scheduleStatus(err), err)
		return
	}
	s.metrics.sweeps.Add(1)
	gamma := 0.5
	if p.Gamma != nil {
		gamma = *p.Gamma
	}
	eff, err := repro.PickEffectiveWidth(sw, gamma)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, eff)
}

// handleGantt schedules and renders the packed bin as SVG. Gantt answers
// are not cached: the cache stores schedule documents, and the SVG is
// cheap to re-render relative to the schedule run.
func (s *Server) handleGantt(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r, allowBest)
	if !ok {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	planner, ok := s.plannerFor(w, r, req.SOC)
	if !ok {
		return
	}
	if e := preemptionsErr(planner, req.Params); e != nil {
		writeAPIErr(w, e)
		return
	}
	ctx, cancel := s.requestCtx(r, req.Params.TimeoutMS)
	defer cancel()
	sch, err := s.runSchedule(ctx, planner, req.Params.Options(), req.Best)
	if err != nil {
		writeError(w, s.scheduleStatus(err), err)
		return
	}
	s.metrics.schedules.Add(1)
	w.Header().Set("Content-Type", "image/svg+xml")
	if err := repro.GanttSVG(w, sch); err != nil {
		s.logf("write gantt: %v", err)
	}
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.Snapshot(job))
}

// handleJobResult serves a finished job's result document — for a sweep
// job, the same bytes as the synchronous /v1/sweep answer.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	result, err, done := s.jobs.Result(job)
	switch {
	case !done:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s", job.ID(), s.jobs.Snapshot(job).State))
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("job %s %s: %w", job.ID(), s.jobs.Snapshot(job).State, err))
	default:
		writeJSON(w, http.StatusOK, result)
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.Snapshot(job))
}

// plannerFor resolves a SOC key to its Planner, writing the HTTP error on
// failure. The request context carries the trace the build span lands on.
func (s *Server) plannerFor(w http.ResponseWriter, r *http.Request, key string) (*repro.Planner, bool) {
	planner, err := s.reg.Planner(r.Context(), key)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownSOC) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return nil, false
	}
	return planner, true
}
