package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/soc"
)

func TestPartitionEnumeration(t *testing.T) {
	count := func(w, b int) int {
		n := 0
		forEachPartition(w, b, func(parts []int) {
			n++
			sum := 0
			prev := 1 << 30
			for _, p := range parts {
				if p < 1 || p > prev {
					t.Fatalf("partition %v not non-increasing positive", parts)
				}
				prev = p
				sum += p
			}
			if sum != w {
				t.Fatalf("partition %v sums to %d, want %d", parts, sum, w)
			}
		})
		return n
	}
	// Known partition counts p(n, k): partitions of n into exactly k parts.
	cases := []struct{ w, b, want int }{
		{5, 1, 1},
		{5, 2, 2},  // 4+1, 3+2
		{6, 3, 3},  // 4+1+1, 3+2+1, 2+2+2
		{10, 2, 5}, // 9+1 .. 5+5
		{8, 4, 5},  // 5+1+1+1, 4+2+1+1, 3+3+1+1, 3+2+2+1, 2+2+2+2
	}
	for _, tc := range cases {
		if got := count(tc.w, tc.b); got != tc.want {
			t.Errorf("partitions(%d,%d) = %d, want %d", tc.w, tc.b, got, tc.want)
		}
	}
}

func TestFixedWidthBasics(t *testing.T) {
	s := bench.D695()
	r, err := FixedWidth(s, 32, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Structure: buses sum to <= 32, every core assigned, bus times match.
	sum := 0
	for _, bw := range r.BusWidths {
		if bw < 1 {
			t.Fatalf("bus width %d", bw)
		}
		sum += bw
	}
	if sum > 32 {
		t.Fatalf("buses %v exceed W", r.BusWidths)
	}
	if len(r.AssignedBus) != len(s.Cores) {
		t.Fatalf("%d cores assigned, want %d", len(r.AssignedBus), len(s.Cores))
	}
	for id, b := range r.AssignedBus {
		if b < 0 || b >= len(r.BusWidths) {
			t.Fatalf("core %d on bus %d of %d", id, b, len(r.BusWidths))
		}
	}
	var mx int64
	for _, bt := range r.BusTimes {
		if bt > mx {
			mx = bt
		}
	}
	if mx != r.Makespan {
		t.Fatalf("makespan %d != max bus time %d", r.Makespan, mx)
	}
}

func TestFixedWidthVersusFlexible(t *testing.T) {
	// Both are heuristics: the exhaustive-partition fixed-width baseline is
	// competitive at middle widths (a genuine reproduction finding, see
	// EXPERIMENTS.md), but flexible packing must win where fork/merge
	// matters most — the wide end — and must never lose by more than 10%
	// anywhere on the benchmark.
	s := bench.D695()
	results := make(map[int][2]int64)
	for _, w := range []int{16, 32, 64} {
		flex, err := sched.SweepBest(s, sched.Params{TAMWidth: w}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		fixed, err := FixedWidth(s, w, 64, 3)
		if err != nil {
			t.Fatal(err)
		}
		results[w] = [2]int64{flex.Makespan, fixed.Makespan}
		t.Logf("W=%d flexible=%d fixed=%d (%+.1f%%)", w, flex.Makespan, fixed.Makespan,
			100*float64(fixed.Makespan-flex.Makespan)/float64(flex.Makespan))
		if fixed.Makespan*110 < flex.Makespan*100 {
			t.Errorf("W=%d: fixed-width %d beats flexible %d by >10%%", w, fixed.Makespan, flex.Makespan)
		}
	}
	if r := results[64]; r[1] <= r[0] {
		t.Errorf("W=64: flexible %d should beat fixed %d (fork/merge advantage)", r[0], r[1])
	}
}

func TestFixedWidthErrors(t *testing.T) {
	s := bench.D695()
	if _, err := FixedWidth(s, 0, 64, 2); err == nil {
		t.Error("W=0 accepted")
	}
	if _, err := FixedWidth(s, 16, 64, 0); err == nil {
		t.Error("0 buses accepted")
	}
}

func TestShelvesBasics(t *testing.T) {
	s := bench.D695()
	for _, algo := range []ShelfAlgorithm{NFDH, FFDH} {
		r, err := Shelves(s, 32, 64, 5, 1, algo)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Shelf) != len(s.Cores) {
			t.Fatalf("%d cores shelved, want %d", len(r.Shelf), len(s.Cores))
		}
		// Shelf spans sum to the makespan and starts are cumulative.
		var sum int64
		for i, span := range r.ShelfSpans {
			if r.ShelfStarts[i] != sum {
				t.Fatalf("shelf %d starts at %d, want %d", i, r.ShelfStarts[i], sum)
			}
			sum += span
		}
		if sum != r.Makespan {
			t.Fatalf("spans sum %d != makespan %d", sum, r.Makespan)
		}
		// Per-shelf width usage within W.
		used := make(map[int]int)
		for id, sh := range r.Shelf {
			used[sh] += r.Widths[id]
		}
		for sh, u := range used {
			if u > 32 {
				t.Fatalf("shelf %d uses %d wires", sh, u)
			}
		}
	}
}

func TestFFDHNeverWorseThanNFDH(t *testing.T) {
	// FFDH considers every open shelf, NFDH only the last: FFDH's makespan
	// is at most NFDH's for identical rectangle choices.
	s := bench.D695()
	for _, w := range []int{16, 32, 64} {
		nf, err := Shelves(s, w, 64, 5, 1, NFDH)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := Shelves(s, w, 64, 5, 1, FFDH)
		if err != nil {
			t.Fatal(err)
		}
		if ff.Makespan > nf.Makespan {
			t.Errorf("W=%d: FFDH %d worse than NFDH %d", w, ff.Makespan, nf.Makespan)
		}
	}
}

func TestShelvesNeverBeatFlexible(t *testing.T) {
	s := bench.D695()
	for _, w := range []int{16, 32} {
		flex, err := sched.SweepBest(s, sched.Params{TAMWidth: w}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := BestShelves(s, w, 64, nil, nil, FFDH)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("W=%d flexible=%d FFDH=%d", w, flex.Makespan, ff.Makespan)
		if ff.Makespan < flex.Makespan {
			t.Errorf("W=%d: FFDH %d beats flexible %d", w, ff.Makespan, flex.Makespan)
		}
	}
}

func TestShelvesErrors(t *testing.T) {
	s := bench.D695()
	if _, err := Shelves(s, 0, 64, 5, 1, NFDH); err == nil {
		t.Error("W=0 accepted")
	}
}

// Property: fixed-width makespan is monotone non-increasing in the bus
// budget dimension only loosely (heuristic), but it must never fall below
// the area lower bound A/W nor below the longest single test at bus width.
func TestFixedWidthSanityProperty(t *testing.T) {
	s := smallSOC()
	f := func(width uint8) bool {
		w := int(width)%24 + 2
		r, err := FixedWidth(s, w, 64, 2)
		if err != nil {
			return false
		}
		return r.Makespan > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func smallSOC() *soc.SOC {
	return &soc.SOC{
		Name: "small",
		Cores: []*soc.Core{
			{ID: 1, Name: "a", Inputs: 8, Outputs: 8, ScanChains: []int{40, 40}, Test: soc.Test{Patterns: 30, BISTEngine: -1}},
			{ID: 2, Name: "b", Inputs: 6, Outputs: 4, ScanChains: []int{25}, Test: soc.Test{Patterns: 20, BISTEngine: -1}},
			{ID: 3, Name: "c", Inputs: 10, Outputs: 10, Test: soc.Test{Patterns: 40, BISTEngine: -1}},
		},
	}
}
