// Package baseline implements the two comparison architectures the DAC 2002
// paper positions its flexible-width rectangle packing against:
//
//   - Fixed-width TAMs (the architecture of the earlier co-optimization
//     work it improves on): the total width W is statically partitioned
//     into B buses, every core is assigned to exactly one bus, and tests on
//     a bus run sequentially. Enumerate bus partitions, assign cores with
//     an LPT heuristic plus local improvement, and keep the best.
//
//   - Level-oriented shelf packing (NFDH/FFDH, per Coffman et al.): pick
//     one rectangle per core and pack them into time-bands ("shelves"),
//     the classical approximation the paper's generalized packing departs
//     from by letting rectangles start at arbitrary times.
//
// Neither baseline supports precedence/power constraints or preemption;
// they exist to quantify what the paper's contribution buys (Problem 1).
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/pareto"
	"repro/internal/soc"
)

// FixedResult is the best fixed-width TAM architecture found.
type FixedResult struct {
	// BusWidths are the widths of the fixed buses (descending), summing to
	// at most W.
	BusWidths []int
	// AssignedBus maps core ID to its bus index.
	AssignedBus map[int]int
	// BusTimes are the per-bus serial testing times.
	BusTimes []int64
	// Makespan is the SOC testing time: max over buses.
	Makespan int64
}

// FixedWidth finds the best fixed-width TAM design for the SOC with total
// width W, trying every bus count in 1..maxBuses and every width partition,
// assigning cores by Longest-Processing-Time with pairwise-move improvement.
func FixedWidth(s *soc.SOC, w, maxWidth, maxBuses int) (*FixedResult, error) {
	if w < 1 {
		return nil, fmt.Errorf("baseline: non-positive TAM width %d", w)
	}
	if maxBuses < 1 {
		return nil, fmt.Errorf("baseline: non-positive bus count %d", maxBuses)
	}
	cap := maxWidth
	if cap > w {
		cap = w
	}
	sets := make(map[int]*pareto.Set, len(s.Cores))
	for _, c := range s.Cores {
		ps, err := pareto.Compute(c, cap)
		if err != nil {
			return nil, err
		}
		sets[c.ID] = ps
	}

	var best *FixedResult
	for b := 1; b <= maxBuses && b <= w; b++ {
		forEachPartition(w, b, func(widths []int) {
			r := assignLPT(s, sets, widths)
			if best == nil || r.Makespan < best.Makespan {
				best = r
			}
		})
	}
	return best, nil
}

// forEachPartition enumerates the partitions of w into exactly b parts in
// non-increasing order and calls fn with each (the slice is reused).
func forEachPartition(w, b int, fn func([]int)) {
	parts := make([]int, b)
	var rec func(rem, maxPart, idx int)
	rec = func(rem, maxPart, idx int) {
		if idx == b-1 {
			if rem >= 1 && rem <= maxPart {
				parts[idx] = rem
				fn(parts)
			}
			return
		}
		// Each remaining part needs at least 1.
		for p := min(maxPart, rem-(b-idx-1)); p >= 1; p-- {
			// Remaining parts are at most p each; prune infeasible tails.
			if int64(p)*int64(b-idx) < int64(rem) {
				break
			}
			parts[idx] = p
			rec(rem-p, p, idx+1)
		}
	}
	rec(w, w, 0)
}

// assignLPT assigns cores to buses: longest test first onto the bus that
// finishes earliest, then improves by single-core moves until no move
// helps.
func assignLPT(s *soc.SOC, sets map[int]*pareto.Set, widths []int) *FixedResult {
	b := len(widths)
	times := make([][]int64, len(s.Cores)) // times[i][j]: core i on bus j
	ids := make([]int, len(s.Cores))
	for i, c := range s.Cores {
		ids[i] = c.ID
		times[i] = make([]int64, b)
		for j, bw := range widths {
			times[i][j] = sets[c.ID].Time(bw)
		}
	}
	// LPT by each core's best-case time.
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		bx, by := minOf(times[order[x]]), minOf(times[order[y]])
		if bx != by {
			return bx > by
		}
		return ids[order[x]] < ids[order[y]]
	})
	load := make([]int64, b)
	bus := make([]int, len(ids))
	for _, i := range order {
		bestJ := 0
		for j := 1; j < b; j++ {
			if load[j]+times[i][j] < load[bestJ]+times[i][bestJ] {
				bestJ = j
			}
		}
		bus[i] = bestJ
		load[bestJ] += times[i][bestJ]
	}
	// Local improvement: move one core to another bus if it lowers the max.
	improved := true
	for improved {
		improved = false
		mx := maxIdx(load)
		for _, i := range order {
			if bus[i] != mx {
				continue
			}
			for j := 0; j < b; j++ {
				if j == mx {
					continue
				}
				newFrom := load[mx] - times[i][mx]
				newTo := load[j] + times[i][j]
				cur := load[mx]
				if newFrom < cur && newTo < cur {
					load[mx] = newFrom
					load[j] = newTo
					bus[i] = j
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
	}
	res := &FixedResult{
		BusWidths:   append([]int(nil), widths...),
		AssignedBus: make(map[int]int, len(ids)),
		BusTimes:    load,
	}
	for i, id := range ids {
		res.AssignedBus[id] = bus[i]
	}
	for _, l := range load {
		if l > res.Makespan {
			res.Makespan = l
		}
	}
	return res
}

// ShelfAlgorithm selects the level-packing flavor.
type ShelfAlgorithm int

const (
	// NFDH is Next-Fit Decreasing Height: only the most recent shelf is
	// considered for placement.
	NFDH ShelfAlgorithm = iota
	// FFDH is First-Fit Decreasing Height: every open shelf is considered.
	FFDH
)

// ShelfResult is a level-oriented packing of one rectangle per core.
type ShelfResult struct {
	// Algorithm echoes the flavor used.
	Algorithm ShelfAlgorithm
	// ShelfStarts and ShelfSpans give each shelf's time interval.
	ShelfStarts, ShelfSpans []int64
	// Shelf maps core ID to its shelf index.
	Shelf map[int]int
	// Widths maps core ID to the rectangle width used.
	Widths map[int]int
	// Makespan is the total packed time.
	Makespan int64
}

// Shelves packs the SOC with a level-oriented algorithm: each core
// contributes the rectangle at its preferred width (percent parameter as in
// the scheduler's Initialize, delta promotion included), rectangles are
// sorted by decreasing TAM width and packed into time-shelves whose span is
// the longest test they hold.
func Shelves(s *soc.SOC, w, maxWidth int, percent, delta int, algo ShelfAlgorithm) (*ShelfResult, error) {
	if w < 1 {
		return nil, fmt.Errorf("baseline: non-positive TAM width %d", w)
	}
	cap := maxWidth
	if cap > w {
		cap = w
	}
	type rectangle struct {
		id    int
		width int
		time  int64
	}
	var rects []rectangle
	for _, c := range s.Cores {
		ps, err := pareto.Compute(c, cap)
		if err != nil {
			return nil, err
		}
		pw := ps.PreferredWidth(percent, delta)
		rects = append(rects, rectangle{id: c.ID, width: pw, time: ps.Time(pw)})
	}
	sort.Slice(rects, func(i, j int) bool {
		if rects[i].width != rects[j].width {
			return rects[i].width > rects[j].width
		}
		return rects[i].id < rects[j].id
	})
	res := &ShelfResult{
		Algorithm: algo,
		Shelf:     make(map[int]int, len(rects)),
		Widths:    make(map[int]int, len(rects)),
	}
	var shelfUsedW []int  // wires used on each shelf
	var shelfSpan []int64 // time span of each shelf
	for _, r := range rects {
		placed := -1
		switch algo {
		case FFDH:
			for j := range shelfUsedW {
				if shelfUsedW[j]+r.width <= w {
					placed = j
					break
				}
			}
		case NFDH:
			if n := len(shelfUsedW); n > 0 && shelfUsedW[n-1]+r.width <= w {
				placed = n - 1
			}
		}
		if placed < 0 {
			shelfUsedW = append(shelfUsedW, 0)
			shelfSpan = append(shelfSpan, 0)
			placed = len(shelfUsedW) - 1
		}
		shelfUsedW[placed] += r.width
		if r.time > shelfSpan[placed] {
			shelfSpan[placed] = r.time
		}
		res.Shelf[r.id] = placed
		res.Widths[r.id] = r.width
	}
	var t int64
	for j, span := range shelfSpan {
		res.ShelfStarts = append(res.ShelfStarts, t)
		res.ShelfSpans = append(res.ShelfSpans, span)
		t += span
		_ = j
	}
	res.Makespan = t
	return res, nil
}

// BestShelves sweeps the (percent, delta) grid for the given algorithm and
// returns the best shelf packing.
func BestShelves(s *soc.SOC, w, maxWidth int, percents, deltas []int, algo ShelfAlgorithm) (*ShelfResult, error) {
	if len(percents) == 0 {
		percents = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20, 30, 40, 60}
	}
	if len(deltas) == 0 {
		deltas = []int{0, 1, 2, 3, 4}
	}
	var best *ShelfResult
	for _, a := range percents {
		for _, d := range deltas {
			r, err := Shelves(s, w, maxWidth, a, d, algo)
			if err != nil {
				return nil, err
			}
			if best == nil || r.Makespan < best.Makespan {
				best = r
			}
		}
	}
	return best, nil
}

func minOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxIdx(xs []int64) int {
	m := 0
	for i := range xs {
		if xs[i] > xs[m] {
			m = i
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
