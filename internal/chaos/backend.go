package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Act is one scripted behavior of a chaos.Backend call. The zero value
// (ModeOK) passes the call through to the wrapped backend.
type Act struct {
	// Mode is what this call does before (ModeDelay) or instead of
	// (ModeError, ModePanic, ModeHang) running the wrapped backend.
	Mode Mode
	// Delay is the stall for ModeDelay.
	Delay time.Duration
	// Until, when non-nil, bounds a ModeHang: the hang releases (and the
	// call passes through) when Until is closed. A nil Until hangs with no
	// escape hatch at all — not even context cancellation — which is
	// exactly the misbehaving racer the portfolio's per-racer deadline
	// must survive.
	Until <-chan struct{}
}

// Backend turns any scheduling backend into a flaky, slow, panicking, or
// hanging one for tests: each call consumes the next scripted Act; an
// exhausted script passes through, so "fail K times, then recover" —
// the circuit-breaker lifecycle — is Script(Act{Mode: ModeError}, ...K).
//
// The type is generic over the scheduler's optimizer/params/schedule types
// because this package must not import the sched package (whose hot paths
// call Inject — the import back would cycle). Instantiated as
//
//	chaos.Backend[*sched.Optimizer, sched.Params, *sched.Schedule]
//
// it satisfies sched.Backend and can be registered like any other backend.
type Backend[Opt, P, S any] struct {
	// BackendName is the registry name the wrapper answers to.
	BackendName string
	// Inner runs the wrapped backend (typically inner.Schedule). A nil
	// Inner fails every passed-through call with an *InjectedError.
	Inner func(ctx context.Context, opt Opt, params P) (S, error)

	mu     sync.Mutex
	script []Act // guarded by mu; consumed front-first, one Act per call
	calls  int   // guarded by mu
}

// Script appends acts to the call script.
func (b *Backend[Opt, P, S]) Script(acts ...Act) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.script = append(b.script, acts...)
}

// Calls returns how many times Schedule was invoked.
func (b *Backend[Opt, P, S]) Calls() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls
}

// Name returns the wrapper's registry name.
//
//soclint:allow backendreg chaos wrappers are named per test fixture, not per type
func (b *Backend[Opt, P, S]) Name() string { return b.BackendName }

// Schedule performs the next scripted Act, then (for ModeOK and ModeDelay,
// or a ModeHang released by Until) delegates to Inner.
func (b *Backend[Opt, P, S]) Schedule(ctx context.Context, opt Opt, params P) (S, error) {
	var zero S
	b.mu.Lock()
	b.calls++
	var act Act
	if len(b.script) > 0 {
		act, b.script = b.script[0], b.script[1:]
	}
	b.mu.Unlock()

	switch act.Mode {
	case ModeError:
		return zero, &InjectedError{Site: b.BackendName}
	case ModePanic:
		panic(fmt.Sprintf("chaos: injected panic in backend %s", b.BackendName))
	case ModeDelay:
		t := time.NewTimer(act.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	case ModeHang:
		if act.Until == nil {
			// Deliberately ignores ctx: simulates a backend stuck in a
			// tight loop that never consults its context.
			select {}
		}
		<-act.Until
	}
	if b.Inner == nil {
		return zero, &InjectedError{Site: b.BackendName}
	}
	return b.Inner(ctx, opt, params)
}
