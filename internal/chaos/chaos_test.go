package chaos

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Test sites, registered once for the whole binary.
func init() {
	RegisterSites("test/a", "test/b", "test/prob", "test/hang", "test/delay")
}

// enable activates a plan and disables it on test cleanup.
func enable(t *testing.T, p Plan) *Active {
	t.Helper()
	a := Enable(p)
	t.Cleanup(a.Disable)
	return a
}

func TestInjectNoPlanIsFree(t *testing.T) {
	if err := Inject("test/a"); err != nil {
		t.Fatalf("Inject with no plan: %v", err)
	}
	if err := InjectContext(context.Background(), "test/a"); err != nil {
		t.Fatalf("InjectContext with no plan: %v", err)
	}
}

func TestErrorModeAndBookkeeping(t *testing.T) {
	a := enable(t, Plan{Rules: []Rule{{Site: "test/a", Mode: ModeError}}})
	err := Inject("test/a")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "test/a" {
		t.Fatalf("Inject = %v, want InjectedError at test/a", err)
	}
	if !ie.Temporary() {
		t.Error("injected errors must be transient")
	}
	if err := Inject("test/b"); err != nil {
		t.Errorf("unarmed site returned %v", err)
	}
	if got := a.Fired(); !reflect.DeepEqual(got, []string{"test/a"}) {
		t.Errorf("Fired() = %v, want [test/a]", got)
	}
	if a.Hits("test/b") != 1 || a.FireCount("test/b") != 0 {
		t.Errorf("test/b hits=%d fired=%d, want 1/0", a.Hits("test/b"), a.FireCount("test/b"))
	}
}

func TestAfterAndCount(t *testing.T) {
	a := enable(t, Plan{Rules: []Rule{{Site: "test/a", Mode: ModeError, After: 1, Count: 2}}})
	var errs int
	for i := 0; i < 5; i++ {
		if Inject("test/a") != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Errorf("After=1 Count=2 fired %d times over 5 hits, want 2", errs)
	}
	if a.FireCount("test/a") != 2 {
		t.Errorf("FireCount = %d, want 2", a.FireCount("test/a"))
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	pattern := func(seed int64) string {
		a := Enable(Plan{Seed: seed, Rules: []Rule{{Site: "test/prob", Mode: ModeError, Prob: 0.5}}})
		defer a.Disable()
		var sb strings.Builder
		for i := 0; i < 32; i++ {
			if Inject("test/prob") != nil {
				sb.WriteByte('x')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	p1, p2 := pattern(42), pattern(42)
	if p1 != p2 {
		t.Errorf("same seed produced different fire patterns:\n%s\n%s", p1, p2)
	}
	if !strings.Contains(p1, "x") || !strings.Contains(p1, ".") {
		t.Errorf("Prob=0.5 pattern %q should mix firing and passing", p1)
	}
	if p3 := pattern(7); p3 == p1 {
		t.Logf("seeds 42 and 7 coincide (%q); suspicious but not impossible", p3)
	}
}

func TestPanicMode(t *testing.T) {
	enable(t, Plan{Rules: []Rule{{Site: "test/a", Mode: ModePanic}}})
	defer func() {
		if recover() == nil {
			t.Error("ModePanic did not panic")
		}
	}()
	_ = Inject("test/a")
}

func TestHangRespectsContextAndDisable(t *testing.T) {
	a := enable(t, Plan{Rules: []Rule{{Site: "test/hang", Mode: ModeHang}}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := InjectContext(ctx, "test/hang"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung InjectContext = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang ignored the context deadline")
	}

	// A ctx-less Inject hang must release on Disable.
	released := make(chan error, 1)
	go func() { released <- Inject("test/hang") }()
	select {
	case err := <-released:
		t.Fatalf("ctx-less hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Disable()
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("released hang returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Disable did not release the hanging site")
	}
}

func TestDelayMode(t *testing.T) {
	enable(t, Plan{Rules: []Rule{{Site: "test/delay", Mode: ModeDelay, Delay: 20 * time.Millisecond}}})
	start := time.Now()
	if err := Inject("test/delay"); err != nil {
		t.Fatalf("delay returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay site returned after %v, want >= 20ms", d)
	}
}

func TestEnableValidation(t *testing.T) {
	mustPanic := func(name string, p Plan) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Enable did not panic", name)
			}
		}()
		Enable(p).Disable()
	}
	mustPanic("unknown site", Plan{Rules: []Rule{{Site: "test/nope", Mode: ModeError}}})
	mustPanic("bad mode", Plan{Rules: []Rule{{Site: "test/a", Mode: ModeOK}}})
	mustPanic("bad prob", Plan{Rules: []Rule{{Site: "test/a", Mode: ModeError, Prob: 2}}})
	mustPanic("duplicate rule", Plan{Rules: []Rule{
		{Site: "test/a", Mode: ModeError},
		{Site: "test/a", Mode: ModePanic},
	}})

	a := enable(t, Plan{})
	defer func() {
		if recover() == nil {
			t.Error("double Enable did not panic")
		}
	}()
	_ = a
	Enable(Plan{})
}

func TestSitesSorted(t *testing.T) {
	names := Sites()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Sites() = %v not sorted", names)
		}
	}
	found := false
	for _, n := range names {
		if n == "test/a" {
			found = true
		}
	}
	if !found {
		t.Errorf("Sites() = %v missing registered test/a", names)
	}
}

func TestBackendScript(t *testing.T) {
	inner := func(ctx context.Context, opt int, params string) (int, error) { return 7, nil }
	b := &Backend[int, string, int]{BackendName: "flaky", Inner: inner}
	b.Script(Act{Mode: ModeError}, Act{Mode: ModeError})

	for i := 0; i < 2; i++ {
		var ie *InjectedError
		if _, err := b.Schedule(context.Background(), 0, ""); !errors.As(err, &ie) {
			t.Fatalf("call %d: err = %v, want InjectedError", i, err)
		}
	}
	if v, err := b.Schedule(context.Background(), 0, ""); err != nil || v != 7 {
		t.Fatalf("exhausted script: got (%d, %v), want (7, nil)", v, err)
	}
	if b.Calls() != 3 {
		t.Errorf("Calls() = %d, want 3", b.Calls())
	}

	b.Script(Act{Mode: ModePanic})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("scripted panic did not panic")
			}
		}()
		_, _ = b.Schedule(context.Background(), 0, "")
	}()

	release := make(chan struct{})
	b.Script(Act{Mode: ModeHang, Until: release})
	got := make(chan int, 1)
	go func() {
		v, _ := b.Schedule(context.Background(), 0, "")
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("hang returned early with %d", v)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case v := <-got:
		if v != 7 {
			t.Errorf("released hang returned %d, want 7", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("closing Until did not release the hang")
	}

	var nilInner Backend[int, string, int]
	nilInner.BackendName = "empty"
	if _, err := nilInner.Schedule(context.Background(), 0, ""); err == nil {
		t.Error("nil Inner should fail passed-through calls")
	}
}

func TestModeStringsAndInjectedError(t *testing.T) {
	want := map[Mode]string{
		ModeOK:    "ok",
		ModeError: "error",
		ModePanic: "panic",
		ModeDelay: "delay",
		ModeHang:  "hang",
		Mode(99):  "chaos.Mode(99)",
	}
	for m, s := range want {
		if got := m.String(); got != s {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, s)
		}
	}
	err := &InjectedError{Site: "test/a"}
	if got := err.Error(); !strings.Contains(got, "test/a") {
		t.Errorf("InjectedError.Error() = %q, want the site name in it", got)
	}
	if !err.Temporary() {
		t.Error("InjectedError must be transient")
	}
	b := &Backend[int, int, int]{BackendName: "scripted"}
	if got := b.Name(); got != "scripted" {
		t.Errorf("Backend.Name() = %q, want %q", got, "scripted")
	}
}
