// Package chaos is the repository's deterministic fault-injection harness.
// Production hot paths compile in named failpoints — chaos.Inject(name)
// calls that are free no-ops until a test activates a Plan — and tests
// drive them with seeded plans that make a site return an error, panic,
// stall, or hang. The chaos suite at the repo root (chaos_test.go) replays
// the golden corpus under such plans to prove the portfolio and the
// service degrade gracefully instead of wedging.
//
// Discipline (machine-checked by the soclint failpoint analyzer):
//
//   - Inject sites live only in non-test files: the instrumentation is part
//     of the production code under test, never of the test itself.
//   - Site names at Inject call sites are compile-time string constants and
//     are registered from the instrumented package's init via
//     RegisterSites, so the set of failpoints is statically enumerable and
//     Enable can reject a plan naming a site that does not exist.
//
// This package imports nothing from the rest of the repository except the
// leaf telemetry package obs (fired failpoints open a "chaos/<site>" span
// so injected faults are visible in traces) — the packages it instruments
// (sched, rectpack, service) import it, so any other import back would
// cycle. The Backend wrapper in backend.go is generic over the scheduler's
// types for the same reason.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Mode is what a firing failpoint does to its caller.
type Mode int

const (
	// ModeOK passes through: the site behaves normally. It is the zero
	// value so an unset Backend script entry is a no-op.
	ModeOK Mode = iota
	// ModeError makes the site return an *InjectedError (transient: it
	// reports Temporary() == true, so resil.IsTransient retries it).
	ModeError
	// ModePanic makes the site panic.
	ModePanic
	// ModeDelay stalls the site for the rule's Delay, then passes through.
	ModeDelay
	// ModeHang blocks the site until the plan is disabled (or, for
	// InjectContext sites, until the caller's context is done).
	ModeHang
)

// String names the mode for logs and errors.
func (m Mode) String() string {
	switch m {
	case ModeOK:
		return "ok"
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeHang:
		return "hang"
	}
	return fmt.Sprintf("chaos.Mode(%d)", int(m))
}

// InjectedError is the error a ModeError failpoint (or a scripted Backend)
// returns. It is transient by construction — chaos models recoverable
// infrastructure faults, and the retry/breaker layers are exactly what the
// suite exercises.
type InjectedError struct {
	// Site is the failpoint (or wrapped backend) that fired.
	Site string
}

func (e *InjectedError) Error() string { return "chaos: injected failure at " + e.Site }

// Temporary marks the error transient (resil.IsTransient consults it).
func (e *InjectedError) Temporary() bool { return true }

// Rule makes one failpoint fire.
type Rule struct {
	// Site is the registered failpoint name this rule arms.
	Site string
	// Mode is what happens when the rule fires (must not be ModeOK).
	Mode Mode
	// Delay is the stall duration for ModeDelay.
	Delay time.Duration
	// Prob is the per-hit firing probability in (0, 1]; 0 means 1 (always
	// fire). Draws come from the plan's seeded generator, so a given seed
	// and hit order fire identically on every run.
	Prob float64
	// After skips the first After hits of the site before firing.
	After int
	// Count caps how many times the rule fires (0 = unlimited).
	Count int
}

// Plan is a seeded set of fault rules, activated with Enable.
type Plan struct {
	// Seed seeds the probability draws for rules with Prob < 1. Plans with
	// only always-fire rules are deterministic regardless of Seed.
	Seed int64
	// Rules arm failpoints; at most one rule per site.
	Rules []Rule
}

// Active is an enabled plan: the handle to disable it and to inspect what
// fired. At most one plan is active at a time, process-wide.
type Active struct {
	mu    sync.Mutex
	rng   *rand.Rand // guarded by mu
	rules map[string]*armedRule
	hits  map[string]int // guarded by mu; every Inject per site
	fired map[string]int // guarded by mu; rule firings per site
	done  chan struct{}  // closed by Disable; unblocks hangs and delays
}

// armedRule is one rule plus its remaining-fire budget.
type armedRule struct {
	rule  Rule
	fired int // guarded by Active.mu
}

// active is the process-wide enabled plan (nil when chaos is off). Inject
// is a single atomic load on the disabled path, cheap enough for hot paths.
var active atomic.Pointer[Active]

var (
	sitesMu sync.Mutex
	sites   = make(map[string]bool) // guarded by sitesMu
)

// RegisterSites declares failpoint names. Instrumented packages call it
// from init with the same constants their Inject sites use, making the
// failpoint inventory available to Enable's validation and to tests that
// assert every site fired.
func RegisterSites(names ...string) {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	for _, name := range names {
		if name == "" {
			panic("chaos: RegisterSites with empty name")
		}
		sites[name] = true
	}
}

// Sites returns every registered failpoint name, sorted.
func Sites() []string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	out := make([]string, 0, len(sites))
	for name := range sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// registered reports whether a site name was declared.
func registered(name string) bool {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	return sites[name]
}

// Enable validates and activates a plan, returning the handle to disable
// it. It panics on an invalid plan (unknown site, bad mode, duplicate
// rule) or when another plan is already active — both are test-author
// errors, not runtime conditions.
func Enable(p Plan) *Active {
	a := &Active{
		rng:   rand.New(rand.NewSource(p.Seed)),
		rules: make(map[string]*armedRule, len(p.Rules)),
		hits:  make(map[string]int),
		fired: make(map[string]int),
		done:  make(chan struct{}),
	}
	for _, r := range p.Rules {
		if !registered(r.Site) {
			panic(fmt.Sprintf("chaos: plan rule for unregistered site %q (registered: %v)", r.Site, Sites()))
		}
		if r.Mode <= ModeOK || r.Mode > ModeHang {
			panic(fmt.Sprintf("chaos: plan rule for %q has invalid mode %v", r.Site, r.Mode))
		}
		if r.Prob < 0 || r.Prob > 1 {
			panic(fmt.Sprintf("chaos: plan rule for %q has probability %v outside [0,1]", r.Site, r.Prob))
		}
		if _, dup := a.rules[r.Site]; dup {
			panic(fmt.Sprintf("chaos: plan has two rules for site %q", r.Site))
		}
		a.rules[r.Site] = &armedRule{rule: r}
	}
	if !active.CompareAndSwap(nil, a) {
		panic("chaos: a plan is already active; Disable it first")
	}
	return a
}

// Disable deactivates the plan and unblocks every hanging or delayed
// site. Disabling twice is a no-op.
func (a *Active) Disable() {
	if active.CompareAndSwap(a, nil) {
		close(a.done)
	}
}

// Fired returns the sites whose rules fired at least once, sorted.
func (a *Active) Fired() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.fired))
	for name := range a.fired {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Hits returns how many times the site was reached (fired or not).
func (a *Active) Hits(site string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hits[site]
}

// FireCount returns how many times the site's rule fired.
func (a *Active) FireCount(site string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fired[site]
}

// Inject is a failpoint site without a context: free when no plan is
// active, otherwise subject to the active plan's rule for name. ModeHang
// blocks until the plan is disabled. Use InjectContext at sites that have
// a context so hangs and delays respect cancellation.
func Inject(name string) error {
	a := active.Load()
	if a == nil {
		return nil
	}
	return a.hit(nil, name)
}

// InjectContext is Inject for context-bearing sites: ModeDelay and
// ModeHang additionally unblock when ctx is done, returning ctx's error —
// the injected stall then surfaces exactly like any other missed deadline.
func InjectContext(ctx context.Context, name string) error {
	a := active.Load()
	if a == nil {
		return nil
	}
	return a.hit(ctx, name)
}

// hit applies the plan's rule for the site, if any.
func (a *Active) hit(ctx context.Context, name string) error {
	a.mu.Lock()
	a.hits[name]++
	ar, ok := a.rules[name]
	if !ok {
		a.mu.Unlock()
		return nil
	}
	r := ar.rule
	if a.hits[name] <= r.After ||
		(r.Count > 0 && ar.fired >= r.Count) ||
		(r.Prob > 0 && r.Prob < 1 && a.rng.Float64() >= r.Prob) {
		a.mu.Unlock()
		return nil
	}
	ar.fired++
	a.fired[name]++
	a.mu.Unlock()

	// The fault fires: record it on the request trace, if any.
	_, span := obs.Start(ctx, "chaos/"+name)
	span.SetAttr("mode", r.Mode.String())
	defer span.End()

	switch r.Mode {
	case ModeError:
		return &InjectedError{Site: name}
	case ModePanic:
		panic(fmt.Sprintf("chaos: injected panic at %s", name))
	case ModeDelay:
		t := time.NewTimer(r.Delay)
		defer t.Stop()
		if ctx == nil {
			select {
			case <-t.C:
			case <-a.done:
			}
			return nil
		}
		select {
		case <-t.C:
			return nil
		case <-a.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case ModeHang:
		if ctx == nil {
			<-a.done
			return nil
		}
		select {
		case <-a.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
