package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/lint/analysis"
)

// CtxFlow enforces the context-threading convention below the public API
// boundary (packages sched, datavol, service, and the module root's
// api.go):
//
//   - context.Background() / context.TODO() may appear only in an exported
//     function that takes no context.Context itself — that function IS the
//     boundary (the documented compat wrappers: sched.SweepBest,
//     datavol.Run, repro.Schedule, ...) — or as the nil-guard idiom
//     `if ctx == nil { ctx = context.Background() }` that assigns to the
//     function's own context parameter. Everywhere else a fresh context
//     severs the caller's cancellation, so it is banned.
//   - An exported function that spawns goroutines must accept a
//     context.Context, unless it derives its own cancellable lifecycle
//     (calls context.WithCancel/WithTimeout/WithDeadline, like a worker
//     pool constructor paired with a Close method).
//   - A function that has a context.Context parameter must forward it:
//     passing a literal nil context to a context-taking callee is flagged.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "enforce context.Context threading below the API boundary\n\n" +
		"In sched, datavol, service and api.go: no context.Background()/TODO() outside exported\n" +
		"boundary wrappers or nil-guards, no goroutine-spawning exported APIs without a Context,\n" +
		"and no literal nil context forwarded from a function that has one.",
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	base := pkgBase(pass.Pkg.Path())
	isRoot := pkgPath(pass.Pkg.Path()) == rootPackage
	if !ctxPackages[base] && !isRoot {
		return nil
	}
	for _, fd := range funcDecls(pass.Files) {
		if isRoot {
			f := fileOf(pass.Files, fd.Pos())
			if f == nil || filepath.Base(pass.Fset.Position(f.Pos()).Filename) != "api.go" {
				continue
			}
		}
		checkCtxFlow(pass, fd)
	}
	return nil
}

func checkCtxFlow(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ctx := ctxParam(info, fd)
	exported := fd.Name.IsExported()

	// Positions of Background()/TODO() calls excused by the nil-guard
	// idiom: `ctx = context.Background()` assigning to the ctx parameter.
	nilGuard := make(map[*ast.CallExpr]bool)
	if ctx != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok || info.Uses[lhs] != ctx {
				return true
			}
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				nilGuard[call] = true
			}
			return true
		})
	}

	managesLifecycle := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := pkgFunc(info, call, "context"); ok {
				switch name {
				case "WithCancel", "WithTimeout", "WithDeadline":
					managesLifecycle = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := pkgFunc(info, n, "context"); ok && (name == "Background" || name == "TODO") {
				boundary := exported && ctx == nil
				if !boundary && !nilGuard[n] {
					pass.Reportf(n.Pos(),
						"context.%s() below the API boundary severs the caller's cancellation; thread a context.Context through %s", name, fd.Name.Name)
				}
			}
			checkNilCtxArg(pass, fd, ctx, n)
		case *ast.GoStmt:
			if exported && ctx == nil && !managesLifecycle {
				pass.Reportf(n.Pos(),
					"exported %s spawns a goroutine but accepts no context.Context; add one (or manage the lifecycle with context.WithCancel and a Close)", fd.Name.Name)
			}
		}
		return true
	})
}

// checkNilCtxArg flags a literal nil passed in a context.Context argument
// slot by a function that has its own context to forward.
func checkNilCtxArg(pass *analysis.Pass, fd *ast.FuncDecl, ctx *types.Var, call *ast.CallExpr) {
	if ctx == nil {
		return
	}
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != "nil" || info.Uses[id] != types.Universe.Lookup("nil") {
			continue
		}
		if isContextType(sig.Params().At(i).Type()) {
			pass.Reportf(arg.Pos(),
				"%s has a context.Context but passes nil to %s; forward ctx instead", fd.Name.Name, types.ExprString(call.Fun))
		}
	}
}
