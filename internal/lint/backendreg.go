package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// BackendReg enforces the Backend registry discipline:
//
//   - sched.RegisterBackend may only be called from an init function.
//     Registration anywhere else makes backend availability depend on call
//     order instead of the import graph.
//   - A backend type's Name() must return a compile-time string constant;
//     the name is a registry key and a golden-file ingredient, so it can
//     never be computed.
//   - Every loop in a backend's Schedule method that does real work (its
//     body contains a function call) must reference the ctx parameter —
//     an Err check, a Done select, or forwarding ctx to a callee — so the
//     portfolio racer's cancellation actually stops it.
var BackendReg = &analysis.Analyzer{
	Name: "backendreg",
	Doc: "enforce Backend registration and cancellation discipline\n\n" +
		"RegisterBackend only from init; Name() must return a constant; every call-bearing\n" +
		"loop in a Schedule method must consult its ctx.",
	Run: runBackendReg,
}

func runBackendReg(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, fd := range funcDecls(pass.Files) {
		// Rule 1: RegisterBackend only from init.
		inInit := fd.Recv == nil && fd.Name.Name == "init"
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegisterBackend(info, call) {
				return true
			}
			// RegisterBackend's own body is not a registration site.
			if fd.Recv == nil && fd.Name.Name == "RegisterBackend" {
				return true
			}
			if !inInit {
				pass.Reportf(call.Pos(),
					"sched.RegisterBackend called from %s; backends must register in init so availability follows the import graph", fd.Name.Name)
			}
			return true
		})

		if fd.Recv == nil || !isBackendType(info, fd) {
			continue
		}
		switch fd.Name.Name {
		case "Name":
			checkConstantName(pass, fd)
		case "Schedule":
			checkScheduleLoops(pass, fd)
		}
	}
	return nil
}

// isRegisterBackend reports whether call invokes a function named
// RegisterBackend declared in a package named sched (selector or local).
func isRegisterBackend(info *types.Info, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Name() != "RegisterBackend" || fn.Pkg() == nil {
		return false
	}
	return pkgBase(fn.Pkg().Path()) == "sched"
}

// isBackendType reports whether the method's receiver type has the Backend
// shape: a Name() string method and a Schedule method whose first
// parameter is a context.Context.
func isBackendType(info *types.Info, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	var hasName, hasSchedule bool
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		sig := m.Type().(*types.Signature)
		switch m.Name() {
		case "Name":
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
				types.Identical(sig.Results().At(0).Type(), types.Typ[types.String]) {
				hasName = true
			}
		case "Schedule":
			if sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
				hasSchedule = true
			}
		}
	}
	return hasName && hasSchedule
}

// checkConstantName requires Name() to return a compile-time constant.
func checkConstantName(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			tv, ok := pass.TypesInfo.Types[res]
			if !ok || tv.Value == nil {
				pass.Reportf(res.Pos(),
					"backend Name() must return a string constant; %s is computed", types.ExprString(res))
			}
		}
		return true
	})
}

// checkScheduleLoops requires every call-bearing loop body in Schedule to
// reference the ctx parameter.
func checkScheduleLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ctx := ctxParam(info, fd)
	if ctx == nil {
		pass.Reportf(fd.Pos(), "backend Schedule method has no context.Context parameter")
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		if !loopDoesWork(info, body) || usesObject(info, body, ctx) {
			return true
		}
		pass.Reportf(n.Pos(),
			"Schedule loop body calls functions but never consults ctx; add a ctx.Err() check so cancellation stops it")
		return true
	})
}

// loopDoesWork reports whether the body contains a non-builtin call.
func loopDoesWork(info *types.Info, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		// Conversions are not work either.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		work = true
		return false
	})
	return work
}
