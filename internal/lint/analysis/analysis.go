// Package analysis is a minimal, dependency-free sibling of
// golang.org/x/tools/go/analysis: just enough driver-independent plumbing
// for the repo-specific soclint analyzers (see package lint) to run over a
// type-checked package and report position-anchored diagnostics. It exists
// because this repository builds offline against the standard library
// alone; the API deliberately mirrors the x/tools shape (Analyzer, Pass,
// Diagnostic) so the analyzers could be ported to a stock multichecker by
// changing imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's short identifier ("detrange", "ctxflow", ...).
	// It names the analyzer in diagnostics, in the driver's enable/disable
	// flags, and in //soclint:allow suppression comments.
	Name string
	// Doc is a one-paragraph description; the first line doubles as the
	// flag usage string in cmd/soclint.
	Doc string
	// IncludeTests keeps this analyzer's findings in _test.go files, which
	// the filter otherwise drops. Set it on analyzers whose rules are
	// specifically about what test code may do (failpoint).
	IncludeTests bool
	// Run inspects one package and reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message states the violation and the expected remedy.
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to the package and returns the surviving
// diagnostics: findings in _test.go files and findings suppressed by a
// "//soclint:allow <analyzer> <reason>" comment (on the finding's line or
// the line directly above it) are dropped, and the rest are sorted by
// position. Analyzer errors abort the run — a broken analyzer must fail
// the build, not silently pass it.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	includeTests := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		includeTests[a.Name] = a.IncludeTests
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return filter(diags, fset, files, includeTests), nil
}

// allowRe matches suppression comments. The analyzer name is mandatory; a
// trailing justification is strongly encouraged and kept free-form.
var allowRe = regexp.MustCompile(`^//soclint:allow\s+([a-z]+)\b`)

// filter applies the test-file and suppression-comment policies and sorts.
// Analyzers in includeTests keep their _test.go findings.
func filter(diags []Diagnostic, fset *token.FileSet, files []*ast.File, includeTests map[string]bool) []Diagnostic {
	// allowed[analyzer][file] holds the set of line numbers a suppression
	// comment covers: its own line (trailing comment) and the next line
	// (comment above the flagged statement).
	allowed := make(map[string]map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byFile := allowed[m[1]]
				if byFile == nil {
					byFile = make(map[string]map[int]bool)
					allowed[m[1]] = byFile
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !includeTests[d.Analyzer] && strings.HasSuffix(filepath.Base(pos.Filename), "_test.go") {
			continue
		}
		if lines := allowed[d.Analyzer][pos.Filename]; lines[pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
