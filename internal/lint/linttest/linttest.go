// Package linttest runs soclint analyzers over source fixtures, in the
// spirit of golang.org/x/tools/go/analysis/analysistest: fixture packages
// live under internal/lint/testdata/src/<root>/..., and a line that should
// be flagged carries a trailing `// want "regexp"` comment. The runner
// type-checks each fixture package (fixture-local imports resolve inside
// the same root; everything else resolves from the standard library's
// source), applies the analyzers, and fails the test on any unmatched
// diagnostic or unsatisfied expectation.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// Run loads every fixture package under testdata/src/<root> (relative to
// the calling test's directory) and checks the analyzers' diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, analyzers []*analysis.Analyzer, root string) {
	t.Helper()
	base := filepath.Join("testdata", "src", root)
	ld := newLoader(base)
	dirs, err := fixtureDirs(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatalf("no fixture packages under %s", base)
	}
	for _, dir := range dirs {
		pkg, err := ld.load(dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		diags, err := analysis.Run(analyzers, ld.fset, pkg.files, pkg.pkg, pkg.info)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", dir, err)
		}
		checkWants(t, ld.fset, pkg.files, diags)
	}
}

// fixtureDirs lists every directory under base that contains .go files,
// as slash-separated paths relative to base (these double as the fixture
// packages' import paths).
func fixtureDirs(base string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.Walk(base, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(base, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks fixture packages, resolving fixture-local imports
// recursively and everything else from the standard library source.
type loader struct {
	base   string
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*loadedPkg
}

func newLoader(base string) *loader {
	fset := token.NewFileSet()
	return &loader{
		base:   base,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*loadedPkg{},
	}
}

// Import implements types.Importer for fixture type-checking.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.base, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks the fixture package at dir (relative to the
// loader's base), memoized.
func (ld *loader) load(dir string) (*loadedPkg, error) {
	if p, ok := ld.loaded[dir]; ok {
		return p, nil
	}
	full := filepath.Join(ld.base, filepath.FromSlash(dir))
	entries, err := os.ReadDir(full)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(full, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", full)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(dir, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.loaded[dir] = p
	return p, nil
}

// wantRe extracts the quoted regexps of a want comment.
var wantRe = regexp.MustCompile(`// want (("[^"]*" ?)+)$`)

var wantArgRe = regexp.MustCompile(`"([^"]*)"`)

// expectation is one `// want "re"` waiting to be matched.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkWants cross-checks diagnostics against the fixtures' want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, arg[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
