// Package chaos mirrors the real failpoint registry. The failpoint
// analyzer exempts the chaos package itself — its implementation and
// tests necessarily handle dynamic site names.
package chaos

import "context"

var sites = map[string]bool{}

// RegisterSites mirrors the real registration entry point; inside the
// chaos package, dynamic names are fine.
func RegisterSites(names ...string) {
	for _, n := range names {
		sites[n] = true
	}
}

// Inject mirrors the real failpoint hook.
func Inject(name string) error {
	_ = sites[name]
	return nil
}

// InjectContext mirrors the context-aware failpoint hook.
func InjectContext(ctx context.Context, name string) error {
	_ = ctx
	return Inject(name)
}
