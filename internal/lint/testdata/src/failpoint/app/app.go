// Package app exercises the failpoint rules in a production package:
// site names must be compile-time string constants.
package app

import (
	"context"

	"chaos"
)

const siteRun = "app/run"

const sitePrefix = "app/"

// Good: constant site names, including constant-folded concatenation.
func init() {
	chaos.RegisterSites(siteRun, sitePrefix+"other")
}

func run(ctx context.Context) error {
	if err := chaos.Inject(siteRun); err != nil {
		return err
	}
	return chaos.InjectContext(ctx, sitePrefix+"other")
}

// Bad: computed site names make the registry impossible to enumerate
// statically.
func dynamic(ctx context.Context, name string) {
	_ = chaos.Inject(name)                       // want "not a compile-time string constant"
	_ = chaos.Inject(sitePrefix + name)          // want "not a compile-time string constant"
	_ = chaos.InjectContext(ctx, name)           // want "not a compile-time string constant"
	chaos.RegisterSites(siteRun, name, "app/ok") // want "not a compile-time string constant"
}
