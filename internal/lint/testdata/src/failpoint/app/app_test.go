package app

import (
	"context"

	"chaos"
)

// Bad: failpoints compiled into test files test nothing that ships.
func testOnlyFailpoints(ctx context.Context) {
	_ = chaos.Inject(siteRun)           // want "in a test file"
	_ = chaos.InjectContext(ctx, "app") // want "in a test file"
}
