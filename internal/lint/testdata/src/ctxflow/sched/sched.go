// Package sched stands in for a layer below the public API boundary:
// fresh contexts are banned outside exported boundary wrappers, and
// goroutine-spawning exported functions must accept a context.
package sched

import "context"

func runCtx(ctx context.Context, items []int) error {
	for range items {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Flagged: a fresh context in an unexported helper severs cancellation.
func runAll(items []int) error {
	ctx := context.Background() // want "below the API boundary severs"
	return runCtx(ctx, items)
}

// Flagged: TODO is no better than Background.
func runLater(items []int) error {
	return runCtx(context.TODO(), items) // want "below the API boundary severs"
}

// Good: an exported function without a ctx parameter IS the boundary.
func Run(items []int) error {
	return runCtx(context.Background(), items)
}

// Good: the nil-guard idiom assigns to the function's own parameter.
func RunContext(ctx context.Context, items []int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return runCtx(ctx, items)
}

// Flagged: a function holding a context must forward it, not nil.
func forward(ctx context.Context, items []int) error {
	return runCtx(nil, items) // want "passes nil to runCtx"
}

// Flagged: exported goroutine spawner with no context and no lifecycle.
func Spawn(items []int) {
	go runCtx(context.Background(), items) // want "spawns a goroutine but accepts no context.Context"
}

// Pool owns its goroutine's lifecycle via an explicit cancel.
type Pool struct {
	cancel context.CancelFunc
}

// Good: the constructor derives a cancellable context, so the spawned
// goroutine has a managed lifecycle.
func NewPool() *Pool {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{cancel: cancel}
	go p.run(ctx)
	return p
}

func (p *Pool) run(ctx context.Context) {
	<-ctx.Done()
}

// Close stops the pool's goroutine.
func (p *Pool) Close() {
	p.cancel()
}

// Good: unexported spawners are internal plumbing.
func spawnInternal(ctx context.Context, items []int) {
	go runCtx(ctx, items)
}
