// Package util is outside the ctxflow boundary: fresh contexts are fine.
package util

import "context"

func freshContext() context.Context {
	return context.Background()
}
