// Package repro mirrors the module root: only api.go is inside the
// ctxflow boundary there.
package repro

import "context"

func runCtx(ctx context.Context) error {
	return ctx.Err()
}

// Flagged: api.go is checked even in the root package.
func sweep() error {
	return runCtx(context.Background()) // want "below the API boundary severs"
}
