package repro

import "context"

// Not api.go: the rest of the root package is outside the boundary.
func helperElsewhere() error {
	return runCtx(context.Background())
}
