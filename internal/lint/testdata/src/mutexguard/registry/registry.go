// Package registry exercises every guard flavor mutexguard understands:
// sibling-field guards, RWMutex read/write asymmetry, package-level mutex
// guards, and type-qualified guards on structs owned by another struct.
package registry

import "sync"

// Counter guards a field with a sibling mutex.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Good: deferred unlock holds to the end of the function.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Good: explicit unlock closes the interval after the access.
func (c *Counter) Get() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// Flagged: the read happens after the interval closed.
func (c *Counter) Stale() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "c.n is read without holding mu"
}

// Flagged: unlocked write.
func (c *Counter) Reset() {
	c.n = 0 // want "c.n is written without holding mu"
}

// Good: the Locked suffix asserts the caller holds the mutex.
func (c *Counter) incLocked() {
	c.n++
}

// Good: a freshly constructed value is invisible to other goroutines.
func NewCounter(start int) *Counter {
	c := &Counter{}
	c.n = start
	return c
}

// Table guards a map with an RWMutex.
type Table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

// Good: RLock satisfies a read.
func (t *Table) Lookup(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// Flagged: RLock does not license a write.
func (t *Table) Put(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = v // want "t.m is written without holding mu"
}

// Good: a write under the full lock.
func (t *Table) Set(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

var regMu sync.Mutex

// Entry rows are shared through a package-level mutex.
type Entry struct {
	hits int // guarded by regMu
}

// Good: package-level mutex held across the access.
func bump(e *Entry) {
	regMu.Lock()
	e.hits++
	regMu.Unlock()
}

// Flagged: no lock at all.
func peek(e *Entry) int {
	return e.hits // want "e.hits is read without holding regMu"
}

var (
	poolMu sync.Mutex
	pool   = map[string]int{} // guarded by poolMu
)

// Good: an annotated package-level variable accessed under its mutex.
func add(k string) {
	poolMu.Lock()
	defer poolMu.Unlock()
	pool[k]++
}

// Flagged: the package-level variable is touched without its mutex.
func size() int {
	return len(pool) // want "pool is read without holding poolMu"
}

// Registry owns entries; entry fields use the owner's lock.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry // guarded by mu
}

type entry struct {
	val int // guarded by Registry.mu
}

// Good: the entry is touched under the owning registry's lock.
func (r *Registry) Set(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[k]
	if !ok {
		e = &entry{}
		r.entries[k] = e
	}
	e.val = v
}

// Flagged: a bare entry access has no registry lock in sight.
func drain(e *entry) int {
	return e.val // want "e.val is read without holding Registry.mu"
}

// Good: an early-return branch unlocks before leaving; accesses after the
// branch are still inside the lock's extent.
func (r *Registry) Len(fast bool) int {
	r.mu.Lock()
	if fast {
		n := len(r.entries)
		r.mu.Unlock()
		return n
	}
	n := 0
	for range r.entries {
		n++
	}
	r.mu.Unlock()
	return n
}
