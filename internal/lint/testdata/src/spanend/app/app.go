// Package app exercises the spanend rules in an instrumented package:
// every opened span needs a deferred End() in the same function.
package app

import (
	"context"

	"obs"
)

var tracer = &obs.Tracer{}

// Good: the canonical pattern.
func direct(ctx context.Context) {
	ctx, span := obs.Start(ctx, "direct")
	defer span.End()
	_ = ctx
}

// Good: a root span closed the same way.
func root(ctx context.Context) {
	ctx, span := tracer.StartTrace(ctx, "root")
	defer span.End()
	_ = ctx
}

// Good: End inside a deferred function literal (the middleware pattern,
// where attrs are set after the handler ran).
func deferredLit(ctx context.Context) {
	_, span := obs.Start(ctx, "lit")
	defer func() {
		span.SetAttr("status", 200)
		span.End()
	}()
}

// Good: a goroutine body is its own scope and defers its own End (the
// racer pattern).
func goroutine(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		_, span := obs.Start(ctx, "racer")
		defer span.End()
		close(done)
	}()
	<-done
}

// Bad: no End at all — the span leaks open until its root is exported.
func leak(ctx context.Context) {
	_, span := obs.Start(ctx, "leak") // want "no deferred End"
	span.SetAttr("k", "v")
}

// Bad: a non-deferred End misses early returns and panic paths.
func notDeferred(ctx context.Context, fail bool) error {
	_, span := obs.Start(ctx, "plain") // want "no deferred End"
	if fail {
		return context.Canceled
	}
	span.End()
	return nil
}

// Bad: the span result is discarded, so nothing can ever End it.
func discarded(ctx context.Context) context.Context {
	ctx, _ = obs.Start(ctx, "anon") // want "discarded with _"
	return ctx
}

// Bad: both results dropped on the floor.
func dropped(ctx context.Context) {
	obs.Start(ctx, "dropped") // want "result discarded"
}

// Bad: a goroutine's deferred End cannot close the enclosing function's
// span — the defer runs at the goroutine's exit, racing the caller.
func wrongScope(ctx context.Context) {
	_, span := obs.Start(ctx, "outer") // want "no deferred End"
	done := make(chan struct{})
	go func() {
		defer span.End()
		close(done)
	}()
	<-done
}

// Good: a StartTrace whose End is deferred inside the cleanup literal.
func rootLit(ctx context.Context) {
	_, span := tracer.StartTrace(ctx, "job")
	defer func() { span.End() }()
}
