// Package obs mirrors the real telemetry package. The spanend analyzer
// exempts the obs package itself — its implementation and tests handle
// spans that are intentionally left open.
package obs

import "context"

// Span mirrors the real span handle.
type Span struct{}

// End mirrors the real span close.
func (s *Span) End() {}

// SetAttr mirrors the real attribute setter.
func (s *Span) SetAttr(k string, v any) {}

// Tracer mirrors the real trace factory.
type Tracer struct{}

// Start mirrors the real child-span opener.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// StartTrace mirrors the real root-span opener.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// inside the obs package, an un-Ended span is fine (machinery and tests).
func internal(ctx context.Context) {
	_, sp := Start(ctx, "internal")
	sp.SetAttr("k", "v")
}
