// Package sched mirrors the real backend registry: registration happens
// in init with constant names, and Schedule loops must be cancellable.
package sched

import "context"

// Backend mirrors the registry interface.
type Backend interface {
	Name() string
	Schedule(ctx context.Context, n int) error
}

var registry = map[string]Backend{}

// RegisterBackend mirrors the real registration entry point.
func RegisterBackend(b Backend) {
	registry[b.Name()] = b
}

func work(int) {}

type good struct{}

func (good) Name() string { return "good" }

// Good: the working loop consults ctx; the bookkeeping loop has no calls
// and needs no cancellation check.
func (good) Schedule(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(i)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	_ = total
	return nil
}

func init() {
	RegisterBackend(good{})
}

type bad struct {
	suffix string
}

// Flagged: a computed registry name.
func (b bad) Name() string {
	return "bad" + b.suffix // want "must return a string constant"
}

// Flagged: the loop does real work but never consults ctx.
func (bad) Schedule(ctx context.Context, n int) error {
	for i := 0; i < n; i++ { // want "never consults ctx"
		work(i)
	}
	return nil
}

// Flagged: registration outside init.
func setup() {
	RegisterBackend(bad{}) // want "must register in init"
}
