// Package other is outside the golden-producing set, so detrange stays
// silent even for order-dependent output.
package other

import "fmt"

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
