// Package report stands in for a golden-producing output layer: every map
// range whose order can reach the serialized bytes must be flagged.
package report

import (
	"fmt"
	"io"
	"sort"
)

// Flagged: formatting inside a map range is ordered output.
func printAll(m map[string]int) {
	for k, v := range m { // want "map iteration order reaches fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Flagged: writer methods inside a map range are ordered output.
func writeAll(w io.Writer, m map[string]string) {
	for _, v := range m { // want "map iteration order reaches w.Write"
		w.Write([]byte(v))
	}
}

// Flagged: the accumulated slice escapes without ever being sorted.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "never sorted before use"
		keys = append(keys, k)
	}
	return keys
}

// Good: the sanctioned collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Good: a per-iteration accumulator carries no cross-key order.
func lengths(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// Good: order-insensitive reduction, no sink in the body.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Good: an intentional finding suppressed with a justification.
func debugDump(m map[string]int) {
	//soclint:allow detrange debug dump is never golden-compared
	for k := range m {
		fmt.Println(k)
	}
}
