// Package bench stands in for a deterministic package: no wall clock, no
// global math/rand state, no map-order-dependent sorts.
package bench

import (
	"math/rand"
	"sort"
	"time"
)

// Flagged: wall-clock read.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}

// Flagged: the global math/rand source is randomly seeded.
func jitter(n int) int {
	return rand.Intn(n) // want "draws from the global math/rand source"
}

// Good: an explicitly seeded local source is deterministic.
func seeded(n int) int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(n)
}

// Flagged: comparator ties land in randomized map order.
func rankByScore(names []string, score map[string]int) {
	sort.Slice(names, func(i, j int) bool { // want "comparator reads a map"
		return score[names[i]] < score[names[j]]
	})
}

// Good: a total order on the elements themselves.
func rank(names []string) {
	sort.Slice(names, func(i, j int) bool {
		return names[i] < names[j]
	})
}
