// Package other is outside the deterministic set; the clock is fine here.
package other

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}
