package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Failpoint enforces the chaos failpoint discipline:
//
//   - chaos.Inject/InjectContext sites belong in production code only.
//     A failpoint in a _test.go file tests nothing that ships; tests arm
//     plans against the sites compiled into the real paths instead.
//   - Site names passed to Inject, InjectContext, and RegisterSites must
//     be compile-time string constants, so the set of failpoints is
//     statically enumerable — a chaos plan can be validated against the
//     registry without executing any code path first.
//
// The chaos package itself is exempt: it implements the machinery and its
// own tests necessarily exercise dynamic names.
var Failpoint = &analysis.Analyzer{
	Name: "failpoint",
	Doc: "enforce chaos failpoint discipline\n\n" +
		"chaos.Inject sites only in non-test files; site names passed to Inject,\n" +
		"InjectContext, and RegisterSites must be compile-time string constants.",
	IncludeTests: true,
	Run:          runFailpoint,
}

func runFailpoint(pass *analysis.Pass) error {
	if pkgBase(pass.Pkg.Path()) == "chaos" {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		inTest := isTestFile(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := chaosFunc(info, call)
			if !ok {
				return true
			}
			// siteArgs indexes the site-name arguments per chaos function.
			var siteArgs []int
			switch name {
			case "Inject":
				siteArgs = []int{0}
			case "InjectContext":
				siteArgs = []int{1}
			case "RegisterSites":
				for i := range call.Args {
					siteArgs = append(siteArgs, i)
				}
			default:
				return true
			}
			if inTest && name != "RegisterSites" {
				pass.Reportf(call.Pos(),
					"chaos.%s in a test file; failpoints belong in production code — arm a chaos.Plan against a compiled-in site instead", name)
			}
			for _, i := range siteArgs {
				if i >= len(call.Args) {
					continue // ellipsis call or type error; the compiler owns it
				}
				arg := call.Args[i]
				if tv, ok := info.Types[arg]; !ok || tv.Value == nil {
					pass.Reportf(arg.Pos(),
						"chaos.%s site name %s is not a compile-time string constant; the failpoint registry must be statically enumerable", name, types.ExprString(arg))
				}
			}
			return true
		})
	}
	return nil
}

// chaosFunc reports whether the call invokes a function declared in a
// package named chaos, returning the function name.
func chaosFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || pkgBase(fn.Pkg().Path()) != "chaos" {
		return "", false
	}
	return fn.Name(), true
}

// isTestFile reports whether the file's name ends in _test.go.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.FileStart).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
