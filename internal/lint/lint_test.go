package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/linttest"
)

func TestDetRange(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.DetRange}, "detrange")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.CtxFlow}, "ctxflow")
}

func TestMutexGuard(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.MutexGuard}, "mutexguard")
}

func TestBackendReg(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.BackendReg}, "backendreg")
}

func TestDetSeed(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.DetSeed}, "detseed")
}

func TestFailpoint(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.Failpoint}, "failpoint")
}

func TestSpanEnd(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.SpanEnd}, "spanend")
}

func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"detrange", "ctxflow", "mutexguard", "backendreg", "detseed", "failpoint", "spanend"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
