package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// DetRange flags `range` statements over maps, in the golden-producing
// packages, whose loop body can imprint the map's (randomized) iteration
// order onto an output or serialization path: a fmt/encoding/io writer
// call, or an append into a slice declared outside the loop that is never
// sorted afterwards. The sanctioned idiom — collect keys, sort, range the
// sorted slice — passes because the second range is over a slice, and the
// collection loop passes because its append target is sorted before use.
var DetRange = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag map iteration whose order can reach an output path in a golden-producing package\n\n" +
		"Packages schedio, report, corpus, datavol and service produce bytes that are frozen as\n" +
		"golden files; map iteration order must never influence them. Iterate sorted keys, or\n" +
		"sort the accumulated slice before it is serialized.",
	Run: runDetRange,
}

// orderSinkMethods are method names that serialize their arguments in call
// order: raw writers, encoders, and the repo's own table builder.
var orderSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteAll":    true,
	"Encode":      true,
	"AddRow":      true,
}

func runDetRange(pass *analysis.Pass) error {
	if !goldenPackages[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, fd := range funcDecls(pass.Files) {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMap(pass.TypesInfo, rs.X) {
				return true
			}
			checkMapRange(pass, fd, rs)
			return true
		})
	}
	return nil
}

// checkMapRange reports the map range if its body reaches an order sink.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// fmt.* in the loop body: formatting is ordered output.
		if name, ok := pkgFunc(info, call, "fmt"); ok {
			pass.Reportf(rs.Pos(),
				"map iteration order reaches fmt.%s; range over sorted keys instead", name)
			return false
		}
		// Writer/encoder method calls are ordered output.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && orderSinkMethods[sel.Sel.Name] {
			pass.Reportf(rs.Pos(),
				"map iteration order reaches %s.%s; range over sorted keys instead",
				types.ExprString(sel.X), sel.Sel.Name)
			return false
		}
		// append into a slice declared outside the loop keeps the map
		// order alive — unless the slice is sorted after the loop.
		if b, ok := info.Uses[callIdent(call)].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			target := appendTarget(info, call)
			if target == nil || declaredWithin(target, rs) {
				return true
			}
			if !sortedAfter(info, fd, rs, target) {
				pass.Reportf(rs.Pos(),
					"map iteration order accumulates into %q, which is never sorted before use; sort it after the loop or range over sorted keys",
					target.Name())
				return false
			}
		}
		return true
	})
}

// callIdent returns the call's function identifier, or nil.
func callIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := call.Fun.(*ast.Ident)
	return id
}

// appendTarget resolves the variable receiving an append's first argument.
func appendTarget(info *types.Info, call *ast.CallExpr) *types.Var {
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// declaredWithin reports whether the object is declared inside the range
// statement (a per-iteration accumulator carries no cross-key order).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
}

// sortedAfter reports whether, after the range statement, the enclosing
// function sorts the accumulator: any sort.* or slices.Sort* call that
// mentions the object.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		_, isSort := pkgFunc(info, call, "sort")
		if !isSort {
			if name, ok := pkgFunc(info, call, "slices"); !ok || !strings.HasPrefix(name, "Sort") {
				return true
			}
		}
		for _, arg := range call.Args {
			if usesObject(info, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
