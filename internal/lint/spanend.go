package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// SpanEnd enforces the telemetry span discipline: every span opened with
// obs.Start or Tracer.StartTrace must be closed by a deferred End() in the
// same function — either `defer span.End()` directly, or a span.End() call
// inside a deferred function literal (the middleware and racer cleanup
// pattern). A span that is never Ended stays open until its root is
// exported and its duration is clamped, silently corrupting the trace; a
// non-deferred End misses every early return and panic path. Discarding
// the span result with _ is flagged too: an unclosable span should not be
// opened at all (obs.Start on a traceless context is already a free no-op,
// so there is no performance excuse).
//
// The obs package itself is exempt: it implements the machinery, and its
// tests intentionally leave spans open to pin the clamping behavior.
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc: "require a deferred End() for every span\n\n" +
		"obs.Start/StartTrace results must be paired with a deferred span.End()\n" +
		"in the same function (directly or inside a deferred func literal).",
	IncludeTests: true,
	Run:          runSpanEnd,
}

func runSpanEnd(pass *analysis.Pass) error {
	if strings.TrimSuffix(pkgBase(pass.Pkg.Path()), "_test") == "obs" {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSpanScope(pass, info, fd.Body)
			}
		}
	}
	return nil
}

// checkSpanScope checks one function body's Start calls, recursing into
// nested function literals — each is its own scope: a goroutine body must
// defer its own End, and its defers cannot close the enclosing function's
// spans.
func checkSpanScope(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkSpanScope(pass, info, n.Body)
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := obsStartFunc(info, call); ok {
					pass.Reportf(call.Pos(),
						"obs.%s result discarded; keep the span and defer its End()", name)
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, ok := obsStartFunc(info, call)
				if !ok || len(n.Lhs) != 2 {
					continue
				}
				id, ok := n.Lhs[1].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"obs.%s span discarded with _; keep the span and defer its End()", name)
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if !hasDeferredEnd(info, body, obj) {
					pass.Reportf(call.Pos(),
						"span %s from obs.%s has no deferred End() in this function; early returns and panics would leak it open", id.Name, name)
				}
			}
		}
		return true
	})
}

// hasDeferredEnd reports whether the function body defers obj.End(),
// either directly or anywhere inside a deferred function literal. Nested
// (non-deferred) function literals do not count: their defers run at their
// own exit, not the enclosing function's.
func hasDeferredEnd(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if isEndCall(info, n.Call, obj) {
				found = true
				return false
			}
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && isEndCall(info, call, obj) {
						found = true
					}
					return !found
				})
			}
			return false
		}
		return true
	})
	return found
}

// isEndCall reports whether the call is <obj>.End().
func isEndCall(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// obsStartFunc reports whether the call invokes a span-opening function of
// a package named obs (obs.Start or a Tracer's StartTrace), returning the
// function name.
func obsStartFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || pkgBase(fn.Pkg().Path()) != "obs" {
		return "", false
	}
	if name := fn.Name(); name == "Start" || name == "StartTrace" {
		return name, true
	}
	return "", false
}
