package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// DetSeed keeps the deterministic packages (the synthetic benchmark
// generator, the scenario corpus, and the rectangle packer) reproducible
// run to run:
//
//   - no time.Now — wall-clock reads leak into sizes, seeds, or ordering;
//   - no package-level math/rand state — rand.Intn and friends draw from
//     the global source, which Go seeds randomly; deterministic code must
//     thread an explicitly seeded *rand.Rand (rand.New(rand.NewSource(n))
//     is fine and not flagged);
//   - no map-dependent sort.Slice comparators — an unstable sort whose
//     less function consults a map ties in map-iteration order, which is
//     randomized.
var DetSeed = &analysis.Analyzer{
	Name: "detseed",
	Doc: "forbid nondeterminism sources in deterministic packages\n\n" +
		"In bench, corpus and rectpack: no time.Now, no global math/rand draws (seeded\n" +
		"rand.New sources are fine), and no sort.Slice comparator that reads a map.",
	Run: runDetSeed,
}

func runDetSeed(pass *analysis.Pass) error {
	if !deterministicPackages[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	info := pass.TypesInfo
	for _, fd := range funcDecls(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFunc(info, call, "time"); ok && name == "Now" {
				pass.Reportf(call.Pos(),
					"time.Now in a deterministic package; derive timing-free output or take the clock as a parameter")
			}
			for _, randPath := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := pkgFunc(info, call, randPath); ok && !strings.HasPrefix(name, "New") {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the global math/rand source; use an explicitly seeded rand.New(rand.NewSource(...))", name)
				}
			}
			if name, ok := pkgFunc(info, call, "sort"); ok && (name == "Slice" || name == "SliceStable") && len(call.Args) == 2 {
				if cmp, ok := call.Args[1].(*ast.FuncLit); ok && readsMap(info, cmp.Body) {
					pass.Reportf(call.Pos(),
						"sort.%s comparator reads a map, so ties land in randomized map order; sort by a total order on the elements themselves", name)
				}
			}
			return true
		})
	}
	return nil
}

// readsMap reports whether the subtree indexes into a map.
func readsMap(info *types.Info, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if isMap(info, ix.X) {
			found = true
			return false
		}
		return true
	})
	return found
}
