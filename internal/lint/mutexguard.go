package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// MutexGuard checks the repo's "// guarded by <mu>" annotation: a struct
// field (or package-level variable) carrying that comment may only be
// read or written while the named mutex is held. The guard is either a
// sibling field ("guarded by mu"), a type-qualified field for structs
// touched through other structs' locks ("guarded by Registry.mu"), or a
// package-level mutex variable ("guarded by backendMu").
//
// Lock extents are tracked positionally: a Lock/RLock pairs with the next
// Unlock/RUnlock of the same mutex at the same or shallower block depth,
// and a deferred unlock extends the hold to the end of the function. A
// function whose name ends in "Locked" asserts the caller holds every
// guard, and accesses to a struct freshly built inside the function (its
// base variable is assigned from a composite literal there) are exempt —
// nothing else can see it yet. An RLock interval satisfies reads only.
var MutexGuard = &analysis.Analyzer{
	Name: "mutexguard",
	Doc: "check that fields annotated \"// guarded by <mu>\" are accessed with the mutex held\n\n" +
		"Guards may name a sibling field (mu), a qualified field (Registry.mu) or a package\n" +
		"variable (backendMu). *Locked func names mean the caller holds the lock; RLock\n" +
		"satisfies reads only.",
	Run: runMutexGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

func runMutexGuard(pass *analysis.Pass) error {
	guards, varGuards := collectGuards(pass)
	if len(guards) == 0 && len(varGuards) == 0 {
		return nil
	}
	for _, fd := range funcDecls(pass.Files) {
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			continue
		}
		checkGuards(pass, fd, guards, varGuards)
	}
	return nil
}

// collectGuards maps annotated struct-field objects and annotated
// package-level variables to their guard expressions.
func collectGuards(pass *analysis.Pass) (map[*types.Var]string, map[types.Object]string) {
	guards := make(map[*types.Var]string)
	varGuards := make(map[types.Object]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				guard := guardFromComment(vs.Comment)
				if guard == "" {
					guard = guardFromComment(vs.Doc)
				}
				if guard == "" {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						varGuards[obj] = guard
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardFromComment(field.Comment)
				if guard == "" {
					guard = guardFromComment(field.Doc)
				}
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guard
					}
				}
			}
			return true
		})
	}
	return guards, varGuards
}

func guardFromComment(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// lockKind distinguishes the four sync.(RW)Mutex transitions.
type lockKind int

const (
	kindLock lockKind = iota
	kindRLock
	kindUnlock
	kindRUnlock
)

// lockEvent is one Lock/Unlock-family call site inside a function body.
type lockEvent struct {
	keys     map[string]bool // canonical names for the mutex expression
	kind     lockKind
	pos      token.Pos
	depth    int  // enclosing blocks below the function body
	deferred bool // inside a defer statement (directly or via closure)
}

// heldInterval is a positional extent over which a mutex is held.
type heldInterval struct {
	keys       map[string]bool
	start, end token.Pos
	readOnly   bool // RLock: satisfies reads, not writes
}

// checkGuards verifies every guarded access in fd against the lock
// intervals computed from its body.
func checkGuards(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]string, varGuards map[types.Object]string) {
	info := pass.TypesInfo
	held := lockIntervals(pass, fd)
	fresh := freshObjects(info, fd)
	writes := writeTargets(fd)

	report := func(n ast.Node, expr ast.Expr, guard string) {
		isWrite := writes[n]
		for _, iv := range held {
			if iv.start <= n.Pos() && n.Pos() < iv.end && (!iv.readOnly || !isWrite) && intersects(iv.keys, guardKeysFor(pass, expr, guard)) {
				return
			}
		}
		verb := "read"
		if isWrite {
			verb = "written"
		}
		pass.Reportf(n.Pos(), "%s is %s without holding %s (marked \"guarded by %s\")",
			types.ExprString(expr), verb, guard, guard)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			selection, ok := info.Selections[n]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			fieldObj, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			guard, ok := guards[fieldObj]
			if !ok {
				return true
			}
			if base, ok := n.X.(*ast.Ident); ok {
				if obj := info.Uses[base]; obj != nil && fresh[obj] {
					return true // freshly constructed here; not yet shared
				}
			}
			report(n, n, guard)
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil {
				return true
			}
			if guard, ok := varGuards[obj]; ok {
				report(n, n, guard)
			}
		}
		return true
	})
}

func intersects(a, b map[string]bool) bool {
	for k := range b {
		if a[k] {
			return true
		}
	}
	return false
}

// guardKeysFor canonicalizes the guard annotation for one concrete
// access. "Registry.mu" matches any lock of a Registry's mu field; a bare
// name is a package-level mutex if one exists, otherwise a sibling field
// matched both by the access's base expression text and by its base type.
func guardKeysFor(pass *analysis.Pass, expr ast.Expr, guard string) map[string]bool {
	keys := map[string]bool{}
	if strings.Contains(guard, ".") {
		keys[guard] = true
		return keys
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		keys[guard] = true
		return keys
	}
	if obj := pass.Pkg.Scope().Lookup(guard); obj != nil {
		if _, ok := obj.(*types.Var); ok {
			keys[guard] = true
			return keys
		}
	}
	keys[types.ExprString(sel.X)+"."+guard] = true
	if tn := namedTypeName(pass.TypesInfo, sel.X); tn != "" {
		keys[tn+"."+guard] = true
	}
	return keys
}

// namedTypeName returns the base named-type name of e (through pointers).
func namedTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// lockIntervals computes the held extents for every mutex fd manipulates.
func lockIntervals(pass *analysis.Pass, fd *ast.FuncDecl) []heldInterval {
	var events []lockEvent
	collectLockEvents(pass, fd.Body, 0, false, &events)

	var held []heldInterval
	consumed := make([]bool, len(events))
	for i, ev := range events {
		if ev.kind != kindLock && ev.kind != kindRLock {
			continue
		}
		wantKind := kindUnlock
		if ev.kind == kindRLock {
			wantKind = kindRUnlock
		}
		end := fd.Body.End()
		for j := i + 1; j < len(events); j++ {
			u := events[j]
			if consumed[j] || u.kind != wantKind || u.depth > ev.depth || !intersects(u.keys, ev.keys) {
				continue
			}
			consumed[j] = true
			if !u.deferred {
				end = u.pos
			}
			break
		}
		held = append(held, heldInterval{
			keys:     ev.keys,
			start:    ev.pos,
			end:      end,
			readOnly: ev.kind == kindRLock,
		})
	}
	return held
}

// collectLockEvents walks stmts recording (R)Lock/(R)Unlock calls on
// sync.Mutex/sync.RWMutex values, with block depth and defer context.
func collectLockEvents(pass *analysis.Pass, n ast.Node, depth int, deferred bool, out *[]lockEvent) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, s := range n.List {
			collectLockEvents(pass, s, depth+1, deferred, out)
		}
		return
	case *ast.DeferStmt:
		collectLockEvents(pass, n.Call, depth, true, out)
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.BlockStmt:
			for _, s := range c.List {
				collectLockEvents(pass, s, depth+1, deferred, out)
			}
			return false
		case *ast.CallExpr:
			recordLockEvent(pass, c, depth, deferred, out)
		}
		return true
	})
}

// recordLockEvent appends an event if call is a mutex transition.
func recordLockEvent(pass *analysis.Pass, call *ast.CallExpr, depth int, deferred bool, out *[]lockEvent) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	var kind lockKind
	switch sel.Sel.Name {
	case "Lock":
		kind = kindLock
	case "RLock":
		kind = kindRLock
	case "Unlock":
		kind = kindUnlock
	case "RUnlock":
		kind = kindRUnlock
	default:
		return
	}
	if !isSyncMutex(pass.TypesInfo, sel.X) {
		return
	}
	keys := map[string]bool{types.ExprString(sel.X): true}
	if mx, ok := sel.X.(*ast.SelectorExpr); ok {
		if tn := namedTypeName(pass.TypesInfo, mx.X); tn != "" {
			keys[tn+"."+mx.Sel.Name] = true
		}
	}
	*out = append(*out, lockEvent{keys: keys, kind: kind, pos: call.Pos(), depth: depth, deferred: deferred})
}

// isSyncMutex reports whether e is a sync.Mutex or sync.RWMutex value.
func isSyncMutex(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// freshObjects returns the local variables assigned from a composite
// literal inside fd: structs under construction, invisible to other
// goroutines until published, so guarded-field writes on them are safe.
func freshObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = u.X
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// writeTargets marks every selector and identifier that appears in a
// write position: an assignment LHS (including index bases like
// m.jobs[id] = j), an IncDec operand, or an address-of operand.
func writeTargets(fd *ast.FuncDecl) map[ast.Node]bool {
	writes := make(map[ast.Node]bool)
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.SelectorExpr, *ast.Ident:
				writes[n] = true
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return writes
}
