// Package lint holds the soclint analyzers: repo-specific static checks
// that turn this repository's load-bearing conventions — byte-deterministic
// output layers, context.Context threading below the API boundary, and
// mutex-guarded shared state — into machine-checked rules enforced at
// `go vet -vettool=soclint` time (see cmd/soclint).
//
// Each analyzer reads an annotation or naming convention that already
// exists in the code base:
//
//   - detrange: golden-producing packages must not let map iteration order
//     reach an output/serialization path.
//   - ctxflow: context.Background()/TODO() is banned below the API
//     boundary; goroutine-spawning exported APIs must accept a Context.
//   - mutexguard: fields annotated "// guarded by <mu>" may only be
//     accessed with that mutex held.
//   - backendreg: sched.RegisterBackend only from init, with constant
//     names, and Backend.Schedule loops must be cancellable.
//   - detseed: no wall clock, global math/rand, or map-dependent unstable
//     sorts in deterministic packages.
//   - failpoint: chaos.Inject sites only in non-test files, with
//     compile-time constant site names.
//   - spanend: every obs.Start/StartTrace span must have a deferred End()
//     in the same function.
//
// A finding that is intentional is suppressed in place with
// "//soclint:allow <analyzer> <why>" on the same line or the line above;
// the justification is part of the convention.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzers returns the full soclint suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRange,
		CtxFlow,
		MutexGuard,
		BackendReg,
		DetSeed,
		Failpoint,
		SpanEnd,
	}
}

// goldenPackages are the output layers replayed into golden files by the
// corpus harness; a map-iteration-ordered byte in any of them is golden
// drift waiting to happen.
var goldenPackages = map[string]bool{
	"schedio": true,
	"report":  true,
	"corpus":  true,
	"datavol": true,
	"service": true,
}

// ctxPackages are the layers below the public API boundary that must
// thread context.Context instead of minting fresh ones.
var ctxPackages = map[string]bool{
	"sched":   true,
	"datavol": true,
	"service": true,
}

// deterministicPackages must behave identically run to run: the synthetic
// corpus generator, the corpus scenarios, the rectangle packer, and the
// annealing search (seeded generators only, per the detseed check).
var deterministicPackages = map[string]bool{
	"anneal":   true,
	"bench":    true,
	"corpus":   true,
	"rectpack": true,
}

// rootPackage is the module root ("api.go"'s package); ctxflow checks only
// api.go there, since the root also holds documentation files.
const rootPackage = "repro"

// pkgBase returns the final import-path element, with the " [pkg.test]"
// suffix of test variants stripped, so target matching works identically
// under go vet (which analyzes test variants too) and the fixture loader.
func pkgBase(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// pkgPath returns the package path with any test-variant suffix stripped.
func pkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// isMap reports whether the expression's type is (or points at) a map.
func isMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	_, ok = t.(*types.Map)
	return ok
}

// pkgFunc reports whether the call expression invokes a function of the
// named standard package (matched by import path), e.g. pkgFunc(info,
// call, "sort") for sort.Slice(...). It returns the selected name.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// ctxParam returns the function's context.Context parameter object, if any.
func ctxParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesObject reports whether the subtree references the object.
func usesObject(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcDecls yields every function declaration in the package with a body.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// fileOf returns the *ast.File containing pos.
func fileOf(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
