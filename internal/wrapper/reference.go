package wrapper

import (
	"fmt"
	"sort"

	"repro/internal/soc"
)

// designWrapperRef is the original, straightforwardly-greedy Design_wrapper
// implementation: a linear min-scan for the BFD partition and cell-by-cell
// water-filling (O(n·w) in the wrapper cell count). It is retained solely
// as the differential-testing oracle for DesignWrapper, which must produce
// byte-identical designs; it is not used on any production path.
func designWrapperRef(c *soc.Core, width int) (*Design, error) {
	if c == nil {
		return nil, fmt.Errorf("wrapper: nil core")
	}
	if width < 1 {
		return nil, fmt.Errorf("wrapper: core %d: non-positive width %d", c.ID, width)
	}
	d := &Design{
		CoreID:   c.ID,
		Width:    width,
		Chains:   make([]Chain, width),
		Patterns: c.Test.Patterns,
	}

	// Step 1: scan chains, longest first, onto the least-loaded wrapper chain.
	order := make([]int, len(c.ScanChains))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := c.ScanChains[order[a]], c.ScanChains[order[b]]
		if la != lb {
			return la > lb
		}
		return order[a] < order[b] // deterministic tie-break
	})
	for _, sc := range order {
		best := 0
		for j := 1; j < width; j++ {
			if d.Chains[j].ScanBits < d.Chains[best].ScanBits {
				best = j
			}
		}
		d.Chains[best].ScanChains = append(d.Chains[best].ScanChains, sc)
		d.Chains[best].ScanBits += c.ScanChains[sc]
	}

	// Step 2: wrapper cells by unit-by-unit water-filling.
	fillRef(d.Chains, c.Bidirs, func(ch *Chain) int {
		si, so := ch.ScanIn(), ch.ScanOut()
		if si > so {
			return si
		}
		return so
	}, func(ch *Chain) { ch.BidirCells++ })
	fillRef(d.Chains, c.Inputs, func(ch *Chain) int { return ch.ScanIn() }, func(ch *Chain) { ch.InputCells++ })
	fillRef(d.Chains, c.Outputs, func(ch *Chain) int { return ch.ScanOut() }, func(ch *Chain) { ch.OutputCells++ })

	for j := range d.Chains {
		if si := d.Chains[j].ScanIn(); si > d.ScanInMax {
			d.ScanInMax = si
		}
		if so := d.Chains[j].ScanOut(); so > d.ScanOutMax {
			d.ScanOutMax = so
		}
	}
	return d, nil
}

// fillRef distributes n unit cells one at a time, always onto the chain
// whose load is currently smallest (lowest index on ties).
func fillRef(chains []Chain, n int, loadOf func(*Chain) int, add func(*Chain)) {
	for ; n > 0; n-- {
		best := 0
		bestLoad := loadOf(&chains[0])
		for j := 1; j < len(chains); j++ {
			if l := loadOf(&chains[j]); l < bestLoad {
				best, bestLoad = j, l
			}
		}
		add(&chains[best])
	}
}
