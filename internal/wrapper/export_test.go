package wrapper

// DesignWrapperRef exposes the reference implementation to external test
// packages (internal tests would cycle through internal/bench otherwise).
var DesignWrapperRef = designWrapperRef
