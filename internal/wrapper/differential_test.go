package wrapper

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/soc"
)

// TestDesignWrapperMatchesReferenceRandom fuzzes the optimized DesignWrapper
// against the retained unit-by-unit reference: every design must be
// byte-identical (chain contents, cell counts, tie-breaks, si/so maxima).
func TestDesignWrapperMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		nchains := rng.Intn(12)
		chains := make([]int, nchains)
		for j := range chains {
			chains[j] = rng.Intn(200) // zero-length chains allowed
		}
		c := &soc.Core{
			ID:         1,
			Name:       "fuzz",
			Inputs:     rng.Intn(500),
			Outputs:    rng.Intn(500),
			Bidirs:     rng.Intn(120),
			ScanChains: chains,
			Test:       soc.Test{Patterns: 1 + rng.Intn(300), BISTEngine: -1},
		}
		w := 1 + rng.Intn(20)
		got, err := DesignWrapper(c, w)
		if err != nil {
			t.Fatal(err)
		}
		want, err := designWrapperRef(c, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d (w=%d, core %+v):\n got  %+v\n want %+v", i, w, c, got, want)
		}
		if err := got.Validate(c); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

// TestFillMatchesReference pins the closed-form water-filling against the
// unit-by-unit loop on hand-picked shapes: empty chains, pre-loaded chains,
// plateaus with remainders, and n smaller/larger than the chain count.
func TestFillMatchesReference(t *testing.T) {
	cases := []struct {
		loads []int
		n     int
	}{
		{[]int{0}, 0},
		{[]int{0}, 5},
		{[]int{0, 0}, 3},
		{[]int{2, 0}, 1},
		{[]int{1, 0}, 2},
		{[]int{5, 5, 5}, 7},
		{[]int{9, 3, 3, 1}, 2},
		{[]int{9, 3, 3, 1}, 11},
		{[]int{9, 3, 3, 1}, 1000},
		{[]int{7, 7, 0, 7}, 13},
		{[]int{0, 1, 2, 3, 4, 5}, 4},
	}
	for _, tc := range cases {
		mk := func() []Chain {
			chains := make([]Chain, len(tc.loads))
			for j, l := range tc.loads {
				chains[j].ScanBits = l
			}
			return chains
		}
		got, want := mk(), mk()
		fill(got, tc.n, func(ch *Chain) int { return ch.ScanIn() }, func(ch *Chain, n int) { ch.InputCells += n })
		fillRef(want, tc.n, func(ch *Chain) int { return ch.ScanIn() }, func(ch *Chain) { ch.InputCells++ })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("fill(loads=%v, n=%d):\n got  %+v\n want %+v", tc.loads, tc.n, got, want)
		}
	}
}
