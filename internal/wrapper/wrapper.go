// Package wrapper implements test wrapper design for embedded cores: the
// Design_wrapper algorithm of Iyengar/Chakrabarty/Marinissen (JETTA 2002),
// based on a Best-Fit-Decreasing partition of internal scan chains and
// wrapper I/O cells into a given number of wrapper scan chains, and the
// resulting core test application time model used throughout the DAC 2002
// framework.
//
// The implementation is output-identical to the paper's greedy recipe but
// asymptotically cheaper: the BFD scan-chain partition keeps the wrapper
// chains in a min-heap (O(n log w) for n scan chains over w wrapper
// chains), and the wrapper-cell water-filling is evaluated in closed form
// (O(w log w), independent of the cell count — unit items fill to a water
// level, so the final distribution never needs to be simulated cell by
// cell). Cores with thousands of I/O terminals cost the same as cores
// with none.
package wrapper

import (
	"fmt"
	"sort"

	"repro/internal/soc"
)

// Chain is one wrapper scan chain: a serial path made of wrapper input
// cells, zero or more internal scan chains, and wrapper output cells,
// accessed by one TAM wire.
type Chain struct {
	// ScanChains are indices into the core's ScanChains slice, in the
	// order they are stitched into this wrapper chain.
	ScanChains []int
	// ScanBits is the total internal scan length on this chain.
	ScanBits int
	// InputCells, OutputCells, BidirCells count the wrapper cells placed
	// on this chain.
	InputCells, OutputCells, BidirCells int
}

// ScanIn returns the chain's scan-in length: cells that must be loaded to
// apply a pattern (input and bidir wrapper cells plus internal scan bits).
func (ch *Chain) ScanIn() int {
	return ch.InputCells + ch.BidirCells + ch.ScanBits
}

// ScanOut returns the chain's scan-out length: cells that must be unloaded
// to observe a pattern (internal scan bits plus output and bidir cells).
func (ch *Chain) ScanOut() int {
	return ch.ScanBits + ch.OutputCells + ch.BidirCells
}

// Design is a complete wrapper configuration for one core at one TAM width.
type Design struct {
	// CoreID identifies the wrapped core.
	CoreID int
	// Width is the TAM width the wrapper was designed for (= number of
	// wrapper chains, including possibly empty ones).
	Width int
	// Chains holds the wrapper chains. len(Chains) == Width, but trailing
	// chains may be empty when the core cannot use the full width.
	Chains []Chain
	// ScanInMax and ScanOutMax are the longest scan-in and scan-out
	// lengths over all chains (the paper's s_i and s_o).
	ScanInMax, ScanOutMax int
	// Patterns is the core's pattern count, copied for convenience.
	Patterns int
}

// TestTime returns the core test application time in cycles:
//
//	T = (1 + max(si, so))·p + min(si, so)
//
// Scan-in of the next pattern overlaps scan-out of the previous one, so the
// longer of the two dominates each of the p pattern slots (plus one capture
// cycle each), and one final scan-out (or initial scan-in) of the shorter
// side remains exposed.
func (d *Design) TestTime() int64 {
	return TestTime(d.ScanInMax, d.ScanOutMax, d.Patterns)
}

// TestTime computes (1 + max(si,so))·p + min(si,so) without a Design.
func TestTime(si, so, patterns int) int64 {
	mx, mn := si, so
	if mx < mn {
		mx, mn = mn, mx
	}
	return int64(1+mx)*int64(patterns) + int64(mn)
}

// PreemptionPenalty returns the extra cycles incurred each time a test is
// preempted and later resumed: the captured state must be scanned out and
// restored, costing one extra scan-in plus one extra scan-out at the
// design's wrapper configuration (the paper's s_i + s_o).
func (d *Design) PreemptionPenalty() int64 {
	return int64(d.ScanInMax) + int64(d.ScanOutMax)
}

// CellCount returns the total number of wrapper cells in the design
// (a proxy for wrapper hardware cost).
func (d *Design) CellCount() int {
	n := 0
	for i := range d.Chains {
		ch := &d.Chains[i]
		n += ch.InputCells + ch.OutputCells + ch.BidirCells
	}
	return n
}

// Validate checks internal consistency of the design against its core:
// every internal scan chain used exactly once, cell counts matching the
// core's terminals, and si/so maxima consistent with the chains.
func (d *Design) Validate(c *soc.Core) error {
	if d.Width < 1 {
		return fmt.Errorf("wrapper: core %d design has width %d", d.CoreID, d.Width)
	}
	if len(d.Chains) != d.Width {
		return fmt.Errorf("wrapper: core %d design has %d chains, want %d", d.CoreID, len(d.Chains), d.Width)
	}
	seen := make([]bool, len(c.ScanChains))
	in, out, bid := 0, 0, 0
	si, so := 0, 0
	for j := range d.Chains {
		ch := &d.Chains[j]
		bits := 0
		for _, sc := range ch.ScanChains {
			if sc < 0 || sc >= len(c.ScanChains) {
				return fmt.Errorf("wrapper: core %d chain %d references scan chain %d (have %d)", d.CoreID, j, sc, len(c.ScanChains))
			}
			if seen[sc] {
				return fmt.Errorf("wrapper: core %d scan chain %d assigned twice", d.CoreID, sc)
			}
			seen[sc] = true
			bits += c.ScanChains[sc]
		}
		if bits != ch.ScanBits {
			return fmt.Errorf("wrapper: core %d chain %d has ScanBits %d, computed %d", d.CoreID, j, ch.ScanBits, bits)
		}
		in += ch.InputCells
		out += ch.OutputCells
		bid += ch.BidirCells
		if ch.ScanIn() > si {
			si = ch.ScanIn()
		}
		if ch.ScanOut() > so {
			so = ch.ScanOut()
		}
	}
	for sc, ok := range seen {
		if !ok {
			return fmt.Errorf("wrapper: core %d scan chain %d unassigned", d.CoreID, sc)
		}
	}
	if in != c.Inputs || out != c.Outputs || bid != c.Bidirs {
		return fmt.Errorf("wrapper: core %d cell counts in/out/bidir = %d/%d/%d, want %d/%d/%d",
			d.CoreID, in, out, bid, c.Inputs, c.Outputs, c.Bidirs)
	}
	if si != d.ScanInMax || so != d.ScanOutMax {
		return fmt.Errorf("wrapper: core %d si/so = %d/%d, computed %d/%d", d.CoreID, d.ScanInMax, d.ScanOutMax, si, so)
	}
	if d.Patterns != c.Test.Patterns {
		return fmt.Errorf("wrapper: core %d patterns %d, want %d", d.CoreID, d.Patterns, c.Test.Patterns)
	}
	return nil
}

// DesignWrapper builds a wrapper for core c using at most width TAM wires,
// following the paper's Design_wrapper recipe:
//
//  1. Partition the internal scan chains over the wrapper chains with a
//     Best-Fit-Decreasing heuristic (longest chain first, into the wrapper
//     chain with the least scan load) to minimize the longest wrapper chain.
//  2. Distribute bidir cells (they load both scan-in and scan-out), then
//     input cells (scan-in only), then output cells (scan-out only), each by
//     exact water-filling over the current chain loads.
//
// width must be >= 1. The returned design always has exactly width chains;
// unused chains are empty and correspond to TAM wires the core cannot
// exploit (callers normally avoid them via Pareto-optimal widths).
func DesignWrapper(c *soc.Core, width int) (*Design, error) {
	if c == nil {
		return nil, fmt.Errorf("wrapper: nil core")
	}
	if width < 1 {
		return nil, fmt.Errorf("wrapper: core %d: non-positive width %d", c.ID, width)
	}
	d := &Design{
		CoreID:   c.ID,
		Width:    width,
		Chains:   make([]Chain, width),
		Patterns: c.Test.Patterns,
	}

	// Step 1: scan chains, longest first, onto the least-loaded wrapper
	// chain. The chains live in a min-heap keyed by (ScanBits, chain
	// index), which reproduces the linear scan's lowest-index tie-break.
	order := make([]int, len(c.ScanChains))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := c.ScanChains[order[a]], c.ScanChains[order[b]]
		if la != lb {
			return la > lb
		}
		return order[a] < order[b] // deterministic tie-break
	})
	// All loads start at 0 in index order: already a valid min-heap.
	h := make(loadHeap, width)
	for j := range h {
		h[j].idx = j
	}
	for _, sc := range order {
		ch := &d.Chains[h[0].idx]
		ch.ScanChains = append(ch.ScanChains, sc)
		ch.ScanBits += c.ScanChains[sc]
		h[0].load = ch.ScanBits
		h.siftDown(0)
	}

	// Step 2: wrapper cells by water-filling. Bidirs affect both sides, so
	// fill them against the max(si,so) load; inputs against si; outputs
	// against so.
	fill(d.Chains, c.Bidirs, func(ch *Chain) int {
		si, so := ch.ScanIn(), ch.ScanOut()
		if si > so {
			return si
		}
		return so
	}, func(ch *Chain, n int) { ch.BidirCells += n })
	fill(d.Chains, c.Inputs, func(ch *Chain) int { return ch.ScanIn() }, func(ch *Chain, n int) { ch.InputCells += n })
	fill(d.Chains, c.Outputs, func(ch *Chain) int { return ch.ScanOut() }, func(ch *Chain, n int) { ch.OutputCells += n })

	for j := range d.Chains {
		if si := d.Chains[j].ScanIn(); si > d.ScanInMax {
			d.ScanInMax = si
		}
		if so := d.Chains[j].ScanOut(); so > d.ScanOutMax {
			d.ScanOutMax = so
		}
	}
	return d, nil
}

// loadHeap is a binary min-heap over (load, chain index), ordered by load
// then index. The index tie-break makes heap selection identical to a
// left-to-right linear scan for the minimum.
type loadHeap []struct{ load, idx int }

func (h loadHeap) less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].idx < h[j].idx
}

func (h loadHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h.less(l, min) {
			min = l
		}
		if r < len(h) && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// fill distributes n unit cells over the chains by exact water-filling:
// conceptually each cell lands on the chain whose load (as reported by
// loadOf) is currently smallest, lowest index on ties, which minimizes the
// maximum load. Because every cell raises its chain's load by exactly one,
// the greedy endpoint has a closed form and is computed directly in
// O(w log w), independent of n: loads below the final water level L are
// topped up to L, and the r leftover cells (r < number of chains at L) go
// one each to the lowest-indexed chains at L — exactly the greedy
// tie-break order. add must apply count cells at once.
func fill(chains []Chain, n int, loadOf func(*Chain) int, add func(*Chain, int)) {
	if n <= 0 {
		return
	}
	w := len(chains)
	loads := make([]int, w)
	for j := range chains {
		loads[j] = loadOf(&chains[j])
	}
	sorted := append([]int(nil), loads...)
	sort.Ints(sorted)

	// Raise the water level plateau by plateau while whole levels fit.
	level := sorted[0]
	used := 0 // cells consumed bringing the k lowest chains up to level
	k := 1    // number of chains with load <= level
	for k < w {
		need := k * (sorted[k] - level)
		if used+need > n {
			break
		}
		used += need
		level = sorted[k]
		k++
	}
	rem := n - used
	level += rem / k
	r := rem % k // leftover cells for the first r active chains by index

	for j := range chains {
		addN := 0
		if loads[j] <= level {
			addN = level - loads[j]
			if r > 0 {
				addN++
				r--
			}
		}
		if addN > 0 {
			add(&chains[j], addN)
		}
	}
}

// TestTimeAt is a convenience: design a wrapper for c at the given width and
// return its test time. It panics only on programmer error (width < 1).
func TestTimeAt(c *soc.Core, width int) int64 {
	d, err := DesignWrapper(c, width)
	if err != nil {
		panic(err)
	}
	return d.TestTime()
}
