package wrapper

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/soc"
)

func scanCore(id int, in, out, bidir int, chains []int, patterns int) *soc.Core {
	return &soc.Core{
		ID: id, Name: "t", Inputs: in, Outputs: out, Bidirs: bidir,
		ScanChains: chains,
		Test:       soc.Test{Patterns: patterns, BISTEngine: -1},
	}
}

func TestTestTimeFormula(t *testing.T) {
	cases := []struct {
		si, so, p int
		want      int64
	}{
		{0, 0, 10, 10},          // combinational, no cells: p captures
		{5, 3, 1, 9},            // (1+5)·1 + 3
		{3, 5, 1, 9},            // symmetric in si/so
		{10, 10, 100, 1110},     // (1+10)·100 + 10
		{437, 437, 260, 114317}, // the paper's Fig. 1 plateau value
	}
	for _, tc := range cases {
		if got := TestTime(tc.si, tc.so, tc.p); got != tc.want {
			t.Errorf("TestTime(%d,%d,%d) = %d, want %d", tc.si, tc.so, tc.p, got, tc.want)
		}
	}
}

func TestDesignWrapperBasics(t *testing.T) {
	c := scanCore(1, 4, 2, 0, []int{10, 8, 6}, 5)
	d, err := DesignWrapper(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(c); err != nil {
		t.Fatal(err)
	}
	// Three chains, one scan chain each: loads 10, 8, 6; the 4 inputs
	// water-fill to 10/9/9 or similar with max scan-in 10.
	if d.ScanInMax != 10 {
		t.Errorf("ScanInMax = %d, want 10", d.ScanInMax)
	}
	if d.ScanOutMax != 10 {
		t.Errorf("ScanOutMax = %d, want 10", d.ScanOutMax)
	}
	if got, want := d.TestTime(), TestTime(10, 10, 5); got != want {
		t.Errorf("TestTime = %d, want %d", got, want)
	}
}

func TestDesignWrapperWidthOne(t *testing.T) {
	c := scanCore(1, 3, 2, 1, []int{7, 5}, 4)
	d, err := DesignWrapper(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(c); err != nil {
		t.Fatal(err)
	}
	// Everything on one chain: si = 3 in + 1 bidir + 12 scan = 16,
	// so = 12 scan + 2 out + 1 bidir = 15.
	if d.ScanInMax != 16 || d.ScanOutMax != 15 {
		t.Fatalf("si/so = %d/%d, want 16/15", d.ScanInMax, d.ScanOutMax)
	}
}

func TestDesignWrapperCombinational(t *testing.T) {
	c := scanCore(1, 10, 6, 0, nil, 3)
	d, err := DesignWrapper(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(c); err != nil {
		t.Fatal(err)
	}
	// 10 inputs over 4 chains water-fill to max 3; 6 outputs to max 2.
	if d.ScanInMax != 3 || d.ScanOutMax != 2 {
		t.Fatalf("si/so = %d/%d, want 3/2", d.ScanInMax, d.ScanOutMax)
	}
}

func TestDesignWrapperErrors(t *testing.T) {
	c := scanCore(1, 1, 1, 0, nil, 1)
	if _, err := DesignWrapper(c, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := DesignWrapper(nil, 1); err == nil {
		t.Error("nil core accepted")
	}
}

func TestPreemptionPenalty(t *testing.T) {
	c := scanCore(1, 2, 2, 0, []int{9}, 5)
	d, err := DesignWrapper(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.PreemptionPenalty(), int64(d.ScanInMax+d.ScanOutMax); got != want {
		t.Fatalf("penalty = %d, want %d", got, want)
	}
}

func TestCellCount(t *testing.T) {
	c := scanCore(1, 7, 5, 3, []int{4, 4}, 2)
	d, err := DesignWrapper(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CellCount(); got != 15 {
		t.Fatalf("CellCount = %d, want 15", got)
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	c := scanCore(1, 4, 2, 0, []int{10, 8}, 5)
	fresh := func() *Design {
		d, err := DesignWrapper(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d := fresh()
	d.Chains[0].ScanBits++
	if err := d.Validate(c); err == nil {
		t.Error("scan-bit tampering accepted")
	}
	d = fresh()
	d.Chains[0].InputCells++
	if err := d.Validate(c); err == nil {
		t.Error("cell-count tampering accepted")
	}
	d = fresh()
	d.ScanInMax++
	if err := d.Validate(c); err == nil {
		t.Error("si tampering accepted")
	}
	d = fresh()
	d.Chains[0].ScanChains = append(d.Chains[0].ScanChains, d.Chains[1].ScanChains...)
	d.Chains[1].ScanChains = nil
	if err := d.Validate(c); err == nil {
		t.Error("chain reassignment without bit update accepted")
	}
	d = fresh()
	d.Patterns++
	if err := d.Validate(c); err == nil {
		t.Error("pattern tampering accepted")
	}
}

// randomCore builds a random core for property tests.
func randomCore(rng *rand.Rand) *soc.Core {
	c := &soc.Core{
		ID: 1, Name: "r",
		Inputs:  rng.Intn(60),
		Outputs: rng.Intn(60),
		Bidirs:  rng.Intn(12),
		Test:    soc.Test{Patterns: 1 + rng.Intn(200), BISTEngine: -1},
	}
	for j := rng.Intn(12); j > 0; j-- {
		c.ScanChains = append(c.ScanChains, 1+rng.Intn(120))
	}
	if c.Inputs+c.Outputs+c.Bidirs+len(c.ScanChains) == 0 {
		c.Inputs = 1
	}
	return c
}

// Property: every design validates, and si/so and T are non-increasing in
// width (more TAM wires never hurt).
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCore(rng)
		prevT := int64(-1)
		prevSi, prevSo := -1, -1
		for w := 1; w <= 20; w++ {
			d, err := DesignWrapper(c, w)
			if err != nil {
				t.Logf("design w=%d: %v", w, err)
				return false
			}
			if err := d.Validate(c); err != nil {
				t.Logf("validate w=%d: %v", w, err)
				return false
			}
			if prevT >= 0 && d.TestTime() > prevT {
				t.Logf("T increased at w=%d: %d -> %d (core %+v)", w, prevT, d.TestTime(), c)
				return false
			}
			if prevSi >= 0 && (d.ScanInMax > prevSi || d.ScanOutMax > prevSo) {
				t.Logf("si/so increased at w=%d (core %+v)", w, c)
				return false
			}
			prevT, prevSi, prevSo = d.TestTime(), d.ScanInMax, d.ScanOutMax
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: for a core with only I/O cells (no scan), water-filling is
// exactly optimal: max load = ceil(cells/width).
func TestWaterFillOptimalProperty(t *testing.T) {
	f := func(inputs, width uint8) bool {
		in := int(inputs)%200 + 1
		w := int(width)%16 + 1
		c := scanCore(1, in, 0, 0, nil, 1)
		d, err := DesignWrapper(c, w)
		if err != nil {
			return false
		}
		want := (in + w - 1) / w
		return d.ScanInMax == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the BFD scan partition obeys Graham's list-scheduling bound,
// which holds without knowing OPT: a least-loaded-first assignment never
// exceeds the average load plus one item, so
// max load <= ceil(total/w) + longest chain. (A 4/3 bound holds only
// relative to OPT, which can itself sit well above the area lower bound —
// e.g. chains {101,95,84,84,71} on 4 wires force an optimal 155 vs. an
// area bound of 109.)
func TestBFDQualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCore(rng)
		c.Inputs, c.Outputs, c.Bidirs = 0, 0, 0
		if len(c.ScanChains) == 0 {
			c.ScanChains = []int{1 + rng.Intn(50)}
		}
		w := 1 + rng.Intn(8)
		d, err := DesignWrapper(c, w)
		if err != nil {
			return false
		}
		total, longest := 0, 0
		for _, l := range c.ScanChains {
			total += l
			if l > longest {
				longest = l
			}
		}
		avg := (total + w - 1) / w
		return d.ScanInMax <= avg+longest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBFDOptimalOnKnownInstances pins BFD against brute-force optima on
// small instances where OPT is computable.
func TestBFDOptimalOnKnownInstances(t *testing.T) {
	cases := []struct {
		chains []int
		w      int
		opt    int
	}{
		{[]int{101, 95, 84, 84, 71}, 4, 155}, // pairing forced: 84+71
		{[]int{10, 10, 10, 10}, 2, 20},
		{[]int{7, 5, 4, 3, 1}, 2, 10},
		{[]int{50}, 3, 50},
		{[]int{6, 6, 4, 4, 4}, 3, 10}, // {4,4}=8 leaves {6,6,4} in two bins

	}
	for _, tc := range cases {
		c := scanCore(1, 0, 0, 0, tc.chains, 1)
		d, err := DesignWrapper(c, tc.w)
		if err != nil {
			t.Fatal(err)
		}
		// BFD is a heuristic: allow it to miss OPT by the classical LPT
		// factor, but it must never beat OPT (that would mean a counting
		// bug) and on these instances it should in fact hit it.
		if d.ScanInMax < tc.opt {
			t.Errorf("chains %v w=%d: si=%d below OPT=%d (impossible)", tc.chains, tc.w, d.ScanInMax, tc.opt)
		}
		if d.ScanInMax != tc.opt {
			t.Errorf("chains %v w=%d: si=%d, OPT=%d", tc.chains, tc.w, d.ScanInMax, tc.opt)
		}
	}
}

func TestTestTimeAt(t *testing.T) {
	c := scanCore(1, 2, 2, 0, []int{6}, 3)
	d, err := DesignWrapper(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := TestTimeAt(c, 2); got != d.TestTime() {
		t.Fatalf("TestTimeAt = %d, want %d", got, d.TestTime())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TestTimeAt(width 0) did not panic")
		}
	}()
	TestTimeAt(c, 0)
}

func TestChainAccessors(t *testing.T) {
	ch := Chain{ScanBits: 10, InputCells: 3, OutputCells: 2, BidirCells: 1}
	if ch.ScanIn() != 14 {
		t.Fatalf("ScanIn = %d, want 14", ch.ScanIn())
	}
	if ch.ScanOut() != 13 {
		t.Fatalf("ScanOut = %d, want 13", ch.ScanOut())
	}
}
