// Differential coverage over the real benchmark SOCs. This lives in an
// external test package because internal/bench transitively imports
// wrapper; external test packages may close that cycle.
package wrapper_test

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/wrapper"
)

// TestDesignWrapperMatchesReferenceBenchSOCs asserts the hard tentpole bar:
// the optimized DesignWrapper produces designs identical to the retained
// reference over every core of every benchmark SOC at every width 1..64.
func TestDesignWrapperMatchesReferenceBenchSOCs(t *testing.T) {
	socs := bench.All()
	demo, err := bench.ByName("demo8")
	if err != nil {
		t.Fatal(err)
	}
	socs = append(socs, demo)
	for _, s := range socs {
		for _, c := range s.Cores {
			for w := 1; w <= 64; w++ {
				got, err := wrapper.DesignWrapper(c, w)
				if err != nil {
					t.Fatalf("%s core %d w=%d: %v", s.Name, c.ID, w, err)
				}
				want, err := wrapper.DesignWrapperRef(c, w)
				if err != nil {
					t.Fatalf("%s core %d w=%d (ref): %v", s.Name, c.ID, w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s core %d w=%d: designs differ\n got  %+v\n want %+v",
						s.Name, c.ID, w, got, want)
				}
			}
		}
	}
}
