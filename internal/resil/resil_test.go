package resil

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for Breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.SetClock(clk.now)
	return b, clk
}

// TestBreakerQuarantineAndHalfOpenReadmission is the acceptance-criteria
// lifecycle: K consecutive failures quarantine, cooldown leads to a single
// half-open probe, a successful probe re-admits fully.
func TestBreakerQuarantineAndHalfOpenReadmission(t *testing.T) {
	b, clk := newTestBreaker(3, time.Minute)

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker must start closed and admitting")
	}
	// Two failures, then a success: streak resets, still closed.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("streak below threshold must stay closed")
	}
	// Third consecutive failure: quarantine.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after %d consecutive failures = %v, want open", 3, b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	// Cooldown not yet elapsed: still rejecting.
	clk.advance(59 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker admitted a call 1s before cooldown expiry")
	}

	// Cooldown elapsed: exactly one probe is admitted.
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown Allow = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second call while probe in flight")
	}

	// Failed probe: re-open for another full cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe must re-open the breaker")
	}
	clk.advance(61 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not half-open after second cooldown")
	}

	// Successful probe: fully re-admitted.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatal("re-closed breaker must admit freely")
		}
	}
	// And the failure streak restarted from zero.
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("recovery must reset the consecutive-failure streak")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed":    BreakerClosed,
		"open":      BreakerOpen,
		"half-open": BreakerHalfOpen,
		"unknown":   BreakerState(99),
	} {
		if got := s.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestBreakerThresholdFloor(t *testing.T) {
	b, _ := newTestBreaker(0, time.Minute)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Error("threshold < 1 must behave as 1")
	}
}

func TestSemaphore(t *testing.T) {
	s := NewSemaphore(2)
	if s.Cap() != 2 || s.InUse() != 0 {
		t.Fatalf("fresh semaphore cap=%d inuse=%d", s.Cap(), s.InUse())
	}
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("TryAcquire under capacity failed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire over capacity succeeded")
	}
	if s.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", s.InUse())
	}

	// Acquire blocks until a slot frees, and respects cancellation.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire on full semaphore = %v, want DeadlineExceeded", err)
	}
	s.Release()
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire with a free slot: %v", err)
	}

	s.Release()
	s.Release()
	defer func() {
		if recover() == nil {
			t.Error("unbalanced Release did not panic")
		}
	}()
	s.Release()
}

func TestSemaphoreCapFloor(t *testing.T) {
	if got := NewSemaphore(0).Cap(); got != 1 {
		t.Errorf("NewSemaphore(0).Cap() = %d, want 1", got)
	}
}

// tempErr implements the Temporary() convention like chaos.InjectedError.
type tempErr struct{ temp bool }

func (e *tempErr) Error() string   { return "tempErr" }
func (e *tempErr) Temporary() bool { return e.temp }

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), false},
		{ErrTransient, true},
		{Transient(errors.New("flaky")), true},
		{fmt.Errorf("outer: %w", Transient(errors.New("flaky"))), true},
		{&tempErr{temp: true}, true},
		{&tempErr{temp: false}, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	inner := errors.New("flaky")
	if !errors.Is(Transient(inner), inner) {
		t.Error("Transient must preserve the wrapped error chain")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) must be nil")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	cfg := RetryConfig{
		Attempts: 5,
		Base:     10 * time.Millisecond,
		Max:      40 * time.Millisecond,
		Seed:     1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	v, err := Retry(context.Background(), cfg, func(ctx context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, Transient(errors.New("flaky"))
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Retry = (%d, %v), want (42, nil)", v, err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 calls with 2 backoffs", calls, len(slept))
	}
	for i, d := range slept {
		if maxD := time.Duration(10<<i) * time.Millisecond; d < 0 || d > maxD {
			t.Errorf("backoff %d = %v outside [0, %v]", i, d, maxD)
		}
	}
}

func TestRetryBackoffDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		cfg := RetryConfig{
			Attempts: 6,
			Seed:     seed,
			Sleep: func(ctx context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		}
		_, _ = Retry(context.Background(), cfg, func(ctx context.Context) (int, error) {
			return 0, ErrTransient
		})
		return slept
	}
	a, b := schedule(7), schedule(7)
	if len(a) != 5 {
		t.Fatalf("6 attempts should back off 5 times, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at backoff %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	calls := 0
	perm := errors.New("permanent")
	_, err := Retry(context.Background(), RetryConfig{Attempts: 5}, func(ctx context.Context) (int, error) {
		calls++
		return 0, perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("Retry on permanent error: calls=%d err=%v, want 1 call", calls, err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	cfg := RetryConfig{Attempts: 4, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	_, err := Retry(context.Background(), cfg, func(ctx context.Context) (int, error) {
		calls++
		return 0, Transient(fmt.Errorf("attempt %d", calls))
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if err == nil || err.Error() != "attempt 4" {
		t.Fatalf("Retry must report the last error, got %v", err)
	}
}

func TestRetryRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	boom := errors.New("boom")
	_, err := Retry(ctx, RetryConfig{Attempts: 10, Base: time.Millisecond}, func(ctx context.Context) (int, error) {
		calls++
		cancel() // dies mid-flight; Retry must not try again
		return 0, Transient(boom)
	})
	if calls != 1 {
		t.Fatalf("Retry after ctx cancel made %d calls, want 1", calls)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the underlying failure", err)
	}
}

// TestRetryRealBackoffSleep exercises the production sleep path (no Sleep
// override): one transient failure, then success after a 1ms backoff.
func TestRetryRealBackoffSleep(t *testing.T) {
	calls := 0
	v, err := Retry(context.Background(), RetryConfig{Attempts: 2, Base: time.Millisecond},
		func(context.Context) (string, error) {
			calls++
			if calls == 1 {
				return "", Transient(errors.New("flaky"))
			}
			return "ok", nil
		})
	if err != nil || v != "ok" || calls != 2 {
		t.Fatalf("Retry = (%q, %v) after %d calls, want (\"ok\", nil) after 2", v, err, calls)
	}
}

// TestBreakerTransitions counts every state change across a full
// open → half-open → re-open → half-open → close lifecycle.
func TestBreakerTransitions(t *testing.T) {
	b, clk := newTestBreaker(2, time.Minute)
	if got := b.Transitions(); got != 0 {
		t.Fatalf("fresh breaker Transitions = %d", got)
	}
	b.Failure()
	b.Success() // closed → closed: a success while closed is not a transition
	if got := b.Transitions(); got != 0 {
		t.Fatalf("Transitions after closed-state churn = %d", got)
	}
	b.Failure()
	b.Failure() // closed → open
	if got := b.Transitions(); got != 1 {
		t.Fatalf("Transitions after opening = %d, want 1", got)
	}
	clk.advance(time.Minute)
	b.Allow()   // open → half-open
	b.Failure() // half-open → open
	if got := b.Transitions(); got != 3 {
		t.Fatalf("Transitions after failed probe = %d, want 3", got)
	}
	clk.advance(time.Minute)
	b.Allow()   // open → half-open
	b.Success() // half-open → closed
	if got := b.Transitions(); got != 5 {
		t.Fatalf("Transitions after recovery = %d, want 5", got)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("State = %v, want closed", b.State())
	}
}
