package resil

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// ErrTransient marks an error as retryable when wrapped with Transient (or
// matched with errors.Is). Errors exposing a Temporary() bool method — the
// net.Error convention, also implemented by chaos.InjectedError — are
// recognized without the wrapper.
var ErrTransient = errors.New("transient error")

// transientErr pairs an error with the ErrTransient marker.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// Is reports a match for ErrTransient so errors.Is(Transient(err),
// ErrTransient) holds without losing the original error chain.
func (e *transientErr) Is(target error) bool { return target == ErrTransient }

// Transient wraps err so IsTransient (and errors.Is against ErrTransient)
// reports it retryable. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err is worth retrying: explicitly marked via
// Transient/ErrTransient, or exposing Temporary() == true anywhere in its
// chain. Context cancellation and deadline errors are never transient —
// retrying them would outlive the caller's budget.
func IsTransient(err error) bool {
	if err == nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var tmp interface{ Temporary() bool }
	return errors.As(err, &tmp) && tmp.Temporary()
}

// RetryConfig shapes a Retry loop. The zero value means 3 attempts, 10ms
// base backoff doubling up to 1s, full jitter from a Seed-seeded generator,
// and IsTransient as the retry predicate.
type RetryConfig struct {
	// Attempts is the total number of tries including the first (min 1;
	// 0 means 3).
	Attempts int
	// Base is the backoff before the second attempt (0 means 10ms); each
	// subsequent backoff doubles, capped at Max.
	Base time.Duration
	// Max caps a single backoff (0 means 1s).
	Max time.Duration
	// Seed seeds the jitter generator, keeping backoff schedules
	// reproducible in tests.
	Seed int64
	// Retryable decides whether an error is worth another attempt
	// (nil means IsTransient).
	Retryable func(error) bool
	// Sleep replaces the backoff sleep (tests only); it must respect ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry runs fn up to cfg.Attempts times with jittered exponential backoff
// between attempts, returning fn's first success. It stops early — returning
// the last error — when the error is not retryable or ctx is done. The
// jitter is full jitter (uniform in [0, backoff]) from a generator seeded
// with cfg.Seed, so a given seed yields one reproducible schedule.
func Retry[T any](ctx context.Context, cfg RetryConfig, fn func(ctx context.Context) (T, error)) (T, error) {
	attempts := cfg.Attempts
	if attempts < 1 {
		attempts = 3
	}
	base := cfg.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxBackoff := cfg.Max
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	retryable := cfg.Retryable
	if retryable == nil {
		retryable = IsTransient
	}
	doSleep := cfg.Sleep
	if doSleep == nil {
		doSleep = sleep
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var zero T
	var err error
	backoff := base
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			jittered := time.Duration(rng.Int63n(int64(backoff) + 1))
			if serr := doSleep(ctx, jittered); serr != nil {
				return zero, err // ctx expired mid-backoff; report the last real failure
			}
			if backoff < maxBackoff {
				if backoff *= 2; backoff > maxBackoff {
					backoff = maxBackoff
				}
			}
		}
		var v T
		if v, err = fn(ctx); err == nil {
			return v, nil
		}
		if ctx.Err() != nil || !retryable(err) {
			return zero, err
		}
	}
	return zero, err
}
