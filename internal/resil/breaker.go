// Package resil holds the small, dependency-free resilience primitives the
// scheduler and service share: a consecutive-failure circuit breaker
// (Breaker), counting-semaphore admission control (Semaphore), and seeded
// jittered exponential backoff (Retry). The portfolio backend uses Breaker
// to quarantine misbehaving racers; socserved uses Semaphore to shed load
// with 429s and Retry to ride out transient planner failures in the sweep
// job pool. Everything here is deterministic given its inputs: Retry draws
// jitter from a caller-seeded generator and Breaker's clock is injectable,
// so the chaos suite can script exact failure/recovery timelines.
package resil

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit state of a Breaker.
type BreakerState int

const (
	// BreakerClosed admits all calls (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects all calls until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe call; its outcome decides
	// whether the breaker re-closes or re-opens.
	BreakerHalfOpen
)

// String names the state for logs and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker. It opens after
// Threshold consecutive Failure calls, stays open for Cooldown, then
// half-opens to admit exactly one probe: the probe's Success re-closes the
// breaker, its Failure re-opens it for another cooldown. Any Success fully
// resets the failure streak. The zero value is not usable; call NewBreaker.
type Breaker struct {
	mu          sync.Mutex
	threshold   int              // consecutive failures that open the breaker
	cooldown    time.Duration    // open duration before half-open probing
	now         func() time.Time // injectable clock for tests
	transitions atomic.Int64     // cumulative state changes, for /v1/backends

	state    BreakerState // guarded by mu
	failures int          // guarded by mu; consecutive failures seen
	openedAt time.Time    // guarded by mu; when the breaker last opened
	probing  bool         // guarded by mu; a half-open probe is in flight
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and half-opens after cooldown. A threshold < 1 is
// treated as 1; a cooldown <= 0 half-opens immediately on the next Allow.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's time source (tests only).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cooldown has elapsed, then transitions to half-open and
// admits exactly one probe; further Allow calls are rejected until that
// probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.transitions.Add(1)
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful call: the failure streak resets and the
// breaker closes regardless of its previous state.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		b.transitions.Add(1)
	}
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a failed call. In the closed state it opens the breaker
// once the consecutive-failure streak reaches the threshold; in the
// half-open state the failed probe re-opens it for another cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case BreakerClosed:
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.transitions.Add(1)
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.transitions.Add(1)
	}
}

// Transitions returns the cumulative number of state changes the breaker
// has made (closed→open, open→half-open, half-open→open/closed) — the
// "breaker flips" counter surfaced per backend on /v1/backends.
func (b *Breaker) Transitions() int64 {
	return b.transitions.Load()
}

// State returns the current circuit state. An open breaker whose cooldown
// has elapsed still reports BreakerOpen until Allow observes the expiry.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
