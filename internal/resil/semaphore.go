package resil

import "context"

// Semaphore is counting-semaphore admission control: at most Cap calls in
// flight, with a non-blocking TryAcquire for load shedding (reject with 429
// rather than queue) and a context-aware Acquire for callers that prefer to
// wait. The zero value admits nothing; call NewSemaphore.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore admitting up to n concurrent holders.
// An n < 1 is treated as 1.
func NewSemaphore(n int) *Semaphore {
	if n < 1 {
		n = 1
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// TryAcquire takes a slot if one is free, without blocking. Callers that
// get false should shed the request (the service answers 429 Retry-After).
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks for a slot until ctx is done, returning ctx's error if
// cancelled first.
func (s *Semaphore) Acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by TryAcquire or Acquire. Releasing more
// than was acquired panics: it is always a caller bug.
func (s *Semaphore) Release() {
	select {
	case <-s.slots:
	default:
		panic("resil: Semaphore.Release without a matching Acquire")
	}
}

// InUse returns how many slots are currently held.
func (s *Semaphore) InUse() int { return len(s.slots) }

// Cap returns the semaphore's capacity.
func (s *Semaphore) Cap() int { return cap(s.slots) }
