// Package constraint models the scheduling constraints of the DAC 2002
// framework (Problem 2): precedence constraints between core tests,
// concurrency (mutual-exclusion) constraints — including those implied by
// core hierarchy (a parent's Intest conflicts with its children's tests) —
// a maximum power budget, BIST-engine resource conflicts, and per-core
// preemption limits. It corresponds to the Conflict subroutine (Fig. 7).
package constraint

import (
	"fmt"
	"sort"

	"repro/internal/soc"
)

// Checker answers "may core i start (or resume) now?" given the set of
// currently running cores. It is stateless with respect to time: callers
// tell it which cores are complete and which are running.
type Checker struct {
	soc *soc.SOC
	// preds[i] lists cores that must complete before core i may begin.
	preds map[int][]int
	// conc[i] holds the set of cores that may not run concurrently with i.
	conc map[int]map[int]bool
	// engine[i] is core i's BIST engine, or -1.
	engine map[int]int
	// power[i] is core i's test power.
	power map[int]int
	// powerMax is the budget; 0 disables the check.
	powerMax int
}

// Config tunes checker construction.
type Config struct {
	// PowerMax overrides the SOC's power budget when > 0. When both are
	// zero the power check is disabled.
	PowerMax int
	// IgnoreHierarchy suppresses the implicit parent/child concurrency
	// constraints (useful for ablation).
	IgnoreHierarchy bool
}

// New builds a Checker for the SOC. It derives hierarchy concurrency
// constraints, indexes explicit constraints, and rejects precedence cycles.
func New(s *soc.SOC, cfg Config) (*Checker, error) {
	c := &Checker{
		soc:    s,
		preds:  make(map[int][]int),
		conc:   make(map[int]map[int]bool),
		engine: make(map[int]int),
		power:  make(map[int]int),
	}
	c.powerMax = s.PowerMax
	if cfg.PowerMax > 0 {
		c.powerMax = cfg.PowerMax
	}
	for _, core := range s.Cores {
		c.engine[core.ID] = core.Test.BISTEngine
		c.power[core.ID] = core.TestPower()
	}
	for _, p := range s.Precedences {
		c.preds[p.After] = append(c.preds[p.After], p.Before)
	}
	addConc := func(a, b int) {
		if c.conc[a] == nil {
			c.conc[a] = make(map[int]bool)
		}
		if c.conc[b] == nil {
			c.conc[b] = make(map[int]bool)
		}
		c.conc[a][b] = true
		c.conc[b][a] = true
	}
	for _, cc := range s.Concurrencies {
		addConc(cc.A, cc.B)
	}
	if !cfg.IgnoreHierarchy {
		for _, cc := range s.HierarchyConcurrencies() {
			addConc(cc.A, cc.B)
		}
	}
	if err := c.checkAcyclic(); err != nil {
		return nil, err
	}
	if err := c.checkFeasible(); err != nil {
		return nil, err
	}
	return c, nil
}

// checkAcyclic rejects precedence cycles via Kahn's algorithm.
func (c *Checker) checkAcyclic() error {
	indeg := make(map[int]int)
	succ := make(map[int][]int)
	for _, core := range c.soc.Cores {
		indeg[core.ID] = 0
	}
	for after, befores := range c.preds {
		for _, b := range befores {
			succ[b] = append(succ[b], after)
			indeg[after]++
		}
	}
	var queue []int
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	sort.Ints(queue)
	done := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		done++
		for _, nx := range succ[id] {
			indeg[nx]--
			if indeg[nx] == 0 {
				queue = append(queue, nx)
			}
		}
	}
	if done != len(c.soc.Cores) {
		return fmt.Errorf("constraint: precedence constraints contain a cycle")
	}
	return nil
}

// checkFeasible rejects budgets no single test can meet.
func (c *Checker) checkFeasible() error {
	if c.powerMax == 0 {
		return nil
	}
	for _, core := range c.soc.Cores {
		if p := c.power[core.ID]; p > c.powerMax {
			return fmt.Errorf("constraint: core %d (%s) dissipates %d > power budget %d; no schedule exists",
				core.ID, core.Name, p, c.powerMax)
		}
	}
	return nil
}

// PowerMax returns the effective budget (0 when unconstrained).
func (c *Checker) PowerMax() int { return c.powerMax }

// Power returns core id's test power.
func (c *Checker) Power(id int) int { return c.power[id] }

// Predecessors returns the cores that must complete before id may begin.
func (c *Checker) Predecessors(id int) []int { return c.preds[id] }

// Conflict reports why core id may not start now, or "" when it may.
// complete maps finished cores; running maps currently scheduled cores.
// It mirrors the paper's Conflict subroutine: precedence (lines 2-3),
// concurrency (4-5), power (6-9), and BIST-scan conflicts (10-11).
func (c *Checker) Conflict(id int, complete, running map[int]bool) string {
	for _, pre := range c.preds[id] {
		if !complete[pre] {
			return fmt.Sprintf("precedence: core %d must complete before core %d", pre, id)
		}
	}
	for other := range running {
		if c.conc[id][other] {
			return fmt.Sprintf("concurrency: core %d may not run with core %d", id, other)
		}
	}
	if c.powerMax > 0 {
		sum := c.power[id]
		for other := range running {
			sum += c.power[other]
		}
		if sum > c.powerMax {
			return fmt.Sprintf("power: %d exceeds budget %d", sum, c.powerMax)
		}
	}
	if e := c.engine[id]; e >= 0 {
		for other := range running {
			if c.engine[other] == e {
				return fmt.Sprintf("bist: cores %d and %d share BIST engine %d", id, other, e)
			}
		}
	}
	return ""
}

// OK reports whether core id may start now.
func (c *Checker) OK(id int, complete, running map[int]bool) bool {
	return c.Conflict(id, complete, running) == ""
}

// ValidateTimeline checks a completed schedule: for every core interval
// set, precedence, concurrency, BIST and power constraints must hold at
// every instant. intervals maps core ID to its (start, end) pieces.
func (c *Checker) ValidateTimeline(intervals map[int][]Interval) error {
	// Precedence: After's first start must be >= Before's last end.
	for after, befores := range c.preds {
		ai := intervals[after]
		if len(ai) == 0 {
			continue
		}
		for _, b := range befores {
			bi := intervals[b]
			if len(bi) == 0 {
				return fmt.Errorf("constraint: core %d scheduled but predecessor %d never runs", after, b)
			}
			if first(ai) < last(bi) {
				return fmt.Errorf("constraint: core %d starts at %d before predecessor %d ends at %d",
					after, first(ai), b, last(bi))
			}
		}
	}
	// Pairwise checks at overlap: concurrency + BIST.
	ids := make([]int, 0, len(intervals))
	for id := range intervals {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			if !overlaps(intervals[a], intervals[b]) {
				continue
			}
			if c.conc[a][b] {
				return fmt.Errorf("constraint: concurrency violation: cores %d and %d overlap", a, b)
			}
			if ea, eb := c.engine[a], c.engine[b]; ea >= 0 && ea == eb {
				return fmt.Errorf("constraint: BIST engine %d shared by overlapping cores %d and %d", ea, a, b)
			}
		}
	}
	// Power: sweep events.
	if c.powerMax > 0 {
		type ev struct {
			t     int64
			delta int
		}
		var evs []ev
		for id, ivs := range intervals {
			for _, iv := range ivs {
				evs = append(evs, ev{iv.Start, c.power[id]}, ev{iv.End, -c.power[id]})
			}
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].delta < evs[j].delta // ends before starts at same t
		})
		sum := 0
		for _, e := range evs {
			sum += e.delta
			if sum > c.powerMax {
				return fmt.Errorf("constraint: power %d exceeds budget %d at time %d", sum, c.powerMax, e.t)
			}
		}
	}
	return nil
}

// Interval is a [Start, End) time span.
type Interval struct{ Start, End int64 }

func first(ivs []Interval) int64 {
	m := ivs[0].Start
	for _, iv := range ivs {
		if iv.Start < m {
			m = iv.Start
		}
	}
	return m
}

func last(ivs []Interval) int64 {
	var m int64
	for _, iv := range ivs {
		if iv.End > m {
			m = iv.End
		}
	}
	return m
}

func overlaps(a, b []Interval) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Start < y.End && y.Start < x.End {
				return true
			}
		}
	}
	return false
}
