package constraint

import (
	"strings"
	"testing"

	"repro/internal/soc"
)

func testSOC() *soc.SOC {
	return &soc.SOC{
		Name: "t",
		Cores: []*soc.Core{
			{ID: 1, Name: "a", Inputs: 2, Outputs: 2, Test: soc.Test{Patterns: 5, Power: 100, BISTEngine: -1}},
			{ID: 2, Name: "b", Parent: 1, Inputs: 2, Outputs: 2, Test: soc.Test{Patterns: 5, Power: 50, BISTEngine: -1}},
			{ID: 3, Name: "c", Inputs: 2, Outputs: 2, Test: soc.Test{Patterns: 5, Power: 70, Kind: soc.BISTTest, BISTEngine: 0}},
			{ID: 4, Name: "d", Inputs: 2, Outputs: 2, Test: soc.Test{Patterns: 5, Power: 60, Kind: soc.BISTTest, BISTEngine: 0}},
			{ID: 5, Name: "e", Inputs: 2, Outputs: 2, Test: soc.Test{Patterns: 5, Power: 30, BISTEngine: -1}},
		},
		Precedences:   []soc.Precedence{{Before: 3, After: 5}},
		Concurrencies: []soc.Concurrency{{A: 1, B: 5}},
	}
}

func sets(ids ...int) map[int]bool {
	m := make(map[int]bool)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestPrecedenceConflict(t *testing.T) {
	chk, err := New(testSOC(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if msg := chk.Conflict(5, sets(), sets()); !strings.Contains(msg, "precedence") {
		t.Fatalf("core 5 should wait for 3: %q", msg)
	}
	if msg := chk.Conflict(5, sets(3), sets()); msg != "" {
		t.Fatalf("core 5 should start after 3 completes: %q", msg)
	}
}

func TestConcurrencyConflict(t *testing.T) {
	chk, _ := New(testSOC(), Config{})
	if msg := chk.Conflict(1, sets(), sets(5)); !strings.Contains(msg, "concurrency") {
		t.Fatalf("explicit concurrency not enforced: %q", msg)
	}
	// Hierarchy: 2 inside 1, implicit exclusion both directions.
	if msg := chk.Conflict(2, sets(), sets(1)); !strings.Contains(msg, "concurrency") {
		t.Fatalf("hierarchy exclusion not enforced: %q", msg)
	}
	if msg := chk.Conflict(1, sets(), sets(2)); !strings.Contains(msg, "concurrency") {
		t.Fatalf("hierarchy exclusion not symmetric: %q", msg)
	}
	// IgnoreHierarchy drops only the implicit ones.
	chk2, _ := New(testSOC(), Config{IgnoreHierarchy: true})
	if msg := chk2.Conflict(2, sets(), sets(1)); msg != "" {
		t.Fatalf("IgnoreHierarchy kept implicit constraint: %q", msg)
	}
	if msg := chk2.Conflict(1, sets(), sets(5)); msg == "" {
		t.Fatal("IgnoreHierarchy dropped explicit constraint")
	}
}

func TestPowerConflict(t *testing.T) {
	chk, err := New(testSOC(), Config{PowerMax: 150})
	if err != nil {
		t.Fatal(err)
	}
	// 100 + 50 = 150 fits exactly... but 1 and 2 are hierarchy-excluded;
	// use 1 (100) with 4 (60): 160 > 150.
	if msg := chk.Conflict(4, sets(), sets(1)); !strings.Contains(msg, "power") {
		t.Fatalf("power excess not caught: %q", msg)
	}
	// 1 (100) alone is fine; adding 5 (30) stays at 130 but 1~5 conflicts
	// first; use 2 (50) with 4 (60) = 110, fine.
	if msg := chk.Conflict(4, sets(), sets(2)); msg != "" {
		t.Fatalf("feasible power rejected: %q", msg)
	}
	// Power disabled when budget is zero.
	chk2, _ := New(testSOC(), Config{})
	if msg := chk2.Conflict(4, sets(), sets(1)); msg != "" {
		t.Fatalf("unbudgeted power check fired: %q", msg)
	}
}

func TestPowerInfeasible(t *testing.T) {
	s := testSOC()
	_, err := New(s, Config{PowerMax: 99}) // core 1 needs 100
	if err == nil || !strings.Contains(err.Error(), "no schedule exists") {
		t.Fatalf("infeasible budget accepted: %v", err)
	}
}

func TestBISTConflict(t *testing.T) {
	chk, _ := New(testSOC(), Config{})
	if msg := chk.Conflict(4, sets(), sets(3)); !strings.Contains(msg, "bist") {
		t.Fatalf("shared BIST engine not caught: %q", msg)
	}
	if msg := chk.Conflict(4, sets(3), sets()); msg != "" {
		t.Fatalf("sequential BIST rejected: %q", msg)
	}
}

func TestPrecedenceCycle(t *testing.T) {
	s := testSOC()
	s.Precedences = append(s.Precedences, soc.Precedence{Before: 5, After: 3})
	if _, err := New(s, Config{}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("precedence cycle accepted: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	chk, _ := New(testSOC(), Config{PowerMax: 400})
	if chk.PowerMax() != 400 {
		t.Fatalf("PowerMax = %d", chk.PowerMax())
	}
	if chk.Power(1) != 100 {
		t.Fatalf("Power(1) = %d", chk.Power(1))
	}
	if pre := chk.Predecessors(5); len(pre) != 1 || pre[0] != 3 {
		t.Fatalf("Predecessors(5) = %v", pre)
	}
	if !chk.OK(1, sets(), sets()) {
		t.Fatal("OK(1) false with empty state")
	}
}

func TestPowerFallbackToSOC(t *testing.T) {
	s := testSOC()
	s.PowerMax = 120
	chk, err := New(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if chk.PowerMax() != 120 {
		t.Fatalf("SOC PowerMax not picked up: %d", chk.PowerMax())
	}
	// Config overrides.
	chk2, _ := New(s, Config{PowerMax: 300})
	if chk2.PowerMax() != 300 {
		t.Fatalf("override PowerMax = %d", chk2.PowerMax())
	}
}

func TestValidateTimeline(t *testing.T) {
	chk, _ := New(testSOC(), Config{PowerMax: 150})
	ok := map[int][]Interval{
		3: {{0, 10}},
		4: {{10, 20}},
		5: {{10, 20}},
		2: {{0, 10}},
		1: {{20, 30}},
	}
	if err := chk.ValidateTimeline(ok); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}

	bad := map[int][]Interval{3: {{5, 10}}, 5: {{0, 8}}}
	if err := chk.ValidateTimeline(bad); err == nil || !strings.Contains(err.Error(), "predecessor") {
		t.Fatalf("precedence violation missed: %v", err)
	}

	bad = map[int][]Interval{3: {{0, 10}}, 4: {{5, 15}}}
	if err := chk.ValidateTimeline(bad); err == nil || !strings.Contains(err.Error(), "BIST") {
		t.Fatalf("BIST overlap missed: %v", err)
	}

	// Core 5's predecessor 3 runs first so only the 1~5 overlap remains.
	bad = map[int][]Interval{3: {{0, 2}}, 1: {{2, 12}}, 5: {{7, 17}}}
	if err := chk.ValidateTimeline(bad); err == nil || !strings.Contains(err.Error(), "concurrency") {
		t.Fatalf("concurrency overlap missed: %v", err)
	}

	bad = map[int][]Interval{1: {{0, 10}}, 4: {{0, 10}}} // 100+60 > 150
	if err := chk.ValidateTimeline(bad); err == nil || !strings.Contains(err.Error(), "power") {
		t.Fatalf("power violation missed: %v", err)
	}

	// Power exactly at the budget at a boundary instant is fine: a test
	// ending at t releases its power before one starting at t claims it.
	edge := map[int][]Interval{1: {{0, 10}}, 2: {{10, 20}}, 4: {{10, 20}}}
	if err := chk.ValidateTimeline(edge); err != nil {
		t.Fatalf("boundary handoff rejected: %v", err)
	}
}

func TestValidateTimelinePrecedenceNeedsPredecessorRun(t *testing.T) {
	chk, _ := New(testSOC(), Config{})
	bad := map[int][]Interval{5: {{0, 10}}}
	if err := chk.ValidateTimeline(bad); err == nil || !strings.Contains(err.Error(), "never runs") {
		t.Fatalf("missing predecessor run not caught: %v", err)
	}
}
