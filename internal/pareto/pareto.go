// Package pareto computes the testing-time-versus-TAM-width staircase of a
// wrapped core, its Pareto-optimal points, and the "preferred TAM width"
// selection used by the DAC 2002 scheduling algorithm's Initialize step.
//
// For a given core, testing time T(w) is a non-increasing staircase in the
// TAM width w: it only drops at core-specific thresholds. A width w is
// Pareto-optimal when T(w) < T(w-1); rectangles at non-Pareto widths waste
// TAM wires and are discarded.
package pareto

import (
	"fmt"
	"sort"

	"repro/internal/soc"
	"repro/internal/wrapper"
)

// Point is one Pareto-optimal (width, time) pair for a core: the minimal
// TAM width achieving that testing time.
type Point struct {
	Width int
	Time  int64
}

// Set is the Pareto-optimal rectangle set R_i of one core, ordered by
// strictly increasing Width and strictly decreasing Time.
type Set struct {
	// CoreID identifies the core.
	CoreID int
	// MaxWidth is the width cap the set was computed under (the paper's
	// w_max, typically 64, further capped by the SOC TAM width).
	MaxWidth int
	// Points holds the Pareto points, Points[0].Width == 1.
	Points []Point
	// times caches T(w) for every w in 1..MaxWidth (index w-1).
	times []int64
}

// Compute builds the Pareto set of core c for widths 1..maxWidth.
func Compute(c *soc.Core, maxWidth int) (*Set, error) {
	s, _, err := ComputeDesigns(c, maxWidth)
	return s, err
}

// ComputeDesigns builds the Pareto set of core c for widths 1..maxWidth and
// additionally returns every wrapper design the staircase construction had
// to produce anyway, indexed by width-1. Staircase construction is the only
// place the framework pays for wrapper design; callers that keep the
// returned slice (sched.Optimizer's per-(core,width) cache) never redesign
// a wrapper again. The designs are immutable and safe to share.
func ComputeDesigns(c *soc.Core, maxWidth int) (*Set, []*wrapper.Design, error) {
	if maxWidth < 1 {
		return nil, nil, fmt.Errorf("pareto: core %d: non-positive max width %d", c.ID, maxWidth)
	}
	s := &Set{CoreID: c.ID, MaxWidth: maxWidth, times: make([]int64, maxWidth)}
	designs := make([]*wrapper.Design, maxWidth)
	var prev int64 = -1
	for w := 1; w <= maxWidth; w++ {
		d, err := wrapper.DesignWrapper(c, w)
		if err != nil {
			return nil, nil, err
		}
		designs[w-1] = d
		t := d.TestTime()
		s.times[w-1] = t
		if prev == -1 || t < prev {
			s.Points = append(s.Points, Point{Width: w, Time: t})
			prev = t
		}
	}
	return s, designs, nil
}

// Time returns T(w) for 1 <= w <= MaxWidth. Widths above MaxWidth saturate
// to T(MaxWidth); widths below 1 panic (programmer error).
func (s *Set) Time(w int) int64 {
	if w < 1 {
		panic(fmt.Sprintf("pareto: core %d: width %d < 1", s.CoreID, w))
	}
	if w > s.MaxWidth {
		w = s.MaxWidth
	}
	return s.times[w-1]
}

// MaxParetoWidth returns the highest Pareto-optimal width (the paper's w*):
// the smallest width achieving the core's minimum testing time. Widths
// beyond it buy nothing.
func (s *Set) MaxParetoWidth() int {
	return s.Points[len(s.Points)-1].Width
}

// MinTime returns the core's minimum testing time within the width cap.
func (s *Set) MinTime() int64 {
	return s.Points[len(s.Points)-1].Time
}

// SnapDown returns the largest Pareto-optimal width <= w, and true when one
// exists (w >= 1 always has one, since width 1 is Pareto-optimal). Points
// are width-ascending, so this is a binary search — SnapDown sits inside
// the scheduler's idle-insertion and widening inner loops.
func (s *Set) SnapDown(w int) (int, bool) {
	if w < 1 {
		return 0, false
	}
	// First point with Width > w; its predecessor is the answer.
	i := sort.Search(len(s.Points), func(k int) bool { return s.Points[k].Width > w })
	if i == 0 {
		return 0, false
	}
	return s.Points[i-1].Width, true
}

// PreferredWidth implements the Initialize subroutine (Fig. 5): choose the
// smallest width whose testing time is within percent% of the time at
// MaxWidth, then, if the highest Pareto-optimal width w* is at most delta
// wires larger, promote to w* (the "bottleneck rescue" heuristic that wins
// SOC p34392 its minimum testing time in the paper).
//
// percent is the paper's user parameter (1..10 typically); delta is the
// allowed width difference (0..4 typically).
func (s *Set) PreferredWidth(percent, delta int) int {
	target := s.MinTime() + (s.MinTime()*int64(percent))/100
	pref := s.MaxParetoWidth()
	// Points are width-ascending / time-descending: the first point at or
	// under the target time is the smallest qualifying width.
	for _, p := range s.Points {
		if p.Time <= target {
			pref = p.Width
			break
		}
	}
	if wstar := s.MaxParetoWidth(); wstar-pref <= delta {
		pref = wstar
	}
	return pref
}

// MinArea returns min over w of w·T(w) — the smallest TAM-wire-cycle area
// any rectangle of this core can occupy. It is the per-core term of the
// scheduling lower bound. For any width w, T(w) >= T(p) where p is the
// largest Pareto width <= w (Pareto points record every strict
// improvement, and the BFD heuristic may even bump T upward in between),
// so w·T(w) >= w·T(p) > p·T(p) whenever w > p: the minimum can only be
// attained at a Pareto width, and only Points is scanned.
func (s *Set) MinArea() int64 {
	best := int64(s.Points[0].Width) * s.Points[0].Time
	for _, p := range s.Points[1:] {
		if a := int64(p.Width) * p.Time; a < best {
			best = a
		}
	}
	return best
}

// Capped returns a view of the set restricted to widths 1..cap. The Pareto
// points of the capped staircase are exactly the prefix of the full set's
// points, so this is cheap; the underlying time table is shared.
// cap values at or above MaxWidth return the receiver unchanged.
func (s *Set) Capped(cap int) (*Set, error) {
	if cap < 1 {
		return nil, fmt.Errorf("pareto: core %d: non-positive cap %d", s.CoreID, cap)
	}
	if cap >= s.MaxWidth {
		return s, nil
	}
	out := &Set{CoreID: s.CoreID, MaxWidth: cap, times: s.times[:cap]}
	for _, p := range s.Points {
		if p.Width > cap {
			break
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Staircase returns the full (width, time) series for w = 1..MaxWidth,
// suitable for plotting Fig. 1 / Fig. 9(a)-style curves.
func (s *Set) Staircase() []Point {
	out := make([]Point, s.MaxWidth)
	for w := 1; w <= s.MaxWidth; w++ {
		out[w-1] = Point{Width: w, Time: s.times[w-1]}
	}
	return out
}

// ComputeAll builds Pareto sets for every core of the SOC under the same
// width cap, indexed by core ID.
func ComputeAll(s *soc.SOC, maxWidth int) (map[int]*Set, error) {
	sets, _, err := ComputeAllDesigns(s, maxWidth)
	return sets, err
}

// ComputeAllDesigns builds Pareto sets and retains every wrapper design for
// every core of the SOC, both indexed by core ID (designs additionally by
// width-1). See ComputeDesigns.
func ComputeAllDesigns(s *soc.SOC, maxWidth int) (map[int]*Set, map[int][]*wrapper.Design, error) {
	sets := make(map[int]*Set, len(s.Cores))
	designs := make(map[int][]*wrapper.Design, len(s.Cores))
	for _, c := range s.Cores {
		ps, ds, err := ComputeDesigns(c, maxWidth)
		if err != nil {
			return nil, nil, err
		}
		sets[c.ID] = ps
		designs[c.ID] = ds
	}
	return sets, designs, nil
}
