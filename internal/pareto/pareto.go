// Package pareto computes the testing-time-versus-TAM-width staircase of a
// wrapped core, its Pareto-optimal points, and the "preferred TAM width"
// selection used by the DAC 2002 scheduling algorithm's Initialize step.
//
// For a given core, testing time T(w) is a non-increasing staircase in the
// TAM width w: it only drops at core-specific thresholds. A width w is
// Pareto-optimal when T(w) < T(w-1); rectangles at non-Pareto widths waste
// TAM wires and are discarded.
package pareto

import (
	"fmt"

	"repro/internal/soc"
	"repro/internal/wrapper"
)

// Point is one Pareto-optimal (width, time) pair for a core: the minimal
// TAM width achieving that testing time.
type Point struct {
	Width int
	Time  int64
}

// Set is the Pareto-optimal rectangle set R_i of one core, ordered by
// strictly increasing Width and strictly decreasing Time.
type Set struct {
	// CoreID identifies the core.
	CoreID int
	// MaxWidth is the width cap the set was computed under (the paper's
	// w_max, typically 64, further capped by the SOC TAM width).
	MaxWidth int
	// Points holds the Pareto points, Points[0].Width == 1.
	Points []Point
	// times caches T(w) for every w in 1..MaxWidth (index w-1).
	times []int64
}

// Compute builds the Pareto set of core c for widths 1..maxWidth.
func Compute(c *soc.Core, maxWidth int) (*Set, error) {
	if maxWidth < 1 {
		return nil, fmt.Errorf("pareto: core %d: non-positive max width %d", c.ID, maxWidth)
	}
	s := &Set{CoreID: c.ID, MaxWidth: maxWidth, times: make([]int64, maxWidth)}
	var prev int64 = -1
	for w := 1; w <= maxWidth; w++ {
		d, err := wrapper.DesignWrapper(c, w)
		if err != nil {
			return nil, err
		}
		t := d.TestTime()
		s.times[w-1] = t
		if prev == -1 || t < prev {
			s.Points = append(s.Points, Point{Width: w, Time: t})
			prev = t
		}
	}
	return s, nil
}

// Time returns T(w) for 1 <= w <= MaxWidth. Widths above MaxWidth saturate
// to T(MaxWidth); widths below 1 panic (programmer error).
func (s *Set) Time(w int) int64 {
	if w < 1 {
		panic(fmt.Sprintf("pareto: core %d: width %d < 1", s.CoreID, w))
	}
	if w > s.MaxWidth {
		w = s.MaxWidth
	}
	return s.times[w-1]
}

// MaxParetoWidth returns the highest Pareto-optimal width (the paper's w*):
// the smallest width achieving the core's minimum testing time. Widths
// beyond it buy nothing.
func (s *Set) MaxParetoWidth() int {
	return s.Points[len(s.Points)-1].Width
}

// MinTime returns the core's minimum testing time within the width cap.
func (s *Set) MinTime() int64 {
	return s.Points[len(s.Points)-1].Time
}

// SnapDown returns the largest Pareto-optimal width <= w, and true when one
// exists (w >= 1 always has one, since width 1 is Pareto-optimal).
func (s *Set) SnapDown(w int) (int, bool) {
	if w < 1 {
		return 0, false
	}
	best := 0
	for _, p := range s.Points {
		if p.Width <= w {
			best = p.Width
		} else {
			break
		}
	}
	if best == 0 {
		return 0, false
	}
	return best, true
}

// PreferredWidth implements the Initialize subroutine (Fig. 5): choose the
// smallest width whose testing time is within percent% of the time at
// MaxWidth, then, if the highest Pareto-optimal width w* is at most delta
// wires larger, promote to w* (the "bottleneck rescue" heuristic that wins
// SOC p34392 its minimum testing time in the paper).
//
// percent is the paper's user parameter (1..10 typically); delta is the
// allowed width difference (0..4 typically).
func (s *Set) PreferredWidth(percent, delta int) int {
	target := s.MinTime() + (s.MinTime()*int64(percent))/100
	pref := s.MaxParetoWidth()
	// Points are width-ascending / time-descending: the first point at or
	// under the target time is the smallest qualifying width.
	for _, p := range s.Points {
		if p.Time <= target {
			pref = p.Width
			break
		}
	}
	if wstar := s.MaxParetoWidth(); wstar-pref <= delta {
		pref = wstar
	}
	return pref
}

// MinArea returns min over w of w·T(w) — the smallest TAM-wire-cycle area
// any rectangle of this core can occupy. It is the per-core term of the
// scheduling lower bound.
func (s *Set) MinArea() int64 {
	best := int64(1) * s.times[0]
	for w := 2; w <= s.MaxWidth; w++ {
		if a := int64(w) * s.times[w-1]; a < best {
			best = a
		}
	}
	return best
}

// Capped returns a view of the set restricted to widths 1..cap. The Pareto
// points of the capped staircase are exactly the prefix of the full set's
// points, so this is cheap; the underlying time table is shared.
// cap values at or above MaxWidth return the receiver unchanged.
func (s *Set) Capped(cap int) (*Set, error) {
	if cap < 1 {
		return nil, fmt.Errorf("pareto: core %d: non-positive cap %d", s.CoreID, cap)
	}
	if cap >= s.MaxWidth {
		return s, nil
	}
	out := &Set{CoreID: s.CoreID, MaxWidth: cap, times: s.times[:cap]}
	for _, p := range s.Points {
		if p.Width > cap {
			break
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Staircase returns the full (width, time) series for w = 1..MaxWidth,
// suitable for plotting Fig. 1 / Fig. 9(a)-style curves.
func (s *Set) Staircase() []Point {
	out := make([]Point, s.MaxWidth)
	for w := 1; w <= s.MaxWidth; w++ {
		out[w-1] = Point{Width: w, Time: s.times[w-1]}
	}
	return out
}

// ComputeAll builds Pareto sets for every core of the SOC under the same
// width cap, indexed by core ID.
func ComputeAll(s *soc.SOC, maxWidth int) (map[int]*Set, error) {
	out := make(map[int]*Set, len(s.Cores))
	for _, c := range s.Cores {
		ps, err := Compute(c, maxWidth)
		if err != nil {
			return nil, err
		}
		out[c.ID] = ps
	}
	return out, nil
}
