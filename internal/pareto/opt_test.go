package pareto

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/wrapper"
)

// TestSnapDownBoundaries table-tests the binary-search SnapDown on a set
// with known Pareto widths, covering every boundary: below 1, exactly at a
// Pareto width, between two Pareto widths, at MaxWidth, and beyond.
func TestSnapDownBoundaries(t *testing.T) {
	// 8 chains of 100 bits: Pareto widths are exactly the divisors-driven
	// drop positions of the staircase; read them from the computed set.
	c := scanCore([]int{100, 100, 100, 100, 100, 100, 100, 100}, 12, 8, 30)
	s, err := Compute(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	isPareto := make(map[int]bool)
	for _, p := range s.Points {
		isPareto[p.Width] = true
	}
	// Linear-scan reference for the expected answer.
	ref := func(w int) (int, bool) {
		best := 0
		for _, p := range s.Points {
			if p.Width <= w {
				best = p.Width
			}
		}
		return best, best != 0
	}
	cases := []int{-3, 0, 1, 2}
	for _, p := range s.Points {
		cases = append(cases, p.Width-1, p.Width, p.Width+1)
	}
	cases = append(cases, s.MaxWidth-1, s.MaxWidth, s.MaxWidth+1, s.MaxWidth+100)
	for _, w := range cases {
		got, gotOK := s.SnapDown(w)
		want, wantOK := ref(w)
		if got != want || gotOK != wantOK {
			t.Errorf("SnapDown(%d) = (%d,%v), want (%d,%v)", w, got, gotOK, want, wantOK)
		}
		if gotOK && !isPareto[got] {
			t.Errorf("SnapDown(%d) = %d is not Pareto-optimal", w, got)
		}
	}
}

// TestMinAreaMatchesExhaustive asserts the Pareto-points-only MinArea
// equals the exhaustive min over w of w·T(w) on random cores: T is
// constant between Pareto points, so the area minimum can only sit at one.
func TestMinAreaMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		nchains := rng.Intn(10)
		chains := make([]int, nchains)
		for j := range chains {
			chains[j] = rng.Intn(150)
		}
		c := scanCore(chains, rng.Intn(200), rng.Intn(200), 1+rng.Intn(100))
		maxWidth := 1 + rng.Intn(32)
		s, err := Compute(c, maxWidth)
		if err != nil {
			t.Fatal(err)
		}
		exhaustive := int64(1) * s.Time(1)
		for w := 2; w <= maxWidth; w++ {
			if a := int64(w) * s.Time(w); a < exhaustive {
				exhaustive = a
			}
		}
		if got := s.MinArea(); got != exhaustive {
			t.Fatalf("case %d (maxWidth=%d): MinArea = %d, exhaustive scan = %d\npoints: %+v",
				i, maxWidth, got, exhaustive, s.Points)
		}
	}
}

// TestComputeDesigns asserts the retained designs are exactly what
// DesignWrapper produces and consistent with the cached time table.
func TestComputeDesigns(t *testing.T) {
	c := scanCore([]int{50, 40, 30, 20, 10}, 6, 4, 20)
	s, designs, err := ComputeDesigns(c, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) != 24 {
		t.Fatalf("got %d designs, want 24", len(designs))
	}
	for w := 1; w <= 24; w++ {
		want, err := wrapper.DesignWrapper(c, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(designs[w-1], want) {
			t.Fatalf("width %d: retained design differs from DesignWrapper", w)
		}
		if designs[w-1].TestTime() != s.Time(w) {
			t.Fatalf("width %d: design time %d, set time %d", w, designs[w-1].TestTime(), s.Time(w))
		}
	}
}
