package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/soc"
	"repro/internal/wrapper"
)

func scanCore(chains []int, in, out, patterns int) *soc.Core {
	return &soc.Core{
		ID: 1, Name: "t", Inputs: in, Outputs: out,
		ScanChains: chains,
		Test:       soc.Test{Patterns: patterns, BISTEngine: -1},
	}
}

func TestComputeBasics(t *testing.T) {
	c := scanCore([]int{20, 20, 20, 20}, 8, 8, 10)
	s, err := Compute(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.CoreID != 1 || s.MaxWidth != 16 {
		t.Fatalf("header wrong: %+v", s)
	}
	// Points strictly increasing in width, strictly decreasing in time,
	// starting at width 1.
	if s.Points[0].Width != 1 {
		t.Fatalf("first Pareto width = %d, want 1", s.Points[0].Width)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Width <= s.Points[i-1].Width || s.Points[i].Time >= s.Points[i-1].Time {
			t.Fatalf("points not strictly ordered: %+v", s.Points)
		}
	}
	// With 4 equal chains, width 5+ cannot beat width 4 on scan, so the
	// max Pareto width is small.
	if got := s.MaxParetoWidth(); got > 8 {
		t.Fatalf("MaxParetoWidth = %d, unexpectedly large", got)
	}
}

func TestTimeMatchesWrapper(t *testing.T) {
	c := scanCore([]int{30, 20, 10}, 5, 7, 12)
	s, err := Compute(c, 12)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 12; w++ {
		if got, want := s.Time(w), wrapper.TestTimeAt(c, w); got != want {
			t.Fatalf("Time(%d) = %d, wrapper says %d", w, got, want)
		}
	}
	// Saturation above MaxWidth.
	if got := s.Time(99); got != s.Time(12) {
		t.Fatalf("Time(99) = %d, want saturation to %d", got, s.Time(12))
	}
}

func TestTimePanicsBelowOne(t *testing.T) {
	c := scanCore([]int{4}, 1, 1, 2)
	s, _ := Compute(c, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Time(0) did not panic")
		}
	}()
	s.Time(0)
}

func TestSnapDown(t *testing.T) {
	c := scanCore([]int{20, 20, 20, 20}, 0, 0, 10)
	s, _ := Compute(c, 16)
	for w := 1; w <= 16; w++ {
		got, ok := s.SnapDown(w)
		if !ok {
			t.Fatalf("SnapDown(%d) failed", w)
		}
		if got > w {
			t.Fatalf("SnapDown(%d) = %d > w", w, got)
		}
		if s.Time(got) != s.Time(w) {
			t.Fatalf("SnapDown(%d)=%d loses time: %d vs %d", w, got, s.Time(got), s.Time(w))
		}
	}
	if _, ok := s.SnapDown(0); ok {
		t.Fatal("SnapDown(0) succeeded")
	}
}

func TestPreferredWidth(t *testing.T) {
	// Chains engineered so times step visibly: 8 chains of 100.
	c := scanCore([]int{100, 100, 100, 100, 100, 100, 100, 100}, 0, 0, 50)
	s, _ := Compute(c, 16)
	wstar := s.MaxParetoWidth()
	// percent=0: always the highest Pareto width.
	if got := s.PreferredWidth(0, 0); got != wstar {
		t.Fatalf("PreferredWidth(0,0) = %d, want %d", got, wstar)
	}
	// Large percent: allows narrower widths.
	w100 := s.PreferredWidth(100, 0)
	if w100 > wstar {
		t.Fatalf("PreferredWidth(100,0) = %d > w* %d", w100, wstar)
	}
	if s.Time(w100) > s.MinTime()*2 {
		t.Fatalf("PreferredWidth(100,0)=%d has T=%d > 2·Tmin=%d", w100, s.Time(w100), 2*s.MinTime())
	}
	// Delta promotion: a preferred width within delta of w* snaps to w*.
	for delta := 0; delta <= 16; delta++ {
		got := s.PreferredWidth(100, delta)
		if wstar-w100 <= delta && got != wstar {
			t.Fatalf("delta=%d did not promote %d to %d", delta, w100, wstar)
		}
	}
}

func TestCapped(t *testing.T) {
	c := scanCore([]int{50, 40, 30, 20, 10}, 6, 4, 20)
	full, err := Compute(c, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 3, 7, 15, 32, 100} {
		view, err := full.Capped(cap)
		if err != nil {
			t.Fatal(err)
		}
		eff := cap
		if eff > 32 {
			eff = 32
		}
		direct, err := Compute(c, eff)
		if err != nil {
			t.Fatal(err)
		}
		if view.MaxWidth != direct.MaxWidth || len(view.Points) != len(direct.Points) {
			t.Fatalf("cap=%d: view %+v vs direct %+v", cap, view.Points, direct.Points)
		}
		for w := 1; w <= eff; w++ {
			if view.Time(w) != direct.Time(w) {
				t.Fatalf("cap=%d Time(%d): %d vs %d", cap, w, view.Time(w), direct.Time(w))
			}
		}
		if view.MinArea() != direct.MinArea() {
			t.Fatalf("cap=%d MinArea: %d vs %d", cap, view.MinArea(), direct.MinArea())
		}
	}
	if _, err := full.Capped(0); err == nil {
		t.Fatal("Capped(0) accepted")
	}
}

func TestMinArea(t *testing.T) {
	// For typical scan cores min area sits at width 1: w·T(w) grows with w.
	c := scanCore([]int{40, 40}, 4, 4, 25)
	s, _ := Compute(c, 8)
	if got, want := s.MinArea(), 1*s.Time(1); got != want {
		t.Fatalf("MinArea = %d, want %d (at w=1)", got, want)
	}
}

func TestStaircase(t *testing.T) {
	c := scanCore([]int{10, 10}, 2, 2, 5)
	s, _ := Compute(c, 6)
	st := s.Staircase()
	if len(st) != 6 {
		t.Fatalf("staircase has %d points, want 6", len(st))
	}
	for i, p := range st {
		if p.Width != i+1 || p.Time != s.Time(i+1) {
			t.Fatalf("staircase[%d] = %+v", i, p)
		}
	}
}

func TestComputeAll(t *testing.T) {
	s := &soc.SOC{
		Name: "t",
		Cores: []*soc.Core{
			scanCore([]int{10}, 1, 1, 3),
			{ID: 2, Name: "u", Inputs: 5, Outputs: 5, Test: soc.Test{Patterns: 2, BISTEngine: -1}},
		},
	}
	s.Cores[0].ID = 1
	sets, err := ComputeAll(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || sets[1] == nil || sets[2] == nil {
		t.Fatalf("ComputeAll = %v", sets)
	}
}

func TestComputeErrors(t *testing.T) {
	c := scanCore([]int{4}, 1, 1, 2)
	if _, err := Compute(c, 0); err == nil {
		t.Fatal("maxWidth 0 accepted")
	}
}

// Property: for random cores, the staircase is non-increasing, Pareto
// points are exactly the drop positions, and SnapDown is consistent.
func TestStaircaseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := &soc.Core{
			ID: 1, Name: "r",
			Inputs:  rng.Intn(40),
			Outputs: rng.Intn(40),
			Test:    soc.Test{Patterns: 1 + rng.Intn(100), BISTEngine: -1},
		}
		for j := rng.Intn(10); j > 0; j-- {
			c.ScanChains = append(c.ScanChains, 1+rng.Intn(80))
		}
		if c.Inputs+c.Outputs+len(c.ScanChains) == 0 {
			c.Inputs = 1
		}
		s, err := Compute(c, 24)
		if err != nil {
			return false
		}
		isPareto := make(map[int]bool)
		for _, p := range s.Points {
			isPareto[p.Width] = true
		}
		for w := 2; w <= 24; w++ {
			if s.Time(w) > s.Time(w-1) {
				return false // staircase must not rise
			}
			drop := s.Time(w) < s.Time(w-1)
			if drop != isPareto[w] {
				return false // Pareto points are exactly the drops
			}
		}
		return isPareto[1] && s.MinTime() == s.Time(24)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
