package tamsim

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/soc"
)

func schedule(t *testing.T, s *soc.SOC, p sched.Params) *sched.Schedule {
	t.Helper()
	sch, err := sched.SweepBest(s, p, []int{5, 10}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestSimulateDemoBitLevel(t *testing.T) {
	s := bench.Demo()
	sch := schedule(t, s, sched.Params{TAMWidth: 16})
	res, err := Simulate(s, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitLevelCores != len(s.Cores) {
		t.Fatalf("bit-level %d/%d cores; demo SOC is small enough for all", res.BitLevelCores, len(s.Cores))
	}
	if res.MeasuredMakespan != sch.Makespan {
		t.Fatalf("measured %d vs schedule %d", res.MeasuredMakespan, sch.Makespan)
	}
	if res.DataVolume != int64(sch.TAMWidth)*sch.Makespan {
		t.Fatalf("data volume %d != W·T", res.DataVolume)
	}
	if res.PerPinDepth != sch.Makespan {
		t.Fatalf("per-pin depth %d != makespan", res.PerPinDepth)
	}
	for id, cr := range res.Cores {
		if cr.MismatchedResponses != 0 {
			t.Fatalf("core %d: %d mismatched responses", id, cr.MismatchedResponses)
		}
	}
	if res.PayloadEfficiency() <= 0 {
		t.Fatalf("payload efficiency %v", res.PayloadEfficiency())
	}
}

func TestSimulateRespectsBitLevelCap(t *testing.T) {
	s := bench.Demo()
	sch := schedule(t, s, sched.Params{TAMWidth: 16})
	res, err := Simulate(s, sch, Options{BitLevelMaxBits: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitLevelCores != 0 {
		t.Fatalf("bit-level disabled but %d cores simulated", res.BitLevelCores)
	}
	res2, err := Simulate(s, sch, Options{BitLevelMaxBits: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res2.BitLevelCores == 0 || res2.BitLevelCores == len(s.Cores) {
		t.Logf("cap produced %d/%d bit-level cores", res2.BitLevelCores, len(s.Cores))
	}
}

func TestSimulatePreemptiveCycleAccounting(t *testing.T) {
	s := bench.P22810Like()
	mp, err := sched.LargerCorePreemptions(s, sched.DefaultMaxWidth, 2)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := sched.SweepBest(s, sched.Params{
		TAMWidth:       48,
		MaxPreemptions: mp,
		PowerMax:       sched.DefaultPowerBudget(s, 110),
	}, []int{8}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(s, sch, Options{BitLevelMaxBits: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// Preempted cores are cycle-verified (timing model plus penalties).
	for id, a := range sch.Assignments {
		if a.Preemptions > 0 && res.Cores[id].BitLevel {
			t.Fatalf("preempted core %d was bit-level simulated", id)
		}
	}
}

func TestSimulateDetectsTampering(t *testing.T) {
	s := bench.Demo()
	sch := schedule(t, s, sched.Params{TAMWidth: 16})

	// Shorten one piece: cycle accounting must fail.
	var victim int
	for id := range sch.Assignments {
		victim = id
		break
	}
	saved := sch.Assignments[victim].Pieces[0].End
	sch.Assignments[victim].Pieces[0].End = saved - 1
	if _, err := Simulate(s, sch, Options{}); err == nil {
		t.Fatal("shortened piece accepted")
	}
	sch.Assignments[victim].Pieces[0].End = saved

	// Makespan lie.
	sch.Makespan++
	if _, err := Simulate(s, sch, Options{}); err == nil {
		t.Fatal("wrong makespan accepted")
	}
	sch.Makespan--
}

func TestSimulateDetectsBISTOverlap(t *testing.T) {
	// Build a fake schedule where two cores sharing engine 0 overlap.
	s := &soc.SOC{
		Name: "bistclash",
		Cores: []*soc.Core{
			{ID: 1, Name: "m0", Inputs: 2, Outputs: 2, ScanChains: []int{10}, Test: soc.Test{Patterns: 5, Kind: soc.BISTTest, BISTEngine: 0}},
			{ID: 2, Name: "m1", Inputs: 2, Outputs: 2, ScanChains: []int{10}, Test: soc.Test{Patterns: 5, Kind: soc.BISTTest, BISTEngine: 0}},
		},
	}
	sch, err := sched.Run(s, sched.Params{TAMWidth: 8, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The real schedule serializes them; force an overlap.
	a1, a2 := sch.Assignments[1], sch.Assignments[2]
	shift := a2.Pieces[0].Start - a1.Pieces[0].Start
	a2.Pieces[0].Start -= shift
	a2.Pieces[0].End -= shift
	if _, err := Simulate(s, sch, Options{}); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("BIST overlap not detected: %v", err)
	}
}

func TestSimulateD695AllWidths(t *testing.T) {
	s := bench.D695()
	for _, w := range []int{16, 64} {
		sch := schedule(t, s, sched.Params{TAMWidth: w})
		res, err := Simulate(s, sch, Options{})
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		if res.BitLevelCores == 0 {
			t.Fatalf("W=%d: no bit-level verification happened", w)
		}
	}
}

// TestTimingModelAgreesBitLevel pins the formula T = (1+max)·p + min
// against the cycle-by-cycle walk for assorted wrapper shapes.
func TestTimingModelAgreesBitLevel(t *testing.T) {
	shapes := []*soc.Core{
		{ID: 1, Name: "bal", Inputs: 4, Outputs: 4, ScanChains: []int{20, 20}, Test: soc.Test{Patterns: 9, BISTEngine: -1}},
		{ID: 2, Name: "skewIn", Inputs: 30, Outputs: 1, ScanChains: []int{8}, Test: soc.Test{Patterns: 5, BISTEngine: -1}},
		{ID: 3, Name: "skewOut", Inputs: 1, Outputs: 30, ScanChains: []int{8}, Test: soc.Test{Patterns: 5, BISTEngine: -1}},
		{ID: 4, Name: "comb", Inputs: 12, Outputs: 7, Test: soc.Test{Patterns: 11, BISTEngine: -1}},
		{ID: 5, Name: "bidir", Inputs: 3, Outputs: 3, Bidirs: 5, ScanChains: []int{6, 4}, Test: soc.Test{Patterns: 7, BISTEngine: -1}},
	}
	for _, c := range shapes {
		one := &soc.SOC{Name: "one", Cores: []*soc.Core{c}}
		id := c.ID
		c.ID = 1
		sch, err := sched.Run(one, sched.Params{TAMWidth: 4, Percent: 5, Delta: 1})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if _, err := Simulate(one, sch, Options{}); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		c.ID = id
	}
}
