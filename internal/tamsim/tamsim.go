// Package tamsim simulates the execution of an SOC test schedule on a
// tester (ATE) connected to the SOC's TAM: per-pin vector memory, wire-level
// TAM occupancy, and — for unpreempted cores — bit-accurate shifting of
// stimulus and response through the designed wrapper chains, verifying that
// the schedule's predicted testing times and the paper's timing model
//
//	T = (1 + max(si,so))·p + min(si,so)
//	  = si + (p-1)·(1 + max(si,so)) + 1 + so
//
// agree with an actual cycle-by-cycle execution, and that every response
// the ATE receives matches the golden core model.
package tamsim

import (
	"fmt"
	"sort"

	"repro/internal/bist"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/soc"
	"repro/internal/wrapper"
)

// Options tunes a simulation.
type Options struct {
	// BitLevelMaxBits bounds the per-core test-data size (stimulus +
	// response bits) for which full bit-level simulation is performed;
	// larger cores are verified at cycle granularity only. Default 2e6.
	// Set negative to disable bit-level simulation entirely.
	BitLevelMaxBits int64
}

// CoreResult reports per-core simulation outcomes.
type CoreResult struct {
	CoreID int
	// Cycles is the total scheduled cycles the core occupied its wires.
	Cycles int64
	// BitLevel reports whether the core was simulated bit-by-bit.
	BitLevel bool
	// PayloadBits counts stimulus+response bits moved for this core.
	PayloadBits int64
	// MismatchedResponses counts response bits that differed from the
	// golden model (always 0 for a correct transport).
	MismatchedResponses int
}

// Result is the outcome of simulating a schedule.
type Result struct {
	// SOC and TAMWidth echo the schedule.
	SOC      string
	TAMWidth int
	// MeasuredMakespan is the last cycle any TAM wire is busy.
	MeasuredMakespan int64
	// PerPinDepth is the ATE vector memory depth required per TAM pin.
	PerPinDepth int64
	// DataVolume is the tester data volume: TAMWidth · PerPinDepth bits.
	DataVolume int64
	// PayloadBits is the total useful test data moved (all cores).
	PayloadBits int64
	// BitLevelCores counts cores verified bit-by-bit.
	BitLevelCores int
	// Cores holds per-core results keyed by core ID.
	Cores map[int]*CoreResult
}

// PayloadEfficiency returns PayloadBits / DataVolume. Because scan-in of
// one pattern overlaps scan-out of the previous one, a busy TAM wire moves
// up to two payload bits per cycle, so values above 1.0 indicate
// well-overlapped schedules; idle wires and pipeline head/tail cycles pull
// the ratio down.
func (r *Result) PayloadEfficiency() float64 {
	if r.DataVolume == 0 {
		return 0
	}
	return float64(r.PayloadBits) / float64(r.DataVolume)
}

// Simulate executes the schedule. It fails on any inconsistency: wire
// double-booking, cycle-count mismatches against the wrapper timing model,
// BIST engine double-acquisition, or response mismatches in bit-level mode.
func Simulate(s *soc.SOC, sch *sched.Schedule, opts Options) (*Result, error) {
	if opts.BitLevelMaxBits == 0 {
		opts.BitLevelMaxBits = 2_000_000
	}
	if err := sch.Bin.Validate(); err != nil {
		return nil, fmt.Errorf("tamsim: %v", err)
	}
	res := &Result{
		SOC:      s.Name,
		TAMWidth: sch.TAMWidth,
		Cores:    make(map[int]*CoreResult, len(s.Cores)),
	}

	if err := checkBISTExclusion(s, sch); err != nil {
		return nil, err
	}

	for _, c := range s.Cores {
		a := sch.Assignments[c.ID]
		if a == nil {
			return nil, fmt.Errorf("tamsim: core %d missing from schedule", c.ID)
		}
		cr, err := simulateCore(c, a, opts)
		if err != nil {
			return nil, err
		}
		res.Cores[c.ID] = cr
		res.PayloadBits += cr.PayloadBits
		if cr.BitLevel {
			res.BitLevelCores++
		}
		if e := a.End(); e > res.MeasuredMakespan {
			res.MeasuredMakespan = e
		}
	}
	if res.MeasuredMakespan != sch.Makespan {
		return nil, fmt.Errorf("tamsim: measured makespan %d != schedule %d", res.MeasuredMakespan, sch.Makespan)
	}
	res.PerPinDepth = res.MeasuredMakespan
	res.DataVolume = int64(res.TAMWidth) * res.PerPinDepth
	return res, nil
}

// checkBISTExclusion replays the schedule against the BIST engine registry:
// engines are acquired at each BIST test's start and released at its end;
// overlapping acquisition is a hard error.
func checkBISTExclusion(s *soc.SOC, sch *sched.Schedule) error {
	var ids []int
	for _, c := range s.Cores {
		if c.Test.BISTEngine >= 0 {
			ids = append(ids, c.Test.BISTEngine)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	reg := bist.NewRegistry(ids)
	type ev struct {
		t       int64
		release bool
		core    int
		engine  int
	}
	var evs []ev
	for _, c := range s.Cores {
		if c.Test.BISTEngine < 0 {
			continue
		}
		a := sch.Assignments[c.ID]
		evs = append(evs,
			ev{t: a.Start(), core: c.ID, engine: c.Test.BISTEngine},
			ev{t: a.End(), release: true, core: c.ID, engine: c.Test.BISTEngine},
		)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].release && !evs[j].release // releases first
	})
	for _, e := range evs {
		var err error
		if e.release {
			err = reg.Release(e.engine, e.core)
		} else {
			err = reg.Acquire(e.engine, e.core)
		}
		if err != nil {
			return fmt.Errorf("tamsim: t=%d: %v", e.t, err)
		}
	}
	return nil
}

// simulateCore verifies one core's assignment, bit-level when affordable.
func simulateCore(c *soc.Core, a *sched.Assignment, opts Options) (*CoreResult, error) {
	d, err := wrapper.DesignWrapper(c, a.Width)
	if err != nil {
		return nil, err
	}
	cr := &CoreResult{CoreID: c.ID}
	for i := range a.Pieces {
		cr.Cycles += a.Pieces[i].Duration()
	}
	want := d.TestTime() + int64(a.Preemptions)*d.PreemptionPenalty()
	if cr.Cycles != want {
		return nil, fmt.Errorf("tamsim: core %d occupies %d cycles, timing model wants %d", c.ID, cr.Cycles, want)
	}
	in, out := 0, 0
	for j := range d.Chains {
		in += d.Chains[j].ScanIn()
		out += d.Chains[j].ScanOut()
	}
	cr.PayloadBits = int64(c.Test.Patterns) * int64(in+out)

	sizeBits := cr.PayloadBits
	if opts.BitLevelMaxBits < 0 || sizeBits > opts.BitLevelMaxBits || a.Preemptions > 0 {
		return cr, nil // cycle-level verification only
	}
	cycles, mism, err := shiftBitLevel(c, d)
	if err != nil {
		return nil, err
	}
	if cycles != d.TestTime() {
		return nil, fmt.Errorf("tamsim: core %d bit-level run took %d cycles, model says %d", c.ID, cycles, d.TestTime())
	}
	cr.BitLevel = true
	cr.MismatchedResponses = mism
	if mism > 0 {
		return nil, fmt.Errorf("tamsim: core %d: %d response bits mismatched the golden model", c.ID, mism)
	}
	return cr, nil
}

// shiftBitLevel plays the full scan protocol for one core: initial scan-in,
// p-1 overlapped capture+shift slots, final capture and scan-out, counting
// every cycle and comparing every response bit the ATE receives against the
// golden model.
func shiftBitLevel(c *soc.Core, d *wrapper.Design) (cycles int64, mismatches int, err error) {
	set, err := pattern.Generate(c, d)
	if err != nil {
		return 0, 0, err
	}
	nchains := len(d.Chains)
	si, so := d.ScanInMax, d.ScanOutMax
	maxShift := si
	if so > maxShift {
		maxShift = so
	}

	// Per-chain stimulus/response framing: chain j owns a contiguous slice
	// of each vector's bits, in chain order.
	inLens := make([]int, nchains)
	outLens := make([]int, nchains)
	for j := 0; j < nchains; j++ {
		inLens[j] = d.Chains[j].ScanIn()
		outLens[j] = d.Chains[j].ScanOut()
	}

	inRegs := make([][]byte, nchains)  // captured stimulus per chain
	outRegs := make([][]byte, nchains) // pending response per chain, shifted out MSB-first
	received := make([][]byte, nchains)

	shiftSlot := func(vec *pattern.Vector, shifts int) {
		// One overlapped slot: chain j takes its next stimulus bit for the
		// first inLens[j] cycles and emits a response bit for the first
		// outLens[j] cycles.
		off := 0
		for j := 0; j < nchains; j++ {
			if vec != nil {
				inRegs[j] = append(inRegs[j][:0], vec.Stimulus[off:off+inLens[j]]...)
			}
			off += inLens[j]
		}
		for j := 0; j < nchains; j++ {
			n := outLens[j]
			if len(outRegs[j]) > 0 {
				received[j] = append(received[j], outRegs[j][:n]...)
				outRegs[j] = outRegs[j][:0]
			}
		}
	}

	verifySlot := func(k int) {
		// Compare the response received for vector k.
		if k < 0 {
			return
		}
		want := set.Vectors[k].Response
		off := 0
		for j := 0; j < nchains; j++ {
			got := received[j]
			for b := 0; b < outLens[j]; b++ {
				if got[b] != want[off+b] {
					mismatches++
				}
			}
			received[j] = received[j][:0]
			off += outLens[j]
		}
	}

	capture := func(k int) {
		// Core computes the response to vector k and loads scan-out cells.
		resp := pattern.Respond(c.ID, set.Vectors[k].Stimulus, set.ScanOutBits)
		off := 0
		for j := 0; j < nchains; j++ {
			outRegs[j] = append(outRegs[j][:0], resp[off:off+outLens[j]]...)
			off += outLens[j]
		}
	}

	p := c.Test.Patterns
	// Initial scan-in of vector 0.
	shiftSlot(&set.Vectors[0], si)
	cycles += int64(si)
	for k := 0; k < p-1; k++ {
		capture(k)
		cycles++ // capture cycle
		shiftSlot(&set.Vectors[k+1], maxShift)
		cycles += int64(maxShift)
		verifySlot(k)
	}
	capture(p - 1)
	cycles++
	shiftSlot(nil, so)
	cycles += int64(so)
	verifySlot(p - 1)

	return cycles, mismatches, nil
}
