package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time // guarded by mu
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTraceTree pins span nesting, attrs, timings under an injected
// clock, and the exported JSON shape.
func TestTraceTree(t *testing.T) {
	tr := NewTracer(4)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr.SetClock(clk.now)

	ctx, root := tr.StartTrace(context.Background(), "GET /x")
	if root == nil || root.TraceID() != "t00000001" {
		t.Fatalf("root trace ID = %q, want t00000001", root.TraceID())
	}
	root.SetAttr("status", 200)
	clk.advance(10 * time.Millisecond)

	cctx, child := Start(ctx, "backend/classic")
	if child == nil || child.TraceID() != root.TraceID() {
		t.Fatal("child span missing or in a different trace")
	}
	child.SetAttr("makespan", int64(42))
	clk.advance(5 * time.Millisecond)
	_, grand := Start(cctx, "racer/rectpack")
	clk.advance(1 * time.Millisecond)
	grand.End()
	child.End()
	clk.advance(2 * time.Millisecond)
	root.End()

	td, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not retained after root End")
	}
	if td.SpanCount() != 3 {
		t.Fatalf("SpanCount = %d, want 3", td.SpanCount())
	}
	if td.Root.Name != "GET /x" || td.Root.StartNs != 0 || td.Root.DurNs != (18*time.Millisecond).Nanoseconds() {
		t.Fatalf("root span = %+v", td.Root)
	}
	if got := td.Root.Attrs["status"]; got != 200 {
		t.Fatalf("root attrs = %v", td.Root.Attrs)
	}
	c := td.Root.Children[0]
	if c.Name != "backend/classic" || c.StartNs != (10*time.Millisecond).Nanoseconds() || c.DurNs != (6*time.Millisecond).Nanoseconds() {
		t.Fatalf("child span = %+v", c)
	}
	g := c.Children[0]
	if g.Name != "racer/rectpack" || g.StartNs != (15*time.Millisecond).Nanoseconds() || g.DurNs != (1*time.Millisecond).Nanoseconds() {
		t.Fatalf("grandchild span = %+v", g)
	}

	raw, err := json.Marshal(td)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceData
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != "t00000001" || back.SpanCount() != 3 {
		t.Fatalf("JSON round trip = %+v", back)
	}
}

// TestTraceRing checks the completed-trace ring evicts oldest-first.
func TestTraceRing(t *testing.T) {
	tr := NewTracer(2)
	var ids []string
	for i := 0; i < 3; i++ {
		_, sp := tr.StartTrace(context.Background(), fmt.Sprintf("op%d", i))
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace survived past capacity")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("trace %s evicted too early", id)
		}
	}
}

// TestNilSafety: spans off a traceless context, nil contexts, and nil
// tracers are all silent no-ops — the instrumented hot paths rely on it.
func TestNilSafety(t *testing.T) {
	ctx, span := Start(context.Background(), "untraced")
	if span != nil {
		t.Fatal("Start without a trace returned a live span")
	}
	span.SetAttr("k", "v")
	span.End()
	if span.TraceID() != "" || span.Name() != "" {
		t.Fatal("nil span leaked identity")
	}
	if ctx != context.Background() {
		t.Fatal("Start without a trace derived a new context")
	}
	var nilCtx context.Context // chaos.Inject sites pass a nil ctx through
	if ctx2, sp := Start(nilCtx, "nil-ctx"); sp != nil || ctx2 != nil {
		t.Fatal("Start(nil) not a no-op")
	}
	var tr *Tracer
	if _, sp := tr.StartTrace(context.Background(), "off"); sp != nil {
		t.Fatal("nil tracer started a span")
	}
	if _, ok := tr.Get("t00000001"); ok || tr.Len() != 0 {
		t.Fatal("nil tracer returned a trace")
	}
}

// TestConcurrentChildren races child creation and attrs against the root
// ending, as parallel portfolio racers do (meaningful under -race).
func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.StartTrace(context.Background(), "race")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := Start(ctx, fmt.Sprintf("racer%d", i))
			sp.SetAttr("i", i)
			if i%2 == 0 {
				sp.End() // odd racers stay open: abandoned, clamped at export
			}
		}(i)
	}
	wg.Wait()
	root.End()
	td, ok := tr.Get(root.TraceID())
	if !ok || td.SpanCount() != 9 {
		t.Fatalf("trace = %+v, ok=%v", td, ok)
	}
	for _, c := range td.Root.Children {
		if c.DurNs < 0 {
			t.Fatalf("span %s exported negative duration %d", c.Name, c.DurNs)
		}
	}
}

// TestDoubleEnd: the first End wins; a second End neither re-publishes
// nor changes the recorded duration.
func TestDoubleEnd(t *testing.T) {
	tr := NewTracer(4)
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr.SetClock(clk.now)
	_, root := tr.StartTrace(context.Background(), "op")
	clk.advance(time.Millisecond)
	root.End()
	clk.advance(time.Hour)
	root.End()
	td, _ := tr.Get(root.TraceID())
	if td.Root.DurNs != time.Millisecond.Nanoseconds() {
		t.Fatalf("DurNs = %d, want 1ms", td.Root.DurNs)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after double End", tr.Len())
	}
}
