package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histSub is the number of linear sub-buckets per power-of-two octave.
// With 8 sub-buckets, a bucket spans 1/8 of its octave, so any recorded
// value is at most 12.5% above its bucket's lower bound — the histogram's
// worst-case quantile error.
const histSub = 8

// histBuckets sizes the bucket array: values below 2*histSub get one
// exact bucket each, and every octave e = 4..61 contributes histSub
// buckets ((e-3)*histSub + histSub..). Durations are int64 nanoseconds,
// so e tops out at 62; 496 covers (61-3+1)*8 + 15 = 487 with headroom.
const histBuckets = 496

// bucketIndex maps a nanosecond value to its bucket: exact below 16,
// log-linear (octave × 8 sub-buckets) above. Negative values clamp to 0.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 2*histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1), e >= 4
	m := v >> (uint(e) - 3)        // mantissa in [8, 16)
	return (e-3)*histSub + int(m)
}

// bucketLower returns the smallest value mapping to the bucket — the
// value Snapshot reports for quantiles landing in it.
func bucketLower(idx int) int64 {
	if idx < 2*histSub {
		return int64(idx)
	}
	b := idx / histSub
	r := idx % histSub
	return int64(histSub+r) << (uint(b) - 1)
}

// Histogram is a lock-free log-bucketed latency histogram: Observe is a
// few atomic adds (safe from any goroutine, no allocation), Snapshot
// estimates quantiles from the bucket counts. The zero value is ready to
// use. Quantile estimates are exact below 16ns and within 12.5% above —
// each bucket spans 1/8 of its power-of-two octave.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// HistSnapshot is a point-in-time histogram summary in nanoseconds, as
// served on /metrics and /v1/backends. Max is exact; the quantiles are
// bucket lower bounds (within 12.5% of the true sample).
type HistSnapshot struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"meanNs"`
	P50Ns  int64 `json:"p50Ns"`
	P90Ns  int64 `json:"p90Ns"`
	P99Ns  int64 `json:"p99Ns"`
	MaxNs  int64 `json:"maxNs"`
}

// Snapshot summarizes the histogram. Concurrent Observe calls may be
// partially visible (an in-flight recording lands in the next snapshot);
// counts already recorded are never lost.
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return HistSnapshot{}
	}
	return HistSnapshot{
		Count:  total,
		MeanNs: h.sum.Load() / total,
		P50Ns:  quantile(&counts, total, 50),
		P90Ns:  quantile(&counts, total, 90),
		P99Ns:  quantile(&counts, total, 99),
		MaxNs:  h.max.Load(),
	}
}

// quantile returns the bucket lower bound containing the pct'th
// percentile sample (1-based rank ⌈total·pct/100⌉).
func quantile(counts *[histBuckets]int64, total, pct int64) int64 {
	rank := (total*pct + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return bucketLower(i)
		}
	}
	return bucketLower(histBuckets - 1)
}
