package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucketing scheme: indices are monotonic,
// contiguous, and every bucket's lower bound maps back to its own index.
func TestBucketBoundaries(t *testing.T) {
	// Exact region: one bucket per value below 16.
	for v := int64(0); v < 16; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Errorf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
	}
	// Continuity across the exact/log boundary and octave edges.
	for _, tc := range []struct {
		v    int64
		want int
	}{
		{15, 15}, {16, 16}, {17, 16}, {30, 23}, {31, 23}, {32, 24}, {63, 31}, {64, 32},
	} {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Errorf("bucketIndex(-5) = %d, want 0 (clamped)", got)
	}
	// Round trip: every bucket's lower bound belongs to that bucket, and
	// the value one below it belongs to the previous bucket.
	for idx := 0; idx < histBuckets-histSub; idx++ {
		lo := bucketLower(idx)
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(bucketLower(%d)=%d) = %d", idx, lo, got)
		}
		if idx > 0 {
			if got := bucketIndex(lo - 1); got != idx-1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d (bucket below %d)", lo-1, got, idx-1, idx)
			}
		}
	}
	// The widest representable duration still fits the array.
	if got := bucketIndex(int64(1)<<62 + 12345); got >= histBuckets {
		t.Fatalf("bucketIndex(2^62) = %d out of range %d", got, histBuckets)
	}
}

// TestHistogramRelativeError checks the bucket-lower-bound guarantee: the
// reported quantile is never above the true value and within 12.5% below.
func TestHistogramRelativeError(t *testing.T) {
	for _, v := range []int64{1, 7, 16, 100, 999, 12345, 1e6, 1e9, 7e12} {
		idx := bucketIndex(v)
		lo := bucketLower(idx)
		if lo > v {
			t.Errorf("bucketLower(%d)=%d above sample %d", idx, lo, v)
		}
		if v >= 16 && float64(v-lo) > 0.125*float64(lo)+1 {
			t.Errorf("sample %d is %d above bucket lower %d (> 12.5%%)", v, v-lo, lo)
		}
	}
}

// TestHistogramQuantiles compares estimated quantiles against exact
// order statistics on seeded samples.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform over ~6 decades, the shape of real latencies.
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v)
		samples = append(samples, v)
		h.Observe(time.Duration(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := h.Snapshot()
	if snap.Count != int64(len(samples)) {
		t.Fatalf("Count = %d, want %d", snap.Count, len(samples))
	}
	if snap.MaxNs != samples[len(samples)-1] {
		t.Errorf("MaxNs = %d, want exact max %d", snap.MaxNs, samples[len(samples)-1])
	}
	for _, q := range []struct {
		name string
		got  int64
		pct  int64
	}{
		{"p50", snap.P50Ns, 50}, {"p90", snap.P90Ns, 90}, {"p99", snap.P99Ns, 99},
	} {
		rank := (int64(len(samples))*q.pct + 99) / 100
		exact := samples[rank-1]
		if q.got > exact {
			t.Errorf("%s = %d above exact %d", q.name, q.got, exact)
		}
		if float64(exact-q.got) > 0.15*float64(exact) {
			t.Errorf("%s = %d more than 15%% below exact %d", q.name, q.got, exact)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// (meaningful under -race) and checks no observation is lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(1 << 30)))
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			h.Snapshot() // snapshots race with recording; -race must stay quiet
		}
	}()
	wg.Wait()
	<-done
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
}

// TestRegistry checks name resolution, snapshotting, and reset.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Observe("a", 100*time.Nanosecond)
	r.Observe("a", 200*time.Nanosecond)
	r.Observe("b", time.Microsecond)
	if r.Get("a") != r.Get("a") {
		t.Fatal("Get returned distinct histograms for one name")
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap["a"].Count != 2 || snap["b"].Count != 1 {
		t.Fatalf("Snapshot = %+v", snap)
	}
	if snap["a"].MaxNs != 200 {
		t.Fatalf("a.MaxNs = %d, want 200", snap["a"].MaxNs)
	}
	r.Reset()
	if got := len(r.Snapshot()); got != 0 {
		t.Fatalf("after Reset, %d histograms remain", got)
	}
}
