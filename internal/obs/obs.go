// Package obs is the repository's stdlib-only telemetry layer:
// deterministic request tracing and lock-free latency histograms, threaded
// through the scheduler, the backend race, and the HTTP service.
//
// Tracing: a Tracer roots one Span tree per unit of work (an HTTP request,
// an async job) and keeps the most recent completed traces in a bounded
// ring so GET /v1/traces/{id} can serve them after the fact. Child spans
// are created with Start(ctx, name); when the context carries no span,
// Start returns a nil *Span whose methods are all no-ops, so instrumented
// hot paths cost one context lookup when nothing is tracing them. Trace
// IDs are sequential per Tracer (deterministic, grep-able) and the clock
// is injectable, so tests can pin exact durations.
//
// Histograms: Histogram is a log-linear bucketed latency histogram —
// recording is a handful of atomic adds, snapshotting estimates
// p50/p90/p99 within ±12.5% — and Registry keys histograms by name. The
// package-level Routes, Backends, and Stages registries are the process-
// wide surfaces the service merges into /metrics and socbench -obs prints.
//
// Nothing here influences scheduling output: telemetry observes the
// byte-deterministic layers, it never feeds back into them, so the golden
// corpus is byte-identical with tracing and histograms enabled.
package obs

import (
	"context"
	"time"
)

// ctxKey carries the active *Span through a context.
type ctxKey struct{}

// FromContext returns the span carried by ctx, or nil (including for a
// nil ctx). A nil *Span is valid: all its methods are no-ops.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child span under the span carried by ctx and returns the
// derived context plus the child. When ctx carries no span (tracing is
// off for this call chain) or ctx is nil, it returns ctx unchanged and a
// nil *Span — the caller's `defer span.End()` is then a no-op, so
// instrumentation sites need no conditionals. Every Start must be paired
// with a deferred End in the same function (enforced by the soclint
// spanend analyzer).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.child(name)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// TimeStage starts timing a pipeline stage and returns the function that
// stops the clock and records the elapsed time into the package-level
// Stages registry — use as `defer obs.TimeStage("rectpack/pack")()`.
// Deterministic packages (rectpack) use this instead of reading the wall
// clock themselves: the time.Now stays here, outside their output paths.
func TimeStage(name string) func() {
	start := time.Now()
	return func() { Stages.Observe(name, time.Since(start)) }
}
