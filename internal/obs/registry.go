package obs

import (
	"sync"
	"time"
)

// Registry keys Histograms by name, creating them on first use. Recording
// through a held *Histogram is lock-free; the registry lock is only taken
// to resolve names. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	hists map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty histogram registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*Histogram)}
}

// Get returns the named histogram, creating it on first use. Callers on a
// hot path should hold the *Histogram rather than re-resolving the name.
func (r *Registry) Get(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Observe records one duration into the named histogram.
func (r *Registry) Observe(name string, d time.Duration) {
	r.Get(name).Observe(d)
}

// Snapshot summarizes every histogram, keyed by name.
func (r *Registry) Snapshot() map[string]HistSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Reset discards every histogram (tests and socbench -obs runs).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists = make(map[string]*Histogram)
}

// The process-wide latency registries. Routes is recorded by the HTTP
// middleware (one histogram per method+route), Backends by the scheduler
// dispatch and every portfolio racer leg (per backend name), and Stages
// by pipeline-stage instrumentation (planner builds, sweeps, rectpack
// packing). The service merges all three into /metrics.
var (
	Routes   = NewRegistry()
	Backends = NewRegistry()
	Stages   = NewRegistry()
)

// Latency is the JSON form of the three package-level registries, merged
// into the service's MetricsSnapshot.
type Latency struct {
	Routes   map[string]HistSnapshot `json:"routes"`
	Backends map[string]HistSnapshot `json:"backends"`
	Stages   map[string]HistSnapshot `json:"stages"`
}

// LatencySnapshot summarizes the package-level registries.
func LatencySnapshot() Latency {
	return Latency{
		Routes:   Routes.Snapshot(),
		Backends: Backends.Snapshot(),
		Stages:   Stages.Snapshot(),
	}
}

// ResetLatency discards the package-level registries (tests, socbench
// -obs).
func ResetLatency() {
	Routes.Reset()
	Backends.Reset()
	Stages.Reset()
}
