package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity bounds a Tracer's completed-trace ring when
// NewTracer is given no capacity.
const DefaultTraceCapacity = 256

// Attr is one span attribute. Attributes are exported as a JSON object,
// so keys should be unique per span (a duplicate key keeps the last value).
type Attr struct {
	Key   string
	Value any
}

// Tracer roots span trees and retains the most recent completed traces in
// a bounded ring, keyed by trace ID. All methods are safe for concurrent
// use; the zero value is not usable — call NewTracer.
type Tracer struct {
	capacity int
	seq      atomic.Uint64 // trace-ID sequence; IDs are deterministic per Tracer

	mu     sync.Mutex
	clock  func() time.Time      // guarded by mu; nil = time.Now
	traces map[string]*TraceData // guarded by mu; completed traces by ID
	order  []string              // guarded by mu; completion order, oldest first
}

// NewTracer returns a tracer retaining the last capacity completed traces
// (<= 0 means DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		capacity: capacity,
		traces:   make(map[string]*TraceData),
	}
}

// SetClock replaces the tracer's time source (tests only). All spans of
// the tracer read timestamps through it.
func (t *Tracer) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = now
}

// now reads the tracer's clock.
func (t *Tracer) now() time.Time {
	t.mu.Lock()
	c := t.clock
	t.mu.Unlock()
	if c == nil {
		return time.Now()
	}
	return c()
}

// StartTrace roots a new trace: the returned context carries the root
// span, so obs.Start calls below it create children. Ending the root
// publishes the trace into the ring. A nil *Tracer returns ctx unchanged
// and a nil span (tracing disabled), so callers need no conditionals.
// Like Start, every StartTrace pairs with a deferred End.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sp := &Span{
		tracer: t,
		id:     fmt.Sprintf("t%08x", t.seq.Add(1)),
		name:   name,
		start:  t.now(),
	}
	sp.root = sp
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Get returns a completed trace by ID. Traces are retrievable once their
// root span ended, until the ring evicts them.
func (t *Tracer) Get(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	td, ok := t.traces[id]
	if !ok {
		return TraceData{}, false
	}
	return *td, true
}

// Len returns the number of completed traces currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// publish snapshots a finished root span into the ring, evicting the
// oldest trace beyond capacity.
func (t *Tracer) publish(root *Span) {
	td := &TraceData{
		TraceID: root.id,
		Root:    root.snapshot(root.start, root.endTime()),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.traces[td.TraceID]; dup {
		return // double End on a root: first End wins
	}
	t.traces[td.TraceID] = td
	t.order = append(t.order, td.TraceID)
	for len(t.order) > t.capacity {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
}

// Span is one timed operation in a trace. A nil *Span is a valid no-op
// (obs.Start returns one when tracing is off), so instrumented code calls
// SetAttr/End unconditionally. Spans are safe for concurrent use — racer
// goroutines append children to one shared parent.
type Span struct {
	tracer *Tracer
	root   *Span  // the trace's root span (self for the root)
	id     string // trace ID; set on the root span only
	name   string
	start  time.Time

	mu       sync.Mutex
	attrs    []Attr    // guarded by mu
	children []*Span   // guarded by mu
	end      time.Time // guarded by mu; zero while the span is open
}

// TraceID returns the ID of the trace this span belongs to ("" for a nil
// span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.root.id
}

// Name returns the span's name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// child opens a sub-span.
func (s *Span) child(name string) *Span {
	c := &Span{tracer: s.tracer, root: s.root, name: name, start: s.tracer.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr attaches a key/value attribute to the span. No-op on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span (first End wins). Ending the root span publishes
// the whole trace into its tracer's ring; children still open at that
// point — abandoned racers, say — are exported clamped to the root's end.
// No-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	ended := !s.end.IsZero()
	if !ended {
		s.end = now
	}
	s.mu.Unlock()
	if !ended && s == s.root {
		s.tracer.publish(s)
	}
}

// endTime returns the span's end timestamp (zero while open).
func (s *Span) endTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// snapshot exports the span subtree relative to the trace's base time.
// Spans still open are clamped to rootEnd.
func (s *Span) snapshot(base, rootEnd time.Time) SpanData {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = rootEnd
	}
	sd := SpanData{
		Name:    s.name,
		StartNs: s.start.Sub(base).Nanoseconds(),
		DurNs:   end.Sub(s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		sd.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			sd.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if sd.DurNs < 0 {
		sd.DurNs = 0
	}
	for _, c := range children {
		sd.Children = append(sd.Children, c.snapshot(base, rootEnd))
	}
	return sd
}

// TraceData is one completed trace, as served by GET /v1/traces/{id} and
// the ?debug=trace response envelope.
type TraceData struct {
	TraceID string   `json:"traceId"`
	Root    SpanData `json:"root"`
}

// SpanData is the JSON export of one span: its start as an offset from
// the trace's start, its duration, attributes, and children.
type SpanData struct {
	Name     string         `json:"name"`
	StartNs  int64          `json:"startNs"`
	DurNs    int64          `json:"durNs"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanData     `json:"children,omitempty"`
}

// SpanCount returns the number of spans in the trace.
func (td TraceData) SpanCount() int {
	return td.Root.count()
}

func (sd SpanData) count() int {
	n := 1
	for _, c := range sd.Children {
		n += c.count()
	}
	return n
}
