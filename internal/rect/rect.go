// Package rect provides the rectangle-packing substrate used by the DAC
// 2002 scheduling framework: core tests are rectangles (height = TAM width,
// width = testing time) packed into a bin of fixed height (the SOC TAM
// width W) and unbounded width (time). Rectangles may be split vertically
// (a core's wires need not be contiguous: TAM wires fork and merge) and —
// for preemptive schedules — horizontally into same-height pieces.
//
// The package tracks occupancy at wire granularity, assigns concrete wire
// IDs to every placement, and validates the packing invariants.
package rect

import (
	"fmt"
	"sort"
)

// Piece is one placed fragment of a core's rectangle: the core occupies
// |Wires| TAM wires from Start (inclusive) to End (exclusive).
type Piece struct {
	// CoreID identifies the test the piece belongs to.
	CoreID int
	// Start and End bound the piece in cycles, Start < End.
	Start, End int64
	// Wires lists the concrete TAM wire indices (0-based, < bin height)
	// carrying the piece. They need not be contiguous (fork-and-merge).
	Wires []int
}

// Width returns the piece's TAM width.
func (p *Piece) Width() int { return len(p.Wires) }

// Duration returns the piece's length in cycles.
func (p *Piece) Duration() int64 { return p.End - p.Start }

// Bin is a packing bin of fixed height (total TAM width) and unbounded
// width (time). The zero value is unusable; use NewBin.
type Bin struct {
	height int
	pieces []Piece
	// busy[w] holds, per wire, the placed intervals sorted by start.
	busy [][]ival
}

type ival struct{ start, end int64 }

// NewBin returns a bin of the given height (total SOC TAM width W).
func NewBin(height int) (*Bin, error) {
	if height < 1 {
		return nil, fmt.Errorf("rect: non-positive bin height %d", height)
	}
	return &Bin{height: height, busy: make([][]ival, height)}, nil
}

// Height returns the bin's height (total TAM width).
func (b *Bin) Height() int { return b.height }

// Pieces returns the placed pieces in placement order. The slice is shared;
// callers must not mutate it.
func (b *Bin) Pieces() []Piece { return b.pieces }

// FreeWiresAt returns the wire indices free during [start, end), in
// ascending order.
func (b *Bin) FreeWiresAt(start, end int64) []int {
	var free []int
	for w := 0; w < b.height; w++ {
		if b.wireFree(w, start, end) {
			free = append(free, w)
		}
	}
	return free
}

// wireFree reports whether wire w has no interval overlapping [start, end).
// busy[w] holds disjoint intervals sorted by start (so also by end): binary
// search for the first interval ending after start, which is the only
// candidate overlap.
func (b *Bin) wireFree(w int, start, end int64) bool {
	ivs := b.busy[w]
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivs[mid].end <= start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo == len(ivs) || ivs[lo].start >= end
}

// Place occupies width wires during [start, end) for coreID, choosing the
// lowest-numbered free wires (first-fit; the chosen set may be
// non-contiguous, which is exactly the paper's fork-and-merge). It returns
// the placed piece or an error when fewer than width wires are free.
func (b *Bin) Place(coreID int, width int, start, end int64) (*Piece, error) {
	return b.PlacePreferred(coreID, width, start, end, nil)
}

// PlacePreferred is Place with wire-stability: wires listed in prefer are
// chosen first when free, so a test that is preempted and resumed (or a
// multi-piece schedule replay) keeps its TAM wiring wherever possible.
func (b *Bin) PlacePreferred(coreID int, width int, start, end int64, prefer []int) (*Piece, error) {
	if width < 1 {
		return nil, fmt.Errorf("rect: core %d: non-positive width %d", coreID, width)
	}
	if start < 0 || end <= start {
		return nil, fmt.Errorf("rect: core %d: bad interval [%d,%d)", coreID, start, end)
	}
	wires := make([]int, 0, width)
	taken := func(w int) bool {
		for _, t := range wires {
			if t == w {
				return true
			}
		}
		return false
	}
	for _, w := range prefer {
		if len(wires) == width {
			break
		}
		if w >= 0 && w < b.height && !taken(w) && b.wireFree(w, start, end) {
			wires = append(wires, w)
		}
	}
	for w := 0; w < b.height && len(wires) < width; w++ {
		if !taken(w) && b.wireFree(w, start, end) {
			wires = append(wires, w)
		}
	}
	if len(wires) < width {
		return nil, fmt.Errorf("rect: core %d: need %d wires in [%d,%d), only %d free",
			coreID, width, start, end, len(wires))
	}
	sort.Ints(wires)
	for _, w := range wires {
		// Insert keeping busy[w] sorted by start. Placements arrive in
		// near-ascending start order (assignWires processes fragments
		// globally sorted), so this is O(1) amortized where a re-sort
		// per placement was O(k log k).
		ivs := append(b.busy[w], ival{start, end})
		for i := len(ivs) - 1; i > 0 && ivs[i-1].start > ivs[i].start; i-- {
			ivs[i-1], ivs[i] = ivs[i], ivs[i-1]
		}
		b.busy[w] = ivs
	}
	b.pieces = append(b.pieces, Piece{CoreID: coreID, Start: start, End: end, Wires: wires})
	return &b.pieces[len(b.pieces)-1], nil
}

// Makespan returns the time at which the last piece ends (the filled bin
// width, i.e. the SOC testing time), or 0 for an empty bin.
func (b *Bin) Makespan() int64 {
	var m int64
	for i := range b.pieces {
		if b.pieces[i].End > m {
			m = b.pieces[i].End
		}
	}
	return m
}

// UsedArea returns the total wire-cycles covered by pieces.
func (b *Bin) UsedArea() int64 {
	var a int64
	for i := range b.pieces {
		a += int64(b.pieces[i].Width()) * b.pieces[i].Duration()
	}
	return a
}

// IdleArea returns the unfilled wire-cycles of the bin up to its makespan
// (the paper's idle time on TAM wires).
func (b *Bin) IdleArea() int64 {
	return int64(b.height)*b.Makespan() - b.UsedArea()
}

// Utilization returns the fraction of the bin that is filled, in [0,1].
func (b *Bin) Utilization() float64 {
	if m := b.Makespan(); m > 0 {
		return float64(b.UsedArea()) / float64(int64(b.height)*m)
	}
	return 0
}

// WidthInUseAt returns the number of wires busy at the given instant.
func (b *Bin) WidthInUseAt(t int64) int {
	n := 0
	for w := 0; w < b.height; w++ {
		for _, iv := range b.busy[w] {
			if iv.start <= t && t < iv.end {
				n++
				break
			}
		}
	}
	return n
}

// Validate re-checks every packing invariant from the raw pieces:
// wire indices in range, no wire double-booked, and per-core pieces
// non-overlapping in time.
func (b *Bin) Validate() error {
	perWire := make(map[int][]ival)
	perCore := make(map[int][]ival)
	for i := range b.pieces {
		p := &b.pieces[i]
		if p.Start < 0 || p.End <= p.Start {
			return fmt.Errorf("rect: piece %d (core %d) has bad interval [%d,%d)", i, p.CoreID, p.Start, p.End)
		}
		if len(p.Wires) == 0 {
			return fmt.Errorf("rect: piece %d (core %d) has no wires", i, p.CoreID)
		}
		seen := make(map[int]bool, len(p.Wires))
		for _, w := range p.Wires {
			if w < 0 || w >= b.height {
				return fmt.Errorf("rect: piece %d (core %d) uses wire %d outside bin height %d", i, p.CoreID, w, b.height)
			}
			if seen[w] {
				return fmt.Errorf("rect: piece %d (core %d) lists wire %d twice", i, p.CoreID, w)
			}
			seen[w] = true
			perWire[w] = append(perWire[w], ival{p.Start, p.End})
		}
		perCore[p.CoreID] = append(perCore[p.CoreID], ival{p.Start, p.End})
	}
	for w, ivs := range perWire {
		if err := checkDisjoint(ivs); err != nil {
			return fmt.Errorf("rect: wire %d double-booked: %v", w, err)
		}
	}
	for c, ivs := range perCore {
		if err := checkDisjoint(ivs); err != nil {
			return fmt.Errorf("rect: core %d pieces overlap in time: %v", c, err)
		}
	}
	return nil
}

func checkDisjoint(ivs []ival) error {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].start < ivs[i-1].end {
			return fmt.Errorf("[%d,%d) overlaps [%d,%d)", ivs[i].start, ivs[i].end, ivs[i-1].start, ivs[i-1].end)
		}
	}
	return nil
}
