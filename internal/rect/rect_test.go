package rect

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustBin(t *testing.T, h int) *Bin {
	t.Helper()
	b, err := NewBin(h)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBin(t *testing.T) {
	if _, err := NewBin(0); err == nil {
		t.Fatal("height 0 accepted")
	}
	b := mustBin(t, 4)
	if b.Height() != 4 {
		t.Fatalf("Height = %d", b.Height())
	}
}

func TestPlaceAndAccounting(t *testing.T) {
	b := mustBin(t, 4)
	p1, err := b.Place(1, 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Width() != 2 || p1.Duration() != 10 {
		t.Fatalf("piece geometry wrong: %+v", p1)
	}
	p2, err := b.Place(2, 2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sharesWire(p1.Wires, p2.Wires) {
		t.Fatalf("overlapping placements share wires: %v %v", p1.Wires, p2.Wires)
	}
	if _, err := b.Place(3, 1, 2, 4); err == nil {
		t.Fatal("overfull interval accepted")
	}
	if _, err := b.Place(3, 1, 5, 8); err != nil {
		t.Fatalf("free interval rejected: %v", err)
	}
	if got := b.Makespan(); got != 10 {
		t.Fatalf("Makespan = %d, want 10", got)
	}
	if got := b.UsedArea(); got != 2*10+2*5+1*3 {
		t.Fatalf("UsedArea = %d", got)
	}
	if got := b.IdleArea(); got != 4*10-33 {
		t.Fatalf("IdleArea = %d", got)
	}
	if u := b.Utilization(); u < 0.82 || u > 0.83 {
		t.Fatalf("Utilization = %v", u)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func sharesWire(a, b []int) bool {
	set := make(map[int]bool)
	for _, w := range a {
		set[w] = true
	}
	for _, w := range b {
		if set[w] {
			return true
		}
	}
	return false
}

func TestPlaceErrors(t *testing.T) {
	b := mustBin(t, 2)
	if _, err := b.Place(1, 0, 0, 1); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := b.Place(1, 1, -1, 1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := b.Place(1, 1, 5, 5); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := b.Place(1, 3, 0, 1); err == nil {
		t.Error("width beyond bin height accepted")
	}
}

func TestPlacePreferredKeepsWires(t *testing.T) {
	b := mustBin(t, 8)
	p1, err := b.Place(1, 3, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Resume after a gap, preferring the original wires: they are free, so
	// the same set must come back.
	p2, err := b.PlacePreferred(1, 3, 20, 30, p1.Wires)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Wires {
		if p1.Wires[i] != p2.Wires[i] {
			t.Fatalf("preferred wires not kept: %v vs %v", p1.Wires, p2.Wires)
		}
	}
	// Occupy one of them; the resume picks a replacement but keeps the rest.
	if _, err := b.Place(2, 1, 40, 50); err != nil { // wire 0 busy for [40,50)
		t.Fatal(err)
	}
	p3, err := b.PlacePreferred(1, 3, 40, 50, p1.Wires)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, w := range p3.Wires {
		for _, o := range p1.Wires {
			if w == o {
				kept++
			}
		}
	}
	if kept < 2 {
		t.Fatalf("kept only %d preferred wires: %v vs %v", kept, p1.Wires, p3.Wires)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeWiresAt(t *testing.T) {
	b := mustBin(t, 3)
	if _, err := b.Place(1, 2, 0, 10); err != nil {
		t.Fatal(err)
	}
	free := b.FreeWiresAt(0, 10)
	if len(free) != 1 {
		t.Fatalf("FreeWiresAt = %v, want one wire", free)
	}
	if got := b.FreeWiresAt(10, 20); len(got) != 3 {
		t.Fatalf("after makespan FreeWiresAt = %v", got)
	}
}

func TestWidthInUseAt(t *testing.T) {
	b := mustBin(t, 4)
	b.Place(1, 2, 0, 10)
	b.Place(2, 1, 5, 15)
	cases := []struct {
		t    int64
		want int
	}{{0, 2}, {4, 2}, {5, 3}, {9, 3}, {10, 1}, {14, 1}, {15, 0}}
	for _, tc := range cases {
		if got := b.WidthInUseAt(tc.t); got != tc.want {
			t.Errorf("WidthInUseAt(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	b := mustBin(t, 4)
	p, err := b.Place(1, 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the piece wire list to duplicate a wire.
	saved := p.Wires[1]
	p.Wires[1] = p.Wires[0]
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate wire not caught: %v", err)
	}
	p.Wires[1] = saved

	p.Wires[1] = 99
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "outside bin") {
		t.Fatalf("out-of-range wire not caught: %v", err)
	}
	p.Wires[1] = saved

	// Same-core overlapping pieces.
	b2 := mustBin(t, 4)
	b2.Place(1, 1, 0, 10)
	b2.Place(1, 1, 5, 15)
	if err := b2.Validate(); err == nil || !strings.Contains(err.Error(), "overlap in time") {
		t.Fatalf("same-core overlap not caught: %v", err)
	}
}

// Property: random sequences of placements keep the bin consistent —
// Validate passes, per-instant width usage never exceeds the height, and
// used area equals the sum over sampled instants of widths (spot-checked).
func TestRandomPackingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Intn(12)
		b, err := NewBin(h)
		if err != nil {
			return false
		}
		placed := 0
		for i := 0; i < 40; i++ {
			w := 1 + rng.Intn(h)
			start := int64(rng.Intn(200))
			end := start + int64(1+rng.Intn(50))
			core := 1 + i // distinct cores: same-core overlap not at issue here
			free := b.FreeWiresAt(start, end)
			_, err := b.Place(core, w, start, end)
			if len(free) >= w {
				if err != nil {
					t.Logf("placement rejected with %d free >= %d: %v", len(free), w, err)
					return false
				}
				placed++
			} else if err == nil {
				t.Logf("placement accepted with %d free < %d", len(free), w)
				return false
			}
		}
		if err := b.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		for probe := 0; probe < 20; probe++ {
			if b.WidthInUseAt(int64(rng.Intn(260))) > h {
				return false
			}
		}
		return placed > 0 || h == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
