package sched

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	want := map[string]bool{"classic": true, "portfolio": true}
	for name := range want {
		found := false
		for _, n := range names {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("Backends() = %v, missing %q", names, name)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Backends() = %v not sorted", names)
		}
	}

	b, err := BackendByName("")
	if err != nil {
		t.Fatalf("BackendByName(\"\"): %v", err)
	}
	if b.Name() != DefaultBackend {
		t.Errorf("empty name resolved to %q, want %q", b.Name(), DefaultBackend)
	}
	if _, err := BackendByName("no-such-backend"); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("unknown backend error = %v, want ErrUnknownBackend", err)
	}
}

func TestRegisterBackendPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { RegisterBackend(testBackend{name: ""}) })
	mustPanic("duplicate", func() { RegisterBackend(classicBackend{}) })
}

// testBackend is a configurable fake for registry and portfolio tests.
type testBackend struct {
	name string
	fn   func(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error)
}

func (b testBackend) Name() string { return b.name }

func (b testBackend) Schedule(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
	return b.fn(ctx, opt, params)
}

// registerRaceFakes registers, once for the whole test binary, a backend
// that always fails and a backend that returns a corrupt schedule. The
// portfolio must tolerate both: failures are skipped and corrupt results
// are rejected by verification.
var registerRaceFakes = func() func() {
	var done bool
	return func() {
		if done {
			return
		}
		done = true
		RegisterBackend(testBackend{
			name: "test-failing",
			fn: func(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
				return nil, fmt.Errorf("always fails")
			},
		})
		RegisterBackend(testBackend{
			name: "test-corrupt",
			fn: func(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
				sch, err := opt.Run(params.Defaults())
				if err != nil {
					return nil, err
				}
				sch.Makespan = 1 // a lie Verify must catch
				return sch, nil
			},
		})
	}
}()

func TestScheduleBackendClassicMatchesSweepBest(t *testing.T) {
	s := bench.D695()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{TAMWidth: 32, Workers: 1}
	want, err := opt.SweepBest(params, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := params
	p.Backend = "classic"
	got, err := opt.ScheduleBackend(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("classic backend makespan %d, SweepBest %d", got.Makespan, want.Makespan)
	}
	// The echoed Params differ only by the Backend field.
	wantParams := want.Params
	wantParams.Backend = got.Params.Backend
	if !reflect.DeepEqual(got.Params, wantParams) {
		t.Fatalf("classic backend params %+v, SweepBest %+v", got.Params, want.Params)
	}
	if !reflect.DeepEqual(got.Bin.Pieces(), want.Bin.Pieces()) {
		t.Fatal("classic backend packed different pieces than SweepBest")
	}
}

func TestPortfolioNeverWorseAndVerified(t *testing.T) {
	registerRaceFakes()
	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{TAMWidth: 16, Workers: 1}
	classic, err := opt.SweepBest(params, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := params
	p.Backend = "portfolio"
	got, err := opt.ScheduleBackend(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan > classic.Makespan {
		t.Errorf("portfolio makespan %d worse than classic %d", got.Makespan, classic.Makespan)
	}
	if got.Makespan == 1 {
		t.Error("portfolio returned the corrupt racer's schedule")
	}
	if err := opt.Verify(got); err != nil {
		t.Errorf("portfolio result fails verification: %v", err)
	}
	if err := CheckInvariants(s, got); err != nil {
		t.Errorf("portfolio result fails invariants: %v", err)
	}
}

func TestPortfolioCancelled(t *testing.T) {
	registerRaceFakes()
	s := bench.D695()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Params{TAMWidth: 32, Workers: 1, Backend: "portfolio"}
	if _, err := opt.ScheduleBackend(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled portfolio returned %v, want context.Canceled", err)
	}
}

func TestScheduleBackendUnknown(t *testing.T) {
	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	_, err = opt.ScheduleBackend(context.Background(), Params{TAMWidth: 16, Backend: "bogus"})
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("unknown backend error = %v, want ErrUnknownBackend", err)
	}
}

func TestIsDefaultBackend(t *testing.T) {
	for name, want := range map[string]bool{
		"":             true,
		DefaultBackend: true,
		"rectpack":     false,
		"portfolio":    false,
		"nope":         false,
	} {
		if got := IsDefaultBackend(name); got != want {
			t.Errorf("IsDefaultBackend(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestOptimizerAccessorsAndUnknownCoreError(t *testing.T) {
	s := bench.Demo()
	o, err := New(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.MaxWidth(); got != 64 {
		t.Errorf("MaxWidth() = %d, want 64", got)
	}
	sets := o.ParetoSets()
	if len(sets) != len(s.Cores) {
		t.Errorf("ParetoSets() has %d entries, want %d", len(sets), len(s.Cores))
	}
	for _, c := range s.Cores {
		if sets[c.ID] == nil {
			t.Errorf("ParetoSets() missing core %d", c.ID)
		}
	}
	e := &UnknownCoreError{CoreID: 7}
	if got := e.Error(); !strings.Contains(got, "7") {
		t.Errorf("UnknownCoreError.Error() = %q, want the core ID in it", got)
	}
	if got := PaperPercents(); len(got) != 10 || got[0] != 1 || got[9] != 10 {
		t.Errorf("PaperPercents() = %v, want 1..10", got)
	}
}
