package sched

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/rect"
)

// demoSchedule builds a valid schedule of the demo SOC (hierarchy,
// precedence, concurrency, and a shared BIST engine in one toy) for
// invariant-mutation tests.
func demoSchedule(t *testing.T) (*Schedule, *Optimizer) {
	t.Helper()
	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := opt.Run(Params{TAMWidth: 16, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sch, opt
}

func TestCheckInvariantsAcceptsValidSchedules(t *testing.T) {
	sch, opt := demoSchedule(t)
	if err := CheckInvariants(opt.SOC(), sch); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	// Power-constrained and preemptive schedules pass too.
	s := bench.D695()
	opt2, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := opt2.LargerCorePreemptions(2)
	if err != nil {
		t.Fatal(err)
	}
	sch2, err := opt2.Run(Params{
		TAMWidth:       24,
		Percent:        5,
		Delta:          1,
		PowerMax:       DefaultPowerBudget(s, 125),
		MaxPreemptions: mp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(s, sch2); err != nil {
		t.Fatalf("valid constrained schedule rejected: %v", err)
	}
}

func TestCheckInvariantsUnknownCore(t *testing.T) {
	sch, opt := demoSchedule(t)
	sch.Assignments[9999] = &Assignment{
		CoreID: 9999,
		Width:  1,
		Pieces: []rect.Piece{{CoreID: 9999, Start: 0, End: 1, Wires: []int{0}}},
	}
	err := CheckInvariants(opt.SOC(), sch)
	var uce *UnknownCoreError
	if !errors.As(err, &uce) {
		t.Fatalf("error = %v, want *UnknownCoreError", err)
	}
	if uce.CoreID != 9999 {
		t.Fatalf("UnknownCoreError.CoreID = %d, want 9999", uce.CoreID)
	}
}

func TestCheckInvariantsMissingCore(t *testing.T) {
	sch, opt := demoSchedule(t)
	for id := range sch.Assignments {
		delete(sch.Assignments, id)
		break
	}
	if err := CheckInvariants(opt.SOC(), sch); err == nil {
		t.Fatal("schedule missing a core accepted")
	}
}

func TestCheckInvariantsWireOverlap(t *testing.T) {
	sch, opt := demoSchedule(t)
	// Move one core onto another core's exact wires and interval so a TAM
	// wire carries two tests at once.
	for _, id := range []int{1, 2} {
		if sch.Assignments[id] == nil {
			t.Fatalf("demo schedule has no core %d", id)
		}
	}
	a, b := sch.Assignments[1], sch.Assignments[2]
	a.Width = b.Width
	a.Pieces = []rect.Piece{{CoreID: a.CoreID, Start: b.Pieces[0].Start, End: b.Pieces[0].End, Wires: append([]int(nil), b.Pieces[0].Wires...)}}
	if err := CheckInvariants(opt.SOC(), sch); err == nil {
		t.Fatal("wire-overlapping schedule accepted")
	}
}

func TestCheckInvariantsCoreTestedTwiceAtOnce(t *testing.T) {
	sch, opt := demoSchedule(t)
	var a *Assignment
	for _, cand := range sch.Assignments {
		a = cand
		break
	}
	p := a.Pieces[0]
	a.Pieces = append(a.Pieces, p) // the same interval twice
	if err := CheckInvariants(opt.SOC(), sch); err == nil {
		t.Fatal("doubly-tested core accepted")
	}
}

func TestCheckInvariantsPowerBudget(t *testing.T) {
	sch, opt := demoSchedule(t)
	// Claim a power budget of 1: any overlap of two powered tests (or any
	// single test with power > 1) must now be rejected.
	sch.Params.PowerMax = 1
	if err := CheckInvariants(opt.SOC(), sch); err == nil {
		t.Fatal("power-infeasible schedule accepted")
	}
}

func TestCheckInvariantsPrecedence(t *testing.T) {
	s := bench.Demo()
	if len(s.Precedences) == 0 {
		t.Fatal("demo SOC has no precedence edges")
	}
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := opt.Run(Params{TAMWidth: 16, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drag the successor of the first precedence edge to t=0 so it starts
	// before its predecessor completes.
	after := s.Precedences[0].After
	a := sch.Assignments[after]
	dur := a.Pieces[0].End - a.Pieces[0].Start
	a.Pieces = []rect.Piece{{CoreID: after, Start: 0, End: dur, Wires: a.Pieces[0].Wires}}
	if err := CheckInvariants(s, sch); err == nil {
		t.Fatal("precedence-violating schedule accepted")
	}
}

func TestVerifyUnknownCoreTyped(t *testing.T) {
	sch, opt := demoSchedule(t)
	sch.Assignments[777] = &Assignment{
		CoreID: 777,
		Width:  1,
		Pieces: []rect.Piece{{CoreID: 777, Start: 0, End: 1, Wires: []int{0}}},
	}
	for _, v := range []error{Verify(opt.SOC(), sch), opt.Verify(sch)} {
		var uce *UnknownCoreError
		if !errors.As(v, &uce) {
			t.Errorf("error = %v, want *UnknownCoreError", v)
		} else if uce.CoreID != 777 {
			t.Errorf("UnknownCoreError.CoreID = %d, want 777", uce.CoreID)
		}
	}
}

// preemptiveSchedule builds a schedule with one genuinely split core for
// the split-accounting mutation tests. The demo schedule is split by
// hand — a successor-free core's piece is cut in half and the second
// segment moved past the makespan, where it can overlap no wires, mutex
// partner, or power peak — so the pre-mutation schedule still passes
// CheckInvariants and each test mutates exactly one accounting fact.
func preemptiveSchedule(t *testing.T) (*Schedule, *Optimizer, int) {
	t.Helper()
	sch, opt := demoSchedule(t)
	hasSuccessor := make(map[int]bool)
	for _, p := range opt.SOC().Precedences {
		hasSuccessor[p.Before] = true
	}
	for id, a := range sch.Assignments {
		if hasSuccessor[id] || len(a.Pieces) != 1 {
			continue
		}
		p := a.Pieces[0]
		if p.End-p.Start < 2 {
			continue
		}
		mid := p.Start + (p.End-p.Start)/2
		gap := sch.Makespan + 10
		resumed := p
		resumed.Start = mid + gap
		resumed.End = p.End + gap
		a.Pieces[0].End = mid
		a.Pieces = append(a.Pieces, resumed)
		a.Preemptions = 1
		if err := CheckInvariants(opt.SOC(), sch); err != nil {
			t.Fatalf("hand-split schedule must still be valid: %v", err)
		}
		return sch, opt, id
	}
	t.Fatal("no splittable core in the demo schedule")
	return nil, nil, 0
}

// TestCheckInvariantsShortSegment is the regression test for split-test
// wholeness: a preemptive schedule whose segment was cut short (its
// durations no longer sum to BaseTime + PenaltyCycles) must be rejected —
// a dropped cycle is an untested part of the core.
func TestCheckInvariantsShortSegment(t *testing.T) {
	sch, opt, id := preemptiveSchedule(t)
	a := sch.Assignments[id]
	last := &a.Pieces[len(a.Pieces)-1]
	last.End-- // cut the final resumed segment one cycle short
	err := CheckInvariants(opt.SOC(), sch)
	if err == nil {
		t.Fatal("schedule with a cut-short segment accepted")
	}
	if !strings.Contains(err.Error(), "segments sum to") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// TestCheckInvariantsPreemptionCountMismatch: the claimed Preemptions must
// match the resume gaps the pieces actually show.
func TestCheckInvariantsPreemptionCountMismatch(t *testing.T) {
	sch, opt, id := preemptiveSchedule(t)
	sch.Assignments[id].Preemptions++
	err := CheckInvariants(opt.SOC(), sch)
	if err == nil {
		t.Fatal("schedule with a preemption-count lie accepted")
	}
	if !strings.Contains(err.Error(), "resume gaps") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// TestCheckInvariantsNegativeAccounting: negative preemption bookkeeping
// is rejected before the sums are even formed.
func TestCheckInvariantsNegativeAccounting(t *testing.T) {
	sch, opt := demoSchedule(t)
	for _, a := range sch.Assignments {
		a.PenaltyCycles = -1
		break
	}
	err := CheckInvariants(opt.SOC(), sch)
	if err == nil {
		t.Fatal("schedule with negative penalty cycles accepted")
	}
	if !strings.Contains(err.Error(), "negative preemption accounting") {
		t.Fatalf("wrong rejection: %v", err)
	}
}
