// Package sched implements the DAC 2002 TAM_schedule_optimizer: integrated
// wrapper/TAM co-optimization and test scheduling by generalized rectangle
// packing (Problems 1 and 2 of the paper). It selects a Pareto-optimal
// rectangle (TAM width, testing time) for each core, packs rectangles into
// the W-wire bin over time with a three-priority selection loop, fills idle
// wires by squeezing in or widening rectangles, and supports precedence,
// concurrency, power and BIST constraints plus selective test preemption.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constraint"
	"repro/internal/pareto"
	"repro/internal/rect"
	"repro/internal/soc"
	"repro/internal/wrapper"
)

// DefaultMaxWidth is the per-core TAM width cap (the paper's w_max = 64).
const DefaultMaxWidth = 64

// DefaultInsertSlack is the Line-13 idle-time insertion limit: an
// unscheduled core may be squeezed into idle wires when its preferred width
// exceeds the available width by at most this many bits. The paper found 3
// the most useful after extensive experimentation.
const DefaultInsertSlack = 3

// Params tunes one scheduling run.
type Params struct {
	// TAMWidth is the total SOC TAM width W (bin height). Required.
	TAMWidth int
	// MaxWidth caps any single core's TAM width (paper: 64). Defaults to
	// DefaultMaxWidth; it is additionally capped by TAMWidth.
	MaxWidth int
	// Percent is the preferred-width parameter α: a core's preferred width
	// is the smallest width whose time is within Percent% of its time at
	// MaxWidth. Paper range: 1..10. Zero means 0% (always the highest
	// Pareto width).
	Percent int
	// Delta is the Initialize promotion parameter δ: preferred widths
	// within Delta wires of the highest Pareto width are promoted to it.
	Delta int
	// MaxPreemptions maps core ID to its preemption budget. Missing cores
	// get 0 (non-preemptable). Nil disables preemption entirely.
	MaxPreemptions map[int]int
	// PowerMax is the SOC power budget (0 = unconstrained; overrides the
	// SOC's own value when set).
	PowerMax int
	// InsertSlack is the Line-13 squeeze limit; <0 disables insertion,
	// 0 keeps insertion for exactly-fitting preferred widths that lost the
	// priority race, and the default (when zero value Params are used via
	// Defaults) is DefaultInsertSlack.
	InsertSlack int
	// DisableWidening turns off the Lines 15-16 width-growing heuristic
	// (for ablation).
	DisableWidening bool
	// IgnoreHierarchy suppresses implicit parent/child concurrency
	// constraints (for ablation).
	IgnoreHierarchy bool
	// Workers bounds the number of concurrent scheduler runs a parameter
	// sweep (SweepBest) may use; a single Run ignores it. 0 means
	// GOMAXPROCS, 1 forces the sequential path, negative values are
	// treated as 1. Parallel sweeps return schedules identical to the
	// sequential path: per-grid-point results are collected and the
	// smallest-makespan/first-grid-point tie-break is applied in grid
	// order. The portfolio backend uses the same knob to bound how many
	// backends race concurrently.
	Workers int
	// Backend names the scheduling backend to dispatch to ("classic",
	// "rectpack", "portfolio", ...); empty means DefaultBackend. Only the
	// dispatch layers (ScheduleBackend and everything above it) read this
	// field — Optimizer.Run itself ignores it and echoes it back.
	Backend string
	// BackendTimeout bounds each racer in a portfolio race: a racer that
	// exceeds it is abandoned (counted as timed out by its circuit
	// breaker) without delaying the others. Zero means no per-racer
	// deadline. Non-portfolio backends ignore it — callers wanting a
	// whole-request deadline use the context instead.
	BackendTimeout time.Duration
	// Seed seeds randomized backends (anneal). The same seed always
	// produces byte-identical schedules; zero means DefaultSeed.
	// Deterministic backends (classic, rectpack) ignore it.
	Seed int64
}

// DefaultSeed is the seed randomized backends use when Params.Seed is 0.
const DefaultSeed = 1

// Defaults fills unset fields with the paper's defaults.
func (p Params) Defaults() Params {
	if p.MaxWidth == 0 {
		p.MaxWidth = DefaultMaxWidth
	}
	if p.InsertSlack == 0 {
		p.InsertSlack = DefaultInsertSlack
	}
	return p
}

// Assignment describes one core's final disposition in a schedule.
type Assignment struct {
	// CoreID identifies the core.
	CoreID int
	// Width is the TAM width assigned (constant across all pieces: the
	// vertical-split rule demands equal heights).
	Width int
	// Pieces are the scheduled time spans with concrete wire sets.
	Pieces []rect.Piece
	// Preemptions counts resume-after-gap events for this core.
	Preemptions int
	// PenaltyCycles is the total extra time added by preemptions
	// (Preemptions · (si+so)).
	PenaltyCycles int64
	// BaseTime is T(Width) — testing time without preemption penalties.
	BaseTime int64
	// ScanIn, ScanOut are the wrapper's longest scan-in/scan-out lengths
	// at the assigned width.
	ScanIn, ScanOut int
}

// Start returns the first begin time.
func (a *Assignment) Start() int64 { return a.Pieces[0].Start }

// End returns the final completion time.
func (a *Assignment) End() int64 { return a.Pieces[len(a.Pieces)-1].End }

// TotalTime returns the total scheduled cycles (BaseTime + penalties).
func (a *Assignment) TotalTime() int64 {
	var t int64
	for i := range a.Pieces {
		t += a.Pieces[i].Duration()
	}
	return t
}

// Schedule is the result of a scheduling run.
type Schedule struct {
	// SOC names the scheduled SOC.
	SOC string
	// TAMWidth is the bin height W.
	TAMWidth int
	// Params echoes the run parameters (after Defaults).
	Params Params
	// Assignments maps core ID to its assignment.
	Assignments map[int]*Assignment
	// Makespan is the SOC testing time in cycles.
	Makespan int64
	// Bin is the packed bin with wire-level occupancy.
	Bin *rect.Bin
	// Events counts scheduler Update iterations (a complexity metric).
	Events int
}

// IdleArea returns the unused wire-cycles up to the makespan.
func (s *Schedule) IdleArea() int64 { return s.Bin.IdleArea() }

// Utilization returns the TAM wire utilization in [0,1].
func (s *Schedule) Utilization() float64 { return s.Bin.Utilization() }

// DataVolume returns the tester data volume for this schedule:
// per-pin vector memory depth (= makespan) times the number of TAM pins.
func (s *Schedule) DataVolume() int64 { return int64(s.TAMWidth) * s.Makespan }

// coreState is the paper's Fig. 3 data structure.
type coreState struct {
	core        *soc.Core
	pset        *pareto.Set
	pref        int   // preferred TAM width (Initialize)
	assigned    int   // TAM width assigned at first begin; fixed afterwards
	firstBegin  int64 // first begin time
	end         int64 // end time of the latest piece
	remaining   int64 // testing time remaining
	begun       bool  // has begun at least once
	running     bool  // scheduled at this instant
	complete    bool  // test finished
	preempts    int   // resume-after-gap count
	maxPreempts int   // designer-specified budget
	design      *wrapper.Design
	spans       []span // closed logical pieces, seamless ones merged
	penalty     int64
	runStart    int64 // start of the currently open piece
}

// span is a logical schedule fragment before wires are assigned.
type span struct {
	start, end int64
	width      int
}

// Optimizer schedules one SOC repeatedly with different parameters,
// caching the expensive per-core Pareto staircases AND every (core, width)
// wrapper design across runs (parameter sweeps and width sweeps reuse
// them). The staircase construction designs every wrapper once anyway;
// retaining the designs removes all wrapper design work from the
// scheduler's inner loop.
//
// An Optimizer is safe for concurrent use by multiple goroutines. After
// New returns, the SOC, the cached Pareto sets, and the cached wrapper
// designs are never mutated: Run allocates every piece of mutable state
// per call (the runner, the per-core coreStates, the rect.Bin, the
// constraint.Checker), and pareto.Set.Capped hands out read-only views
// that share the immutable time table. SweepBest and datavol.Run exploit
// this by fanning Run calls out over a worker pool (see Params.Workers).
// Callers must not mutate the SOC passed to New while the Optimizer is in
// use.
type Optimizer struct {
	soc      *soc.SOC
	maxWidth int
	sets     map[int]*pareto.Set
	// designs caches the immutable wrapper design of every core at every
	// width, indexed [coreID][width-1]. Populated once in New, read-only
	// afterwards — concurrency-safe without locking.
	designs map[int][]*wrapper.Design
}

// New validates the SOC and precomputes its Pareto sets and wrapper
// designs up to maxWidth (0 means DefaultMaxWidth).
func New(s *soc.SOC, maxWidth int) (*Optimizer, error) {
	if maxWidth == 0 {
		maxWidth = DefaultMaxWidth
	}
	if maxWidth < 1 {
		return nil, fmt.Errorf("sched: non-positive max width %d", maxWidth)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sets, designs, err := pareto.ComputeAllDesigns(s, maxWidth)
	if err != nil {
		return nil, err
	}
	return &Optimizer{soc: s, maxWidth: maxWidth, sets: sets, designs: designs}, nil
}

// SOC returns the optimizer's SOC.
func (o *Optimizer) SOC() *soc.SOC { return o.soc }

// MaxWidth returns the per-core width cap the optimizer's caches were
// built under.
func (o *Optimizer) MaxWidth() int { return o.maxWidth }

// ParetoSet returns the cached Pareto set of a core (full width cap).
func (o *Optimizer) ParetoSet(coreID int) *pareto.Set { return o.sets[coreID] }

// ParetoSets returns the cached Pareto sets of all cores, indexed by core
// ID. The map and the sets are shared and must be treated as read-only.
func (o *Optimizer) ParetoSets() map[int]*pareto.Set { return o.sets }

// Design returns the cached wrapper design of a core at a width in
// 1..maxWidth, or nil for unknown cores and out-of-range widths. The
// design is shared and immutable.
func (o *Optimizer) Design(coreID, width int) *wrapper.Design {
	ds := o.designs[coreID]
	if width < 1 || width > len(ds) {
		return nil
	}
	return ds[width-1]
}

// Run schedules the SOC. The returned schedule satisfies all constraints;
// Verify re-checks every invariant and is called by tests, not by Run.
func Run(s *soc.SOC, params Params) (*Schedule, error) {
	o, err := New(s, params.Defaults().MaxWidth)
	if err != nil {
		return nil, err
	}
	return o.Run(params)
}

// Run schedules the optimizer's SOC under the given parameters.
// params.MaxWidth must not exceed the optimizer's cap.
func (o *Optimizer) Run(params Params) (*Schedule, error) {
	params = params.Defaults()
	if params.TAMWidth < 1 {
		return nil, fmt.Errorf("sched: non-positive TAM width %d", params.TAMWidth)
	}
	if params.MaxWidth > o.maxWidth {
		return nil, fmt.Errorf("sched: params.MaxWidth %d exceeds optimizer cap %d", params.MaxWidth, o.maxWidth)
	}
	s := o.soc
	chk, err := constraint.New(s, constraint.Config{
		PowerMax:        params.PowerMax,
		IgnoreHierarchy: params.IgnoreHierarchy,
	})
	if err != nil {
		return nil, err
	}

	wmax := params.MaxWidth
	if wmax > params.TAMWidth {
		wmax = params.TAMWidth
	}

	// Initialize (Fig. 5): Pareto rectangles and preferred widths.
	states := make(map[int]*coreState, len(s.Cores))
	var order []int
	for _, c := range s.Cores {
		ps, err := o.sets[c.ID].Capped(wmax)
		if err != nil {
			return nil, err
		}
		st := &coreState{core: c, pset: ps}
		st.pref = ps.PreferredWidth(params.Percent, params.Delta)
		if params.MaxPreemptions != nil {
			st.maxPreempts = params.MaxPreemptions[c.ID]
		}
		states[c.ID] = st
		order = append(order, c.ID)
	}
	sort.Ints(order)

	bin, err := rect.NewBin(params.TAMWidth)
	if err != nil {
		return nil, err
	}

	run := &runner{
		opt:    o,
		soc:    s,
		params: params,
		chk:    chk,
		states: states,
		order:  order,
	}
	run.ord = make([]*coreState, len(order))
	for i, id := range order {
		run.ord[i] = states[id]
	}
	if err := run.schedule(); err != nil {
		return nil, err
	}
	if err := assignWires(bin, states, order); err != nil {
		return nil, err
	}

	out := &Schedule{
		SOC:         s.Name,
		TAMWidth:    params.TAMWidth,
		Params:      params,
		Assignments: make(map[int]*Assignment, len(states)),
		Bin:         bin,
		Events:      run.events,
	}
	for i := range bin.Pieces() {
		p := bin.Pieces()[i]
		a := out.Assignments[p.CoreID]
		if a == nil {
			a = &Assignment{CoreID: p.CoreID}
			out.Assignments[p.CoreID] = a
		}
		a.Pieces = append(a.Pieces, p)
	}
	for id, st := range states {
		a := out.Assignments[id]
		if a == nil {
			return nil, fmt.Errorf("sched: core %d has no pieces after wire assignment", id)
		}
		a.Width = st.assigned
		a.Preemptions = st.preempts
		a.PenaltyCycles = st.penalty
		a.BaseTime = st.pset.Time(st.assigned)
		a.ScanIn = st.design.ScanInMax
		a.ScanOut = st.design.ScanOutMax
		sort.Slice(a.Pieces, func(i, j int) bool { return a.Pieces[i].Start < a.Pieces[j].Start })
		if e := a.End(); e > out.Makespan {
			out.Makespan = e
		}
	}
	return out, nil
}

// assignWires maps the logical schedule onto concrete TAM wires. Fragments
// are processed in global start order (then core ID), each taking the
// lowest free wires with a preference for the wires the same core used
// before (so preempted tests resume on their original wiring when
// possible). Because the scheduler never oversubscribes capacity, first-fit
// in start order always succeeds (interval graphs are perfect).
func assignWires(bin *rect.Bin, states map[int]*coreState, order []int) error {
	type frag struct {
		coreID int
		s      span
	}
	var frags []frag
	for _, id := range order {
		for _, sp := range states[id].spans {
			frags = append(frags, frag{coreID: id, s: sp})
		}
	}
	sort.Slice(frags, func(i, j int) bool {
		if frags[i].s.start != frags[j].s.start {
			return frags[i].s.start < frags[j].s.start
		}
		return frags[i].coreID < frags[j].coreID
	})
	prev := make(map[int][]int)
	for _, f := range frags {
		p, err := bin.PlacePreferred(f.coreID, f.s.width, f.s.start, f.s.end, prev[f.coreID])
		if err != nil {
			return fmt.Errorf("sched: wire assignment: %v", err)
		}
		prev[f.coreID] = p.Wires
	}
	return nil
}

// runner holds the mutable state of one TAM_schedule_optimizer execution.
type runner struct {
	opt    *Optimizer // read-only: supplies cached wrapper designs
	soc    *soc.SOC
	params Params
	chk    *constraint.Checker
	states map[int]*coreState
	order  []int
	// ord holds the states in ascending core-ID order (aligned with
	// order), so the per-instant priority scans avoid map lookups.
	ord []*coreState

	now      int64
	wAvail   int
	complete map[int]bool
	running  map[int]bool
	left     int // count of incomplete cores
	events   int
}

// schedule is the main loop of Fig. 4.
func (r *runner) schedule() error {
	r.complete = make(map[int]bool)
	r.running = make(map[int]bool)
	r.left = len(r.order)
	r.wAvail = r.params.TAMWidth

	for r.left > 0 {
		if r.wAvail > 0 && r.fillPass() {
			continue
		}
		if err := r.update(); err != nil {
			return err
		}
	}
	return nil
}

// fillPass attempts one assignment by priority; it returns true when it
// changed the bin state (so the caller re-enters with priorities reset).
func (r *runner) fillPass() bool {
	if r.assignCapped() { // Priority 1 (Fig. 4 lines 5-6)
		return true
	}
	if r.assignResumable() { // Priority 2 (lines 7-10)
		return true
	}
	if r.assignNew() { // Priority 3 (lines 11-12)
		return true
	}
	if r.params.InsertSlack >= 0 && r.insertSqueezed() { // lines 13-14
		return true
	}
	if !r.params.DisableWidening && r.widenFresh() { // lines 15-16
		return true
	}
	r.wAvail = 0
	return false
}

// assignCapped handles Priority 1: begun, not running, incomplete cores
// whose preemption budget is exhausted must be (re)started and then run to
// completion. Cores that never had a budget (max 0) land here whenever an
// Update momentarily unschedules them, which makes them non-preemptive by
// construction.
func (r *runner) assignCapped() bool {
	var best *coreState
	for _, st := range r.ord {
		if !st.begun || st.complete || st.running || st.preempts < st.maxPreempts {
			continue
		}
		if st.assigned > r.wAvail || !r.chk.OK(st.core.ID, r.complete, r.running) {
			continue
		}
		if best == nil || st.remaining > best.remaining {
			best = st
		}
	}
	if best == nil {
		return false
	}
	r.assignExisting(best)
	return true
}

// assignResumable handles Priority 2: begun cores with preemption budget
// left, largest remaining time first.
func (r *runner) assignResumable() bool {
	var best *coreState
	for _, st := range r.ord {
		if !st.begun || st.complete || st.running || st.preempts >= st.maxPreempts {
			continue
		}
		if st.assigned > r.wAvail || !r.chk.OK(st.core.ID, r.complete, r.running) {
			continue
		}
		if best == nil || st.remaining > best.remaining {
			best = st
		}
	}
	if best == nil {
		return false
	}
	r.assignExisting(best)
	return true
}

// assignNew handles Priority 3: cores that never began, whose preferred
// width fits, largest testing time first.
func (r *runner) assignNew() bool {
	var best *coreState
	for _, st := range r.ord {
		if st.begun || st.pref > r.wAvail || !r.chk.OK(st.core.ID, r.complete, r.running) {
			continue
		}
		if best == nil || st.pset.Time(st.pref) > best.pset.Time(best.pref) {
			best = st
		}
	}
	if best == nil {
		return false
	}
	r.assignFresh(best, best.pref)
	return true
}

// insertSqueezed handles Lines 13-14: rather than leave wires idle, start
// an unscheduled core whose preferred width exceeds the available width by
// at most InsertSlack bits, at the largest Pareto width that fits. Among
// candidates the one with the smallest preferred width is chosen (it loses
// the least by being squeezed).
func (r *runner) insertSqueezed() bool {
	if r.wAvail < 1 {
		return false
	}
	var best *coreState
	for _, st := range r.ord {
		if st.begun || st.pref <= r.wAvail || st.pref > r.wAvail+r.params.InsertSlack {
			continue
		}
		if !r.chk.OK(st.core.ID, r.complete, r.running) {
			continue
		}
		if best == nil || st.pref < best.pref {
			best = st
		}
	}
	if best == nil {
		return false
	}
	w, ok := best.pset.SnapDown(r.wAvail)
	if !ok {
		return false
	}
	r.assignFresh(best, w)
	return true
}

// widenFresh handles Lines 15-16: when no rectangle fits the idle wires,
// grow the rectangle of a core that begins exactly now, choosing the core
// that gains the most testing time from the extra wires.
func (r *runner) widenFresh() bool {
	if r.wAvail < 1 {
		return false
	}
	var best *coreState
	var bestGain int64
	var bestW int
	for _, st := range r.ord {
		if !st.running || st.firstBegin != r.now {
			continue
		}
		w, ok := st.pset.SnapDown(st.assigned + r.wAvail)
		if !ok || w <= st.assigned {
			continue
		}
		gain := st.pset.Time(st.assigned) - st.pset.Time(w)
		if gain > bestGain {
			best, bestGain, bestW = st, gain, w
		}
	}
	if best == nil {
		return false
	}
	// The core began at this instant: no progress has been made, so the
	// whole rectangle is replaced by the wider, shorter one.
	r.reopenWider(best, bestW)
	return true
}

// assignFresh starts a never-begun core at the given width. The wrapper
// design comes from the optimizer's cache — no design work happens here.
func (r *runner) assignFresh(st *coreState, width int) {
	d := r.opt.Design(st.core.ID, width)
	if d == nil {
		// Width in 1..maxWidth and core validated: cannot happen.
		panic(fmt.Sprintf("sched: no cached design for core %d width %d", st.core.ID, width))
	}
	st.design = d
	st.assigned = width
	st.remaining = st.pset.Time(width)
	st.begun = true
	st.firstBegin = r.now
	r.open(st)
}

// assignExisting (re)starts a begun core at its fixed width. A gap since
// its last piece is a preemption-resume: it costs one extra scan-in plus
// scan-out and consumes one unit of the core's preemption budget
// (Fig. 6 line 5).
func (r *runner) assignExisting(st *coreState) {
	if st.end != r.now { // resume after a gap
		st.preempts++
		pen := st.design.PreemptionPenalty()
		st.remaining += pen
		st.penalty += pen
	}
	r.open(st)
}

// open places the core on wires from now until its projected end.
func (r *runner) open(st *coreState) {
	st.running = true
	st.runStart = r.now
	st.end = r.now + st.remaining
	r.running[st.core.ID] = true
	r.wAvail -= st.assigned
}

// reopenWider replaces a just-opened piece with a wider one, fetching the
// wider design from the optimizer's cache.
func (r *runner) reopenWider(st *coreState, width int) {
	r.wAvail += st.assigned
	d := r.opt.Design(st.core.ID, width)
	if d == nil {
		panic(fmt.Sprintf("sched: no cached design for core %d width %d", st.core.ID, width))
	}
	st.design = d
	st.assigned = width
	st.remaining = st.pset.Time(width)
	st.end = r.now + st.remaining
	r.wAvail -= width
}

// update is the Fig. 8 procedure: advance time to the earliest completion
// among running cores, close all open pieces, mark completions, and release
// all wires so every incomplete core contends again. Seamless continuations
// (a piece that resumes exactly where the previous one ended, at the same
// width) are merged so preemption fragments are the only split points.
func (r *runner) update() error {
	r.events++
	var newTime int64 = -1
	for id := range r.running {
		st := r.states[id]
		if newTime == -1 || st.end < newTime {
			newTime = st.end
		}
	}
	if newTime == -1 {
		return r.deadlockError()
	}
	for id := range r.running {
		st := r.states[id]
		elapsed := newTime - st.runStart
		if elapsed > 0 {
			if n := len(st.spans); n > 0 && st.spans[n-1].end == st.runStart && st.spans[n-1].width == st.assigned {
				st.spans[n-1].end = newTime
			} else {
				st.spans = append(st.spans, span{start: st.runStart, end: newTime, width: st.assigned})
			}
		}
		st.remaining -= elapsed
		st.running = false
		st.end = newTime
		if st.remaining == 0 {
			st.complete = true
			r.complete[id] = true
			r.left--
		}
		delete(r.running, id)
	}
	r.now = newTime
	r.wAvail = r.params.TAMWidth
	return nil
}

// deadlockError reports why no core can make progress.
func (r *runner) deadlockError() error {
	for _, id := range r.order {
		st := r.states[id]
		if st.complete {
			continue
		}
		if msg := r.chk.Conflict(id, r.complete, r.running); msg != "" {
			return fmt.Errorf("sched: deadlock at t=%d: core %d blocked (%s)", r.now, id, msg)
		}
		if st.begun && st.assigned > r.params.TAMWidth {
			return fmt.Errorf("sched: deadlock at t=%d: core %d needs %d wires > W=%d", r.now, id, st.assigned, r.params.TAMWidth)
		}
	}
	return fmt.Errorf("sched: deadlock at t=%d with %d cores left", r.now, r.left)
}

// Verify re-derives every schedule invariant from first principles:
// bin validity (wires, overlaps), per-core total time = T(width) plus
// preemption penalties, piece widths equal per core, preemption budgets,
// precedence/concurrency/power/BIST timelines, and makespan consistency.
// It redesigns every wrapper from scratch; Optimizer.Verify is the cached
// equivalent.
func Verify(s *soc.SOC, sch *Schedule) error {
	return verify(s, sch, wrapper.DesignWrapper)
}

// Verify is the package-level Verify against the optimizer's SOC, with
// wrapper designs served from the (core, width) cache instead of being
// redesigned.
func (o *Optimizer) Verify(sch *Schedule) error {
	return verify(o.soc, sch, func(c *soc.Core, width int) (*wrapper.Design, error) {
		if d := o.Design(c.ID, width); d != nil {
			return d, nil
		}
		return wrapper.DesignWrapper(c, width)
	})
}

// verify implements Verify with a pluggable wrapper-design source.
func verify(s *soc.SOC, sch *Schedule, design func(*soc.Core, int) (*wrapper.Design, error)) error {
	if err := sch.Bin.Validate(); err != nil {
		return err
	}
	chk, err := constraint.New(s, constraint.Config{
		PowerMax:        sch.Params.PowerMax,
		IgnoreHierarchy: sch.Params.IgnoreHierarchy,
	})
	if err != nil {
		return err
	}
	if err := unknownCore(s, sch); err != nil {
		return err
	}
	intervals := make(map[int][]constraint.Interval)
	var makespan int64
	for _, c := range s.Cores {
		a := sch.Assignments[c.ID]
		if a == nil {
			return fmt.Errorf("sched: core %d never scheduled", c.ID)
		}
		if len(a.Pieces) == 0 {
			return fmt.Errorf("sched: core %d has no pieces", c.ID)
		}
		gaps := 0
		var total int64
		for i := range a.Pieces {
			p := &a.Pieces[i]
			if p.Width() != a.Width {
				return fmt.Errorf("sched: core %d piece %d has width %d, assignment says %d (vertical-split rule)",
					c.ID, i, p.Width(), a.Width)
			}
			if i > 0 {
				prev := &a.Pieces[i-1]
				if p.Start < prev.End {
					return fmt.Errorf("sched: core %d pieces out of order", c.ID)
				}
				if p.Start > prev.End {
					gaps++
				}
			}
			total += p.Duration()
			intervals[c.ID] = append(intervals[c.ID], constraint.Interval{Start: p.Start, End: p.End})
			if p.End > makespan {
				makespan = p.End
			}
		}
		if gaps != a.Preemptions {
			return fmt.Errorf("sched: core %d has %d gaps but %d recorded preemptions", c.ID, gaps, a.Preemptions)
		}
		want := a.BaseTime + a.PenaltyCycles
		if total != want {
			return fmt.Errorf("sched: core %d scheduled %d cycles, want %d (T=%d + penalty %d)",
				c.ID, total, want, a.BaseTime, a.PenaltyCycles)
		}
		d, err := design(c, a.Width)
		if err != nil {
			return err
		}
		if d.TestTime() != a.BaseTime {
			return fmt.Errorf("sched: core %d base time %d, wrapper says %d", c.ID, a.BaseTime, d.TestTime())
		}
		if pen := int64(a.Preemptions) * d.PreemptionPenalty(); pen != a.PenaltyCycles {
			return fmt.Errorf("sched: core %d penalty %d, want %d", c.ID, a.PenaltyCycles, pen)
		}
	}
	if makespan != sch.Makespan {
		return fmt.Errorf("sched: makespan %d, pieces end at %d", sch.Makespan, makespan)
	}
	return chk.ValidateTimeline(intervals)
}

// SweepBest runs the scheduler over the paper's parameter grid
// (percent 1..10, delta 0..4 by default) and returns the best schedule.
// Grids may be overridden; empty slices mean the defaults.
func SweepBest(s *soc.SOC, params Params, percents, deltas []int) (*Schedule, error) {
	return SweepBestContext(context.Background(), s, params, percents, deltas)
}

// SweepBestContext is SweepBest with cancellation: once ctx is done the
// sweep stops launching grid points, lets in-flight runs finish, and
// returns ctx's error. A nil ctx behaves like context.Background(), and an
// uncancellable context leaves the result byte-identical to SweepBest.
func SweepBestContext(ctx context.Context, s *soc.SOC, params Params, percents, deltas []int) (*Schedule, error) {
	o, err := New(s, params.Defaults().MaxWidth)
	if err != nil {
		return nil, err
	}
	return o.SweepBestContext(ctx, params, percents, deltas)
}

// SweepBest runs the optimizer over a (percent, delta, insert-slack) grid
// and returns the schedule with the smallest makespan. Ties break toward
// the first grid point tried. When params.InsertSlack is left at zero the
// slack dimension sweeps DefaultInsertSlacks (the paper tunes 3 but notes
// the best limit is SOC-dependent and user-settable); an explicit slack
// pins that dimension.
//
// The grid is deduplicated before anything runs: (percent, delta) only
// reach the scheduler through the per-core preferred widths, so two grid
// points with the same InsertSlack and the same preferred-width vector are
// the same scheduler run. Fingerprints are pure Pareto-set lookups; on the
// default 15×5×3 grid well over half the points typically collapse. Only
// the unique representatives (the first grid point of each group) run.
// Because duplicates have identical makespans, the first grid point
// attaining the minimum makespan is always a representative, so the
// returned schedule — including its echoed Params — and the error, when
// every point fails, are bit-identical to exhaustively running the grid.
//
// The representative runs are independent, so they are fanned out over
// params.Workers goroutines (0 = GOMAXPROCS, 1 = sequential). Results are
// collected per grid point and compared in grid order, so the outcome is
// also identical regardless of the worker count.
func (o *Optimizer) SweepBest(params Params, percents, deltas []int) (*Schedule, error) {
	return o.SweepBestContext(context.Background(), params, percents, deltas)
}

// SweepBestContext is SweepBest with cancellation (see the package-level
// SweepBestContext for the contract).
func (o *Optimizer) SweepBestContext(ctx context.Context, params Params, percents, deltas []int) (*Schedule, error) {
	grid := buildGrid(params, percents, deltas)
	return o.runGridBest(ctx, params.Workers, grid, o.gridReps(grid))
}

// sweepBestRef is the pre-deduplication sweep: every grid point runs. It
// is retained as the differential-testing oracle for SweepBest.
func (o *Optimizer) sweepBestRef(ctx context.Context, params Params, percents, deltas []int) (*Schedule, error) {
	grid := buildGrid(params, percents, deltas)
	all := make([]int, len(grid))
	for i := range all {
		all[i] = i
	}
	return o.runGridBest(ctx, params.Workers, grid, all)
}

// buildGrid expands params and the percent/delta (and, when unset, slack)
// axes into the flat grid of scheduler runs, in sweep order.
func buildGrid(params Params, percents, deltas []int) []Params {
	if len(percents) == 0 {
		percents = DefaultPercents()
	}
	if len(deltas) == 0 {
		deltas = DefaultDeltas()
	}
	slacks := []int{params.InsertSlack}
	if params.InsertSlack == 0 {
		slacks = DefaultInsertSlacks()
	}
	var grid []Params
	for _, sl := range slacks {
		for _, a := range percents {
			for _, d := range deltas {
				p := params
				p.Percent, p.Delta, p.InsertSlack = a, d, sl
				// Workers steers the sweep, not one run; clear it so the
				// echoed Schedule.Params is worker-count independent.
				p.Workers = 0
				grid = append(grid, p)
			}
		}
	}
	return grid
}

// gridReps fingerprints every grid point by (InsertSlack, per-core
// preferred-width vector) and returns the grid indices of the first point
// of each distinct fingerprint, in grid order. Points sharing a
// fingerprint are the same scheduler run: percent and delta influence a
// run only through pareto.Set.PreferredWidth at Initialize.
func (o *Optimizer) gridReps(grid []Params) []int {
	all := func() []int {
		out := make([]int, len(grid))
		for i := range out {
			out[i] = i
		}
		return out
	}
	if len(grid) == 0 {
		return nil
	}
	// All grid points share TAMWidth/MaxWidth, so the per-core width cap
	// is common. An invalid cap fails identically at every point inside
	// Run; keep the full grid so error selection is untouched.
	pd := grid[0].Defaults()
	wmax := pd.MaxWidth
	if wmax > pd.TAMWidth {
		wmax = pd.TAMWidth
	}
	if wmax < 1 || pd.MaxWidth > o.maxWidth {
		return all()
	}
	ids := make([]int, 0, len(o.sets))
	for id := range o.sets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	capped := make([]*pareto.Set, len(ids))
	for k, id := range ids {
		ps, err := o.sets[id].Capped(wmax)
		if err != nil {
			return all() // cannot happen: wmax >= 1
		}
		capped[k] = ps
	}
	seen := make(map[string]bool, len(grid))
	reps := make([]int, 0, len(grid))
	key := make([]byte, 0, 2*(len(ids)+2))
	for i, p := range grid {
		key = key[:0]
		key = append(key, byte(p.InsertSlack>>8), byte(p.InsertSlack))
		for _, ps := range capped {
			w := ps.PreferredWidth(p.Percent, p.Delta)
			key = append(key, byte(w>>8), byte(w))
		}
		if k := string(key); !seen[k] {
			seen[k] = true
			reps = append(reps, i)
		}
	}
	return reps
}

// runGridBest runs the grid points selected by idxs and returns the best
// schedule by (makespan, grid index) — the sequential first-grid-point
// tie-break — or, when every run fails, the error of the lowest grid
// index. Results stream into a running best so losing schedules are
// released as the sweep progresses instead of all being retained until a
// final merge. A cancelled ctx abandons the sweep and returns its error.
func (o *Optimizer) runGridBest(ctx context.Context, workers int, grid []Params, idxs []int) (*Schedule, error) {
	var mu sync.Mutex
	var best *Schedule
	bestIdx := len(grid)
	var firstErr error
	errIdx := len(grid)
	if err := ForEachContext(ctx, workers, len(idxs), func(k int) {
		i := idxs[k]
		sch, err := o.Run(grid[i])
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if i < errIdx {
				errIdx, firstErr = i, err
			}
			return
		}
		if best == nil || sch.Makespan < best.Makespan ||
			(sch.Makespan == best.Makespan && i < bestIdx) {
			best, bestIdx = sch, i
		}
	}); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

// ResolveWorkers maps a Params.Workers-style knob to a concrete worker
// count: 0 means GOMAXPROCS, anything below 1 collapses to 1.
func ResolveWorkers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), fanning the calls out over
// ResolveWorkers(workers) goroutines. With one worker (or one item) it
// degenerates to a plain loop on the calling goroutine — exactly the
// sequential path. fn must be safe for concurrent invocation with
// distinct indices; indices are claimed atomically so each runs once.
func ForEach(workers, n int, fn func(int)) {
	ForEachContext(context.Background(), workers, n, fn) // Background never fails
}

// ForEachContext is ForEach with cancellation: each worker checks ctx
// before claiming the next index, so once ctx is done no new fn calls
// start; in-flight calls run to completion. It returns ctx's error when
// the loop was cut short, nil when every index ran. A nil ctx behaves like
// context.Background(), which makes ForEachContext(nil, ...) — and any
// never-cancelled context — index-for-index identical to ForEach.
func ForEachContext(ctx context.Context, workers, n int, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w := ResolveWorkers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// DefaultPercents returns the α sweep grid: the paper's 1..10 plus a few
// larger values. The paper treats α as a free user parameter ("usually
// between 1 and 10"); on wide TAMs, larger α values let more cores run
// side-by-side at narrower widths and measurably reduce idle area, so the
// default grid extends past 10 (documented deviation, see EXPERIMENTS.md).
func DefaultPercents() []int {
	return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20, 30, 40, 60}
}

// DefaultDeltas returns the δ sweep grid used in the paper: 0..4.
func DefaultDeltas() []int { return []int{0, 1, 2, 3, 4} }

// DefaultInsertSlacks returns the idle-time insertion limits SweepBest
// tries when the caller leaves Params.InsertSlack unset. The paper settles
// on 3 "after extensive experimentation" but explicitly allows the system
// integrator to supply a different limit per SOC family; on our benchmarks
// 8 and 16 win at several widths.
func DefaultInsertSlacks() []int { return []int{3, 8, 16} }

// PaperPercents returns exactly the paper's α grid (1..10), for fidelity
// comparisons.
func PaperPercents() []int { return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} }

// DefaultPowerBudget returns the power budget used by the power-constrained
// experiments: factorPct percent of the largest single-test power (the
// paper sets a budget derived from per-test data bits per pattern but does
// not publish the constant; 125% binds firmly without starving any test).
func DefaultPowerBudget(s *soc.SOC, factorPct int) int {
	max := 0
	for _, c := range s.Cores {
		if p := c.TestPower(); p > max {
			max = p
		}
	}
	return (max*factorPct + 99) / 100
}

// LargerCorePreemptions builds the paper's Table-1 preemption policy:
// a budget of n for the "larger cores" — those whose minimum testing time
// is at or above the median — and 0 for the rest. It recomputes every
// Pareto staircase; Optimizer.LargerCorePreemptions reuses the cache.
func LargerCorePreemptions(s *soc.SOC, maxWidth, n int) (map[int]int, error) {
	if maxWidth < 1 {
		return nil, fmt.Errorf("sched: non-positive max width %d", maxWidth)
	}
	minTime := func(c *soc.Core) (int64, error) {
		ps, err := pareto.Compute(c, maxWidth)
		if err != nil {
			return 0, err
		}
		return ps.MinTime(), nil
	}
	return largerCorePreemptions(s, n, minTime)
}

// LargerCorePreemptions is the package-level policy builder evaluated from
// the optimizer's cached Pareto sets (width cap = the optimizer's
// maxWidth), with no staircase recomputation.
func (o *Optimizer) LargerCorePreemptions(n int) (map[int]int, error) {
	return largerCorePreemptions(o.soc, n, func(c *soc.Core) (int64, error) {
		return o.sets[c.ID].MinTime(), nil
	})
}

func largerCorePreemptions(s *soc.SOC, n int, minTime func(*soc.Core) (int64, error)) (map[int]int, error) {
	type ct struct {
		id int
		t  int64
	}
	var all []ct
	for _, c := range s.Cores {
		t, err := minTime(c)
		if err != nil {
			return nil, err
		}
		all = append(all, ct{c.ID, t})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })
	median := all[len(all)/2].t
	out := make(map[int]int, len(all))
	for _, e := range all {
		if e.t >= median {
			out[e.id] = n
		}
	}
	return out, nil
}
