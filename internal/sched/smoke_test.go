package sched

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/lb"
)

func TestSmokeD695(t *testing.T) {
	s := bench.D695()
	for _, w := range []int{16, 32, 48, 64} {
		best, err := SweepBest(s, Params{TAMWidth: w}, nil, nil)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		if err := Verify(s, best); err != nil {
			t.Fatalf("W=%d verify: %v", w, err)
		}
		b, _ := lb.Compute(s, w, 64)
		t.Logf("W=%d LB=%d makespan=%d (%.2f%% over LB) events=%d util=%.3f", w, b.Value(), best.Makespan,
			100*float64(best.Makespan-b.Value())/float64(b.Value()), best.Events, best.Utilization())
		if best.Makespan < b.Value() {
			t.Errorf("W=%d: makespan %d below LB %d", w, best.Makespan, b.Value())
		}
	}
}

func TestSmokePhilips(t *testing.T) {
	for _, name := range []string{"p22810like", "p34392like", "p93791like"} {
		s, _ := bench.ByName(name)
		widths := []int{16, 32, 48, 64}
		if name == "p34392like" {
			widths = []int{16, 24, 28, 32}
		}
		for _, w := range widths {
			best, err := SweepBest(s, Params{TAMWidth: w}, nil, nil)
			if err != nil {
				t.Fatalf("%s W=%d: %v", name, w, err)
			}
			if err := Verify(s, best); err != nil {
				t.Fatalf("%s W=%d verify: %v", name, w, err)
			}
			b, _ := lb.Compute(s, w, 64)
			t.Logf("%s W=%d LB=%d makespan=%d (%.2f%% over)", name, w, b.Value(), best.Makespan,
				100*float64(best.Makespan-b.Value())/float64(b.Value()))
		}
	}
}

func TestSmokePreemptive(t *testing.T) {
	s := bench.D695()
	mp, err := LargerCorePreemptions(s, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{16, 32, 48, 64} {
		np, err := SweepBest(s, Params{TAMWidth: w}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		pre, err := SweepBest(s, Params{TAMWidth: w, MaxPreemptions: mp}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(s, pre); err != nil {
			t.Fatalf("W=%d verify: %v", w, err)
		}
		pmax := 0
		for _, c := range s.Cores {
			if p := c.TestPower(); p > pmax {
				pmax = p
			}
		}
		pw, err := SweepBest(s, Params{TAMWidth: w, MaxPreemptions: mp, PowerMax: pmax * 3 / 2}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(s, pw); err != nil {
			t.Fatalf("W=%d power verify: %v", w, err)
		}
		t.Logf("W=%d nonpre=%d pre=%d power=%d", w, np.Makespan, pre.Makespan, pw.Makespan)
	}
}
