package sched

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/soc"
)

// UnknownCoreError reports a schedule whose assignments reference a core ID
// the SOC does not define — a stale or tampered schedule, or one produced
// for a different SOC. Callers distinguish it from other verification
// failures with errors.As.
type UnknownCoreError struct {
	// CoreID is the referenced core the SOC does not define.
	CoreID int
}

func (e *UnknownCoreError) Error() string {
	return fmt.Sprintf("sched: schedule references unknown core %d", e.CoreID)
}

// unknownCore returns the lowest assignment core ID the SOC does not
// define, as a typed error, or nil. Shared by Verify and CheckInvariants
// so the two verifiers report the same defect identically.
func unknownCore(s *soc.SOC, sch *Schedule) *UnknownCoreError {
	known := make(map[int]bool, len(s.Cores))
	for _, c := range s.Cores {
		known[c.ID] = true
	}
	bad := -1
	for id := range sch.Assignments {
		if !known[id] && (bad == -1 || id < bad) {
			bad = id
		}
	}
	if bad == -1 {
		return nil
	}
	return &UnknownCoreError{CoreID: bad}
}

// CheckInvariants is the backend-independent property checker: it re-derives
// every safety invariant a schedule must satisfy straight from the raw
// assignments, without consulting the timing model or the wrapper designs
// (Verify covers those). Every registered backend's output must pass:
//
//   - every assignment references a core the SOC defines (*UnknownCoreError
//     otherwise) and every core is tested exactly once: it has exactly one
//     assignment, with at least one piece, and its pieces never overlap in
//     time;
//   - split tests are whole: a core's segment durations sum to its claimed
//     BaseTime + PenaltyCycles and its resume gaps match Preemptions, so a
//     preemptive schedule cannot drop cycles from a segment;
//   - no TAM-wire overlap: each piece's wires are distinct and inside
//     [0, TAMWidth), and no wire carries two pieces at the same instant;
//   - the power budget is never exceeded at any instant;
//   - precedence edges are honored (a successor never starts before every
//     predecessor has completed) and mutual-exclusion edges — explicit
//     concurrency constraints, hierarchy-implied ones unless the run
//     ignored hierarchy, and shared BIST engines — never overlap.
//
// The corpus invariant suite runs this across every scenario × every
// registered backend.
func CheckInvariants(s *soc.SOC, sch *Schedule) error {
	if sch == nil {
		return fmt.Errorf("sched: nil schedule")
	}
	if sch.TAMWidth < 1 {
		return fmt.Errorf("sched: non-positive TAM width %d", sch.TAMWidth)
	}
	if err := unknownCore(s, sch); err != nil {
		return err
	}
	ids := make([]int, 0, len(sch.Assignments))
	for id := range sch.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if a := sch.Assignments[id]; a == nil {
			return fmt.Errorf("sched: core %d has a nil assignment", id)
		} else if a.CoreID != id {
			return fmt.Errorf("sched: assignment keyed %d claims core %d", id, a.CoreID)
		}
	}

	type wireIval struct {
		start, end int64
		coreID     int
	}
	perWire := make(map[int][]wireIval)
	intervals := make(map[int][]constraint.Interval, len(s.Cores))
	for _, c := range s.Cores {
		a := sch.Assignments[c.ID]
		if a == nil {
			return fmt.Errorf("sched: core %d never tested", c.ID)
		}
		if len(a.Pieces) == 0 {
			return fmt.Errorf("sched: core %d has no scheduled pieces", c.ID)
		}
		if a.Width < 1 {
			return fmt.Errorf("sched: core %d assigned non-positive width %d", c.ID, a.Width)
		}
		for i := range a.Pieces {
			p := &a.Pieces[i]
			if p.Start < 0 || p.End <= p.Start {
				return fmt.Errorf("sched: core %d piece %d has bad interval [%d,%d)", c.ID, i, p.Start, p.End)
			}
			if len(p.Wires) != a.Width {
				return fmt.Errorf("sched: core %d piece %d spans %d wires, assignment says %d", c.ID, i, len(p.Wires), a.Width)
			}
			seen := make(map[int]bool, len(p.Wires))
			for _, w := range p.Wires {
				if w < 0 || w >= sch.TAMWidth {
					return fmt.Errorf("sched: core %d piece %d uses wire %d outside TAM width %d", c.ID, i, w, sch.TAMWidth)
				}
				if seen[w] {
					return fmt.Errorf("sched: core %d piece %d lists wire %d twice", c.ID, i, w)
				}
				seen[w] = true
				perWire[w] = append(perWire[w], wireIval{p.Start, p.End, c.ID})
			}
			intervals[c.ID] = append(intervals[c.ID], constraint.Interval{Start: p.Start, End: p.End})
		}
		ivs := intervals[c.ID]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].End {
				return fmt.Errorf("sched: core %d tested twice at once: [%d,%d) overlaps [%d,%d)",
					c.ID, ivs[i].Start, ivs[i].End, ivs[i-1].Start, ivs[i-1].End)
			}
		}
		// Split tests must still test the whole core: the segment durations
		// sum to the assignment's own claim, BaseTime plus the preemption
		// penalties, and every resume-after-gap is accounted for in
		// Preemptions. A schedule that drops cycles from a segment (a test
		// cut short) is rejected here, without consulting the timing model.
		if a.Preemptions < 0 || a.PenaltyCycles < 0 {
			return fmt.Errorf("sched: core %d has negative preemption accounting (%d preemptions, %d penalty cycles)",
				c.ID, a.Preemptions, a.PenaltyCycles)
		}
		gaps := 0
		var total int64
		for i, iv := range ivs {
			total += iv.End - iv.Start
			if i > 0 && iv.Start > ivs[i-1].End {
				gaps++
			}
		}
		if gaps != a.Preemptions {
			return fmt.Errorf("sched: core %d claims %d preemptions but its pieces show %d resume gaps",
				c.ID, a.Preemptions, gaps)
		}
		if want := a.BaseTime + a.PenaltyCycles; total != want {
			return fmt.Errorf("sched: core %d segments sum to %d cycles, want base %d + penalty %d = %d",
				c.ID, total, a.BaseTime, a.PenaltyCycles, want)
		}
	}
	wires := make([]int, 0, len(perWire))
	for w := range perWire {
		wires = append(wires, w)
	}
	sort.Ints(wires)
	for _, w := range wires {
		ivs := perWire[w]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				return fmt.Errorf("sched: TAM wire %d double-booked: core %d [%d,%d) overlaps core %d [%d,%d)",
					w, ivs[i].coreID, ivs[i].start, ivs[i].end, ivs[i-1].coreID, ivs[i-1].start, ivs[i-1].end)
			}
		}
	}

	chk, err := constraint.New(s, constraint.Config{
		PowerMax:        sch.Params.PowerMax,
		IgnoreHierarchy: sch.Params.IgnoreHierarchy,
	})
	if err != nil {
		return err
	}
	return chk.ValidateTimeline(intervals)
}
