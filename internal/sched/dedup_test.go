package sched

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/wrapper"
)

// TestSweepBestDedupMatchesFullGrid asserts the tentpole bar for the grid
// deduplication: SweepBest (unique preferred-width fingerprints only) must
// return a schedule identical — field for field, wire for wire, params
// echo included — to the retained pre-dedup reference that runs every
// grid point, on both benchmark SOCs, sequentially and with a worker pool.
func TestSweepBestDedupMatchesFullGrid(t *testing.T) {
	for _, name := range []string{"d695", "demo8"} {
		s, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := New(s, DefaultMaxWidth)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{16, 32} {
			for _, workers := range []int{1, 4} {
				p := Params{TAMWidth: w, Workers: workers}
				got, err := opt.SweepBest(p, detPercents, detDeltas)
				if err != nil {
					t.Fatalf("%s W=%d workers=%d: %v", name, w, workers, err)
				}
				want, err := opt.sweepBestRef(context.Background(), p, detPercents, detDeltas)
				if err != nil {
					t.Fatalf("%s W=%d workers=%d (ref): %v", name, w, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s W=%d workers=%d: dedup sweep differs\n got  makespan=%d params=%+v\n want makespan=%d params=%+v",
						name, w, workers, got.Makespan, got.Params, want.Makespan, want.Params)
				}
			}
		}
	}
}

// TestSweepBestDedupCollapsesGrid sanity-checks that the fingerprinting
// actually collapses the default grid (the perf win exists) while keeping
// representatives in grid order.
func TestSweepBestDedupCollapsesGrid(t *testing.T) {
	s := bench.D695()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	grid := buildGrid(Params{TAMWidth: 32}, nil, nil)
	reps := opt.gridReps(grid)
	if len(reps) == 0 || len(reps) >= len(grid) {
		t.Fatalf("dedup collapsed %d grid points to %d; expected a strict, non-empty reduction", len(grid), len(reps))
	}
	for i := 1; i < len(reps); i++ {
		if reps[i] <= reps[i-1] {
			t.Fatalf("representatives out of grid order: %v", reps)
		}
	}
	if reps[0] != 0 {
		t.Fatalf("first grid point must be a representative, got %d", reps[0])
	}
	t.Logf("d695 W=32 default grid: %d points -> %d unique runs", len(grid), len(reps))
}

// TestSweepBestDedupEveryPointFails pins the error path: an unsatisfiable
// power budget makes every grid point deadlock, and the dedup sweep must
// surface the same (lowest-grid-index) error as the full grid, at any
// worker count.
func TestSweepBestDedupEveryPointFails(t *testing.T) {
	for _, name := range []string{"d695", "demo8"} {
		s, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := New(s, DefaultMaxWidth)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			p := Params{TAMWidth: 32, PowerMax: 1, Workers: workers}
			_, gotErr := opt.SweepBest(p, detPercents, detDeltas)
			_, wantErr := opt.sweepBestRef(context.Background(), p, detPercents, detDeltas)
			if gotErr == nil || wantErr == nil {
				t.Fatalf("%s workers=%d: expected both paths to fail, got %v / %v", name, workers, gotErr, wantErr)
			}
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("%s workers=%d: errors differ:\n got  %v\n want %v", name, workers, gotErr, wantErr)
			}
		}
	}
}

// TestDesignCacheMatchesDesignWrapper asserts the (core, width) design
// cache holds exactly what DesignWrapper would produce, over the full
// width range, and that the cached-design Verify accepts real schedules.
func TestDesignCacheMatchesDesignWrapper(t *testing.T) {
	s := bench.D695()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s.Cores {
		for w := 1; w <= DefaultMaxWidth; w++ {
			want, err := wrapper.DesignWrapper(c, w)
			if err != nil {
				t.Fatal(err)
			}
			if got := opt.Design(c.ID, w); !reflect.DeepEqual(got, want) {
				t.Fatalf("core %d width %d: cached design differs", c.ID, w)
			}
		}
	}
	if opt.Design(1, 0) != nil || opt.Design(1, DefaultMaxWidth+1) != nil || opt.Design(9999, 8) != nil {
		t.Fatal("out-of-range Design lookups must return nil")
	}
	sch, err := opt.SweepBest(Params{TAMWidth: 32, Workers: 1}, detPercents, detDeltas)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Verify(sch); err != nil {
		t.Fatalf("cached Verify: %v", err)
	}
	if err := Verify(s, sch); err != nil {
		t.Fatalf("uncached Verify: %v", err)
	}
}
