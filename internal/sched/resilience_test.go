package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
)

// resilFakes are switchable misbehaving backends for portfolio resilience
// tests. Registered once per binary (the registry has no unregister), they
// return an immediate error while their switch is off so unrelated
// portfolio tests just see one more failing racer.
var resilFakes = struct {
	once    sync.Once
	hang    atomic.Bool   // "test-hung" blocks, ignoring ctx, while set
	release chan struct{} // closed once to reap abandoned test-hung goroutines
	panics  atomic.Bool   // "test-panicking" panics while set
	flaky   atomic.Bool   // "test-flaky" fails while set, else runs the sweep
}{release: make(chan struct{})}

func registerResilFakes() {
	resilFakes.once.Do(func() {
		RegisterBackend(testBackend{
			name: "test-hung",
			fn: func(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
				if !resilFakes.hang.Load() {
					return nil, errors.New("test-hung: off")
				}
				// Deliberately ignores ctx — the pathological racer the
				// per-racer deadline exists for.
				<-resilFakes.release
				return nil, errors.New("test-hung: released")
			},
		})
		RegisterBackend(testBackend{
			name: "test-panicking",
			fn: func(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
				if resilFakes.panics.Load() {
					panic("test-panicking: boom")
				}
				return nil, errors.New("test-panicking: off")
			},
		})
		RegisterBackend(testBackend{
			name: "test-flaky",
			fn: func(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
				if resilFakes.flaky.Load() {
					return nil, errors.New("test-flaky: injected failure")
				}
				p := params
				p.Backend = ""
				return opt.SweepBestContext(ctx, p, nil, nil)
			},
		})
	})
}

// TestPortfolioHungRacerBoundedByBackendTimeout is the regression test for
// the satellite fix: a racer that ignores cancellation entirely cannot
// delay the portfolio past BackendTimeout — it is abandoned in place.
func TestPortfolioHungRacerBoundedByBackendTimeout(t *testing.T) {
	registerRaceFakes()
	registerResilFakes()
	ResetPortfolioHealth()
	t.Cleanup(ResetPortfolioHealth)
	resilFakes.hang.Store(true)
	t.Cleanup(func() {
		resilFakes.hang.Store(false)
		close(resilFakes.release) // reap abandoned racer goroutines
	})

	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{TAMWidth: 16, Workers: 1, Backend: "portfolio", BackendTimeout: 200 * time.Millisecond}
	start := time.Now()
	sch, err := opt.ScheduleBackend(context.Background(), p)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("portfolio with hung racer: %v", err)
	}
	if err := opt.Verify(sch); err != nil {
		t.Fatalf("winner fails verification: %v", err)
	}
	// Generous CI bound: the only slow step allowed is the hung racer's
	// 200ms deadline; everything else on Demo is milliseconds.
	if elapsed > 5*time.Second {
		t.Fatalf("hung racer delayed the race %v, want prompt abandonment", elapsed)
	}
	stats := PortfolioStats()
	if got := stats["test-hung"].TimedOut; got != 1 {
		t.Errorf("test-hung timedOut = %d, want 1", got)
	}
	if got := stats["test-hung"].State; got != "closed" {
		t.Errorf("test-hung breaker state = %q after one timeout, want closed", got)
	}
	if got := stats[DefaultBackend].Won; got != 1 {
		t.Errorf("classic won = %d, want 1 (stats: %+v)", got, stats)
	}
}

// TestPortfolioContainsRacerPanic: a panicking backend is recorded as a
// failure, and the race still produces a verified schedule.
func TestPortfolioContainsRacerPanic(t *testing.T) {
	registerRaceFakes()
	registerResilFakes()
	ResetPortfolioHealth()
	t.Cleanup(ResetPortfolioHealth)
	resilFakes.panics.Store(true)
	t.Cleanup(func() { resilFakes.panics.Store(false) })

	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{TAMWidth: 16, Workers: 1, Backend: "portfolio"}
	sch, err := opt.ScheduleBackend(context.Background(), p)
	if err != nil {
		t.Fatalf("portfolio with panicking racer: %v", err)
	}
	if err := opt.Verify(sch); err != nil {
		t.Fatalf("winner fails verification: %v", err)
	}
	if got := PortfolioStats()["test-panicking"].Failed; got != 1 {
		t.Errorf("test-panicking failed = %d, want 1", got)
	}
}

// TestPortfolioQuarantineAndGracefulDegradation drives the full breaker
// lifecycle through the portfolio itself: repeated failures quarantine a
// backend; when every admitted backend fails, the portfolio degrades to
// racing the benched ones; a benched backend that recovers wins and its
// breaker closes again.
func TestPortfolioQuarantineAndGracefulDegradation(t *testing.T) {
	registerRaceFakes()
	registerResilFakes()
	ResetPortfolioHealth()
	t.Cleanup(ResetPortfolioHealth)
	resilFakes.flaky.Store(true)
	t.Cleanup(func() { resilFakes.flaky.Store(false) })

	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{TAMWidth: 16, Workers: 1, Backend: "portfolio"}

	// Three failing races open test-flaky's breaker (the other fakes all
	// fail too and are quarantined alongside it).
	for i := 0; i < DefaultBreakerThreshold; i++ {
		if _, err := opt.ScheduleBackend(context.Background(), p); err != nil {
			t.Fatalf("race %d: %v", i, err)
		}
	}
	stats := PortfolioStats()
	if got := stats["test-flaky"].Failed; got != int64(DefaultBreakerThreshold) {
		t.Fatalf("test-flaky failed = %d, want %d", got, DefaultBreakerThreshold)
	}
	if got := stats["test-flaky"].State; got != "open" {
		t.Fatalf("test-flaky breaker state = %q, want open", got)
	}

	// While quarantined, the backend is benched, not called.
	if _, err := opt.ScheduleBackend(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	stats = PortfolioStats()
	if got := stats["test-flaky"].Quarantined; got != 1 {
		t.Errorf("test-flaky quarantined = %d, want 1", got)
	}
	if got := stats["test-flaky"].Failed; got != int64(DefaultBreakerThreshold) {
		t.Errorf("quarantined backend was still called: failed = %d", got)
	}

	// Kill classic via its failpoint and let test-flaky recover: every
	// admitted racer now fails, so the portfolio must degrade to the
	// benched set and return test-flaky's verified schedule.
	resilFakes.flaky.Store(false)
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: siteClassicSchedule, Mode: chaos.ModeError},
	}})
	defer plan.Disable()
	sch, err := opt.ScheduleBackend(context.Background(), p)
	if err != nil {
		t.Fatalf("degraded race: %v", err)
	}
	if err := opt.Verify(sch); err != nil {
		t.Fatalf("degraded winner fails verification: %v", err)
	}
	stats = PortfolioStats()
	if got := stats["test-flaky"].Won; got != 1 {
		t.Errorf("test-flaky won = %d, want 1 (the degraded race)", got)
	}
	// The successful degraded run re-closed the breaker: re-admitted.
	if got := stats["test-flaky"].State; got != "closed" {
		t.Errorf("test-flaky breaker state = %q after recovery, want closed", got)
	}
	plan.Disable()
	if _, err := opt.ScheduleBackend(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	// Re-admitted: benched exactly once total (the pre-recovery race it
	// truly sat out). The degraded race is counted by its outcome (Won),
	// not as a quarantine — one portfolio call, one counter.
	if got := PortfolioStats()["test-flaky"].Quarantined; got != 1 {
		t.Errorf("recovered backend quarantine count = %d, want 1", got)
	}
}

// TestPortfolioAllBackendsDead: when literally everything fails the
// portfolio reports the failure instead of hanging or returning nil.
func TestPortfolioAllBackendsDead(t *testing.T) {
	registerRaceFakes()
	registerResilFakes()
	ResetPortfolioHealth()
	t.Cleanup(ResetPortfolioHealth)
	resilFakes.flaky.Store(true)
	t.Cleanup(func() { resilFakes.flaky.Store(false) })

	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	plan := chaos.Enable(chaos.Plan{Rules: []chaos.Rule{
		{Site: siteClassicSchedule, Mode: chaos.ModeError},
	}})
	defer plan.Disable()
	p := Params{TAMWidth: 16, Workers: 1, Backend: "portfolio"}
	sch, err := opt.ScheduleBackend(context.Background(), p)
	if err == nil {
		t.Fatalf("all-dead portfolio returned %v, want error", sch)
	}
	var ie *chaos.InjectedError
	if !errors.As(err, &ie) {
		t.Errorf("all-dead error %v does not surface the racer failure", err)
	}
}
