package sched

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// CanonicalKey returns a deterministic string identifying the scheduling
// outcome this Params selects: two Params with equal keys produce
// byte-identical schedules (for any fixed SOC), so the key is safe to use
// as a result-cache address. Fields that cannot influence the schedule are
// excluded — Workers only bounds sweep fan-out (parallel sweeps are
// deterministic), so Params differing only in Workers share a key.
// Defaults are applied first, so the zero value and an explicit default
// (e.g. MaxWidth 0 vs 64) share a key too.
func (p Params) CanonicalKey() string {
	d := p.Defaults()
	backend := d.Backend
	if IsDefaultBackend(backend) {
		backend = DefaultBackend
	}
	seed := d.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "w=%d|max=%d|pct=%d|delta=%d|power=%d|slack=%d|widen=%t|hier=%t|backend=%s|bt=%d|seed=%d|pre=",
		d.TAMWidth, d.MaxWidth, d.Percent, d.Delta, d.PowerMax, d.InsertSlack,
		d.DisableWidening, d.IgnoreHierarchy, backend, int64(d.BackendTimeout), seed)
	if d.MaxPreemptions == nil {
		sb.WriteString("nil")
	} else {
		ids := make([]int, 0, len(d.MaxPreemptions))
		for id := range d.MaxPreemptions {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		sb.WriteByte('[')
		for i, id := range ids {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d:%d", id, d.MaxPreemptions[id])
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// BatchItem is one scheduling request in a batch: the run's Params plus
// the mode bit. Best selects the backend's best-schedule mode; with the
// classic default backend and Best false, the item is a single run at the
// given (α, δ) — exactly the Schedule vs ScheduleBest split of the
// one-at-a-time API.
type BatchItem struct {
	Params Params
	Best   bool
}

// key returns the item's result-cache address: the Params' canonical key
// plus the effective mode. Non-classic backends have no single-run mode
// (both paths dispatch to the backend's best schedule), so their Best bit
// canonicalizes to true and both spellings share one computation.
func (it BatchItem) key() string {
	best := it.Best || !IsDefaultBackend(it.Params.Backend)
	return fmt.Sprintf("best=%t|%s", best, it.Params.CanonicalKey())
}

// BatchResult is one item's outcome: the schedule, or the item's own
// error. Items deduplicated inside a batch share one *Schedule — treat it
// as read-only, exactly like every other schedule the optimizer returns.
type BatchResult struct {
	Schedule *Schedule
	Err      error
}

// ScheduleBatch runs every item through the optimizer with a bounded
// worker pool and returns one result per item, in item order. Identical
// items (equal canonical keys) are computed once and share the result —
// the batch-scope form of the service layer's content-addressed result
// cache, so library callers get the same deduplication semantics. One
// failing item never fails the batch: its error lands in its own slot.
// workers bounds the fan-out (0 = GOMAXPROCS, 1 = sequential); results
// are identical for any worker count. Once ctx is done, unstarted items
// fail with ctx's error.
func (o *Optimizer) ScheduleBatch(ctx context.Context, items []BatchItem, workers int) []BatchResult {
	results := make([]BatchResult, len(items))
	if len(items) == 0 {
		return results
	}
	// Deduplicate: first occurrence of each key computes, the rest share.
	firstOf := make(map[string]int, len(items))
	unique := make([]int, 0, len(items))
	share := make([]int, len(items)) // item index -> computing item index
	for i, it := range items {
		k := it.key()
		if j, ok := firstOf[k]; ok {
			share[i] = j
			continue
		}
		firstOf[k] = i
		share[i] = i
		unique = append(unique, i)
	}

	n := ResolveWorkers(workers)
	if n > len(unique) {
		n = len(unique)
	}
	idxCh := make(chan int)
	done := make(chan struct{}, n)
	for w := 0; w < n; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idxCh {
				results[i] = o.runBatchItem(ctx, items[i])
			}
		}()
	}
	for _, i := range unique {
		idxCh <- i
	}
	close(idxCh)
	for w := 0; w < n; w++ {
		<-done
	}
	for i := range items {
		if share[i] != i {
			results[i] = results[share[i]]
		}
	}
	return results
}

// runBatchItem executes one unique batch item, mirroring the dispatch of
// the one-at-a-time API: classic single-run for (Best=false, default
// backend), the named backend's best mode otherwise.
func (o *Optimizer) runBatchItem(ctx context.Context, it BatchItem) BatchResult {
	if err := ctx.Err(); err != nil {
		return BatchResult{Err: err}
	}
	var (
		sch *Schedule
		err error
	)
	if it.Best || !IsDefaultBackend(it.Params.Backend) {
		sch, err = o.ScheduleBackend(ctx, it.Params)
	} else {
		sch, err = o.Run(it.Params)
	}
	return BatchResult{Schedule: sch, Err: err}
}
