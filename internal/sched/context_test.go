package sched

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
)

// TestSweepBestContextMatchesSweepBest asserts the satellite guarantee:
// nil and Background contexts leave SweepBest's result byte-identical, on
// both the sequential and parallel paths.
func TestSweepBestContextMatchesSweepBest(t *testing.T) {
	s, err := bench.ByName("demo8")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		want, err := opt.SweepBest(Params{TAMWidth: 24, Workers: workers}, detPercents, detDeltas)
		if err != nil {
			t.Fatal(err)
		}
		for _, ctx := range []context.Context{nil, context.Background()} {
			got, err := opt.SweepBestContext(ctx, Params{TAMWidth: 24, Workers: workers}, detPercents, detDeltas)
			if err != nil {
				t.Fatalf("workers=%d ctx=%v: %v", workers, ctx, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d ctx=%v: SweepBestContext differs from SweepBest", workers, ctx)
			}
		}
	}
}

// TestSweepBestContextCancelled asserts a pre-cancelled context aborts the
// sweep with the context's error on both paths.
func TestSweepBestContextCancelled(t *testing.T) {
	s, err := bench.ByName("d695")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		sch, err := opt.SweepBestContext(ctx, Params{TAMWidth: 32, Workers: workers}, nil, nil)
		if sch != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got (%v, %v), want (nil, context.Canceled)", workers, sch, err)
		}
	}
}

// TestForEachContextStopsClaiming asserts cancellation mid-loop stops new
// indices promptly: after the cancel fires no more than one in-flight call
// per worker completes.
func TestForEachContextStopsClaiming(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		err := ForEachContext(ctx, workers, 100000, func(i int) {
			if calls.Add(1) == 5 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// At most 5 pre-cancel calls plus one straggler per worker.
		if n := calls.Load(); n > int64(5+workers) {
			t.Fatalf("workers=%d: %d calls ran after cancellation", workers, n)
		}
		cancel()
	}
}

// TestForEachContextNilMatchesForEach asserts a nil context runs every
// index, exactly like ForEach.
func TestForEachContextNilMatchesForEach(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		if err := ForEachContext(nil, workers, 1000, func(i int) { calls.Add(1) }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n := calls.Load(); n != 1000 {
			t.Fatalf("workers=%d: %d calls, want 1000", workers, n)
		}
	}
}
