package sched

// Race-accounting audit: one portfolio call contributes at most one
// counter (Won / Lost / Failed / TimedOut / Declined / Quarantined) per
// backend, so WinRate and the /v1/backends rows never double-count a
// race. The table drives a switchable fake through every synthetic
// outcome and checks both the fake's own row and the partition invariant
// across the whole registry.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
)

// acctFake is the switchable backend for accounting tests. Outside a
// test it fails immediately, like the other registered fakes.
var acctFake = struct {
	once sync.Once
	mode atomic.Value // "off" | "valid" | "fail" | "decline"
}{}

type acctBackend struct{}

func (acctBackend) Name() string { return "test-accounting" }

func (acctBackend) Schedule(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
	if mode, _ := acctFake.mode.Load().(string); mode == "valid" {
		p := params
		p.Backend = ""
		return opt.SweepBestContext(ctx, p, nil, nil)
	}
	return nil, errors.New("test-accounting: injected failure")
}

func (acctBackend) Declines(params Params) (reason string, declined bool) {
	if mode, _ := acctFake.mode.Load().(string); mode == "decline" {
		return "synthetic decline", true
	}
	return "", false
}

func registerAcctFake() {
	acctFake.once.Do(func() {
		acctFake.mode.Store("off")
		RegisterBackend(acctBackend{})
	})
}

// counterSum is every per-race counter of one row; the partition
// invariant says one portfolio call adds at most 1 to it per backend.
func counterSum(s BackendRaceStats) int64 {
	return s.Won + s.Lost + s.Failed + s.TimedOut + s.Declined + s.Quarantined
}

func TestPortfolioRaceAccounting(t *testing.T) {
	registerAcctFake()
	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	race := func(t *testing.T) {
		t.Helper()
		p := Params{TAMWidth: 16, Workers: 1, Backend: "portfolio"}
		if _, err := opt.ScheduleBackend(context.Background(), p); err != nil {
			t.Fatalf("portfolio: %v", err)
		}
	}

	cases := []struct {
		name  string
		mode  string
		races int
		want  func(t *testing.T, st BackendRaceStats)
	}{
		{"lost races count Lost only", "valid", 2, func(t *testing.T, st BackendRaceStats) {
			// The fake mirrors the classic sweep, so it never beats the
			// winner: every race is a loss, nothing else.
			if st.Lost != 2 || counterSum(st) != 2 {
				t.Errorf("want Lost=2 and no other counters, got %+v", st)
			}
			if st.WinRate != 0 {
				t.Errorf("winRate = %v, want 0 for an always-losing backend", st.WinRate)
			}
		}},
		{"failures count Failed only", "fail", 2, func(t *testing.T, st BackendRaceStats) {
			if st.Failed != 2 || counterSum(st) != 2 {
				t.Errorf("want Failed=2 and no other counters, got %+v", st)
			}
		}},
		{"declines count Declined only", "decline", 3, func(t *testing.T, st BackendRaceStats) {
			if st.Declined != 3 || counterSum(st) != 3 {
				t.Errorf("want Declined=3 and no other counters, got %+v", st)
			}
			if st.State != "closed" {
				t.Errorf("declining is not failing: breaker state %q, want closed", st.State)
			}
		}},
		{"quarantine counts the sat-out race once", "fail", DefaultBreakerThreshold + 1, func(t *testing.T, st BackendRaceStats) {
			// The first threshold races fail and open the breaker; the final
			// race is sat out entirely — one Quarantined, not a Failed plus
			// a Quarantined.
			if st.Failed != DefaultBreakerThreshold || st.Quarantined != 1 {
				t.Errorf("want Failed=%d Quarantined=1, got %+v", DefaultBreakerThreshold, st)
			}
			if got, want := counterSum(st), int64(DefaultBreakerThreshold+1); got != want {
				t.Errorf("counter sum %d over %d races: a race was double-counted (%+v)", got, want, st)
			}
			if st.State != "open" {
				t.Errorf("breaker state %q, want open", st.State)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ResetPortfolioHealth()
			t.Cleanup(ResetPortfolioHealth)
			acctFake.mode.Store(tc.mode)
			t.Cleanup(func() { acctFake.mode.Store("off") })
			for i := 0; i < tc.races; i++ {
				race(t)
			}
			stats := PortfolioStats()
			tc.want(t, stats["test-accounting"])
			// Partition invariant for every backend: n races contribute at
			// most n counters — a racer cancelled after the race is decided
			// stays uncounted, but no race is ever counted twice.
			for name, st := range stats {
				if got := counterSum(st); got > int64(tc.races) {
					t.Errorf("backend %s: %d counters over %d races (%+v)", name, got, tc.races, st)
				}
			}
		})
	}

	// Declining is also honest on direct dispatch: the typed error callers
	// (and the service's 422 mapping) rely on.
	t.Run("direct dispatch returns ErrBackendDeclined", func(t *testing.T) {
		acctFake.mode.Store("decline")
		t.Cleanup(func() { acctFake.mode.Store("off") })
		p := Params{TAMWidth: 16, Backend: "test-accounting"}
		_, err := opt.ScheduleBackend(context.Background(), p)
		if !errors.Is(err, ErrBackendDeclined) {
			t.Fatalf("err = %v, want ErrBackendDeclined", err)
		}
	})
}
