package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/lb"
	"repro/internal/soc"
)

func mustRun(t *testing.T, s *soc.SOC, p Params) *Schedule {
	t.Helper()
	sch, err := Run(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s, sch); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return sch
}

func smallSOC() *soc.SOC {
	return &soc.SOC{
		Name: "small",
		Cores: []*soc.Core{
			{ID: 1, Name: "a", Inputs: 8, Outputs: 8, ScanChains: []int{40, 40, 36}, Test: soc.Test{Patterns: 60, BISTEngine: -1}},
			{ID: 2, Name: "b", Inputs: 6, Outputs: 4, ScanChains: []int{30, 30}, Test: soc.Test{Patterns: 40, BISTEngine: -1}},
			{ID: 3, Name: "c", Inputs: 20, Outputs: 10, Test: soc.Test{Patterns: 50, BISTEngine: -1}},
			{ID: 4, Name: "d", Inputs: 4, Outputs: 4, ScanChains: []int{25}, Test: soc.Test{Patterns: 30, BISTEngine: -1}},
		},
	}
}

func TestRunParamErrors(t *testing.T) {
	s := smallSOC()
	if _, err := Run(s, Params{TAMWidth: 0}); err == nil {
		t.Error("TAMWidth 0 accepted")
	}
	if _, err := New(s, -1); err == nil {
		t.Error("negative max width accepted")
	}
	o, err := New(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(Params{TAMWidth: 8, MaxWidth: 32}); err == nil {
		t.Error("params.MaxWidth above optimizer cap accepted")
	}
}

func TestScheduleInvariantsAcrossWidths(t *testing.T) {
	s := smallSOC()
	for w := 1; w <= 24; w++ {
		sch := mustRun(t, s, Params{TAMWidth: w, Percent: 5, Delta: 1})
		bound, err := lb.Compute(s, w, DefaultMaxWidth)
		if err != nil {
			t.Fatal(err)
		}
		if sch.Makespan < bound.Value() {
			t.Fatalf("W=%d: makespan %d below lower bound %d", w, sch.Makespan, bound.Value())
		}
		// Every core scheduled exactly once, in one piece (non-preemptive).
		for _, c := range s.Cores {
			a := sch.Assignments[c.ID]
			if len(a.Pieces) != 1 {
				t.Fatalf("W=%d: non-preemptive core %d has %d pieces", w, c.ID, len(a.Pieces))
			}
			if a.Preemptions != 0 {
				t.Fatalf("W=%d: non-preemptive core %d preempted", w, c.ID)
			}
			if a.Width < 1 || a.Width > w {
				t.Fatalf("W=%d: core %d width %d out of range", w, c.ID, a.Width)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	s := bench.D695()
	a := mustRun(t, s, Params{TAMWidth: 32, Percent: 7, Delta: 2})
	b := mustRun(t, s, Params{TAMWidth: 32, Percent: 7, Delta: 2})
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic makespan: %d vs %d", a.Makespan, b.Makespan)
	}
	for id, aa := range a.Assignments {
		bb := b.Assignments[id]
		if aa.Width != bb.Width || aa.Start() != bb.Start() || aa.End() != bb.End() {
			t.Fatalf("nondeterministic assignment for core %d", id)
		}
	}
}

func TestPrecedenceRespected(t *testing.T) {
	s := smallSOC()
	s.Precedences = []soc.Precedence{{Before: 1, After: 2}, {Before: 2, After: 3}}
	sch := mustRun(t, s, Params{TAMWidth: 12, Percent: 5, Delta: 1})
	a1, a2, a3 := sch.Assignments[1], sch.Assignments[2], sch.Assignments[3]
	if a2.Start() < a1.End() {
		t.Fatalf("core 2 starts %d before core 1 ends %d", a2.Start(), a1.End())
	}
	if a3.Start() < a2.End() {
		t.Fatalf("core 3 starts %d before core 2 ends %d", a3.Start(), a2.End())
	}
}

func TestConcurrencyRespected(t *testing.T) {
	s := smallSOC()
	s.Concurrencies = []soc.Concurrency{{A: 1, B: 2}}
	sch := mustRun(t, s, Params{TAMWidth: 24, Percent: 10, Delta: 2})
	a1, a2 := sch.Assignments[1], sch.Assignments[2]
	if a1.Start() < a2.End() && a2.Start() < a1.End() {
		t.Fatalf("concurrency-constrained cores overlap: [%d,%d) vs [%d,%d)",
			a1.Start(), a1.End(), a2.Start(), a2.End())
	}
}

func TestHierarchyExclusion(t *testing.T) {
	s := smallSOC()
	s.Cores[1].Parent = 1 // core 2 embedded in core 1
	sch := mustRun(t, s, Params{TAMWidth: 24, Percent: 10, Delta: 2})
	a1, a2 := sch.Assignments[1], sch.Assignments[2]
	if a1.Start() < a2.End() && a2.Start() < a1.End() {
		t.Fatal("parent and child tests overlap")
	}
	// Ablation switch allows the overlap check to be skipped (schedule may
	// or may not overlap them, but it must verify under the same flag).
	sch2, err := Run(s, Params{TAMWidth: 24, Percent: 10, Delta: 2, IgnoreHierarchy: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s, sch2); err != nil {
		t.Fatal(err)
	}
}

func TestBISTEngineExclusion(t *testing.T) {
	s := smallSOC()
	s.Cores[0].Test.Kind = soc.BISTTest
	s.Cores[0].Test.BISTEngine = 0
	s.Cores[3].Test.Kind = soc.BISTTest
	s.Cores[3].Test.BISTEngine = 0
	sch := mustRun(t, s, Params{TAMWidth: 24, Percent: 10, Delta: 2})
	a, b := sch.Assignments[1], sch.Assignments[4]
	if a.Start() < b.End() && b.Start() < a.End() {
		t.Fatal("BIST-engine-sharing cores overlap")
	}
}

func TestPowerBudgetRespected(t *testing.T) {
	s := smallSOC()
	budget := DefaultPowerBudget(s, 110)
	sch := mustRun(t, s, Params{TAMWidth: 24, Percent: 10, Delta: 2, PowerMax: budget})
	// Verify() already sweeps power; also check the budget really binds
	// something by comparing against the unconstrained run.
	free := mustRun(t, s, Params{TAMWidth: 24, Percent: 10, Delta: 2})
	if sch.Makespan < free.Makespan {
		t.Fatalf("power-constrained %d beats unconstrained %d with same params", sch.Makespan, free.Makespan)
	}
}

func TestPowerInfeasibleReported(t *testing.T) {
	s := smallSOC()
	_, err := Run(s, Params{TAMWidth: 24, PowerMax: 1})
	if err == nil || !strings.Contains(err.Error(), "no schedule exists") {
		t.Fatalf("infeasible power budget: %v", err)
	}
}

func TestPreemptionBudgetRespected(t *testing.T) {
	s := bench.D695()
	mp, err := LargerCorePreemptions(s, DefaultMaxWidth, 2)
	if err != nil {
		t.Fatal(err)
	}
	budget := DefaultPowerBudget(s, 110)
	for _, w := range []int{16, 32, 48, 64} {
		sch := mustRun(t, s, Params{TAMWidth: w, Percent: 6, Delta: 1, MaxPreemptions: mp, PowerMax: budget})
		for id, a := range sch.Assignments {
			if a.Preemptions > mp[id] {
				t.Fatalf("W=%d: core %d preempted %d times, budget %d", w, id, a.Preemptions, mp[id])
			}
			if mp[id] == 0 && len(a.Pieces) != 1 {
				t.Fatalf("W=%d: non-preemptable core %d split into %d pieces", w, id, len(a.Pieces))
			}
		}
	}
}

func TestPreemptionPenaltyAccounting(t *testing.T) {
	// Force preemption: two cores sharing one wire with a power budget that
	// admits only one at a time, plus a long third test, makes the
	// scheduler juggle. Rather than engineering exact preemptions, run the
	// power-constrained benchmarks and check accounting wherever
	// preemptions occurred.
	s := bench.P22810Like()
	mp, err := LargerCorePreemptions(s, DefaultMaxWidth, 2)
	if err != nil {
		t.Fatal(err)
	}
	budget := DefaultPowerBudget(s, 110)
	total := 0
	for _, w := range []int{32, 48, 64} {
		sch := mustRun(t, s, Params{TAMWidth: w, Percent: 8, Delta: 1, MaxPreemptions: mp, PowerMax: budget})
		for _, a := range sch.Assignments {
			total += a.Preemptions
			if a.Preemptions > 0 {
				if a.PenaltyCycles != int64(a.Preemptions)*int64(a.ScanIn+a.ScanOut) {
					t.Fatalf("core %d penalty %d, want %d·(%d+%d)",
						a.CoreID, a.PenaltyCycles, a.Preemptions, a.ScanIn, a.ScanOut)
				}
			}
		}
	}
	t.Logf("observed %d preemptions across power-constrained runs", total)
}

func TestWidthsArePareto(t *testing.T) {
	s := bench.D695()
	o, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := o.Run(Params{TAMWidth: 32, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range sch.Assignments {
		ps, err := o.ParetoSet(id).Capped(32)
		if err != nil {
			t.Fatal(err)
		}
		snap, ok := ps.SnapDown(a.Width)
		if !ok || snap != a.Width {
			t.Errorf("core %d assigned non-Pareto width %d (snap %d)", id, a.Width, snap)
		}
	}
}

func TestSweepBestPicksMinimum(t *testing.T) {
	s := smallSOC()
	best, err := SweepBest(s, Params{TAMWidth: 16}, []int{1, 5, 10}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int{1, 5, 10} {
		for _, d := range []int{0, 2} {
			sch := mustRun(t, s, Params{TAMWidth: 16, Percent: a, Delta: d})
			if sch.Makespan < best.Makespan {
				t.Fatalf("SweepBest %d beaten by alpha=%d delta=%d: %d", best.Makespan, a, d, sch.Makespan)
			}
		}
	}
}

func TestInsertSlackAndWideningToggles(t *testing.T) {
	s := bench.D695()
	for _, w := range []int{16, 48} {
		full, err := SweepBest(s, Params{TAMWidth: w}, []int{5, 10}, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		noIns, err := SweepBest(s, Params{TAMWidth: w, InsertSlack: -1}, []int{5, 10}, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		noWid, err := SweepBest(s, Params{TAMWidth: w, DisableWidening: true}, []int{5, 10}, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(s, noIns); err != nil {
			t.Fatal(err)
		}
		if err := Verify(s, noWid); err != nil {
			t.Fatal(err)
		}
		t.Logf("W=%d full=%d noInsert=%d noWiden=%d", w, full.Makespan, noIns.Makespan, noWid.Makespan)
	}
}

func TestSingleCoreUsesBestWidth(t *testing.T) {
	s := &soc.SOC{
		Name: "solo",
		Cores: []*soc.Core{
			{ID: 1, Name: "only", Inputs: 4, Outputs: 4, ScanChains: []int{50, 50, 50, 50}, Test: soc.Test{Patterns: 20, BISTEngine: -1}},
		},
	}
	sch := mustRun(t, s, Params{TAMWidth: 16, Percent: 1, Delta: 4})
	o, _ := New(s, 16)
	ps := o.ParetoSet(1)
	if sch.Makespan != ps.MinTime() {
		t.Fatalf("single-core makespan %d, want core minimum %d", sch.Makespan, ps.MinTime())
	}
}

func TestEventsCounted(t *testing.T) {
	sch := mustRun(t, smallSOC(), Params{TAMWidth: 8, Percent: 5, Delta: 1})
	if sch.Events < 1 {
		t.Fatalf("Events = %d", sch.Events)
	}
}

func TestLargerCorePreemptions(t *testing.T) {
	s := bench.D695()
	mp, err := LargerCorePreemptions(s, DefaultMaxWidth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp) == 0 || len(mp) == len(s.Cores) {
		t.Fatalf("policy covers %d of %d cores; want a strict subset at/above the median", len(mp), len(s.Cores))
	}
	for id, n := range mp {
		if n != 2 {
			t.Fatalf("core %d budget %d, want 2", id, n)
		}
	}
	if _, err := LargerCorePreemptions(s, 0, 2); err == nil {
		t.Fatal("max width 0 accepted")
	}
}

func TestDefaultPowerBudget(t *testing.T) {
	s := smallSOC()
	maxP := 0
	for _, c := range s.Cores {
		if p := c.TestPower(); p > maxP {
			maxP = p
		}
	}
	if got := DefaultPowerBudget(s, 100); got != maxP {
		t.Fatalf("budget(100%%) = %d, want %d", got, maxP)
	}
	if got := DefaultPowerBudget(s, 150); got < maxP*3/2 {
		t.Fatalf("budget(150%%) = %d, want >= %d", got, maxP*3/2)
	}
}

func TestScheduleAccessors(t *testing.T) {
	sch := mustRun(t, smallSOC(), Params{TAMWidth: 8, Percent: 5, Delta: 1})
	if sch.DataVolume() != int64(sch.TAMWidth)*sch.Makespan {
		t.Fatal("DataVolume != W·T")
	}
	if sch.IdleArea() < 0 {
		t.Fatalf("IdleArea = %d", sch.IdleArea())
	}
	if u := sch.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("Utilization = %v", u)
	}
	for _, a := range sch.Assignments {
		if a.TotalTime() != a.BaseTime+a.PenaltyCycles {
			t.Fatalf("core %d TotalTime %d != BaseTime %d + penalty %d", a.CoreID, a.TotalTime(), a.BaseTime, a.PenaltyCycles)
		}
	}
}

// Property: random SOCs schedule successfully at random widths and all
// invariants hold (Verify re-derives packing, timing, constraints).
func TestRandomSOCProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		s := &soc.SOC{Name: "rand"}
		for id := 1; id <= n; id++ {
			c := &soc.Core{
				ID: id, Name: "c", Inputs: 1 + rng.Intn(30), Outputs: rng.Intn(30),
				Test: soc.Test{Patterns: 1 + rng.Intn(80), BISTEngine: -1},
			}
			for j := rng.Intn(5); j > 0; j-- {
				c.ScanChains = append(c.ScanChains, 1+rng.Intn(60))
			}
			if rng.Intn(4) == 0 {
				c.Test.Kind = soc.BISTTest
				c.Test.BISTEngine = rng.Intn(2)
			}
			s.Cores = append(s.Cores, c)
		}
		// Random DAG edges (only forward) and one concurrency pair.
		for k := rng.Intn(3); k > 0; k-- {
			a, b := 1+rng.Intn(n), 1+rng.Intn(n)
			if a < b {
				s.Precedences = append(s.Precedences, soc.Precedence{Before: a, After: b})
			}
		}
		if n >= 2 && rng.Intn(2) == 0 {
			s.Concurrencies = append(s.Concurrencies, soc.Concurrency{A: 1, B: 2})
		}
		w := 1 + rng.Intn(40)
		mp := map[int]int{1 + rng.Intn(n): rng.Intn(3)}
		sch, err := Run(s, Params{
			TAMWidth:       w,
			Percent:        rng.Intn(15),
			Delta:          rng.Intn(5),
			MaxPreemptions: mp,
		})
		if err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		if err := Verify(s, sch); err != nil {
			t.Logf("seed %d: verify: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the makespan never beats the lower bound, across random widths
// on the real benchmark.
func TestLowerBoundProperty(t *testing.T) {
	s := bench.D695()
	o, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	f := func(width uint8, pct, dlt uint8) bool {
		w := int(width)%63 + 2
		sch, err := o.Run(Params{TAMWidth: w, Percent: int(pct) % 20, Delta: int(dlt) % 5})
		if err != nil {
			return false
		}
		bound, err := lb.Compute(s, w, DefaultMaxWidth)
		if err != nil {
			return false
		}
		return sch.Makespan >= bound.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
