package sched

import (
	"reflect"
	"testing"

	"repro/internal/bench"
)

// Reduced grids keep the determinism tests quick while still covering all
// three sweep dimensions (slack is swept because InsertSlack is left 0).
var (
	detPercents = []int{1, 5, 10, 20}
	detDeltas   = []int{0, 1, 2}
)

// TestSweepBestParallelMatchesSequential asserts the tentpole guarantee:
// the parallel sweep engine returns a schedule identical (field for field,
// wire for wire) to the sequential path, on both benchmark SOCs.
func TestSweepBestParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"d695", "demo8"} {
		s, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := New(s, DefaultMaxWidth)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{16, 32} {
			seq, err := opt.SweepBest(Params{TAMWidth: w, Workers: 1}, detPercents, detDeltas)
			if err != nil {
				t.Fatalf("%s W=%d sequential: %v", name, w, err)
			}
			for _, workers := range []int{0, 2, 4, 7} {
				par, err := opt.SweepBest(Params{TAMWidth: w, Workers: workers}, detPercents, detDeltas)
				if err != nil {
					t.Fatalf("%s W=%d workers=%d: %v", name, w, workers, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%s W=%d: workers=%d schedule differs from sequential (makespan %d vs %d)",
						name, w, workers, par.Makespan, seq.Makespan)
				}
			}
		}
	}
}

// TestSweepBestParallelErrorMatchesSequential checks that when every grid
// point fails, both paths surface the same (first-grid-point) error.
func TestSweepBestParallelErrorMatchesSequential(t *testing.T) {
	s := bench.Demo()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	// MaxWidth above the optimizer cap fails in Run for every grid point.
	bad := Params{TAMWidth: 16, MaxWidth: DefaultMaxWidth + 1}
	bad.Workers = 1
	_, seqErr := opt.SweepBest(bad, detPercents, detDeltas)
	bad.Workers = 4
	_, parErr := opt.SweepBest(bad, detPercents, detDeltas)
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error mismatch:\n seq: %v\n par: %v", seqErr, parErr)
	}
}

// TestOptimizerConcurrentRuns exercises the documented guarantee that one
// Optimizer serves concurrent Run calls; run under -race it also proves
// the absence of data races on the shared Pareto sets and SOC.
func TestOptimizerConcurrentRuns(t *testing.T) {
	s := bench.D695()
	opt, err := New(s, DefaultMaxWidth)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := opt.Run(Params{TAMWidth: 24, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([]*Schedule, goroutines)
	errs := make([]error, goroutines)
	ForEach(goroutines, goroutines, func(i int) {
		results[i], errs[i] = opt.Run(Params{TAMWidth: 24, Percent: 5, Delta: 1})
	})
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(ref, results[i]) {
			t.Errorf("goroutine %d produced a different schedule (makespan %d vs %d)",
				i, results[i].Makespan, ref.Makespan)
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(1); got != 1 {
		t.Errorf("ResolveWorkers(1) = %d", got)
	}
	if got := ResolveWorkers(-3); got != 1 {
		t.Errorf("ResolveWorkers(-3) = %d", got)
	}
	if got := ResolveWorkers(5); got != 5 {
		t.Errorf("ResolveWorkers(5) = %d", got)
	}
	if got := ResolveWorkers(0); got < 1 {
		t.Errorf("ResolveWorkers(0) = %d", got)
	}
}

// TestForEachCoversAllIndices checks every index is visited exactly once
// for worker counts around the item count.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16, 64} {
		const n = 37
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}
