package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/resil"
)

// DefaultBackend is the backend used when Params.Backend is empty: the
// paper's preferred-width heuristic swept over its (α, δ, slack) grid.
const DefaultBackend = "classic"

// Backend is one scheduling strategy. A backend produces its best schedule
// for the optimizer's SOC under the given parameters; the grid-swept paper
// heuristic ("classic"), the rectangle bin packer ("rectpack"), and the
// racing meta-backend ("portfolio") all implement it. Implementations must
// be safe for concurrent use: Schedule may be called from many goroutines
// with distinct optimizers, and the portfolio backend races backends in
// parallel against one shared optimizer.
type Backend interface {
	// Name returns the backend's registry name (lowercase, stable).
	Name() string
	// Schedule computes the backend's best schedule. Implementations stop
	// early and return ctx's error once ctx is done; a nil ctx behaves
	// like context.Background(). The returned schedule must satisfy every
	// invariant CheckInvariants enforces.
	Schedule(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error)
}

// Decliner is an optional Backend capability: a backend that cannot
// honestly handle a parameter regime declines it up front instead of
// silently returning a degraded schedule (rectpack, for example, declines
// non-zero preemption budgets rather than ignoring them). The portfolio
// skips decliners instead of racing them blind, and direct dispatch
// through ScheduleBackend rejects the request with ErrBackendDeclined.
// Backends without this capability never decline.
type Decliner interface {
	// Declines reports whether the backend declines params; when it does,
	// reason says why in one human-readable sentence. Declines must be
	// cheap, deterministic, and must not inspect the SOC — it is a
	// capability statement about the parameters alone.
	Declines(params Params) (reason string, declined bool)
}

// BackendDeclines reports b's decline verdict for params: the Decliner
// verdict when b has the capability, never-declines otherwise.
func BackendDeclines(b Backend, params Params) (reason string, declined bool) {
	if d, ok := b.(Decliner); ok {
		return d.Declines(params)
	}
	return "", false
}

// ErrUnknownBackend is wrapped by every unknown-backend-name error, so
// callers (the HTTP service maps it to 422) test with errors.Is.
var ErrUnknownBackend = errors.New("sched: unknown backend")

// ErrBackendDeclined is wrapped by every directly-dispatched request a
// backend declined (see Decliner); the HTTP service maps it to 422. The
// portfolio never returns it for one declining racer — it races the
// backends that accept instead.
var ErrBackendDeclined = errors.New("sched: backend declined parameters")

var (
	backendMu  sync.RWMutex
	backendsBy = make(map[string]Backend) // guarded by backendMu
)

// RegisterBackend adds a backend to the global registry. It panics on an
// empty name or a duplicate registration (programmer error, like
// database/sql drivers). Packages register themselves in init; importing
// repro/internal/rectpack, for example, makes "rectpack" available.
func RegisterBackend(b Backend) {
	name := b.Name()
	if name == "" {
		panic("sched: RegisterBackend with empty name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendsBy[name]; dup {
		panic(fmt.Sprintf("sched: RegisterBackend called twice for %q", name))
	}
	backendsBy[name] = b
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backendsBy))
	for name := range backendsBy {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IsDefaultBackend reports whether a backend name resolves to the default
// classic backend — the only backend with a distinct single-run mode. The
// dispatch layers (repro API, service, corpus) share this predicate so
// they can never disagree about which requests take the single-run path.
func IsDefaultBackend(name string) bool {
	return name == "" || name == DefaultBackend
}

// BackendByName resolves a backend name; "" means DefaultBackend. Unknown
// names return an error wrapping ErrUnknownBackend that lists what is
// registered.
func BackendByName(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	backendMu.RLock()
	b, ok := backendsBy[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownBackend, name, strings.Join(Backends(), ", "))
	}
	return b, nil
}

// ScheduleBackend resolves params.Backend ("" = DefaultBackend) and runs
// it. This is the single dispatch point every layer above the scheduler
// (the repro API, the CLIs, the HTTP service, the corpus replayer) goes
// through.
func (o *Optimizer) ScheduleBackend(ctx context.Context, params Params) (*Schedule, error) {
	b, err := BackendByName(params.Backend)
	if err != nil {
		return nil, err
	}
	if reason, declined := BackendDeclines(b, params); declined {
		return nil, fmt.Errorf("%w: %s: %s", ErrBackendDeclined, b.Name(), reason)
	}
	ctx, span := obs.Start(ctx, "backend/"+b.Name())
	defer span.End()
	start := time.Now()
	sch, err := b.Schedule(ctx, o, params)
	obs.Backends.Observe(b.Name(), time.Since(start))
	if sch != nil {
		span.SetAttr("makespan", sch.Makespan)
	}
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return sch, err
}

// Failpoint sites compiled into this package's hot paths; the chaos suite
// arms them to prove the portfolio survives a faulty or stalled backend.
const (
	siteClassicSchedule = "sched/classic/schedule"
	sitePortfolioRacer  = "sched/portfolio/racer"
)

// classicBackend is the paper's heuristic: preferred-width rectangle
// growing swept over the (α, δ, insert-slack) grid, exactly SweepBest.
type classicBackend struct{}

func (classicBackend) Name() string { return "classic" }

func (classicBackend) Schedule(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
	if err := chaos.InjectContext(ctx, siteClassicSchedule); err != nil {
		return nil, err
	}
	return opt.SweepBestContext(ctx, params, nil, nil)
}

// Circuit-breaker defaults for portfolio racers: a backend is quarantined
// after DefaultBreakerThreshold consecutive failures or timeouts and is
// probed again (half-open) after DefaultBreakerCooldown.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 30 * time.Second
)

// BackendRaceStats is one backend's cumulative portfolio-race record,
// exposed on the service's /metrics endpoint.
type BackendRaceStats struct {
	// Won counts races this backend's schedule won.
	Won int64 `json:"won"`
	// Lost counts races it finished with a valid schedule that lost.
	Lost int64 `json:"lost"`
	// Failed counts races it exited with an error (including panics).
	Failed int64 `json:"failed"`
	// TimedOut counts races it exceeded BackendTimeout.
	TimedOut int64 `json:"timedOut"`
	// Declined counts races it was skipped from after declining the
	// parameters (see Decliner).
	Declined int64 `json:"declined"`
	// Quarantined counts races it sat out entirely with an open breaker.
	// A benched backend re-raced by the degradation path is counted by
	// that race's outcome instead, so one portfolio call contributes at
	// most one counter per backend.
	Quarantined int64 `json:"quarantined"`
	// State is the breaker state ("closed", "open", "half-open"), or
	// "exempt" for classic, which is never quarantined.
	State string `json:"state"`
	// WinRate is Won/(Won+Lost) — the fraction of decided races this
	// backend's schedule won (0 when it never finished a race).
	WinRate float64 `json:"winRate"`
	// BreakerTransitions counts the backend's breaker state changes
	// (0 for the exempt classic backend).
	BreakerTransitions int64 `json:"breakerTransitions"`
}

// racerHealth is one backend's breaker plus its race record.
type racerHealth struct {
	breaker *resil.Breaker   // nil for classic: the baseline is never benched
	stats   BackendRaceStats // guarded by portfolioBackend.mu
}

// portfolioBackend races every other registered backend on the shared
// optimizer (bounded by params.Workers) and returns the shortest verified
// schedule. Each racer's result is re-verified before it may win, so a
// buggy backend can never poison the portfolio. When a verified schedule
// reaches the scheduling lower bound LB(W) the race is over — the shared
// context is cancelled and remaining racers stop early.
//
// Resilience: each racer runs in its own goroutine with panics contained
// and, when params.BackendTimeout is set, a per-racer deadline — a hung
// backend is abandoned in place and cannot delay the race beyond its
// deadline. A consecutive-failure circuit breaker per backend (classic
// exempt) benches repeat offenders for DefaultBreakerCooldown, after which
// one half-open probe decides re-admission; if every admitted racer fails,
// the portfolio degrades gracefully by racing the benched backends too,
// so it returns a schedule whenever any backend at all survives.
//
// The returned makespan is deterministic: it is never worse than the best
// single backend, and an early cancel only fires for LB(W)-optimal
// schedules, which no racer can beat. The exact schedule bytes are
// deterministic too when the race runs sequentially (Workers = 1, as the
// corpus replayer pins): equal-makespan ties then break toward the
// alphabetically first backend. With parallel racers an LB(W)-optimal
// finisher may cancel an equally-good rival mid-run, so which optimal
// layout is returned can vary run to run.
type portfolioBackend struct {
	mu     sync.Mutex
	health map[string]*racerHealth // guarded by mu
}

// thePortfolio is the registered portfolio instance; its breaker state is
// process-wide, like the backend registry itself.
var thePortfolio = &portfolioBackend{health: make(map[string]*racerHealth)}

// PortfolioStats returns every raced backend's cumulative race record,
// keyed by backend name. Backends that never raced are absent.
func PortfolioStats() map[string]BackendRaceStats {
	thePortfolio.mu.Lock()
	defer thePortfolio.mu.Unlock()
	out := make(map[string]BackendRaceStats, len(thePortfolio.health))
	for name, h := range thePortfolio.health {
		s := h.stats
		if h.breaker == nil {
			s.State = "exempt"
		} else {
			s.State = h.breaker.State().String()
			s.BreakerTransitions = h.breaker.Transitions()
		}
		if decided := s.Won + s.Lost; decided > 0 {
			s.WinRate = float64(s.Won) / float64(decided)
		}
		out[name] = s
	}
	return out
}

// ResetPortfolioHealth discards all breaker state and race counters
// (tests only — chaos plans would otherwise leak quarantines across tests).
func ResetPortfolioHealth() {
	thePortfolio.mu.Lock()
	defer thePortfolio.mu.Unlock()
	thePortfolio.health = make(map[string]*racerHealth)
}

func (pb *portfolioBackend) Name() string { return "portfolio" }

// healthFor returns the backend's health record, creating it on first use.
func (pb *portfolioBackend) healthFor(name string) *racerHealth {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	h, ok := pb.health[name]
	if !ok {
		h = &racerHealth{}
		if name != DefaultBackend {
			h.breaker = resil.NewBreaker(DefaultBreakerThreshold, DefaultBreakerCooldown)
		}
		pb.health[name] = h
	}
	return h
}

// admit splits racers by breaker verdict. Classic (nil breaker) is always
// admitted. Quarantine counters are not bumped here: whether a benched
// racer actually sits the race out is only known once the degradation
// path has (or has not) re-raced it — Schedule calls markQuarantined for
// the racers that truly never ran.
func (pb *portfolioBackend) admit(racers []Backend) (admitted, benched []Backend) {
	for _, b := range racers {
		h := pb.healthFor(b.Name())
		if h.breaker == nil || h.breaker.Allow() {
			admitted = append(admitted, b)
			continue
		}
		benched = append(benched, b)
	}
	return admitted, benched
}

// markQuarantined bumps the quarantine counter for racers that sat out a
// whole portfolio call behind an open breaker. Every racer already has a
// health record (admit created it).
func (pb *portfolioBackend) markQuarantined(benched []Backend) {
	if len(benched) == 0 {
		return
	}
	pb.mu.Lock()
	defer pb.mu.Unlock()
	for _, b := range benched {
		pb.health[b.Name()].stats.Quarantined++
	}
}

// observe feeds one racer's outcome to its breaker and counters. Outcomes
// after the race was already decided (raceCtx cancelled) are not the
// backend's fault and are ignored.
func (pb *portfolioBackend) observe(raceCtx context.Context, name string, sch *Schedule, err error) {
	if raceCtx.Err() != nil && sch == nil {
		return
	}
	h := pb.healthFor(name)
	pb.mu.Lock()
	switch {
	case sch != nil:
		// Won/Lost is recorded once the race is decided; a finish always
		// closes the breaker.
	case errors.Is(err, context.DeadlineExceeded):
		h.stats.TimedOut++
	default:
		h.stats.Failed++
	}
	pb.mu.Unlock()
	if h.breaker != nil {
		if sch != nil {
			h.breaker.Success()
		} else {
			h.breaker.Failure()
		}
	}
}

// recordOutcome bumps Won for the race winner and Lost for every other
// racer that finished with a valid schedule.
func (pb *portfolioBackend) recordOutcome(racers []Backend, results []*Schedule, best int) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	for i, sch := range results {
		if sch == nil {
			continue
		}
		h := pb.health[racers[i].Name()]
		if i == best {
			h.stats.Won++
		} else {
			h.stats.Lost++
		}
	}
}

// runRacer runs one backend under the race context plus its per-racer
// deadline, containing panics and abandoning (not joining) a racer that
// ignores cancellation — a hung backend costs its goroutine, never the
// race. The returned schedule is verified; err is non-nil iff sch is nil.
func runRacer(raceCtx context.Context, b Backend, opt *Optimizer, params Params) (*Schedule, error) {
	rctx := raceCtx
	if params.BackendTimeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(raceCtx, params.BackendTimeout)
		defer cancel()
	}
	type rres struct {
		sch *Schedule
		err error
	}
	ch := make(chan rres, 1) // buffered: an abandoned racer's send never blocks
	go func() {
		sctx, span := obs.Start(rctx, "racer/"+b.Name())
		start := time.Now()
		var r rres
		defer func() {
			if p := recover(); p != nil {
				r = rres{nil, fmt.Errorf("sched: backend %s panicked: %v", b.Name(), p)}
			}
			obs.Backends.Observe(b.Name(), time.Since(start))
			if r.err != nil {
				span.SetAttr("error", r.err.Error())
			} else if r.sch != nil {
				span.SetAttr("makespan", r.sch.Makespan)
			}
			span.End()
			ch <- r
		}()
		if err := chaos.InjectContext(sctx, sitePortfolioRacer); err != nil {
			r = rres{nil, err}
			return
		}
		p := params
		p.Backend = b.Name()
		sch, err := b.Schedule(sctx, opt, p)
		if err == nil {
			err = opt.Verify(sch)
		}
		if err != nil {
			sch = nil // only verified schedules may win
		}
		r = rres{sch, err}
	}()
	select {
	case r := <-ch:
		return r.sch, r.err
	case <-rctx.Done():
		return nil, rctx.Err()
	}
}

// race runs one heat over the given racers and returns the best verified
// schedule plus the first failure (for the all-failed error message).
func (pb *portfolioBackend) race(ctx context.Context, opt *Optimizer, params Params, racers []Backend, floor int64) (*Schedule, error) {
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*Schedule, len(racers))
	errs := make([]error, len(racers))
	ForEachContext(raceCtx, params.Workers, len(racers), func(i int) {
		sch, err := runRacer(raceCtx, racers[i], opt, params)
		pb.observe(raceCtx, racers[i].Name(), sch, err)
		results[i], errs[i] = sch, err
		if sch != nil && floor > 0 && sch.Makespan <= floor {
			cancel() // a verified optimum: no racer can do better
		}
	})
	best := -1
	for i, sch := range results {
		if sch == nil {
			continue
		}
		if best < 0 || sch.Makespan < results[best].Makespan {
			best = i
		}
	}
	if best < 0 {
		//soclint:allow backendreg terminal error scan; the race is already over
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("sched: portfolio: every backend failed; %s: %w", racers[i].Name(), err)
			}
		}
		return nil, nil
	}
	pb.recordOutcome(racers, results, best)
	return results[best], nil
}

func (pb *portfolioBackend) Schedule(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	names := Backends()
	racers := make([]Backend, 0, len(names))
	declined := 0
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if name == pb.Name() {
			continue
		}
		b, err := BackendByName(name)
		if err != nil {
			return nil, err
		}
		if _, skip := BackendDeclines(b, params); skip {
			// Honest capability reporting: a decliner is skipped, never
			// raced blind — its schedule would silently ignore the regime.
			h := pb.healthFor(name)
			pb.mu.Lock()
			h.stats.Declined++
			pb.mu.Unlock()
			declined++
			continue
		}
		racers = append(racers, b)
	}
	if len(racers) == 0 {
		if declined > 0 {
			return nil, fmt.Errorf("sched: portfolio: every backend declined the parameters")
		}
		return nil, fmt.Errorf("sched: portfolio has no backends to race")
	}
	floor := optimalityFloor(opt, params)
	admitted, benched := pb.admit(racers)
	ctx, span := obs.Start(ctx, "portfolio/race")
	defer span.End()
	span.SetAttr("racers", len(admitted))
	span.SetAttr("benched", len(benched))
	span.SetAttr("declined", declined)
	span.SetAttr("floor", floor)
	best, raceErr := pb.race(ctx, opt, params, admitted, floor)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if best == nil && len(benched) > 0 {
		// Graceful degradation: every admitted racer failed, so the benched
		// ones are the only hope — better a quarantined backend's verified
		// schedule than no schedule. A finisher here also closes its breaker,
		// and the re-raced backends are counted by this race's outcome, not
		// as quarantined.
		if best, raceErr = pb.race(ctx, opt, params, benched, floor); best != nil {
			return best, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	} else {
		pb.markQuarantined(benched)
	}
	if best == nil {
		if raceErr != nil {
			return nil, raceErr
		}
		return nil, fmt.Errorf("sched: portfolio: race cancelled before any backend finished")
	}
	return best, nil
}

// optimalityFloor returns the scheduling lower bound LB(W) = max(⌈Σ
// minArea / W⌉, bottleneck) computed from the optimizer's cached Pareto
// sets, or 0 when the parameters are out of the cache's range (the racers
// will surface the real error).
func optimalityFloor(opt *Optimizer, params Params) int64 {
	params = params.Defaults()
	wmax := params.MaxWidth
	if wmax > params.TAMWidth {
		wmax = params.TAMWidth
	}
	if wmax < 1 || params.MaxWidth > opt.maxWidth || params.TAMWidth < 1 {
		return 0
	}
	var area int64
	var bottleneck int64
	for _, set := range opt.sets {
		capped, err := set.Capped(wmax)
		if err != nil {
			return 0
		}
		area += capped.MinArea()
		if t := capped.MinTime(); t > bottleneck {
			bottleneck = t
		}
	}
	w := int64(params.TAMWidth)
	lb := (area + w - 1) / w
	if bottleneck > lb {
		lb = bottleneck
	}
	return lb
}

func init() {
	RegisterBackend(classicBackend{})
	RegisterBackend(thePortfolio)
	chaos.RegisterSites(siteClassicSchedule, sitePortfolioRacer)
}
