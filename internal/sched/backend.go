package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultBackend is the backend used when Params.Backend is empty: the
// paper's preferred-width heuristic swept over its (α, δ, slack) grid.
const DefaultBackend = "classic"

// Backend is one scheduling strategy. A backend produces its best schedule
// for the optimizer's SOC under the given parameters; the grid-swept paper
// heuristic ("classic"), the rectangle bin packer ("rectpack"), and the
// racing meta-backend ("portfolio") all implement it. Implementations must
// be safe for concurrent use: Schedule may be called from many goroutines
// with distinct optimizers, and the portfolio backend races backends in
// parallel against one shared optimizer.
type Backend interface {
	// Name returns the backend's registry name (lowercase, stable).
	Name() string
	// Schedule computes the backend's best schedule. Implementations stop
	// early and return ctx's error once ctx is done; a nil ctx behaves
	// like context.Background(). The returned schedule must satisfy every
	// invariant CheckInvariants enforces.
	Schedule(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error)
}

// ErrUnknownBackend is wrapped by every unknown-backend-name error, so
// callers (the HTTP service maps it to 422) test with errors.Is.
var ErrUnknownBackend = errors.New("sched: unknown backend")

var (
	backendMu  sync.RWMutex
	backendsBy = make(map[string]Backend) // guarded by backendMu
)

// RegisterBackend adds a backend to the global registry. It panics on an
// empty name or a duplicate registration (programmer error, like
// database/sql drivers). Packages register themselves in init; importing
// repro/internal/rectpack, for example, makes "rectpack" available.
func RegisterBackend(b Backend) {
	name := b.Name()
	if name == "" {
		panic("sched: RegisterBackend with empty name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendsBy[name]; dup {
		panic(fmt.Sprintf("sched: RegisterBackend called twice for %q", name))
	}
	backendsBy[name] = b
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backendsBy))
	for name := range backendsBy {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IsDefaultBackend reports whether a backend name resolves to the default
// classic backend — the only backend with a distinct single-run mode. The
// dispatch layers (repro API, service, corpus) share this predicate so
// they can never disagree about which requests take the single-run path.
func IsDefaultBackend(name string) bool {
	return name == "" || name == DefaultBackend
}

// BackendByName resolves a backend name; "" means DefaultBackend. Unknown
// names return an error wrapping ErrUnknownBackend that lists what is
// registered.
func BackendByName(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	backendMu.RLock()
	b, ok := backendsBy[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownBackend, name, strings.Join(Backends(), ", "))
	}
	return b, nil
}

// ScheduleBackend resolves params.Backend ("" = DefaultBackend) and runs
// it. This is the single dispatch point every layer above the scheduler
// (the repro API, the CLIs, the HTTP service, the corpus replayer) goes
// through.
func (o *Optimizer) ScheduleBackend(ctx context.Context, params Params) (*Schedule, error) {
	b, err := BackendByName(params.Backend)
	if err != nil {
		return nil, err
	}
	return b.Schedule(ctx, o, params)
}

// classicBackend is the paper's heuristic: preferred-width rectangle
// growing swept over the (α, δ, insert-slack) grid, exactly SweepBest.
type classicBackend struct{}

func (classicBackend) Name() string { return "classic" }

func (classicBackend) Schedule(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
	return opt.SweepBestContext(ctx, params, nil, nil)
}

// portfolioBackend races every other registered backend on the shared
// optimizer (bounded by params.Workers) and returns the shortest verified
// schedule. Each racer's result is re-verified before it may win, so a
// buggy backend can never poison the portfolio. When a verified schedule
// reaches the scheduling lower bound LB(W) the race is over — the shared
// context is cancelled and remaining racers stop early.
//
// The returned makespan is deterministic: it is never worse than the best
// single backend, and an early cancel only fires for LB(W)-optimal
// schedules, which no racer can beat. The exact schedule bytes are
// deterministic too when the race runs sequentially (Workers = 1, as the
// corpus replayer pins): equal-makespan ties then break toward the
// alphabetically first backend. With parallel racers an LB(W)-optimal
// finisher may cancel an equally-good rival mid-run, so which optimal
// layout is returned can vary run to run.
type portfolioBackend struct{}

func (portfolioBackend) Name() string { return "portfolio" }

func (portfolioBackend) Schedule(ctx context.Context, opt *Optimizer, params Params) (*Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	names := Backends()
	racers := make([]Backend, 0, len(names))
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if name == "portfolio" {
			continue
		}
		b, err := BackendByName(name)
		if err != nil {
			return nil, err
		}
		racers = append(racers, b)
	}
	if len(racers) == 0 {
		return nil, fmt.Errorf("sched: portfolio has no backends to race")
	}
	floor := optimalityFloor(opt, params)
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*Schedule, len(racers))
	errs := make([]error, len(racers))
	ForEachContext(raceCtx, params.Workers, len(racers), func(i int) {
		p := params
		p.Backend = racers[i].Name()
		sch, err := racers[i].Schedule(raceCtx, opt, p)
		if err == nil {
			err = opt.Verify(sch)
		}
		if err != nil {
			sch = nil // only verified schedules may win
		}
		results[i], errs[i] = sch, err
		if sch != nil && floor > 0 && sch.Makespan <= floor {
			cancel() // a verified optimum: no racer can do better
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var best *Schedule
	for _, sch := range results {
		if sch == nil {
			continue
		}
		if best == nil || sch.Makespan < best.Makespan {
			best = sch
		}
	}
	if best == nil {
		//soclint:allow backendreg terminal error scan; the race is already over
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("sched: portfolio: every backend failed; %s: %w", racers[i].Name(), err)
			}
		}
		return nil, fmt.Errorf("sched: portfolio: race cancelled before any backend finished")
	}
	return best, nil
}

// optimalityFloor returns the scheduling lower bound LB(W) = max(⌈Σ
// minArea / W⌉, bottleneck) computed from the optimizer's cached Pareto
// sets, or 0 when the parameters are out of the cache's range (the racers
// will surface the real error).
func optimalityFloor(opt *Optimizer, params Params) int64 {
	params = params.Defaults()
	wmax := params.MaxWidth
	if wmax > params.TAMWidth {
		wmax = params.TAMWidth
	}
	if wmax < 1 || params.MaxWidth > opt.maxWidth || params.TAMWidth < 1 {
		return 0
	}
	var area int64
	var bottleneck int64
	for _, set := range opt.sets {
		capped, err := set.Capped(wmax)
		if err != nil {
			return 0
		}
		area += capped.MinArea()
		if t := capped.MinTime(); t > bottleneck {
			bottleneck = t
		}
	}
	w := int64(params.TAMWidth)
	lb := (area + w - 1) / w
	if bottleneck > lb {
		lb = bottleneck
	}
	return lb
}

func init() {
	RegisterBackend(classicBackend{})
	RegisterBackend(portfolioBackend{})
}
