package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/sched"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"a", "long-header", "c"},
	}
	tab.AddRow(1, "x", 3.5)
	tab.AddRow("wide-cell-value", "y", 2)
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-header") {
		t.Fatalf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Separator row uses dashes sized to the widest cell.
	if !strings.Contains(lines[2], strings.Repeat("-", len("wide-cell-value"))) {
		t.Fatalf("separator not sized to cells:\n%s", out)
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{
		{"plain", `has"quote`},
		{"with,comma", "line\nbreak"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has""quote"`) {
		t.Fatalf("quote escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma quoting wrong:\n%s", out)
	}
}

func demoSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	s := bench.Demo()
	sch, err := sched.Run(s, sched.Params{TAMWidth: 12, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestGantt(t *testing.T) {
	sch := demoSchedule(t)
	var buf bytes.Buffer
	if err := Gantt(&buf, sch, 80); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One row per wire plus header/legend.
	for w := 0; w < sch.TAMWidth; w++ {
		if !strings.Contains(out, "w0") {
			t.Fatalf("missing wire rows:\n%s", out)
		}
	}
	if !strings.Contains(out, "testing time") {
		t.Fatalf("missing header:\n%s", out)
	}
	// Every core appears in the legend.
	for id := range sch.Assignments {
		if !strings.Contains(out, "core "+itoa(id)) {
			t.Fatalf("core %d missing from legend:\n%s", id, out)
		}
	}
	// Default width fallback.
	var buf2 bytes.Buffer
	if err := Gantt(&buf2, sch, 0); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestSVG(t *testing.T) {
	sch := demoSchedule(t)
	var buf bytes.Buffer
	if err := SVG(&buf, sch); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not an SVG document:\n%.200s", out)
	}
	if strings.Count(out, "<rect") < len(sch.Assignments) {
		t.Fatalf("too few rectangles: %d", strings.Count(out, "<rect"))
	}
	if !strings.Contains(out, "cycles") {
		t.Fatal("missing axis label")
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "W", "T", []int{1, 2}, []int64{10, 20}); err != nil {
		t.Fatal(err)
	}
	want := "W,T\n1,10\n2,20\n"
	if buf.String() != want {
		t.Fatalf("series = %q, want %q", buf.String(), want)
	}
}
