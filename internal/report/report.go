// Package report renders schedules and experiment results for humans and
// downstream tools: aligned text tables, CSV series, ASCII Gantt charts of
// packed bins (the paper's Fig. 2 view), and standalone SVG plots, all
// using only the standard library.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sched"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with column alignment.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes headers plus rows as comma-separated values. Cells
// containing commas or quotes are quoted.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders an ASCII Gantt chart of a schedule: one row per TAM wire,
// time on the horizontal axis, each cell showing the core occupying the
// wire (the paper's Fig. 2 bin view). cols is the target chart width in
// characters (default 100).
func Gantt(w io.Writer, sch *sched.Schedule, cols int) error {
	if cols <= 0 {
		cols = 100
	}
	if sch.Makespan == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	scale := float64(sch.Makespan) / float64(cols)
	grid := make([][]byte, sch.TAMWidth)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	glyph := func(coreID int) byte {
		const g = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
		return g[(coreID-1)%len(g)]
	}
	for _, p := range sch.Bin.Pieces() {
		c0 := int(float64(p.Start) / scale)
		c1 := int(float64(p.End)/scale + 0.9999)
		if c1 > cols {
			c1 = cols
		}
		if c0 >= c1 {
			c1 = c0 + 1
			if c1 > cols {
				c0, c1 = cols-1, cols
			}
		}
		for _, wire := range p.Wires {
			for x := c0; x < c1; x++ {
				grid[wire][x] = glyph(p.CoreID)
			}
		}
	}
	fmt.Fprintf(w, "SOC %s  W=%d  testing time=%d cycles  utilization=%.1f%%\n",
		sch.SOC, sch.TAMWidth, sch.Makespan, 100*sch.Utilization())
	fmt.Fprintf(w, "time 0%s%d\n", strings.Repeat(" ", cols-len(fmt.Sprint(sch.Makespan))-5), sch.Makespan)
	for i := len(grid) - 1; i >= 0; i-- {
		if _, err := fmt.Fprintf(w, "w%02d |%s|\n", i, grid[i]); err != nil {
			return err
		}
	}
	// Legend: core id -> glyph, width, time span.
	var ids []int
	for id := range sch.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := sch.Assignments[id]
		fmt.Fprintf(w, "  %c = core %-3d width %-3d [%d,%d)", glyph(id), id, a.Width, a.Start(), a.End())
		if a.Preemptions > 0 {
			fmt.Fprintf(w, "  preempted %dx (+%d cycles)", a.Preemptions, a.PenaltyCycles)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SVG renders the packed bin as a standalone SVG document: rectangles
// colored per core, axes labeled in cycles and wires.
func SVG(w io.Writer, sch *sched.Schedule) error {
	const (
		pxW, pxH = 960, 480
		marginL  = 50
		marginB  = 30
		marginT  = 30
	)
	if sch.Makespan == 0 {
		return fmt.Errorf("report: empty schedule")
	}
	plotW := float64(pxW - marginL - 10)
	plotH := float64(pxH - marginB - marginT)
	xScale := plotW / float64(sch.Makespan)
	yScale := plotH / float64(sch.TAMWidth)

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", pxW, pxH)
	fmt.Fprintf(w, `<text x="%d" y="18">SOC %s  W=%d  T=%d cycles  util=%.1f%%</text>`+"\n",
		marginL, sch.SOC, sch.TAMWidth, sch.Makespan, 100*sch.Utilization())
	fmt.Fprintf(w, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="black"/>`+"\n",
		marginL, marginT, plotW, plotH)
	palette := []string{
		"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
		"#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#2f4b7c", "#d45087",
	}
	for _, p := range sch.Bin.Pieces() {
		color := palette[(p.CoreID-1)%len(palette)]
		x := float64(marginL) + float64(p.Start)*xScale
		wdt := float64(p.End-p.Start) * xScale
		for _, wire := range p.Wires {
			y := float64(marginT) + plotH - float64(wire+1)*yScale
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="white" stroke-width="0.3"><title>core %d wire %d [%d,%d)</title></rect>`+"\n",
				x, y, wdt, yScale, color, p.CoreID, wire, p.Start, p.End)
		}
	}
	fmt.Fprintf(w, `<text x="%d" y="%d">0</text>`+"\n", marginL, pxH-10)
	fmt.Fprintf(w, `<text x="%d" y="%d" text-anchor="end">%d cycles</text>`+"\n", pxW-10, pxH-10, sch.Makespan)
	fmt.Fprintf(w, `<text x="5" y="%d">w0</text>`+"\n", pxH-marginB)
	fmt.Fprintf(w, `<text x="5" y="%d">w%d</text>`+"\n", marginT+12, sch.TAMWidth-1)
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// Series renders (x, y) integer series as CSV rows, for figure data.
func Series(w io.Writer, xName, yName string, xs []int, ys []int64) error {
	rows := make([][]string, len(xs))
	for i := range xs {
		rows[i] = []string{fmt.Sprint(xs[i]), fmt.Sprint(ys[i])}
	}
	return WriteCSV(w, []string{xName, yName}, rows)
}
