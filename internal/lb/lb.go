// Package lb computes lower bounds on SOC testing time for a given total
// TAM width, as used in Table 1 of the DAC 2002 paper:
//
//	LB(W) = max( ⌈A / W⌉ , max_i T_i(w_max) )
//
// where A = Σ_i min_w w·T_i(w) is the total minimum rectangle area over all
// cores (no schedule can pack less area into the W-wire bin), and the second
// term is the bottleneck core: no core can finish faster than its testing
// time at the per-core width cap.
package lb

import (
	"fmt"

	"repro/internal/pareto"
	"repro/internal/soc"
)

// Bound holds a lower bound and its two components.
type Bound struct {
	// TAMWidth is the W the bound was computed for.
	TAMWidth int
	// AreaBound is ⌈A/W⌉.
	AreaBound int64
	// BottleneckBound is max_i T_i(min(W, maxWidth)).
	BottleneckBound int64
	// MinArea is A itself (wire-cycles).
	MinArea int64
}

// Value returns the lower bound: the larger of the two components.
func (b Bound) Value() int64 {
	if b.AreaBound > b.BottleneckBound {
		return b.AreaBound
	}
	return b.BottleneckBound
}

// Compute returns the lower bound for the SOC at TAM width w, with per-core
// widths capped at maxWidth (the paper's 64) and additionally at w.
func Compute(s *soc.SOC, w, maxWidth int) (Bound, error) {
	if w < 1 {
		return Bound{}, fmt.Errorf("lb: non-positive TAM width %d", w)
	}
	if maxWidth < 1 {
		return Bound{}, fmt.Errorf("lb: non-positive max width %d", maxWidth)
	}
	cap := maxWidth
	if cap > w {
		cap = w
	}
	var area, bottleneck int64
	for _, c := range s.Cores {
		ps, err := pareto.Compute(c, cap)
		if err != nil {
			return Bound{}, err
		}
		area += ps.MinArea()
		if t := ps.MinTime(); t > bottleneck {
			bottleneck = t
		}
	}
	return Bound{
		TAMWidth:        w,
		AreaBound:       ceilDiv(area, int64(w)),
		BottleneckBound: bottleneck,
		MinArea:         area,
	}, nil
}

// FromSets computes the same bound as Compute from precomputed Pareto sets
// indexed by core ID (e.g. a sched.Optimizer's cache), without redesigning
// a single wrapper. Every set must have been computed with a width cap of
// at least min(w, maxWidth); smaller sets are rejected rather than
// silently loosening the bound.
func FromSets(sets map[int]*pareto.Set, w, maxWidth int) (Bound, error) {
	if w < 1 {
		return Bound{}, fmt.Errorf("lb: non-positive TAM width %d", w)
	}
	if maxWidth < 1 {
		return Bound{}, fmt.Errorf("lb: non-positive max width %d", maxWidth)
	}
	cap := maxWidth
	if cap > w {
		cap = w
	}
	var area, bottleneck int64
	for id, ps := range sets {
		if ps.MaxWidth < cap {
			return Bound{}, fmt.Errorf("lb: core %d Pareto set capped at %d, need %d", id, ps.MaxWidth, cap)
		}
		c, err := ps.Capped(cap)
		if err != nil {
			return Bound{}, err
		}
		area += c.MinArea()
		if t := c.MinTime(); t > bottleneck {
			bottleneck = t
		}
	}
	return Bound{
		TAMWidth:        w,
		AreaBound:       ceilDiv(area, int64(w)),
		BottleneckBound: bottleneck,
		MinArea:         area,
	}, nil
}

// MinArea returns A = Σ_i min_w w·T_i(w) with per-core widths capped at
// maxWidth. It pins the SOC's total test-data footprint and is the quantity
// our synthetic benchmark SOCs are calibrated against.
func MinArea(s *soc.SOC, maxWidth int) (int64, error) {
	var area int64
	for _, c := range s.Cores {
		ps, err := pareto.Compute(c, maxWidth)
		if err != nil {
			return 0, err
		}
		area += ps.MinArea()
	}
	return area, nil
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
