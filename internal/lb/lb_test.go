package lb

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/pareto"
	"repro/internal/soc"
)

// TestPaperLowerBounds pins the calibrated synthetic SOCs to the paper's
// published Table 1 lower-bound column. These must match EXACTLY: the
// benchmark calibration exists to reproduce them.
func TestPaperLowerBounds(t *testing.T) {
	cases := []struct {
		soc    string
		widths []int
		want   []int64
	}{
		{"p22810like", []int{16, 32, 48, 64}, []int64{421473, 210737, 140491, 105369}},
		{"p34392like", []int{16, 24, 28, 32}, []int64{936882, 624588, 544579, 544579}},
		{"p93791like", []int{16, 32, 48, 64}, []int64{1749388, 874694, 583130, 437347}},
	}
	for _, tc := range cases {
		s, err := bench.ByName(tc.soc)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range tc.widths {
			b, err := Compute(s, w, 64)
			if err != nil {
				t.Fatal(err)
			}
			if got := b.Value(); got != tc.want[i] {
				t.Errorf("%s LB(%d) = %d, paper says %d", tc.soc, w, got, tc.want[i])
			}
		}
	}
}

// TestD695LowerBounds records the reconstructed d695 against the paper
// within tolerance (the reconstruction is not calibrated; see DESIGN.md).
func TestD695LowerBounds(t *testing.T) {
	s := bench.D695()
	paper := map[int]int64{16: 41232, 32: 20616, 48: 13744, 64: 10308}
	for w, want := range paper {
		b, err := Compute(s, w, 64)
		if err != nil {
			t.Fatal(err)
		}
		got := b.Value()
		diff := float64(got-want) / float64(want)
		if diff < -0.01 || diff > 0.01 {
			t.Errorf("d695 LB(%d) = %d, paper %d (%.2f%% off, tolerance 1%%)", w, got, want, 100*diff)
		}
	}
}

func TestBottleneckDominates(t *testing.T) {
	// One huge core with few chains: its minimum time exceeds area/W at
	// wide TAMs, so the bottleneck term must take over.
	s := &soc.SOC{
		Name: "bneck",
		Cores: []*soc.Core{
			{ID: 1, Name: "big", Inputs: 2, Outputs: 2, ScanChains: []int{1000}, Test: soc.Test{Patterns: 100, BISTEngine: -1}},
			{ID: 2, Name: "tiny", Inputs: 2, Outputs: 2, Test: soc.Test{Patterns: 5, BISTEngine: -1}},
		},
	}
	b, err := Compute(s, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b.Value() != b.BottleneckBound {
		t.Fatalf("bottleneck %d should dominate area bound %d", b.BottleneckBound, b.AreaBound)
	}
	// The single 1000-bit chain caps the core at width ~1: its time barely
	// improves with w, so the bound is near (1+1002)·100.
	if b.BottleneckBound < 100000 {
		t.Fatalf("bottleneck bound %d implausibly small", b.BottleneckBound)
	}
}

func TestAreaBoundScalesWithWidth(t *testing.T) {
	s := bench.P22810Like()
	area, err := MinArea(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if area != bench.AreaP22810 {
		t.Fatalf("MinArea = %d, calibration target %d", area, bench.AreaP22810)
	}
	for _, w := range []int{16, 32, 48} {
		b, err := Compute(s, w, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := (area + int64(w) - 1) / int64(w)
		if b.AreaBound != want {
			t.Errorf("AreaBound(%d) = %d, want ⌈%d/%d⌉ = %d", w, b.AreaBound, area, w, want)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	s := bench.D695()
	if _, err := Compute(s, 0, 64); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Compute(s, 16, 0); err == nil {
		t.Error("max width 0 accepted")
	}
}

func TestWidthCapAtW(t *testing.T) {
	// At W < 64 the per-core cap is W: the bottleneck bound uses T_i(W),
	// which is never smaller than T_i(64).
	s := bench.D695()
	b16, _ := Compute(s, 16, 64)
	b64, _ := Compute(s, 64, 64)
	if b16.BottleneckBound < b64.BottleneckBound {
		t.Fatalf("bottleneck at W=16 (%d) below W=64 (%d)", b16.BottleneckBound, b64.BottleneckBound)
	}
}

// TestFromSetsMatchesCompute asserts the cache-fed bound equals the
// self-computing one on every benchmark SOC across the Table 1 widths.
func TestFromSetsMatchesCompute(t *testing.T) {
	for _, name := range []string{"d695", "p22810like", "p34392like", "p93791like", "demo8"} {
		s, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sets, err := pareto.ComputeAll(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{8, 16, 32, 48, 64, 80} {
			want, err := Compute(s, w, 64)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FromSets(sets, w, 64)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s LB(%d): FromSets %+v, Compute %+v", name, w, got, want)
			}
		}
	}
}

// TestFromSetsRejectsUndersizedSets pins the strictness guarantee: sets
// computed under a smaller cap than min(w, maxWidth) are an error, not a
// silently loosened bound.
func TestFromSetsRejectsUndersizedSets(t *testing.T) {
	s := bench.D695()
	sets, err := pareto.ComputeAll(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSets(sets, 32, 64); err == nil {
		t.Fatal("FromSets accepted sets capped below min(w, maxWidth)")
	}
	if _, err := FromSets(sets, 8, 64); err != nil {
		t.Fatalf("FromSets rejected adequately-capped sets: %v", err)
	}
	if _, err := FromSets(sets, 0, 64); err == nil {
		t.Fatal("FromSets accepted w=0")
	}
	if _, err := FromSets(sets, 8, 0); err == nil {
		t.Fatal("FromSets accepted maxWidth=0")
	}
}
