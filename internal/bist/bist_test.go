package bist

import (
	"testing"
	"testing/quick"
)

func TestLFSRValidation(t *testing.T) {
	if _, err := NewLFSR(0, []int{0}, 1); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewLFSR(65, []int{0}, 1); err == nil {
		t.Error("width 65 accepted")
	}
	if _, err := NewLFSR(8, []int{0}, 0); err == nil {
		t.Error("zero seed accepted")
	}
	if _, err := NewLFSR(8, nil, 1); err == nil {
		t.Error("no taps accepted")
	}
	if _, err := NewLFSR(8, []int{8}, 1); err == nil {
		t.Error("tap beyond width accepted")
	}
	if _, err := NewLFSR(8, []int{7, 5, 4, 3}, 0xFF00); err == nil {
		t.Error("seed outside width accepted")
	}
}

func TestLFSRMaximalPeriod(t *testing.T) {
	// Feedback x^4 + x + 1 (taps 1 and 0) is primitive: period 15.
	l, err := NewLFSR(4, []int{1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := l.Period(); p != 15 {
		t.Fatalf("period = %d, want 15", p)
	}
	// Feedback x^8 + x^4 + x^3 + x^2 + 1 (taps 4,3,2,0): period 255.
	l8, err := NewLFSR(8, []int{4, 3, 2, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := l8.Period(); p != 255 {
		t.Fatalf("8-bit period = %d, want 255", p)
	}
}

func TestLFSRNonInvertiblePeriod(t *testing.T) {
	// Without tap 0 the map is not invertible: the start state may never
	// recur, and Period must report that instead of hanging.
	l, err := NewLFSR(4, []int{3, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p := l.Period(); p != -1 && p <= 0 {
		t.Fatalf("period = %d; want -1 or a positive cycle", p)
	}
}

func TestLFSRNeverZero(t *testing.T) {
	// With tap 0 included the update is invertible, so a nonzero seed can
	// never reach the all-zero lockup state (x^6 + x + 1 is primitive).
	l, err := NewLFSR(6, []int{1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		l.Step()
		if l.State() == 0 {
			t.Fatal("LFSR reached the all-zero lockup state")
		}
	}
}

func TestLFSRBits(t *testing.T) {
	l := DefaultLFSR(42)
	bits := l.Bits(64)
	if len(bits) != 64 {
		t.Fatalf("Bits(64) returned %d", len(bits))
	}
	ones := 0
	for _, b := range bits {
		if b > 1 {
			t.Fatalf("non-binary output %d", b)
		}
		ones += int(b)
	}
	if ones == 0 || ones == 64 {
		t.Fatalf("degenerate bit stream: %d ones of 64", ones)
	}
	// Determinism: same seed, same stream.
	l2 := DefaultLFSR(42)
	for i, b := range l2.Bits(64) {
		if b != bits[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestMISRSensitivity(t *testing.T) {
	m1 := DefaultMISR()
	m2 := DefaultMISR()
	words := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, w := range words {
		m1.Absorb(w)
	}
	// Flip one bit of one word: the signatures must diverge.
	for i, w := range words {
		if i == 3 {
			w ^= 1
		}
		m2.Absorb(w)
	}
	if m1.Signature() == m2.Signature() {
		t.Fatal("single-bit corruption produced identical signatures")
	}
	m1.Reset()
	if m1.Signature() != 0 {
		t.Fatal("Reset did not clear the signature")
	}
}

func TestMISRValidation(t *testing.T) {
	if _, err := NewMISR(0, nil); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewMISR(8, []int{9}); err == nil {
		t.Error("tap beyond width accepted")
	}
}

// Property: order matters for MISR absorption (it is a sequence compactor,
// not a set hash) — swapping two distinct adjacent words changes the
// signature almost always; verify determinism instead, which must be exact.
func TestMISRDeterminismProperty(t *testing.T) {
	f := func(words []uint64) bool {
		a, b := DefaultMISR(), DefaultMISR()
		for _, w := range words {
			a.Absorb(w)
			b.Absorb(w)
		}
		return a.Signature() == b.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry([]int{0, 1, 0}) // duplicate IDs collapse
	if r.Engine(0) == nil || r.Engine(1) == nil {
		t.Fatal("engines missing")
	}
	if r.Engine(7) != nil {
		t.Fatal("phantom engine")
	}
	if err := r.Acquire(0, 10); err != nil {
		t.Fatal(err)
	}
	if r.Holder(0) != 10 {
		t.Fatalf("holder = %d", r.Holder(0))
	}
	if err := r.Acquire(0, 11); err == nil {
		t.Fatal("double acquisition allowed")
	}
	if err := r.Release(0, 11); err == nil {
		t.Fatal("foreign release allowed")
	}
	if err := r.Release(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Acquire(0, 11); err != nil {
		t.Fatalf("engine not reusable after release: %v", err)
	}
	if err := r.Acquire(9, 1); err == nil {
		t.Fatal("unknown engine acquirable")
	}
	if err := r.Release(9, 1); err == nil {
		t.Fatal("unknown engine releasable")
	}
	if r.Holder(9) != 0 {
		t.Fatal("unknown engine has holder")
	}
}
