// Package bist provides the on-chip built-in self-test substrate the
// framework's BIST-tested cores rely on: LFSR pattern generators, MISR
// response compactors, and a registry of shared BIST engines whose
// exclusive use creates the BIST–scan test conflicts the scheduler must
// respect (Fig. 7, lines 10-11 of the paper).
package bist

import (
	"fmt"
)

// LFSR is a Fibonacci linear-feedback shift register used as an on-chip
// pseudo-random pattern source. Taps are bit positions (0 = LSB) whose XOR
// feeds the input; state must never be all-zero.
type LFSR struct {
	width int
	taps  []int
	state uint64
}

// NewLFSR builds an LFSR of the given width (1..64) with the given taps.
// seed must be non-zero in the low width bits.
func NewLFSR(width int, taps []int, seed uint64) (*LFSR, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("bist: LFSR width %d outside 1..64", width)
	}
	mask := lfsrMask(width)
	if seed&mask == 0 {
		return nil, fmt.Errorf("bist: LFSR seed has no bits set within width %d", width)
	}
	if len(taps) == 0 {
		return nil, fmt.Errorf("bist: LFSR needs at least one tap")
	}
	for _, t := range taps {
		if t < 0 || t >= width {
			return nil, fmt.Errorf("bist: LFSR tap %d outside width %d", t, width)
		}
	}
	return &LFSR{width: width, taps: append([]int(nil), taps...), state: seed & mask}, nil
}

// DefaultLFSR returns a 32-bit LFSR with a maximal-length tap set.
func DefaultLFSR(seed uint64) *LFSR {
	l, err := NewLFSR(32, []int{31, 21, 1, 0}, seed|1)
	if err != nil {
		panic(err) // static configuration: cannot fail
	}
	return l
}

func lfsrMask(width int) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// Step advances the register one cycle and returns the output bit.
func (l *LFSR) Step() uint64 {
	out := l.state & 1
	var fb uint64
	for _, t := range l.taps {
		fb ^= (l.state >> uint(t)) & 1
	}
	l.state = (l.state >> 1) | (fb << uint(l.width-1))
	return out
}

// Bits produces the next n output bits.
func (l *LFSR) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(l.Step())
	}
	return out
}

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Period runs the register until the start state recurs and returns the
// cycle length, or -1 when the start state does not recur within 2^width
// steps (possible when tap 0 is absent: dropping the output bit from the
// feedback makes the state map non-invertible, so the orbit can enter a
// cycle that excludes the start state). Only sensible for small widths.
func (l *LFSR) Period() int {
	start := l.state
	limit := 1 << uint(l.width)
	if l.width >= 31 {
		limit = 1 << 31
	}
	for n := 1; n <= limit; n++ {
		l.Step()
		if l.state == start {
			return n
		}
	}
	return -1
}

// MISR is a multiple-input signature register compacting test responses.
// It is modeled as an internal LFSR whose state is XORed with each input
// word every cycle.
type MISR struct {
	width int
	taps  []int
	state uint64
}

// NewMISR builds a MISR of the given width with the given feedback taps.
func NewMISR(width int, taps []int) (*MISR, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("bist: MISR width %d outside 1..64", width)
	}
	for _, t := range taps {
		if t < 0 || t >= width {
			return nil, fmt.Errorf("bist: MISR tap %d outside width %d", t, width)
		}
	}
	return &MISR{width: width, taps: append([]int(nil), taps...)}, nil
}

// DefaultMISR returns a 32-bit MISR with a maximal-length tap set.
func DefaultMISR() *MISR {
	m, err := NewMISR(32, []int{31, 21, 1, 0})
	if err != nil {
		panic(err) // static configuration: cannot fail
	}
	return m
}

// Absorb compacts one response word into the signature.
func (m *MISR) Absorb(word uint64) {
	var fb uint64
	for _, t := range m.taps {
		fb ^= (m.state >> uint(t)) & 1
	}
	m.state = ((m.state >> 1) | (fb << uint(m.width-1))) ^ (word & lfsrMask(m.width))
}

// Signature returns the accumulated signature.
func (m *MISR) Signature() uint64 { return m.state }

// Reset clears the signature.
func (m *MISR) Reset() { m.state = 0 }

// Engine is one on-chip BIST engine: an LFSR source plus a MISR sink that
// at most one core test may use at a time.
type Engine struct {
	// ID is the engine identifier referenced by soc.Test.BISTEngine.
	ID int
	// Gen drives stimulus; Sig compacts responses.
	Gen *LFSR
	Sig *MISR

	busyBy int // core currently holding the engine, 0 = free
}

// Registry tracks the SOC's BIST engines and their exclusive acquisition.
// It is the hardware counterpart of the scheduler's BIST-conflict check:
// the simulator acquires engines as tests start and a second concurrent
// acquisition is a hard error.
type Registry struct {
	engines map[int]*Engine
}

// NewRegistry creates a registry with engines for each listed ID.
func NewRegistry(ids []int) *Registry {
	r := &Registry{engines: make(map[int]*Engine, len(ids))}
	for _, id := range ids {
		r.engines[id] = &Engine{
			ID:  id,
			Gen: DefaultLFSR(uint64(id)*2654435761 + 1),
			Sig: DefaultMISR(),
		}
	}
	return r
}

// Engine returns the engine with the given ID, or nil.
func (r *Registry) Engine(id int) *Engine { return r.engines[id] }

// Acquire hands the engine to a core, failing when it is held.
func (r *Registry) Acquire(engineID, coreID int) error {
	e := r.engines[engineID]
	if e == nil {
		return fmt.Errorf("bist: no engine %d", engineID)
	}
	if e.busyBy != 0 {
		return fmt.Errorf("bist: engine %d busy with core %d, wanted by core %d", engineID, e.busyBy, coreID)
	}
	e.busyBy = coreID
	return nil
}

// Release returns the engine, failing on mismatched ownership.
func (r *Registry) Release(engineID, coreID int) error {
	e := r.engines[engineID]
	if e == nil {
		return fmt.Errorf("bist: no engine %d", engineID)
	}
	if e.busyBy != coreID {
		return fmt.Errorf("bist: engine %d held by core %d, released by core %d", engineID, e.busyBy, coreID)
	}
	e.busyBy = 0
	return nil
}

// Holder returns the core currently holding the engine (0 = free).
func (r *Registry) Holder(engineID int) int {
	if e := r.engines[engineID]; e != nil {
		return e.busyBy
	}
	return 0
}
