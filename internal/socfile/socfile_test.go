package socfile

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/soc"
)

const sample = `
# A small SOC.
SocName tiny
PowerMax 500
TotalCores 3

Core 1 alpha
  Inputs 4 Outputs 3 Bidirs 1
  ScanChains 2 : 10 12
  Test Patterns 20

Core 2 beta
  Parent 1
  Inputs 2 Outputs 2 Bidirs 0
  Test Patterns 5 Power 44

Core 3 gamma
  Inputs 1 Outputs 1 Bidirs 0
  ScanChains 1 : 8
  Test Patterns 7 Kind bist Engine 0

Precedence 3 1
Concurrency 1 3
`

func TestParseSample(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "tiny" || s.PowerMax != 500 || len(s.Cores) != 3 {
		t.Fatalf("parsed header wrong: %+v", s)
	}
	c1 := s.Core(1)
	if c1.Name != "alpha" || c1.Inputs != 4 || c1.Outputs != 3 || c1.Bidirs != 1 {
		t.Fatalf("core 1 wrong: %+v", c1)
	}
	if !reflect.DeepEqual(c1.ScanChains, []int{10, 12}) || c1.Test.Patterns != 20 {
		t.Fatalf("core 1 scan/test wrong: %+v", c1)
	}
	if c1.Test.BISTEngine != -1 || c1.Test.Kind != soc.ScanTest {
		t.Fatalf("core 1 defaults wrong: %+v", c1.Test)
	}
	c2 := s.Core(2)
	if c2.Parent != 1 || c2.Test.Power != 44 {
		t.Fatalf("core 2 wrong: %+v", c2)
	}
	c3 := s.Core(3)
	if c3.Test.Kind != soc.BISTTest || c3.Test.BISTEngine != 0 {
		t.Fatalf("core 3 wrong: %+v", c3.Test)
	}
	if len(s.Precedences) != 1 || s.Precedences[0] != (soc.Precedence{Before: 3, After: 1}) {
		t.Fatalf("precedences wrong: %+v", s.Precedences)
	}
	if len(s.Concurrencies) != 1 || s.Concurrencies[0] != (soc.Concurrency{A: 1, B: 3}) {
		t.Fatalf("concurrencies wrong: %+v", s.Concurrencies)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"unknown keyword", "SocName x\nBogus 1\n", "unexpected keyword"},
		{"socname args", "SocName\n", "SocName wants"},
		{"bad totalcores", "SocName x\nTotalCores seven\n", "bad integer"},
		{"totalcores mismatch", "SocName x\nTotalCores 2\nCore 1 a\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns 1\n", "TotalCores says 2"},
		{"core args", "SocName x\nCore 1\n", "Core wants"},
		{"core bad id", "SocName x\nCore one a\n", "bad id"},
		{"bad io line", "SocName x\nCore 1 a\n Inputs 1 Outputs 1\n", "Inputs <n> Outputs <n> Bidirs <n>"},
		{"scan colon", "SocName x\nCore 1 a\n ScanChains 2 10 12\n", "ScanChains"},
		{"scan count", "SocName x\nCore 1 a\n ScanChains 2 : 10\n", "lengths declared"},
		{"missing test", "SocName x\nCore 1 a\n Inputs 1 Outputs 1 Bidirs 0\n", "no Test line"},
		{"missing test before next", "SocName x\nCore 1 a\n Inputs 1 Outputs 1 Bidirs 0\nCore 2 b\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns 1\n", "no Test line"},
		{"test dangling key", "SocName x\nCore 1 a\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns\n", "has no value"},
		{"test bad kind", "SocName x\nCore 1 a\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns 1 Kind magic\n", "want scan|bist"},
		{"test unknown key", "SocName x\nCore 1 a\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns 1 Foo 2\n", "unknown key"},
		{"precedence args", "SocName x\nCore 1 a\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns 1\nPrecedence 1\n", "wants 2 arguments"},
		{"validation failure", "SocName x\nCore 1 a\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns 0\n", "non-positive pattern"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.text))
			if err == nil {
				t.Fatalf("accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	text := "# leading\n\nSocName x # trailing\n\nCore 1 a # c\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns 3\n"
	s, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || s.Core(1).Test.Patterns != 3 {
		t.Fatalf("comment handling wrong: %+v", s)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	text := "SocName x\n\n\nBogus here\n"
	_, err := Parse(strings.NewReader(text))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want line 4 in error, got %v", err)
	}
}

// randomSOC builds a random valid SOC from quick's rand source.
func randomSOC(rng *rand.Rand) *soc.SOC {
	n := 1 + rng.Intn(8)
	s := &soc.SOC{Name: "q" + string(rune('a'+rng.Intn(26)))}
	if rng.Intn(2) == 0 {
		s.PowerMax = 1 + rng.Intn(10000)
	}
	for id := 1; id <= n; id++ {
		c := &soc.Core{
			ID:      id,
			Name:    "c" + string(rune('a'+rng.Intn(26))) + string(rune('0'+id%10)),
			Inputs:  rng.Intn(50),
			Outputs: rng.Intn(50),
			Bidirs:  rng.Intn(10),
			Test:    soc.Test{Patterns: 1 + rng.Intn(400), BISTEngine: -1},
		}
		if c.Inputs+c.Outputs+c.Bidirs == 0 {
			c.Inputs = 1
		}
		if id > 1 && rng.Intn(3) == 0 {
			c.Parent = 1 + rng.Intn(id-1)
		}
		for j := rng.Intn(6); j > 0; j-- {
			c.ScanChains = append(c.ScanChains, 1+rng.Intn(300))
		}
		if rng.Intn(4) == 0 {
			c.Test.Kind = soc.BISTTest
			c.Test.BISTEngine = rng.Intn(3)
		}
		if rng.Intn(3) == 0 {
			c.Test.Power = 1 + rng.Intn(5000)
		}
		s.Cores = append(s.Cores, c)
	}
	if n >= 2 {
		for k := rng.Intn(3); k > 0; k-- {
			a, b := 1+rng.Intn(n), 1+rng.Intn(n)
			if a < b {
				s.Precedences = append(s.Precedences, soc.Precedence{Before: a, After: b})
			}
			if a != b {
				s.Concurrencies = append(s.Concurrencies, soc.Concurrency{A: a, B: b})
			}
		}
	}
	return s
}

// TestRoundTripProperty: Parse(Write(s)) reproduces s exactly, for random
// valid SOCs.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSOC(rng)
		if err := s.Validate(); err != nil {
			t.Logf("generator produced invalid SOC: %v", err)
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("parse: %v\n%s", err, buf.String())
			return false
		}
		if !reflect.DeepEqual(normalize(s), normalize(got)) {
			t.Logf("round-trip mismatch:\nin:  %+v\nout: %+v\ntext:\n%s", s, got, buf.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps nil and empty slices together for comparison.
func normalize(s *soc.SOC) *soc.SOC {
	c := s.Clone()
	if len(c.Precedences) == 0 {
		c.Precedences = nil
	}
	if len(c.Concurrencies) == 0 {
		c.Concurrencies = nil
	}
	for _, core := range c.Cores {
		if len(core.ScanChains) == 0 {
			core.ScanChains = nil
		}
	}
	return c
}

func TestWriteFileParseFile(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/x.soc"
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(s), normalize(got)) {
		t.Fatal("file round-trip mismatch")
	}
	if _, err := ParseFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
