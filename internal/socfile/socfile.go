// Package socfile reads and writes SOC test descriptions in a line-oriented
// text format modeled on the ITC'02 SOC test benchmark files. The grammar:
//
//	SocName <name>
//	PowerMax <int>                    # optional, 0 = unconstrained
//	TotalCores <n>
//	Core <id> <name>                  # cores must appear in ID order
//	  Parent <id>                     # optional, default 0 (SOC level)
//	  Inputs <n> Outputs <n> Bidirs <n>
//	  ScanChains <k> : <l1> <l2> ...  # optional, k lengths follow the colon
//	  Test Patterns <n> [Kind scan|bist] [Engine <id>] [Power <n>]
//	Precedence <before> <after>       # zero or more, after all cores
//	Concurrency <a> <b>               # zero or more
//
// '#' starts a comment anywhere on a line; blank lines are ignored.
// Write and Parse round-trip: Parse(Write(s)) == s.
package socfile

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/soc"
)

// Parse reads an SOC description from r. The returned SOC is validated.
func Parse(r io.Reader) (*soc.SOC, error) {
	p := &parser{scan: bufio.NewScanner(r)}
	p.scan.Buffer(make([]byte, 1<<16), 1<<20)
	s, err := p.parse()
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseFile reads an SOC description from the named file.
func ParseFile(path string) (*soc.SOC, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

type parser struct {
	scan *bufio.Scanner
	line int
	cur  []string // current tokenized line, nil when consumed
	done bool
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("socfile: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// next returns the tokens of the next non-empty line without consuming it.
func (p *parser) next() []string {
	if p.cur != nil || p.done {
		return p.cur
	}
	for p.scan.Scan() {
		p.line++
		text := p.scan.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) > 0 {
			p.cur = fields
			return p.cur
		}
	}
	p.done = true
	return nil
}

func (p *parser) consume() { p.cur = nil }

func (p *parser) parse() (*soc.SOC, error) {
	s := &soc.SOC{}
	totalCores := -1
	for {
		tok := p.next()
		if tok == nil {
			break
		}
		switch tok[0] {
		case "SocName":
			if len(tok) != 2 {
				return nil, p.errf("SocName wants 1 argument")
			}
			s.Name = tok[1]
			p.consume()
		case "PowerMax":
			v, err := p.intArg(tok, 1)
			if err != nil {
				return nil, err
			}
			s.PowerMax = v
			p.consume()
		case "TotalCores":
			v, err := p.intArg(tok, 1)
			if err != nil {
				return nil, err
			}
			totalCores = v
			p.consume()
		case "Core":
			c, err := p.parseCore(tok)
			if err != nil {
				return nil, err
			}
			s.Cores = append(s.Cores, c)
		case "Precedence":
			a, b, err := p.twoInts(tok)
			if err != nil {
				return nil, err
			}
			s.Precedences = append(s.Precedences, soc.Precedence{Before: a, After: b})
			p.consume()
		case "Concurrency":
			a, b, err := p.twoInts(tok)
			if err != nil {
				return nil, err
			}
			s.Concurrencies = append(s.Concurrencies, soc.Concurrency{A: a, B: b})
			p.consume()
		default:
			return nil, p.errf("unexpected keyword %q", tok[0])
		}
	}
	if err := p.scan.Err(); err != nil {
		return nil, fmt.Errorf("socfile: %w", err)
	}
	if totalCores >= 0 && totalCores != len(s.Cores) {
		return nil, fmt.Errorf("socfile: TotalCores says %d, found %d", totalCores, len(s.Cores))
	}
	return s, nil
}

func (p *parser) intArg(tok []string, i int) (int, error) {
	if len(tok) != i+1 {
		return 0, p.errf("%s wants %d argument(s)", tok[0], i)
	}
	v, err := strconv.Atoi(tok[i])
	if err != nil {
		return 0, p.errf("%s: bad integer %q", tok[0], tok[i])
	}
	return v, nil
}

func (p *parser) twoInts(tok []string) (int, int, error) {
	if len(tok) != 3 {
		return 0, 0, p.errf("%s wants 2 arguments", tok[0])
	}
	a, err := strconv.Atoi(tok[1])
	if err != nil {
		return 0, 0, p.errf("%s: bad integer %q", tok[0], tok[1])
	}
	b, err := strconv.Atoi(tok[2])
	if err != nil {
		return 0, 0, p.errf("%s: bad integer %q", tok[0], tok[2])
	}
	return a, b, nil
}

func (p *parser) parseCore(tok []string) (*soc.Core, error) {
	if len(tok) != 3 {
		return nil, p.errf("Core wants: Core <id> <name>")
	}
	id, err := strconv.Atoi(tok[1])
	if err != nil {
		return nil, p.errf("Core: bad id %q", tok[1])
	}
	c := &soc.Core{ID: id, Name: tok[2], Test: soc.Test{BISTEngine: -1}}
	p.consume()
	sawTest := false
	for {
		tok := p.next()
		if tok == nil {
			break
		}
		switch tok[0] {
		case "Parent":
			v, err := p.intArg(tok, 1)
			if err != nil {
				return nil, err
			}
			c.Parent = v
			p.consume()
		case "Inputs":
			if len(tok) != 6 || tok[2] != "Outputs" || tok[4] != "Bidirs" {
				return nil, p.errf("want: Inputs <n> Outputs <n> Bidirs <n>")
			}
			var vals [3]int
			for i, f := range []int{1, 3, 5} {
				v, err := strconv.Atoi(tok[f])
				if err != nil {
					return nil, p.errf("bad integer %q", tok[f])
				}
				vals[i] = v
			}
			c.Inputs, c.Outputs, c.Bidirs = vals[0], vals[1], vals[2]
			p.consume()
		case "ScanChains":
			if len(tok) < 3 || tok[2] != ":" {
				return nil, p.errf("want: ScanChains <k> : <lengths...>")
			}
			k, err := strconv.Atoi(tok[1])
			if err != nil {
				return nil, p.errf("ScanChains: bad count %q", tok[1])
			}
			if len(tok) != 3+k {
				return nil, p.errf("ScanChains: %d lengths declared, %d given", k, len(tok)-3)
			}
			for _, t := range tok[3:] {
				l, err := strconv.Atoi(t)
				if err != nil {
					return nil, p.errf("ScanChains: bad length %q", t)
				}
				c.ScanChains = append(c.ScanChains, l)
			}
			p.consume()
		case "Test":
			if err := p.parseTest(tok, c); err != nil {
				return nil, err
			}
			sawTest = true
			p.consume()
		default:
			// Start of the next top-level element: core is finished.
			if !sawTest {
				return nil, p.errf("core %d (%s) has no Test line", c.ID, c.Name)
			}
			return c, nil
		}
	}
	if !sawTest {
		return nil, p.errf("core %d (%s) has no Test line", c.ID, c.Name)
	}
	return c, nil
}

func (p *parser) parseTest(tok []string, c *soc.Core) error {
	i := 1
	for i < len(tok) {
		key := tok[i]
		if i+1 >= len(tok) {
			return p.errf("Test: key %q has no value", key)
		}
		val := tok[i+1]
		switch key {
		case "Patterns":
			v, err := strconv.Atoi(val)
			if err != nil {
				return p.errf("Test Patterns: bad integer %q", val)
			}
			c.Test.Patterns = v
		case "Kind":
			switch val {
			case "scan":
				c.Test.Kind = soc.ScanTest
			case "bist":
				c.Test.Kind = soc.BISTTest
			default:
				return p.errf("Test Kind: want scan|bist, got %q", val)
			}
		case "Engine":
			v, err := strconv.Atoi(val)
			if err != nil {
				return p.errf("Test Engine: bad integer %q", val)
			}
			c.Test.BISTEngine = v
		case "Power":
			v, err := strconv.Atoi(val)
			if err != nil {
				return p.errf("Test Power: bad integer %q", val)
			}
			c.Test.Power = v
		default:
			return p.errf("Test: unknown key %q", key)
		}
		i += 2
	}
	return nil
}

// Write serializes the SOC in the package grammar. The output is stable:
// cores in ID order, constraints in input order.
func Write(w io.Writer, s *soc.SOC) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "SocName %s\n", s.Name)
	if s.PowerMax > 0 {
		fmt.Fprintf(bw, "PowerMax %d\n", s.PowerMax)
	}
	fmt.Fprintf(bw, "TotalCores %d\n", len(s.Cores))
	cores := append([]*soc.Core(nil), s.Cores...)
	sort.Slice(cores, func(i, j int) bool { return cores[i].ID < cores[j].ID })
	for _, c := range cores {
		fmt.Fprintf(bw, "\nCore %d %s\n", c.ID, c.Name)
		if c.Parent != 0 {
			fmt.Fprintf(bw, "  Parent %d\n", c.Parent)
		}
		fmt.Fprintf(bw, "  Inputs %d Outputs %d Bidirs %d\n", c.Inputs, c.Outputs, c.Bidirs)
		if len(c.ScanChains) > 0 {
			fmt.Fprintf(bw, "  ScanChains %d :", len(c.ScanChains))
			for _, l := range c.ScanChains {
				fmt.Fprintf(bw, " %d", l)
			}
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "  Test Patterns %d", c.Test.Patterns)
		if c.Test.Kind != soc.ScanTest {
			fmt.Fprintf(bw, " Kind %s", c.Test.Kind)
		}
		if c.Test.BISTEngine >= 0 {
			fmt.Fprintf(bw, " Engine %d", c.Test.BISTEngine)
		}
		if c.Test.Power > 0 {
			fmt.Fprintf(bw, " Power %d", c.Test.Power)
		}
		fmt.Fprintln(bw)
	}
	if len(s.Precedences) > 0 || len(s.Concurrencies) > 0 {
		fmt.Fprintln(bw)
	}
	for _, pc := range s.Precedences {
		fmt.Fprintf(bw, "Precedence %d %d\n", pc.Before, pc.After)
	}
	for _, cc := range s.Concurrencies {
		fmt.Fprintf(bw, "Concurrency %d %d\n", cc.A, cc.B)
	}
	return bw.Flush()
}

// ValidateNames rejects SOC and core names that cannot be represented in
// the .soc grammar: names containing whitespace or '#' would change the
// line structure when written, so two semantically different SOCs could
// serialize — and therefore Fingerprint — identically. Parse can never
// produce such names (tokens are whitespace-split, comments stripped),
// but SOCs built programmatically or decoded from JSON can; anything that
// uses Write output as a canonical form (Fingerprint keys, re-parseable
// uploads) must check this first.
func ValidateNames(s *soc.SOC) error {
	check := func(kind, name string) error {
		if strings.ContainsAny(name, " \t\n\v\f\r#") {
			return fmt.Errorf("socfile: %s name %q contains whitespace or '#' and cannot round-trip the .soc grammar", kind, name)
		}
		return nil
	}
	if err := check("SOC", s.Name); err != nil {
		return err
	}
	for _, c := range s.Cores {
		if err := check(fmt.Sprintf("core %d", c.ID), c.Name); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint returns a canonical content fingerprint of the SOC: the
// hex SHA-256 of its serialized description after normalization. Two SOCs
// that differ only in the listed order of their constraints — or in the
// orientation of a (symmetric) concurrency pair — fingerprint identically;
// any semantic difference (a pattern count, a scan-chain length, a name)
// changes the fingerprint. Write already emits cores in ID order, so core
// order never contributes. The fingerprint is only injective over SOCs
// whose names satisfy ValidateNames; callers keying caches by fingerprint
// must validate names first.
func Fingerprint(s *soc.SOC) string {
	c := s.Clone()
	for i, cc := range c.Concurrencies {
		if cc.A > cc.B {
			c.Concurrencies[i] = soc.Concurrency{A: cc.B, B: cc.A}
		}
	}
	sort.Slice(c.Precedences, func(i, j int) bool {
		if c.Precedences[i].Before != c.Precedences[j].Before {
			return c.Precedences[i].Before < c.Precedences[j].Before
		}
		return c.Precedences[i].After < c.Precedences[j].After
	})
	sort.Slice(c.Concurrencies, func(i, j int) bool {
		if c.Concurrencies[i].A != c.Concurrencies[j].A {
			return c.Concurrencies[i].A < c.Concurrencies[j].A
		}
		return c.Concurrencies[i].B < c.Concurrencies[j].B
	})
	h := sha256.New()
	_ = Write(h, c) // hash.Hash writes never fail
	return hex.EncodeToString(h.Sum(nil))
}

// WriteFile serializes the SOC to the named file.
func WriteFile(path string, s *soc.SOC) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
