package socfile_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/socfile"
)

// benchSOCTexts serializes every built-in benchmark SOC — the fuzz seed
// corpus and the round-trip property-test inputs.
func benchSOCTexts(t testing.TB) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, name := range []string{"d695", "p22810like", "p34392like", "p93791like", "demo8"} {
		s, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := socfile.Write(&buf, s); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.String()
	}
	return out
}

// TestParseWriteParseRoundTrip is the property test behind the grammar's
// contract ("Write and Parse round-trip"): for every benchmark SOC,
// Parse(Write(s)) == s and the re-serialization is byte-stable.
func TestParseWriteParseRoundTrip(t *testing.T) {
	for name, text := range benchSOCTexts(t) {
		s1, err := socfile.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		want, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1, want) {
			t.Fatalf("%s: Parse(Write(s)) != s", name)
		}
		var buf bytes.Buffer
		if err := socfile.Write(&buf, s1); err != nil {
			t.Fatalf("%s: re-write: %v", name, err)
		}
		if buf.String() != text {
			t.Fatalf("%s: Write(Parse(text)) is not byte-stable", name)
		}
	}
}

// FuzzParse feeds arbitrary bytes to the parser. For inputs the parser
// accepts, the full round-trip property must hold: Write(s) re-parses to
// a deeply equal SOC, and the second Write is byte-identical to the first
// (serialization is a fixed point). The parser must never panic and never
// return a SOC that fails validation.
func FuzzParse(f *testing.F) {
	for _, text := range benchSOCTexts(f) {
		f.Add(text)
	}
	f.Add("SocName tiny\nTotalCores 1\nCore 1 c\n Inputs 1 Outputs 1 Bidirs 0\n Test Patterns 3\n")
	f.Add("SocName x\nCore 1 a\n ScanChains 2 : 5 7\n Test Patterns 2 Kind bist Engine 0 Power 9\nPrecedence 1 1\n")
	f.Add("# comment only\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := socfile.Parse(strings.NewReader(input))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a SOC that fails Validate: %v", err)
		}
		var first bytes.Buffer
		if err := socfile.Write(&first, s); err != nil {
			t.Fatalf("write: %v", err)
		}
		s2, err := socfile.Parse(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written form failed: %v\nwritten:\n%s", err, first.String())
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round-trip changed the SOC\noriginal input:\n%s\nwritten:\n%s", input, first.String())
		}
		var second bytes.Buffer
		if err := socfile.Write(&second, s2); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("Write is not a fixed point after one round-trip")
		}
		if socfile.Fingerprint(s) != socfile.Fingerprint(s2) {
			t.Fatal("round-trip changed the fingerprint")
		}
	})
}
