package socfile_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/soc"
	"repro/internal/socfile"
)

// TestFingerprintCanonical asserts the fingerprint is invariant under the
// non-semantic degrees of freedom (constraint listing order, concurrency
// pair orientation) and sensitive to every semantic change.
func TestFingerprintCanonical(t *testing.T) {
	base := bench.Demo()
	fp := socfile.Fingerprint(base)
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a hex sha256", fp)
	}
	if socfile.Fingerprint(base.Clone()) != fp {
		t.Fatal("clone fingerprints differently")
	}

	// Reversing the constraint lists must not change the fingerprint.
	perm := base.Clone()
	for i, j := 0, len(perm.Precedences)-1; i < j; i, j = i+1, j-1 {
		perm.Precedences[i], perm.Precedences[j] = perm.Precedences[j], perm.Precedences[i]
	}
	for i, j := 0, len(perm.Concurrencies)-1; i < j; i, j = i+1, j-1 {
		perm.Concurrencies[i], perm.Concurrencies[j] = perm.Concurrencies[j], perm.Concurrencies[i]
	}
	if socfile.Fingerprint(perm) != fp {
		t.Fatal("constraint order changed the fingerprint")
	}

	// Flipping a (symmetric) concurrency pair must not change it either.
	if len(base.Concurrencies) == 0 {
		t.Fatal("demo SOC has no concurrency constraints to flip")
	}
	flip := base.Clone()
	cc := flip.Concurrencies[0]
	flip.Concurrencies[0] = soc.Concurrency{A: cc.B, B: cc.A}
	if socfile.Fingerprint(flip) != fp {
		t.Fatal("concurrency orientation changed the fingerprint")
	}

	// Fingerprinting must not mutate the input's constraint lists.
	if base.Concurrencies[0] != cc {
		t.Fatal("Fingerprint mutated its argument")
	}

	// Any semantic change must change the fingerprint.
	mutations := map[string]func(*soc.SOC){
		"pattern count": func(s *soc.SOC) { s.Cores[0].Test.Patterns++ },
		"scan chain":    func(s *soc.SOC) { s.Cores[0].ScanChains[0]++ },
		"soc name":      func(s *soc.SOC) { s.Name += "x" },
		"power budget":  func(s *soc.SOC) { s.PowerMax = 12345 },
		"drop constraint": func(s *soc.SOC) {
			s.Precedences = s.Precedences[:len(s.Precedences)-1]
		},
	}
	for what, mutate := range mutations {
		m := base.Clone()
		mutate(m)
		if socfile.Fingerprint(m) == fp {
			t.Fatalf("changing the %s did not change the fingerprint", what)
		}
	}

	// Distinct benchmark SOCs must not collide.
	seen := map[string]string{fp: "demo8"}
	for _, s := range bench.All() {
		f := socfile.Fingerprint(s)
		if prev, dup := seen[f]; dup {
			t.Fatalf("%s and %s share a fingerprint", prev, s.Name)
		}
		seen[f] = s.Name
	}
}
