package repro

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	s := BenchmarkSOC("d695")
	sch, err := ScheduleBest(s, Options{TAMWidth: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(s, sch); err != nil {
		t.Fatal(err)
	}
	lbv, err := LowerBound(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Makespan < lbv {
		t.Fatalf("makespan %d below lower bound %d", sch.Makespan, lbv)
	}
	res, err := Simulate(s, sch)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredMakespan != sch.Makespan {
		t.Fatalf("simulator disagrees: %d vs %d", res.MeasuredMakespan, sch.Makespan)
	}
}

func TestScheduleWithExplicitParams(t *testing.T) {
	s := BenchmarkSOC("demo8")
	sch, err := Schedule(s, Options{TAMWidth: 16, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(s, sch); err != nil {
		t.Fatal(err)
	}
	if sch.Params.Percent != 5 || sch.Params.Delta != 1 {
		t.Fatalf("params not honored: %+v", sch.Params)
	}
}

func TestConstraintOptionsFlow(t *testing.T) {
	s := BenchmarkSOC("demo8")
	policy, err := PreemptionPolicy(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	budget := PowerBudget(s, 110)
	if budget <= 0 {
		t.Fatalf("budget %d", budget)
	}
	sch, err := ScheduleBest(s, Options{TAMWidth: 16, MaxPreemptions: policy, PowerMax: budget})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(s, sch); err != nil {
		t.Fatal(err)
	}
}

func TestWrapperAndPareto(t *testing.T) {
	s := BenchmarkSOC("d695")
	c := s.Core(5) // s38584
	d, err := DesignWrapper(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.TestTime() <= 0 {
		t.Fatal("non-positive test time")
	}
	ps, err := ComputePareto(c, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ps.MinTime() > d.TestTime() {
		t.Fatal("Pareto minimum above a feasible design")
	}
}

func TestSweepAndEffectiveWidth(t *testing.T) {
	s := BenchmarkSOC("demo8")
	sw, err := SweepWidths(s, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	eff, err := PickEffectiveWidth(sw, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if eff.TAMWidth < 8 || eff.TAMWidth > 20 {
		t.Fatalf("effective width %d outside sweep", eff.TAMWidth)
	}
}

// TestSweepWidthsDeterministic asserts the public parallel sweep returns
// exactly the sequential result (the tentpole determinism guarantee at the
// API surface; the internal packages test it at finer grain).
func TestSweepWidthsDeterministic(t *testing.T) {
	s := BenchmarkSOC("demo8")
	seq, err := SweepWidthsWorkers(s, 8, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepWidthsWorkers(s, 8, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel SweepWidths differs from sequential")
	}
	def, err := SweepWidths(s, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, def) {
		t.Fatal("default SweepWidths differs from sequential")
	}
}

func TestSOCFileRoundTripAPI(t *testing.T) {
	s := BenchmarkSOC("d695")
	var buf bytes.Buffer
	if err := WriteSOC(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSOC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "d695" || len(got.Cores) != 10 {
		t.Fatalf("round trip lost data: %s, %d cores", got.Name, len(got.Cores))
	}
	path := t.TempDir() + "/d695.soc"
	var buf2 bytes.Buffer
	if err := WriteSOC(&buf2, s); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, buf2.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSOC(path); err != nil {
		t.Fatal(err)
	}
}

func TestRenderers(t *testing.T) {
	s := BenchmarkSOC("demo8")
	sch, err := Schedule(s, Options{TAMWidth: 12, Percent: 5, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	var g bytes.Buffer
	if err := Gantt(&g, sch, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "demo8") {
		t.Fatal("Gantt missing SOC name")
	}
	var svg bytes.Buffer
	if err := GanttSVG(&svg, sch); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg.String(), "<svg") {
		t.Fatal("not SVG")
	}
	for _, a := range sch.Assignments {
		if msg := FormatAssignment(a); !strings.Contains(msg, "width") {
			t.Fatalf("FormatAssignment: %q", msg)
		}
	}
}

func TestBenchmarkSOCPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown benchmark")
		}
	}()
	BenchmarkSOC("not-a-soc")
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
